PYTHON ?= python

.PHONY: install test lint bench figures examples chaos chaos-service all clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# sophon-lint is always available (stdlib-only); ruff and mypy run when
# installed (CI installs them).  mypy is BLOCKING for repro.core,
# repro.rpc (PR 6), repro.cluster and repro.telemetry (PR 5), and
# advisory for the rest of the tree until it typechecks -- see ROADMAP.md.
lint:
	PYTHONPATH=src $(PYTHON) -m repro.analysis src
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src; \
	else echo "ruff not installed; skipping (CI installs it)"; fi
	@if command -v mypy >/dev/null 2>&1; then \
		mypy src/repro/core src/repro/rpc src/repro/cluster src/repro/telemetry; \
		mypy || echo "tree-wide mypy findings are advisory for now (see ROADMAP.md)"; \
	else echo "mypy not installed; skipping (CI installs it)"; fi

#: Where `make bench` writes the profiling perf-regression report.
BENCH_REPORT ?= BENCH_profiling.json

#: Where `make bench` writes the decision-service load report.
BENCH_SERVICE_REPORT ?= BENCH_service.json

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only
	PYTHONPATH=src $(PYTHON) -m repro.parallel.bench --out $(BENCH_REPORT)
	PYTHONPATH=src $(PYTHON) -m repro.service.loadgen --clients 4 --requests 25 \
		--seed 7 --out $(BENCH_SERVICE_REPORT)

figures:
	$(PYTHON) -m repro.cli --samples 2000 --seed 7 all

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script || exit 1; \
	done

#: Where `make chaos` drops its telemetry artifacts (JSONL event logs,
#: chrome traces, Prometheus text, decision audit).
TELEMETRY_DIR ?= artifacts/chaos-telemetry

chaos:
	PYTHONPATH=src $(PYTHON) -m repro.harness.chaos --samples 160 --seed 7 \
		--telemetry-dir $(TELEMETRY_DIR)

# Crash-recovery gate for the decision service: kill it mid-script,
# restart on the same journal, and require byte-identical grants.
chaos-service:
	PYTHONPATH=src $(PYTHON) -m repro.harness.service_chaos --requests 24 --seed 7

all: test bench

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .hypothesis artifacts
	find . -name __pycache__ -type d -exec rm -rf {} +
