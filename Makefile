PYTHON ?= python

.PHONY: install test lint bench figures examples chaos all clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# sophon-lint is always available (stdlib-only); ruff and mypy run when
# installed (CI installs them).  mypy is BLOCKING for repro.cluster and
# repro.telemetry (PR 5) and advisory for the rest of the tree until it
# typechecks -- see ROADMAP.md.
lint:
	PYTHONPATH=src $(PYTHON) -m repro.analysis src
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src; \
	else echo "ruff not installed; skipping (CI installs it)"; fi
	@if command -v mypy >/dev/null 2>&1; then \
		mypy src/repro/cluster src/repro/telemetry; \
		mypy || echo "tree-wide mypy findings are advisory for now (see ROADMAP.md)"; \
	else echo "mypy not installed; skipping (CI installs it)"; fi

#: Where `make bench` writes the profiling perf-regression report.
BENCH_REPORT ?= BENCH_profiling.json

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only
	PYTHONPATH=src $(PYTHON) -m repro.parallel.bench --out $(BENCH_REPORT)

figures:
	$(PYTHON) -m repro.cli --samples 2000 --seed 7 all

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script || exit 1; \
	done

#: Where `make chaos` drops its telemetry artifacts (JSONL event logs,
#: chrome traces, Prometheus text, decision audit).
TELEMETRY_DIR ?= artifacts/chaos-telemetry

chaos:
	PYTHONPATH=src $(PYTHON) -m repro.harness.chaos --samples 160 --seed 7 \
		--telemetry-dir $(TELEMETRY_DIR)

all: test bench

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .hypothesis artifacts
	find . -name __pycache__ -type d -exec rm -rf {} +
