PYTHON ?= python

.PHONY: install test bench figures examples chaos all clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

figures:
	$(PYTHON) -m repro.cli --samples 2000 --seed 7 all

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script || exit 1; \
	done

chaos:
	PYTHONPATH=src $(PYTHON) -m repro.harness.chaos --samples 160 --seed 7

all: test bench

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
