PYTHON ?= python

.PHONY: install test lint bench figures examples chaos chaos-service all clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# sophon-lint is always available (stdlib-only) and BLOCKING, including
# the v2 cross-module rules (GUARD01-03, TNT01).  ruff and mypy run when
# installed (CI installs them); both are BLOCKING over their pyproject
# scopes -- ruff's widened select (E4/E7/E9/F/B) and mypy's files list
# (core, rpc, cluster, telemetry, service, analysis).  See ROADMAP.md for
# the remaining widening work.
lint:
	PYTHONPATH=src $(PYTHON) -m repro.analysis src
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src; \
	else echo "ruff not installed; skipping (CI installs it)"; fi
	@if command -v mypy >/dev/null 2>&1; then \
		mypy; \
	else echo "mypy not installed; skipping (CI installs it)"; fi

#: Where `make bench` writes the profiling perf-regression report.
BENCH_REPORT ?= BENCH_profiling.json

#: Where `make bench` writes the decision-service load report.
BENCH_SERVICE_REPORT ?= BENCH_service.json

#: Where `make bench` writes the epoch-simulation perf report (exits
#: non-zero unless the fast path is byte-identical to the seed kernel).
BENCH_SIM_REPORT ?= BENCH_sim.json

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only
	PYTHONPATH=src $(PYTHON) -m repro.parallel.bench --out $(BENCH_REPORT)
	PYTHONPATH=src $(PYTHON) -m repro.cluster.bench --million --out $(BENCH_SIM_REPORT)
	PYTHONPATH=src $(PYTHON) -m repro.service.loadgen --clients 4 --requests 25 \
		--seed 7 --out $(BENCH_SERVICE_REPORT)

figures:
	$(PYTHON) -m repro.cli --samples 2000 --seed 7 all

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script || exit 1; \
	done

#: Where `make chaos` drops its telemetry artifacts (JSONL event logs,
#: chrome traces, Prometheus text, decision audit).
TELEMETRY_DIR ?= artifacts/chaos-telemetry

chaos:
	PYTHONPATH=src $(PYTHON) -m repro.harness.chaos --samples 160 --seed 7 \
		--telemetry-dir $(TELEMETRY_DIR)

#: Where `make chaos-service` keeps each run's flight-recorder dump and
#: the traced run's replayable telemetry JSONL.
FLIGHT_DIR ?= artifacts/service-flight

# Crash-recovery gate for the decision service: kill it mid-script,
# restart on the same journal, and require byte-identical grants -- with
# tracing both off (chaos run) and on (traced run).
chaos-service:
	PYTHONPATH=src $(PYTHON) -m repro.harness.service_chaos --requests 24 --seed 7 \
		--flight-dir $(FLIGHT_DIR)

all: test bench

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .hypothesis artifacts
	find . -name __pycache__ -type d -exec rm -rf {} +
