"""Thin setup.py so legacy editable installs work offline (no wheel pkg)."""
from setuptools import setup

setup()
