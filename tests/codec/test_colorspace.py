"""YCbCr conversion and chroma subsampling tests."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec.colorspace import (
    rgb_to_ycbcr,
    subsample_420,
    upsample_420,
    ycbcr_to_rgb,
)


class TestColorConversion:
    def test_gray_pixel_has_neutral_chroma(self):
        gray = np.full((2, 2, 3), 128, dtype=np.uint8)
        ycc = rgb_to_ycbcr(gray)
        assert np.allclose(ycc[..., 0], 128.0)
        assert np.allclose(ycc[..., 1], 128.0, atol=1e-9)
        assert np.allclose(ycc[..., 2], 128.0, atol=1e-9)

    def test_luma_weights_follow_bt601(self):
        red = np.zeros((1, 1, 3), dtype=np.uint8)
        red[0, 0, 0] = 255
        assert abs(rgb_to_ycbcr(red)[0, 0, 0] - 0.299 * 255) < 1e-6

    def test_round_trip_is_near_lossless(self, rng):
        image = rng.integers(0, 256, size=(16, 16, 3), dtype=np.uint8)
        back = ycbcr_to_rgb(rgb_to_ycbcr(image))
        assert np.abs(back.astype(int) - image.astype(int)).max() <= 1

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_round_trip_property(self, seed):
        image = np.random.default_rng(seed).integers(
            0, 256, size=(8, 8, 3), dtype=np.uint8
        )
        back = ycbcr_to_rgb(rgb_to_ycbcr(image))
        assert np.abs(back.astype(int) - image.astype(int)).max() <= 1

    def test_output_dtype_and_range(self, rng):
        ycc = rgb_to_ycbcr(rng.integers(0, 256, size=(4, 4, 3), dtype=np.uint8))
        rgb = ycbcr_to_rgb(ycc)
        assert rgb.dtype == np.uint8


class TestSubsampling:
    def test_even_dimensions_pool_2x2_means(self):
        plane = np.array([[0.0, 4.0], [8.0, 4.0]])
        assert subsample_420(plane).item() == 4.0

    def test_odd_dimensions_pad_with_edge(self):
        plane = np.array([[1.0, 2.0, 3.0]])
        pooled = subsample_420(plane)
        assert pooled.shape == (1, 2)
        assert pooled[0, 0] == 1.5  # [[1,2],[1,2]] mean
        assert pooled[0, 1] == 3.0

    def test_upsample_restores_shape(self):
        plane = np.arange(12, dtype=np.float64).reshape(3, 4)
        up = upsample_420(subsample_420(plane), 3, 4)
        assert up.shape == (3, 4)

    def test_constant_plane_survives_round_trip_exactly(self):
        plane = np.full((10, 10), 7.0)
        up = upsample_420(subsample_420(plane), 10, 10)
        assert np.array_equal(up, plane)

    def test_halves_resolution(self):
        plane = np.zeros((64, 48))
        assert subsample_420(plane).shape == (32, 24)
