"""Zigzag scan order tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec.zigzag import inverse_zigzag, zigzag_indices, zigzag_order


class TestZigzagIndices:
    def test_covers_every_cell_exactly_once(self):
        rows, cols = zigzag_indices(8)
        cells = set(zip(rows.tolist(), cols.tolist()))
        assert len(cells) == 64
        assert cells == {(r, c) for r in range(8) for c in range(8)}

    def test_starts_at_dc_and_ends_at_highest_frequency(self):
        rows, cols = zigzag_indices(8)
        assert (rows[0], cols[0]) == (0, 0)
        assert (rows[-1], cols[-1]) == (7, 7)

    def test_first_diagonal_steps_match_jpeg_convention(self):
        rows, cols = zigzag_indices(8)
        # JPEG zigzag: (0,0), (0,1), (1,0), (2,0), (1,1), (0,2), ...
        head = list(zip(rows.tolist(), cols.tolist()))[:6]
        assert head == [(0, 0), (0, 1), (1, 0), (2, 0), (1, 1), (0, 2)]

    def test_frequencies_nondecreasing_by_diagonal(self):
        rows, cols = zigzag_indices(8)
        sums = rows + cols
        assert (np.diff(sums) >= 0).all()

    def test_arrays_are_readonly(self):
        rows, _ = zigzag_indices(8)
        with pytest.raises(ValueError):
            rows[0] = 3

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            zigzag_indices(0)

    def test_size_one_block(self):
        rows, cols = zigzag_indices(1)
        assert rows.tolist() == [0] and cols.tolist() == [0]


class TestRoundTrip:
    def test_single_block_round_trip(self, rng):
        block = rng.integers(-100, 100, size=(8, 8)).astype(np.int16)
        flat = zigzag_order(block)
        assert flat.shape == (64,)
        assert np.array_equal(inverse_zigzag(flat), block)

    def test_stacked_blocks_round_trip(self, rng):
        blocks = rng.integers(-100, 100, size=(5, 8, 8)).astype(np.int16)
        flat = zigzag_order(blocks)
        assert flat.shape == (5, 64)
        assert np.array_equal(inverse_zigzag(flat), blocks)

    @given(n=st.integers(min_value=1, max_value=12), seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_round_trip_any_block_size(self, n, seed):
        block = np.random.default_rng(seed).integers(-5, 5, size=(n, n))
        assert np.array_equal(inverse_zigzag(zigzag_order(block), n), block)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            zigzag_order(np.zeros((4, 8)))

    def test_rejects_wrong_flat_length(self):
        with pytest.raises(ValueError):
            inverse_zigzag(np.zeros(63), 8)
