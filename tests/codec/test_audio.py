"""Toy FLAC codec tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec.audio import ToyFlacCodec
from repro.codec.errors import CorruptStreamError, UnsupportedImageError
from repro.data.audio import generate_clip


class TestRoundTrip:
    def test_lossless(self, rng):
        clip = generate_clip(rng, 16_000, tonality=0.6)
        codec = ToyFlacCodec()
        decoded, rate = codec.decode(codec.encode(clip, sample_rate=22_050))
        assert np.array_equal(decoded, clip)
        assert rate == 22_050

    @given(n=st.integers(1, 5_000), seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_lossless_property(self, n, seed):
        rng = np.random.default_rng(seed)
        clip = rng.integers(-32768, 32768, size=n, dtype=np.int16)
        codec = ToyFlacCodec()
        decoded, _ = codec.decode(codec.encode(clip))
        assert np.array_equal(decoded, clip)

    def test_extreme_values_survive_wraparound(self):
        clip = np.array([-32768, 32767, -32768, 0, 32767], dtype=np.int16)
        codec = ToyFlacCodec()
        decoded, _ = codec.decode(codec.encode(clip))
        assert np.array_equal(decoded, clip)

    def test_silence_compresses_extremely_well(self):
        clip = np.zeros(16_000, dtype=np.int16)
        encoded = ToyFlacCodec().encode(clip)
        assert len(encoded) < clip.nbytes / 100

    def test_noise_barely_compresses(self, rng):
        clip = rng.integers(-32768, 32768, size=16_000, dtype=np.int16)
        encoded = ToyFlacCodec().encode(clip)
        assert len(encoded) > clip.nbytes * 0.9

    def test_smoother_signals_compress_better(self, rng):
        tonal = generate_clip(rng, 16_000, tonality=1.0)
        noisy = generate_clip(rng, 16_000, tonality=0.0)
        codec = ToyFlacCodec()
        assert len(codec.encode(tonal)) < len(codec.encode(noisy))


class TestRobustness:
    def test_rejects_wrong_dtype(self):
        with pytest.raises(UnsupportedImageError):
            ToyFlacCodec().encode(np.zeros(10, dtype=np.float32))

    def test_rejects_empty(self):
        with pytest.raises(UnsupportedImageError):
            ToyFlacCodec().encode(np.zeros(0, dtype=np.int16))

    def test_rejects_truncated(self, rng):
        data = ToyFlacCodec().encode(generate_clip(rng, 1000, 0.5))
        with pytest.raises(CorruptStreamError):
            ToyFlacCodec().decode(data[: len(data) // 2])

    def test_rejects_bad_magic(self):
        with pytest.raises(CorruptStreamError):
            ToyFlacCodec().decode(b"WAT?" + b"\x00" * 40)

    @given(data=st.binary(max_size=120))
    @settings(max_examples=80, deadline=None)
    def test_garbage_fails_cleanly(self, data):
        try:
            ToyFlacCodec().decode(data)
        except CorruptStreamError:
            pass
