"""Progressive stream tests: prefix identity, truncation, robustness."""

import math
import struct
import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec import (
    DEFAULT_SCAN_BANDS,
    CodecConfig,
    CorruptStreamError,
    ProgressiveCodecConfig,
    ProgressiveJpegCodec,
    ToyJpegCodec,
    scan_count_of,
    scan_prefix_metrics,
    scan_sizes,
    truncate_scans,
)
from repro.data.synthetic import generate_image

_HEADER = struct.Struct("<4sBBBIIBB")


def make_codec(quality=75, subsample=True, scan_bands=DEFAULT_SCAN_BANDS):
    return ProgressiveJpegCodec(
        ProgressiveCodecConfig(
            base=CodecConfig(quality=quality, subsample=subsample),
            scan_bands=scan_bands,
        )
    )


class TestFullPrefixIdentity:
    """Decoding every scan must reproduce the baseline codec exactly."""

    @pytest.mark.parametrize(
        "shape", [(48, 64, 3), (33, 41, 3), (17, 23), (8, 8, 3), (1, 1), (5, 3, 3)]
    )
    @pytest.mark.parametrize("quality", [1, 50, 100])
    def test_full_decode_matches_baseline(self, shape, quality):
        rng = np.random.default_rng(sum(shape) * 1000 + quality)
        image = rng.integers(0, 256, size=shape, dtype=np.uint8)
        config = CodecConfig(quality=quality)
        progressive = ProgressiveJpegCodec(ProgressiveCodecConfig(base=config))
        baseline = ToyJpegCodec(config)
        expected = baseline.decode(baseline.encode(image))
        decoded = progressive.decode(progressive.encode(image))
        np.testing.assert_array_equal(decoded, expected)

    def test_full_decode_matches_baseline_without_subsampling(self, rng):
        image = generate_image(rng, 37, 53, texture=0.4)
        config = CodecConfig(subsample=False)
        progressive = ProgressiveJpegCodec(ProgressiveCodecConfig(base=config))
        baseline = ToyJpegCodec(config)
        np.testing.assert_array_equal(
            progressive.decode(progressive.encode(image)),
            baseline.decode(baseline.encode(image)),
        )

    @given(
        h=st.integers(min_value=1, max_value=40),
        w=st.integers(min_value=1, max_value=40),
        quality=st.integers(min_value=1, max_value=100),
        grayscale=st.booleans(),
        subsample=st.booleans(),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_identity_property(self, h, w, quality, grayscale, subsample, seed):
        rng = np.random.default_rng(seed)
        shape = (h, w) if grayscale else (h, w, 3)
        image = rng.integers(0, 256, size=shape, dtype=np.uint8)
        config = CodecConfig(quality=quality, subsample=subsample)
        progressive = ProgressiveJpegCodec(ProgressiveCodecConfig(base=config))
        baseline = ToyJpegCodec(config)
        np.testing.assert_array_equal(
            progressive.decode(progressive.encode(image)),
            baseline.decode(baseline.encode(image)),
        )

    def test_baseline_streams_are_delegated(self, rng):
        image = generate_image(rng, 32, 32, texture=0.3)
        config = CodecConfig(quality=60)
        stream = ToyJpegCodec(config).encode(image)
        progressive = ProgressiveJpegCodec(ProgressiveCodecConfig(base=config))
        np.testing.assert_array_equal(
            progressive.decode(stream), ToyJpegCodec(config).decode(stream)
        )

    def test_baseline_streams_reject_scan_count(self, rng):
        stream = ToyJpegCodec().encode(generate_image(rng, 16, 16, texture=0.2))
        with pytest.raises(CorruptStreamError):
            ProgressiveJpegCodec().decode(stream, scan_count=1)


class TestTruncation:
    @pytest.fixture
    def stream(self, rng):
        return make_codec().encode(generate_image(rng, 48, 64, texture=0.5))

    def test_truncation_is_byte_prefix_slicing(self, stream):
        sizes = scan_sizes(stream)
        for count in range(1, len(sizes) + 1):
            assert truncate_scans(stream, count) == stream[: sizes[count - 1]]

    def test_truncating_to_own_count_is_identity(self, stream):
        assert truncate_scans(stream, len(DEFAULT_SCAN_BANDS)) == stream

    def test_truncated_decode_matches_scan_count_decode(self, stream):
        codec = make_codec()
        for count in range(1, len(DEFAULT_SCAN_BANDS) + 1):
            np.testing.assert_array_equal(
                codec.decode(truncate_scans(stream, count)),
                codec.decode(stream, scan_count=count),
            )

    def test_truncated_decode_is_deterministic(self, stream):
        codec = make_codec()
        prefix = truncate_scans(stream, 2)
        np.testing.assert_array_equal(codec.decode(prefix), codec.decode(prefix))

    def test_truncated_stream_still_reports_full_ladder(self, stream):
        prefix = truncate_scans(stream, 2)
        assert scan_count_of(prefix) == 2
        assert scan_sizes(prefix) == scan_sizes(stream)

    def test_truncate_rejects_out_of_range_counts(self, stream):
        for count in (0, len(DEFAULT_SCAN_BANDS) + 1, -1):
            with pytest.raises(ValueError):
                truncate_scans(stream, count)

    def test_truncate_beyond_available_scans_rejected(self, stream):
        prefix = truncate_scans(stream, 2)
        with pytest.raises(ValueError):
            truncate_scans(prefix, 3)

    def test_decode_beyond_available_scans_rejected(self, stream):
        prefix = truncate_scans(stream, 2)
        with pytest.raises(CorruptStreamError):
            make_codec().decode(prefix, scan_count=3)


class TestFidelityLadder:
    def test_psnr_monotone_and_final_prefix_exact(self, rng):
        stream = make_codec().encode(generate_image(rng, 64, 64, texture=0.6))
        fidelities = scan_prefix_metrics(stream)
        psnrs = [f.psnr_db for f in fidelities]
        assert all(b >= a for a, b in zip(psnrs, psnrs[1:]))
        assert math.isinf(psnrs[-1])
        assert fidelities[-1].mse == 0.0

    def test_prefix_bytes_match_scan_sizes(self, rng):
        stream = make_codec().encode(generate_image(rng, 32, 48, texture=0.4))
        sizes = scan_sizes(stream)
        fidelities = scan_prefix_metrics(stream)
        assert tuple(f.prefix_bytes for f in fidelities) == sizes
        assert tuple(f.scan_count for f in fidelities) == tuple(
            range(1, len(sizes) + 1)
        )

    def test_external_reference_changes_final_psnr(self, rng):
        image = generate_image(rng, 32, 32, texture=0.5)
        stream = make_codec(quality=40).encode(image)
        fidelities = scan_prefix_metrics(stream, reference=image)
        # Against the original pixels (not the lossy full decode) even the
        # complete stream carries quantization error.
        assert not math.isinf(fidelities[-1].psnr_db)

    def test_custom_two_scan_ladder(self, rng):
        codec = make_codec(scan_bands=(1, 64))
        stream = codec.encode(generate_image(rng, 24, 24, texture=0.3))
        assert scan_count_of(stream) == 2
        assert len(scan_prefix_metrics(stream, codec)) == 2


class TestConfigValidation:
    @pytest.mark.parametrize(
        "bands",
        [(), (0, 64), (1, 1, 64), (6, 1, 64), (1, 32), (1, 65)],
    )
    def test_rejects_bad_scan_bands(self, bands):
        with pytest.raises(ValueError):
            ProgressiveCodecConfig(scan_bands=bands)

    def test_default_config_without_argument(self):
        codec = ProgressiveJpegCodec()
        assert codec.config.scan_bands == DEFAULT_SCAN_BANDS
        assert codec.config.num_scans == len(DEFAULT_SCAN_BANDS)


class TestRobustness:
    """Every malformed stream raises CorruptStreamError, nothing else."""

    @pytest.fixture
    def stream(self, rng):
        return make_codec().encode(generate_image(rng, 32, 32, texture=0.4))

    def _mutate_header(self, stream, **changes):
        fields = list(_HEADER.unpack_from(stream))
        names = [
            "magic",
            "version",
            "flags",
            "quality",
            "height",
            "width",
            "num_planes",
            "num_scans",
        ]
        for name, value in changes.items():
            fields[names.index(name)] = value
        return _HEADER.pack(*fields) + stream[_HEADER.size :]

    def test_rejects_empty_and_short_streams(self):
        for data in (b"", b"TJPP", b"TJPP" + b"\x00" * 4):
            with pytest.raises(CorruptStreamError):
                ProgressiveJpegCodec().decode(data)

    def test_rejects_bad_magic(self, stream):
        with pytest.raises(CorruptStreamError):
            ProgressiveJpegCodec().decode(b"NOPE" + stream[4:])

    def test_rejects_unknown_version(self, stream):
        with pytest.raises(CorruptStreamError):
            ProgressiveJpegCodec().decode(self._mutate_header(stream, version=9))

    def test_rejects_quality_out_of_range(self, stream):
        with pytest.raises(CorruptStreamError):
            ProgressiveJpegCodec().decode(self._mutate_header(stream, quality=0))

    def test_rejects_plane_count_flag_mismatch(self, stream):
        # A color stream claiming one plane (and vice versa) is corrupt.
        with pytest.raises(CorruptStreamError):
            ProgressiveJpegCodec().decode(self._mutate_header(stream, num_planes=1))

    def test_rejects_zero_dimensions(self, stream):
        with pytest.raises(CorruptStreamError):
            ProgressiveJpegCodec().decode(self._mutate_header(stream, width=0))

    def test_rejects_zero_scans(self, stream):
        with pytest.raises(CorruptStreamError):
            ProgressiveJpegCodec().decode(self._mutate_header(stream, num_scans=0))

    def test_rejects_bad_band_table(self, stream):
        data = bytearray(stream)
        data[_HEADER.size] = 0  # first band bound must be >= 1
        with pytest.raises(CorruptStreamError):
            ProgressiveJpegCodec().decode(bytes(data))

    def test_rejects_trailing_garbage(self, stream):
        with pytest.raises(CorruptStreamError):
            ProgressiveJpegCodec().decode(stream + b"\x00")

    def test_rejects_mid_scan_truncation(self, stream):
        sizes = scan_sizes(stream)
        with pytest.raises(CorruptStreamError):
            ProgressiveJpegCodec().decode(stream[: sizes[1] - 1])

    def test_rejects_header_only_stream(self, stream):
        # Directory intact but zero complete scans on the wire.
        parsed_end = scan_sizes(stream)[0]
        with pytest.raises(CorruptStreamError):
            ProgressiveJpegCodec().decode(stream[: parsed_end - 1])

    def test_rejects_corrupt_deflate_payload(self, stream):
        data = bytearray(stream)
        data[-8:] = b"\xff" * 8
        with pytest.raises(CorruptStreamError):
            ProgressiveJpegCodec().decode(bytes(data))

    def test_rejects_deflate_bomb(self, rng):
        # Replace the last scan's payloads with deflate streams that
        # inflate to far more than the directory promises.
        codec = make_codec(scan_bands=(1, 64))
        image = rng.integers(0, 256, size=(8, 8), dtype=np.uint8)
        stream = codec.encode(image)
        sizes = scan_sizes(stream)
        bomb = zlib.compress(b"\x00" * 10**6, 9)
        head = stream[: sizes[0]]
        # Patch the directory entry for scan 1 (grayscale: one plane).
        directory_offset = _HEADER.size + 2 + struct.calcsize("<I")
        patched = bytearray(head + bomb)
        struct.pack_into("<I", patched, directory_offset, len(bomb))
        with pytest.raises(CorruptStreamError):
            codec.decode(bytes(patched))

    def test_scan_helpers_reject_corrupt_streams(self, stream):
        for helper in (scan_count_of, scan_sizes):
            with pytest.raises(CorruptStreamError):
                helper(b"NOPE" + stream[4:])
        with pytest.raises(CorruptStreamError):
            truncate_scans(stream + b"\x00", 1)
