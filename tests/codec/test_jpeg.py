"""Toy codec end-to-end tests: fidelity, size behaviour, robustness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec import CodecConfig, CorruptStreamError, ToyJpegCodec, encoded_size
from repro.codec.errors import UnsupportedImageError
from repro.data.synthetic import generate_image


def make_codec(**kwargs) -> ToyJpegCodec:
    return ToyJpegCodec(CodecConfig(**kwargs))


class TestRoundTrip:
    def test_color_round_trip_low_error(self, rng):
        image = generate_image(rng, 96, 128, texture=0.3)
        codec = make_codec(quality=90)
        decoded = codec.decode(codec.encode(image))
        assert decoded.shape == image.shape
        error = np.abs(decoded.astype(int) - image.astype(int)).mean()
        # Quality 90 with 4:2:0 subsampling: mean error stays within ~10
        # levels on textured content (lossy, but visually faithful).
        assert error < 10.0

    def test_grayscale_round_trip(self, rng):
        image = rng.integers(0, 256, size=(40, 56), dtype=np.uint8)
        codec = make_codec()
        decoded = codec.decode(codec.encode(image))
        assert decoded.shape == image.shape
        assert decoded.dtype == np.uint8

    def test_non_multiple_of_8_dimensions(self, rng):
        image = generate_image(rng, 37, 53, texture=0.2)
        codec = make_codec()
        assert codec.decode(codec.encode(image)).shape == (37, 53, 3)

    def test_tiny_image(self):
        image = np.full((1, 1, 3), 200, dtype=np.uint8)
        codec = make_codec()
        decoded = codec.decode(codec.encode(image))
        assert decoded.shape == (1, 1, 3)
        assert abs(int(decoded[0, 0, 0]) - 200) < 20

    @given(
        h=st.integers(min_value=1, max_value=48),
        w=st.integers(min_value=1, max_value=48),
        quality=st.integers(min_value=20, max_value=95),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_round_trip_never_crashes_and_preserves_shape(self, h, w, quality, seed):
        rng = np.random.default_rng(seed)
        image = rng.integers(0, 256, size=(h, w, 3), dtype=np.uint8)
        codec = make_codec(quality=quality)
        assert codec.decode(codec.encode(image)).shape == (h, w, 3)

    def test_quality_improves_fidelity(self, rng):
        image = generate_image(rng, 64, 64, texture=0.5)
        err = {}
        for quality in (20, 90):
            codec = make_codec(quality=quality)
            decoded = codec.decode(codec.encode(image))
            err[quality] = np.abs(decoded.astype(int) - image.astype(int)).mean()
        assert err[90] < err[20]


class TestSizeBehaviour:
    """The property SOPHON relies on: size responds to content and quality."""

    def test_smooth_images_compress_better_than_noisy(self, rng):
        smooth = generate_image(rng, 128, 128, texture=0.0)
        noisy = generate_image(rng, 128, 128, texture=1.0)
        assert encoded_size(smooth) < encoded_size(noisy)

    def test_higher_quality_is_bigger(self, rng):
        image = generate_image(rng, 96, 96, texture=0.5)
        assert encoded_size(image, CodecConfig(quality=90)) > encoded_size(
            image, CodecConfig(quality=30)
        )

    def test_subsampling_shrinks_color_images(self, rng):
        image = generate_image(rng, 96, 96, texture=0.5)
        with_sub = encoded_size(image, CodecConfig(subsample=True))
        without = encoded_size(image, CodecConfig(subsample=False))
        assert with_sub < without

    def test_compression_beats_raw_for_natural_content(self, rng):
        image = generate_image(rng, 256, 256, texture=0.4)
        assert encoded_size(image) < image.nbytes

    def test_encode_is_deterministic(self, rng):
        image = generate_image(rng, 64, 80, texture=0.6)
        codec = make_codec()
        assert codec.encode(image) == codec.encode(image)


class TestRobustness:
    def test_rejects_truncated_stream(self, rng):
        codec = make_codec()
        data = codec.encode(generate_image(rng, 32, 32, texture=0.2))
        with pytest.raises(CorruptStreamError):
            codec.decode(data[: len(data) // 2])

    def test_rejects_bad_magic(self):
        with pytest.raises(CorruptStreamError):
            make_codec().decode(b"NOPE" + b"\x00" * 60)

    def test_rejects_empty_stream(self):
        with pytest.raises(CorruptStreamError):
            make_codec().decode(b"")

    def test_rejects_corrupt_deflate_payload(self, rng):
        codec = make_codec()
        data = bytearray(codec.encode(generate_image(rng, 32, 32, texture=0.2)))
        data[-10:] = b"\xff" * 10
        with pytest.raises(CorruptStreamError):
            codec.decode(bytes(data))

    def test_rejects_plane_count_flag_mismatch(self, rng):
        # Regression: a color stream whose header claims one plane used to
        # slip past header validation and fail deep in plane decoding.
        import struct

        header = struct.Struct("<4sBBBIIB")
        data = make_codec().encode(generate_image(rng, 16, 16, texture=0.2))
        fields = list(header.unpack_from(data))
        fields[6] = 1  # num_planes
        with pytest.raises(CorruptStreamError):
            make_codec().decode(header.pack(*fields) + data[header.size :])

    def test_rejects_grayscale_flag_with_three_planes(self, rng):
        import struct

        header = struct.Struct("<4sBBBIIB")
        data = make_codec().encode(generate_image(rng, 16, 16, texture=0.2))
        fields = list(header.unpack_from(data))
        fields[2] |= 0x02  # grayscale flag on a 3-plane stream
        with pytest.raises(CorruptStreamError):
            make_codec().decode(header.pack(*fields) + data[header.size :])

    def test_rejects_plane_dimension_mismatch(self, rng):
        # Regression: plane headers disagreeing with the image header must
        # be rejected, not silently reshaped.
        import struct

        header = struct.Struct("<4sBBBIIB")
        data = make_codec().encode(generate_image(rng, 16, 16, texture=0.2))
        patched = bytearray(data)
        # First plane header immediately follows the stream header.
        struct.pack_into("<I", patched, header.size, 999)
        with pytest.raises(CorruptStreamError):
            make_codec().decode(bytes(patched))

    def test_rejects_trailing_garbage(self, rng):
        data = make_codec().encode(generate_image(rng, 16, 16, texture=0.2))
        with pytest.raises(CorruptStreamError):
            make_codec().decode(data + b"\x00")

    @pytest.mark.parametrize(
        "bad",
        [
            np.zeros((4, 4, 3), dtype=np.float32),
            np.zeros((4, 4, 4), dtype=np.uint8),
            np.zeros((4,), dtype=np.uint8),
            "not an array",
        ],
    )
    def test_rejects_unsupported_inputs(self, bad):
        with pytest.raises(UnsupportedImageError):
            make_codec().encode(bad)

    def test_rejects_empty_image(self):
        with pytest.raises(UnsupportedImageError):
            make_codec().encode(np.zeros((0, 4, 3), dtype=np.uint8))

    @pytest.mark.parametrize("quality", [0, 101])
    def test_config_validates_quality(self, quality):
        with pytest.raises(ValueError):
            CodecConfig(quality=quality)

    def test_config_validates_zlib_level(self):
        with pytest.raises(ValueError):
            CodecConfig(zlib_level=10)
