"""Quantization table tests."""

import numpy as np
import pytest

from repro.codec.quant import BASE_CHROMA_TABLE, BASE_LUMA_TABLE, quality_scaled_table


class TestQualityScaling:
    def test_quality_50_returns_base_values(self):
        table = quality_scaled_table(BASE_LUMA_TABLE, 50)
        # scale = 100 -> floor((base*100 + 50)/100) = base (integers).
        assert np.array_equal(table, BASE_LUMA_TABLE)

    def test_higher_quality_means_finer_quantization(self):
        q50 = quality_scaled_table(BASE_LUMA_TABLE, 50)
        q90 = quality_scaled_table(BASE_LUMA_TABLE, 90)
        assert (q90 <= q50).all()
        assert (q90 < q50).any()

    def test_lower_quality_means_coarser_quantization(self):
        q50 = quality_scaled_table(BASE_LUMA_TABLE, 50)
        q10 = quality_scaled_table(BASE_LUMA_TABLE, 10)
        assert (q10 >= q50).all()

    def test_divisors_never_below_one(self):
        table = quality_scaled_table(BASE_LUMA_TABLE, 100)
        assert table.min() >= 1.0

    def test_divisors_capped_at_255(self):
        table = quality_scaled_table(BASE_LUMA_TABLE, 1)
        assert table.max() <= 255.0

    @pytest.mark.parametrize("quality", [0, -1, 101])
    def test_rejects_out_of_range_quality(self, quality):
        with pytest.raises(ValueError):
            quality_scaled_table(BASE_LUMA_TABLE, quality)

    def test_chroma_table_coarser_than_luma_at_high_frequencies(self):
        assert BASE_CHROMA_TABLE[7, 7] >= BASE_LUMA_TABLE[7, 7]

    def test_monotone_in_quality_everywhere(self):
        previous = quality_scaled_table(BASE_LUMA_TABLE, 1)
        for quality in range(10, 101, 10):
            current = quality_scaled_table(BASE_LUMA_TABLE, quality)
            assert (current <= previous).all()
            previous = current
