"""Codec fidelity metric tests + quality/rate behaviour of the codec."""

import math

import numpy as np
import pytest

from repro.codec import CodecConfig, ToyJpegCodec
from repro.codec.metrics import compression_ratio, mse, psnr
from repro.data.synthetic import generate_image


class TestMetrics:
    def test_mse_zero_for_identical(self, rng):
        image = rng.integers(0, 256, size=(8, 8, 3), dtype=np.uint8)
        assert mse(image, image) == 0.0
        assert psnr(image, image) == math.inf

    def test_mse_known_value(self):
        a = np.zeros((2, 2), dtype=np.uint8)
        b = np.full((2, 2), 2, dtype=np.uint8)
        assert mse(a, b) == 4.0

    def test_psnr_known_value(self):
        a = np.zeros((4, 4), dtype=np.uint8)
        b = np.full((4, 4), 255, dtype=np.uint8)
        assert psnr(a, b) == pytest.approx(0.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mse(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_compression_ratio(self):
        assert compression_ratio(1000, 250) == 4.0
        with pytest.raises(ValueError):
            compression_ratio(10, 0)


class TestRateDistortion:
    """The codec must trade rate for distortion monotonically."""

    @pytest.fixture(scope="class")
    def image(self):
        return generate_image(np.random.default_rng(5), 128, 160, texture=0.5)

    def test_psnr_increases_with_quality(self, image):
        values = []
        for quality in (20, 50, 80, 95):
            codec = ToyJpegCodec(CodecConfig(quality=quality))
            values.append(psnr(image, codec.decode(codec.encode(image))))
        assert values == sorted(values)
        # Textured content with 4:2:0 subsampling: ~25 dB at quality 95.
        assert values[-1] > 24.0

    def test_ratio_decreases_with_quality(self, image):
        ratios = []
        for quality in (20, 50, 80, 95):
            codec = ToyJpegCodec(CodecConfig(quality=quality))
            ratios.append(
                compression_ratio(image.nbytes, len(codec.encode(image)))
            )
        assert ratios == sorted(ratios, reverse=True)
        assert ratios[0] > 4.0  # strong compression at low quality
