"""Block split/reassemble tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec.blocks import from_blocks, pad_to_multiple, to_blocks


class TestPadding:
    def test_aligned_plane_returned_unchanged(self):
        plane = np.zeros((16, 24))
        assert pad_to_multiple(plane).shape == (16, 24)

    def test_pads_up_to_next_multiple(self):
        assert pad_to_multiple(np.zeros((9, 17))).shape == (16, 24)

    def test_padding_replicates_edges(self):
        plane = np.arange(4, dtype=float).reshape(2, 2)
        padded = pad_to_multiple(plane, block=4)
        assert padded[3, 0] == plane[1, 0]
        assert padded[0, 3] == plane[0, 1]


class TestBlockRoundTrip:
    def test_block_count(self):
        blocks = to_blocks(np.zeros((17, 9)))
        assert blocks.shape == (3 * 2, 8, 8)

    def test_blocks_are_row_major(self):
        plane = np.arange(16 * 16, dtype=float).reshape(16, 16)
        blocks = to_blocks(plane)
        assert blocks[0, 0, 0] == plane[0, 0]
        assert blocks[1, 0, 0] == plane[0, 8]
        assert blocks[2, 0, 0] == plane[8, 0]

    @given(
        h=st.integers(min_value=1, max_value=40),
        w=st.integers(min_value=1, max_value=40),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_round_trip_any_shape(self, h, w, seed):
        plane = np.random.default_rng(seed).uniform(size=(h, w))
        blocks = to_blocks(plane)
        assert np.array_equal(from_blocks(blocks, h, w), plane)

    def test_from_blocks_validates_count(self):
        with pytest.raises(ValueError):
            from_blocks(np.zeros((3, 8, 8)), 16, 16)
