"""Chrome trace export tests."""

import json

import pytest

from repro.metrics.chrometrace import timeline_to_trace_events, write_chrome_trace
from repro.metrics.timeline import BatchTrace, Timeline


@pytest.fixture
def timeline():
    return Timeline(
        batches=[
            BatchTrace(0, ready_at=1.0, gpu_start=1.0, gpu_end=2.0),
            BatchTrace(1, ready_at=1.5, gpu_start=2.0, gpu_end=3.5),
        ],
        epoch_end=3.5,
    )


class TestChromeTrace:
    def test_event_structure(self, timeline):
        events = timeline_to_trace_events(timeline)
        metadata = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        assert len(metadata) == 3
        assert len(spans) == 4  # 2 batches x (input + gpu)

    def test_gpu_spans_exact(self, timeline):
        events = timeline_to_trace_events(timeline)
        gpu0 = next(e for e in events if e["name"] == "batch 0 gpu")
        assert gpu0["ts"] == 1_000_000
        assert gpu0["dur"] == 1_000_000

    def test_input_spans_chain(self, timeline):
        events = timeline_to_trace_events(timeline)
        in0 = next(e for e in events if e["name"] == "batch 0 input")
        in1 = next(e for e in events if e["name"] == "batch 1 input")
        assert in0["ts"] == 0 and in0["dur"] == 1_000_000
        assert in1["ts"] == 1_000_000  # starts at batch 0's ready time

    def test_write_round_trip(self, timeline, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(timeline, str(path), job="demo")
        document = json.loads(path.read_text())
        assert "traceEvents" in document
        names = {e["name"] for e in document["traceEvents"]}
        assert "batch 1 gpu" in names

    def test_from_real_trainer_run(self, openimages_small, pipeline, alexnet, tmp_path):
        from repro.cluster.spec import standard_cluster
        from repro.cluster.trainer import TrainerSim

        trainer = TrainerSim(
            openimages_small, pipeline, alexnet,
            spec=standard_cluster(storage_cores=8), batch_size=64,
        )
        stats = trainer.run_epoch(None, epoch=0, record_timeline=True)
        events = timeline_to_trace_events(stats.timeline)
        spans = [e for e in events if e["ph"] == "X"]
        assert len(spans) == 2 * stats.num_batches
        # Spans never extend past the epoch end.
        end = max(e["ts"] + e["dur"] for e in spans)
        assert end <= stats.epoch_time_s * 1_000_000 + 1

    def test_rejects_invalid_timeline(self):
        broken = Timeline(
            batches=[BatchTrace(0, ready_at=5.0, gpu_start=1.0, gpu_end=2.0)]
        )
        with pytest.raises(ValueError):
            timeline_to_trace_events(broken)
