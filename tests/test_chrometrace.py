"""Chrome trace export tests."""

import json

import pytest

from repro.metrics.chrometrace import (
    EpochTraceRecord,
    combined_trace_events,
    grouped_span_rows,
    timeline_to_trace_events,
    write_chrome_trace,
    write_combined_chrome_trace,
)
from repro.metrics.timeline import BatchTrace, Timeline
from repro.telemetry.spans import BEGIN, END, INSTANT, SpanEvent


@pytest.fixture
def timeline():
    return Timeline(
        batches=[
            BatchTrace(0, ready_at=1.0, gpu_start=1.0, gpu_end=2.0),
            BatchTrace(1, ready_at=1.5, gpu_start=2.0, gpu_end=3.5),
        ],
        epoch_end=3.5,
    )


class TestChromeTrace:
    def test_event_structure(self, timeline):
        events = timeline_to_trace_events(timeline)
        metadata = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        assert len(metadata) == 3
        assert len(spans) == 4  # 2 batches x (input + gpu)

    def test_gpu_spans_exact(self, timeline):
        events = timeline_to_trace_events(timeline)
        gpu0 = next(e for e in events if e["name"] == "batch 0 gpu")
        assert gpu0["ts"] == 1_000_000
        assert gpu0["dur"] == 1_000_000

    def test_input_spans_chain(self, timeline):
        events = timeline_to_trace_events(timeline)
        in0 = next(e for e in events if e["name"] == "batch 0 input")
        in1 = next(e for e in events if e["name"] == "batch 1 input")
        assert in0["ts"] == 0 and in0["dur"] == 1_000_000
        assert in1["ts"] == 1_000_000  # starts at batch 0's ready time

    def test_write_round_trip(self, timeline, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(timeline, str(path), job="demo")
        document = json.loads(path.read_text())
        assert "traceEvents" in document
        names = {e["name"] for e in document["traceEvents"]}
        assert "batch 1 gpu" in names

    def test_from_real_trainer_run(self, openimages_small, pipeline, alexnet, tmp_path):
        from repro.cluster.spec import standard_cluster
        from repro.cluster.trainer import TrainerSim

        trainer = TrainerSim(
            openimages_small, pipeline, alexnet,
            spec=standard_cluster(storage_cores=8), batch_size=64,
        )
        stats = trainer.run_epoch(None, epoch=0, record_timeline=True)
        events = timeline_to_trace_events(stats.timeline)
        spans = [e for e in events if e["ph"] == "X"]
        assert len(spans) == 2 * stats.num_batches
        # Spans never extend past the epoch end.
        end = max(e["ts"] + e["dur"] for e in spans)
        assert end <= stats.epoch_time_s * 1_000_000 + 1

    def test_rejects_invalid_timeline(self):
        broken = Timeline(
            batches=[BatchTrace(0, ready_at=5.0, gpu_start=1.0, gpu_end=2.0)]
        )
        with pytest.raises(ValueError):
            timeline_to_trace_events(broken)


def span(trace, name, phase, t_s, **attrs):
    return SpanEvent(trace_id=trace, name=name, phase=phase, t_s=t_s, attrs=attrs)


@pytest.fixture
def labelled_spans():
    return [
        span("s0-e1", "sample.fetch", BEGIN, 0.0, shard=1, job="alpha"),
        span("s1-e1", "sample.fetch", BEGIN, 0.5, shard=0, job="beta"),
        span("s0-e1", "sample.fetch", END, 1.0),
        span("s1-e1", "demotion", INSTANT, 1.2, shard=0, reason="crash"),
        span("s1-e1", "sample.fetch", END, 2.0),
    ]


class TestGroupedSpanRows:
    def test_one_thread_per_group(self, labelled_spans):
        events = grouped_span_rows(labelled_spans, "shard", pid=9, process_name="shards")
        threads = [e for e in events if e["name"] == "thread_name"]
        assert [t["args"]["name"] for t in threads] == ["shard 0", "shard 1"]
        assert all(e["pid"] == 9 for e in events)

    def test_end_inherits_begin_group(self, labelled_spans):
        """ENDs carry no shard attr; the pairing must still close the span."""
        events = grouped_span_rows(labelled_spans, "shard", pid=0, process_name="p")
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 2
        by_shard = {e["args"]["shard"]: e for e in complete}
        assert by_shard[1]["dur"] == 1_000_000  # s0: 0.0 -> 1.0
        assert by_shard[0]["dur"] == 1_500_000  # s1: 0.5 -> 2.0

    def test_instants_land_on_their_row(self, labelled_spans):
        events = grouped_span_rows(labelled_spans, "shard", pid=0, process_name="p")
        instant = next(e for e in events if e["ph"] == "i")
        shard0_tid = next(
            e["tid"] for e in events
            if e["name"] == "thread_name" and e["args"]["name"] == "shard 0"
        )
        assert instant["tid"] == shard0_tid

    def test_missing_key_returns_empty(self, labelled_spans):
        assert grouped_span_rows(labelled_spans, "tenant", 0, "p") == []

    def test_tenant_grouping_by_job(self, labelled_spans):
        events = grouped_span_rows(labelled_spans, "job", pid=0, process_name="tenants")
        threads = [e for e in events if e["name"] == "thread_name"]
        assert [t["args"]["name"] for t in threads] == ["job alpha", "job beta"]


class TestCombinedTrace:
    def records(self, timeline, labelled_spans):
        return [
            EpochTraceRecord(epoch=0, timeline=timeline),
            EpochTraceRecord(epoch=1, spans=tuple(labelled_spans), timeline=timeline),
        ]

    def test_one_pid_per_process(self, timeline, labelled_spans):
        events = combined_trace_events(self.records(timeline, labelled_spans))
        names = {
            e["pid"]: e["args"]["name"]
            for e in events if e["name"] == "process_name"
        }
        assert names == {
            0: "train epoch 0 (virtual time)",
            1: "train epoch 1 (virtual time)",
            2: "epoch 1 samples (virtual time)",
            3: "shards (virtual time)",
            4: "tenants (virtual time)",
        }

    def test_group_rows_omitted_without_labels(self, timeline):
        plain = [
            span("s0-e0", "sample.fetch", BEGIN, 0.0),
            span("s0-e0", "sample.fetch", END, 1.0),
        ]
        events = combined_trace_events(
            [EpochTraceRecord(epoch=0, spans=tuple(plain), timeline=timeline)]
        )
        names = {e["args"]["name"] for e in events if e["name"] == "process_name"}
        assert "shards (virtual time)" not in names
        assert "tenants (virtual time)" not in names

    def test_write_is_deterministic(self, timeline, labelled_spans, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        write_combined_chrome_trace(str(a), self.records(timeline, labelled_spans))
        write_combined_chrome_trace(str(b), self.records(timeline, labelled_spans))
        assert a.read_bytes() == b.read_bytes()
        assert json.loads(a.read_text())["traceEvents"]

    def test_display_label(self):
        assert EpochTraceRecord(epoch=4).display_label == "epoch 4"
        assert EpochTraceRecord(epoch=4, label="warmup").display_label == "warmup"
