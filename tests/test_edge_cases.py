"""Cross-module edge-case tests gathered from interface contracts."""

import numpy as np
import pytest

from repro.cluster.spec import standard_cluster
from repro.core.decision import DecisionEngine
from repro.preprocessing.records import SampleRecord


class TestDecisionInputValidation:
    def test_unordered_records_rejected(self):
        records = [
            SampleRecord(1, (100, 400, 50, 50, 200, 200), (0.1,) * 5),
            SampleRecord(0, (100, 400, 50, 50, 200, 200), (0.1,) * 5),
        ]
        with pytest.raises(ValueError, match="ordered by sample id"):
            DecisionEngine().plan(records, standard_cluster(), gpu_time_s=0.1)

    def test_gapped_ids_rejected(self):
        records = [SampleRecord(3, (100, 400, 50, 50, 200, 200), (0.1,) * 5)]
        with pytest.raises(ValueError):
            DecisionEngine().plan(records, standard_cluster(), gpu_time_s=0.1)

    def test_empty_records_ok(self):
        plan = DecisionEngine().plan([], standard_cluster(), gpu_time_s=0.1)
        assert len(plan) == 0


class TestBaselinesOnOtherPipelines:
    def test_resize_off_rejects_audio_pipeline(self, openimages_small):
        from repro.baselines import ResizeOff
        from repro.core.policy import PolicyContext
        from repro.data.audio import make_audio_trace
        from repro.preprocessing.audio_ops import audio_pipeline
        from repro.workloads.models import get_model_profile

        context = PolicyContext(
            dataset=make_audio_trace(10, seed=0),
            pipeline=audio_pipeline(),
            spec=standard_cluster(),
            model=get_model_profile("alexnet"),
            seed=0,
        )
        with pytest.raises(ValueError, match="RandomResizedCrop"):
            ResizeOff().plan(context)

    def test_all_off_works_on_audio_pipeline(self):
        from repro.baselines import AllOff
        from repro.core.policy import PolicyContext
        from repro.data.audio import make_audio_trace
        from repro.preprocessing.audio_ops import audio_pipeline
        from repro.workloads.models import get_model_profile

        context = PolicyContext(
            dataset=make_audio_trace(10, seed=0),
            pipeline=audio_pipeline(),
            spec=standard_cluster(),
            model=get_model_profile("alexnet"),
            seed=0,
        )
        plan = AllOff().plan(context)
        assert set(plan.splits) == {3}


class TestLoaderDropLast:
    def test_drop_last_discards_partial_batch(self, materialized_tiny, pipeline):
        from repro.data.loader import DataLoader, DirectFetcher

        loader = DataLoader(
            materialized_tiny, pipeline, DirectFetcher(materialized_tiny),
            batch_size=4, drop_last=True, seed=0,
        )
        batches = list(loader.epoch(0))
        assert len(batches) == len(materialized_tiny) // 4
        assert all(len(batch) == 4 for batch in batches)


class TestStatsRendering:
    def test_epoch_stats_str(self, openimages_small, pipeline, alexnet):
        from repro.cluster.trainer import TrainerSim

        trainer = TrainerSim(
            openimages_small, pipeline, alexnet,
            spec=standard_cluster(storage_cores=8), batch_size=64,
        )
        text = str(trainer.run_epoch(None, epoch=0))
        assert "EpochStats" in text and "traffic" in text

    def test_efficiency_summary_str(self):
        from repro.core.efficiency import EfficiencySummary

        text = str(EfficiencySummary(10, 0.2, 1e6, 5e5, 2e6))
        assert "zero=20%" in text

    def test_stall_breakdown_str(self):
        from repro.metrics.timeline import StallBreakdown

        text = str(StallBreakdown(10.0, 3.0, 7.0))
        assert "stall=70%" in text


class TestSharedLinkStatsHelpers:
    def test_mean_epoch_time_empty(self):
        from repro.cluster.multijob import SharedLinkStats

        stats = SharedLinkStats(
            results={}, makespan_s=0.0, total_traffic_bytes=0,
            link_utilization=0.0, storage_cpu_utilization=0.0,
        )
        assert stats.mean_epoch_time_s == 0.0


class TestFig1Determinism:
    def test_representative_samples_stable(self, openimages_small):
        from repro.harness.fig1 import representative_samples

        assert representative_samples(openimages_small) == representative_samples(
            openimages_small
        )
