"""Baseline policy tests."""

import pytest

from repro.baselines import AllOff, FastFlow, NoOff, ResizeOff
from repro.baselines.capabilities import Capabilities
from repro.cluster.spec import standard_cluster
from repro.core.policy import PolicyContext
from repro.workloads.models import get_model_profile


def context(dataset, pipeline, spec):
    return PolicyContext(
        dataset=dataset,
        pipeline=pipeline,
        spec=spec,
        model=get_model_profile("alexnet"),
        batch_size=64,
        seed=0,
    )


class TestNoOff:
    def test_never_offloads(self, openimages_small, pipeline):
        plan = NoOff().plan(context(openimages_small, pipeline, standard_cluster()))
        assert plan.num_offloaded == 0

    def test_capabilities_all_unchecked(self):
        assert NoOff.capabilities == Capabilities()


class TestAllOff:
    def test_offloads_full_pipeline_everywhere(self, openimages_small, pipeline):
        plan = AllOff().plan(context(openimages_small, pipeline, standard_cluster()))
        assert plan.num_offloaded == len(openimages_small)
        assert set(plan.splits) == {len(pipeline)}

    def test_clamps_without_storage_cores(self, openimages_small, pipeline):
        spec = standard_cluster(storage_cores=0)
        plan = AllOff().plan(context(openimages_small, pipeline, spec))
        assert plan.num_offloaded == 0


class TestResizeOff:
    def test_offloads_through_crop(self, openimages_small, pipeline):
        plan = ResizeOff().plan(context(openimages_small, pipeline, standard_cluster()))
        assert set(plan.splits) == {2}  # Decode + RandomResizedCrop

    def test_unknown_op_name_rejected(self, openimages_small, pipeline):
        policy = ResizeOff(through_op="Blur")
        with pytest.raises(ValueError, match="Blur"):
            policy.plan(context(openimages_small, pipeline, standard_cluster()))

    def test_clamps_without_storage_cores(self, openimages_small, pipeline):
        spec = standard_cluster(storage_cores=0)
        plan = ResizeOff().plan(context(openimages_small, pipeline, spec))
        assert plan.num_offloaded == 0

    def test_operation_selective_capability(self):
        assert ResizeOff.capabilities.operation_selective
        assert not ResizeOff.capabilities.data_selective


class TestFastFlow:
    def test_declines_when_full_offload_inflates_traffic(
        self, openimages_small, pipeline
    ):
        # The paper's setting: I/O-bound, full offload ships 4x float
        # tensors -> FastFlow predicts a slowdown and keeps everything local.
        plan = FastFlow().plan(context(openimages_small, pipeline, standard_cluster()))
        assert plan.num_offloaded == 0
        assert "not offloading" in plan.reason

    def test_offloads_all_when_profitable(self, imagenet_small, pipeline):
        # CPU-starved compute node + fat pipe: moving the whole pipeline to
        # the 48-core storage node wins, which is FastFlow's home turf.
        spec = standard_cluster(
            storage_cores=48, bandwidth_mbps=100_000.0, compute_cores=1
        )
        plan = FastFlow().plan(context(imagenet_small, pipeline, spec))
        assert plan.num_offloaded == len(imagenet_small)
        assert set(plan.splits) == {len(pipeline)}

    def test_all_or_nothing_only(self, openimages_small, pipeline):
        for spec in (
            standard_cluster(),
            standard_cluster(bandwidth_mbps=100_000.0, compute_cores=1),
        ):
            plan = FastFlow().plan(context(openimages_small, pipeline, spec))
            assert set(plan.splits) <= {0, len(pipeline)}
            assert len(set(plan.splits)) == 1

    def test_clamps_without_storage_cores(self, openimages_small, pipeline):
        spec = standard_cluster(storage_cores=0)
        plan = FastFlow().plan(context(openimages_small, pipeline, spec))
        assert plan.num_offloaded == 0


class TestCapabilitiesRows:
    def test_row_rendering(self):
        caps = Capabilities(operation_selective=True, to_near_storage=True)
        assert caps.row() == ("yes", "-", "-", "yes")
