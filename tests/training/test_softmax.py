"""Softmax classifier tests."""

import numpy as np
import pytest

from repro.training.softmax import SoftmaxClassifier


def linearly_separable(rng, n=300, num_classes=3, dim=6):
    centers = rng.normal(0, 4.0, size=(num_classes, dim))
    labels = rng.integers(0, num_classes, size=n)
    features = centers[labels] + rng.normal(0, 0.5, size=(n, dim))
    return features, labels


class TestSoftmaxClassifier:
    def test_learns_separable_data(self, rng):
        features, labels = linearly_separable(rng)
        model = SoftmaxClassifier(num_features=6, num_classes=3)
        for _ in range(40):
            order = rng.permutation(len(labels))
            for start in range(0, len(labels), 32):
                batch = order[start : start + 32]
                model.partial_fit(features[batch], labels[batch])
        assert model.accuracy(features, labels) > 0.95

    def test_loss_decreases(self, rng):
        features, labels = linearly_separable(rng)
        model = SoftmaxClassifier(num_features=6, num_classes=3)
        first = model.loss(features, labels)
        for _ in range(60):
            model.partial_fit(features, labels)
        assert model.loss(features, labels) < first / 2

    def test_proba_rows_sum_to_one(self, rng):
        features, _ = linearly_separable(rng, n=10)
        model = SoftmaxClassifier(num_features=6, num_classes=3)
        proba = model.predict_proba(features)
        assert proba.shape == (10, 3)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert (proba >= 0).all()

    def test_single_row_input(self, rng):
        model = SoftmaxClassifier(num_features=4, num_classes=2)
        assert model.predict(np.zeros(4)).shape == (1,)

    def test_partial_fit_validates_shapes(self):
        model = SoftmaxClassifier(num_features=4, num_classes=2)
        with pytest.raises(ValueError):
            model.partial_fit(np.zeros((3, 4)), np.zeros(2, dtype=int))

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SoftmaxClassifier(num_features=0, num_classes=2)
        with pytest.raises(ValueError):
            SoftmaxClassifier(num_features=3, num_classes=1)
        with pytest.raises(ValueError):
            SoftmaxClassifier(num_features=3, num_classes=2, learning_rate=0)

    def test_deterministic_given_seed(self, rng):
        features, labels = linearly_separable(rng, n=50)
        runs = []
        for _ in range(2):
            model = SoftmaxClassifier(num_features=6, num_classes=3, seed=7)
            for _ in range(10):
                model.partial_fit(features, labels)
            runs.append(model.weights.copy())
        assert np.array_equal(runs[0], runs[1])
