"""Labeled dataset and augmentation study tests (the section-3.3 claim)."""

import numpy as np
import pytest

from repro.preprocessing.ops import RandomResizedCrop
from repro.training.augment_study import AugmentationStudy, crop_features
from repro.training.labeled import (
    NUM_CLASSES,
    LabeledImageDataset,
    generate_labeled_image,
)


class TestLabeledImages:
    def test_shape_and_dtype(self, rng):
        image = generate_labeled_image(rng, 64, 80, class_id=0)
        assert image.shape == (64, 80, 3)
        assert image.dtype == np.uint8

    def test_gradient_direction_encodes_class(self, rng):
        up = generate_labeled_image(rng, 96, 96, class_id=0, noise=0.0)
        down = generate_labeled_image(rng, 96, 96, class_id=1, noise=0.0)
        assert up[:16].mean() > up[-16:].mean()
        assert down[:16].mean() < down[-16:].mean()

    def test_left_right_classes(self, rng):
        left = generate_labeled_image(rng, 96, 96, class_id=2, noise=0.0)
        right = generate_labeled_image(rng, 96, 96, class_id=3, noise=0.0)
        assert left[:, :16].mean() > left[:, -16:].mean()
        assert right[:, :16].mean() < right[:, -16:].mean()

    def test_validates_inputs(self, rng):
        with pytest.raises(ValueError):
            generate_labeled_image(rng, 10, 10, class_id=4)
        with pytest.raises(ValueError):
            generate_labeled_image(rng, 10, 10, class_id=0, noise=3.0)

    def test_dataset_labels_cycle(self):
        dataset = LabeledImageDataset(10, seed=0)
        assert list(dataset.labels()) == [i % NUM_CLASSES for i in range(10)]

    def test_dataset_deterministic(self):
        a = LabeledImageDataset(4, seed=3).image(2)
        b = LabeledImageDataset(4, seed=3).image(2)
        assert np.array_equal(a, b)

    def test_dataset_bounds(self):
        dataset = LabeledImageDataset(4, seed=0)
        with pytest.raises(IndexError):
            dataset.image(4)


class TestCropFeatures:
    def test_feature_shape_and_standardization(self, rng):
        dataset = LabeledImageDataset(4, seed=0)
        features = crop_features(dataset.image(0), rng, RandomResizedCrop(size=64))
        assert features.shape == (8 * 8 * 3,)
        assert abs(features.mean()) < 1e-9
        assert features.std() == pytest.approx(1.0, abs=1e-6)

    def test_different_rng_different_crop(self):
        dataset = LabeledImageDataset(4, seed=0)
        crop = RandomResizedCrop(size=64)
        a = crop_features(dataset.image(0), np.random.default_rng(1), crop)
        b = crop_features(dataset.image(0), np.random.default_rng(2), crop)
        assert not np.array_equal(a, b)


class TestAugmentationStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return AugmentationStudy(seed=0).run()

    def test_online_model_actually_learns(self, result):
        chance = 1.0 / NUM_CLASSES
        assert result.online_accuracy > chance + 0.3

    def test_online_beats_frozen(self, result):
        # Section 3.3: reusing frozen augmentations costs accuracy.
        assert result.gap > 0.08

    def test_result_fields(self, result):
        assert result.train_samples == 24
        assert result.test_samples == 120
        assert result.epochs == 30

    def test_validation(self):
        with pytest.raises(ValueError):
            AugmentationStudy(train_samples=2)
        with pytest.raises(ValueError):
            AugmentationStudy(epochs=0)
