"""DET03 violations: unordered set iteration feeding a plan."""

from typing import List


def plan_order(pending: List[str]) -> List[str]:
    order = []
    for name in set(pending):  # finding: unordered iteration
        order.append(name)
    return order


def tags() -> List[str]:
    return [t for t in {"crash", "brownout"}]  # finding: set literal


def materialize(pending: List[str]) -> List[str]:
    return list(set(pending))  # finding: list() over a set


def drain(ready: set) -> List[str]:
    order = []
    while ready:
        order.append(ready.pop())  # finding: zero-arg pop
    return order


def evict(queue: dict) -> tuple:
    return queue.popitem()  # finding: history-dependent popitem


def key_order(queue: dict) -> List[str]:
    return [k for k in queue.keys()]  # finding: bare .keys() snapshot
