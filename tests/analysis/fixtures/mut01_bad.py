"""MUT01 violations: mutable default arguments."""

from typing import Dict, List


def append_demotion(sample_id: int, into: List[int] = []) -> List[int]:  # finding
    into.append(sample_id)
    return into


def tally(key: str, *, counts: Dict[str, int] = {}) -> Dict[str, int]:  # finding
    counts[key] = counts.get(key, 0) + 1
    return counts


def dedupe(items: List[int], seen: set = set()) -> List[int]:  # finding
    return [i for i in items if i not in seen]
