"""DET01 violation: inline wall-clock reads in a deterministic module."""

import time
from datetime import datetime


def elapsed() -> float:
    start = time.monotonic()  # finding: wall-clock call
    return time.monotonic() - start  # finding: wall-clock call


def stamp() -> str:
    return datetime.now().isoformat()  # finding: wall-clock call
