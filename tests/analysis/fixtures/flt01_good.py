"""FLT01 clean: tolerance helpers and integer equality."""

from repro.utils.floats import close, is_exact_zero


def is_idle(rate: float) -> bool:
    return is_exact_zero(rate)


def at_target(ratio: float) -> bool:
    return close(ratio, 1.5)


def is_first(index: int) -> bool:
    return index == 0  # integers compare exactly: allowed
