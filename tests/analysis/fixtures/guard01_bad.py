"""GUARD01 bad: unguarded writes to lock-protected shared state."""

import threading


class Worker:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.count = 0
        self.items = []  # type: list
        self._results = {}  # type: dict
        self._thread = threading.Thread(target=self._worker_loop, daemon=True)

    def _worker_loop(self) -> None:
        while True:
            # Thread-side mutation without the lock, while stop() reads it.
            self.items.append(1)

    def bump(self) -> None:
        self.count += 1  # read-modify-write with no lock

    def record(self, key: str, value: int) -> None:
        with self._lock:
            self._results[key] = value

    def forget(self, key: str) -> None:
        # _results is written under the lock in record() but not here.
        self._results.pop(key, None)

    def stop(self) -> list:
        with self._lock:
            return list(self.items)
