"""DET01 clean: the injectable-clock parameter-default pattern."""

import time
from typing import Callable


class Stopwatch:
    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock  # referencing, not calling: allowed
        self._start = clock()

    def elapsed(self) -> float:
        return self._clock() - self._start
