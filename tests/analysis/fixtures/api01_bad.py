"""API01 violations: unannotated public surfaces."""


def plan(records, spec):  # finding: params + return unannotated
    return records, spec


class Planner:
    def __init__(self, engine) -> None:  # finding: engine unannotated
        self.engine = engine

    def replan(self, records):  # finding: return + records unannotated
        return records

    def _internal(self, anything):  # private: allowed
        return anything
