"""GUARD03 good: one global lock order on every path."""

import threading


class Transfer:
    def __init__(self) -> None:
        self._accounts = threading.Lock()
        self._audit = threading.Lock()
        self.balance = 0
        self.entries = 0

    def deposit(self) -> None:
        with self._accounts:
            self.balance += 1
            with self._audit:
                self.entries += 1

    def reconcile(self) -> None:
        with self._accounts:
            with self._audit:
                self.balance -= 1
                self.entries += 1
