"""RPC01 violations: encoder without decoder, codec outside the registry."""

import dataclasses


@dataclasses.dataclass
class PingFrame:
    token: int

    def to_bytes(self) -> bytes:  # finding: no from_bytes
        return b"PG01" + self.token.to_bytes(4, "little")


@dataclasses.dataclass
class PongFrame:
    token: int

    def to_bytes(self) -> bytes:  # finding: codec not in FRAME_TYPES
        return b"PO01" + self.token.to_bytes(4, "little")

    @classmethod
    def from_bytes(cls, data: bytes) -> "PongFrame":
        return cls(token=int.from_bytes(data[4:8], "little"))


FRAME_TYPES = {}
