"""GUARD01 good: every shared-state write happens under the class lock."""

import threading


class Worker:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.count = 0
        self.items = []  # type: list
        self._results = {}  # type: dict
        self._thread = threading.Thread(target=self._worker_loop, daemon=True)

    def _worker_loop(self) -> None:
        while True:
            with self._lock:
                self.items.append(1)

    def bump(self) -> None:
        with self._lock:
            self.count += 1

    def record(self, key: str, value: int) -> None:
        with self._lock:
            self._results[key] = value

    def _evict_locked(self, key: str) -> None:
        # Only ever called with the lock held (the _locked suffix and the
        # call sites below both say so).
        self._results.pop(key, None)

    def forget(self, key: str) -> None:
        with self._lock:
            self._evict_locked(key)

    def stop(self) -> list:
        with self._lock:
            return list(self.items)
