"""GUARD02 bad: blocking calls while holding a lock."""

import os
import queue
import threading
import time


def flush_log(handle, lock: threading.Lock) -> None:
    with lock:
        handle.write(b"x")
        os.fsync(handle.fileno())  # fsync under a module-function lock


class Pump:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._queue: "queue.Queue[int]" = queue.Queue()

    def _persist(self, handle) -> None:
        os.fsync(handle.fileno())

    def drain_one(self) -> int:
        with self._lock:
            return self._queue.get()  # queue.Queue.get blocks

    def checkpoint(self, handle) -> None:
        with self._lock:
            self._persist(handle)  # blocks transitively via _persist

    def nap(self) -> None:
        with self._lock:
            time.sleep(0.1)
