"""API01 clean: fully annotated public surface."""

from typing import List, Tuple


def plan(records: List[int], spec: str) -> Tuple[List[int], str]:
    return records, spec


class Planner:
    def __init__(self, engine: object) -> None:
        self.engine = engine

    def replan(self, records: List[int]) -> List[int]:
        return records

    def _internal(self, anything):  # private: allowed unannotated
        return anything
