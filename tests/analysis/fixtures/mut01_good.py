"""MUT01 clean: None defaults, containers created per call."""

from typing import Dict, List, Optional, Tuple


def append_demotion(
    sample_id: int, into: Optional[List[int]] = None
) -> List[int]:
    into = into if into is not None else []
    into.append(sample_id)
    return into


def tally(key: str, *, counts: Optional[Dict[str, int]] = None) -> Dict[str, int]:
    counts = counts if counts is not None else {}
    counts[key] = counts.get(key, 0) + 1
    return counts


def windows(spans: Tuple[float, ...] = ()) -> Tuple[float, ...]:
    return spans  # immutable default: allowed
