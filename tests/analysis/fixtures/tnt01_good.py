"""TNT01 good: the clock times things; records derive from the seed."""

import time


class SampleRecord:
    def __init__(self, sample_id: int, cost: float) -> None:
        self.sample_id = sample_id
        self.cost = cost


def plan(record_id: int, seed: int) -> SampleRecord:
    cost = (seed * 31 + record_id) % 97 / 97.0
    return SampleRecord(record_id, cost)


def timed_plan(record_id: int, seed: int):
    started = time.monotonic()
    record = plan(record_id, seed)
    elapsed = time.monotonic() - started
    return record, elapsed


class LogRecord:
    def __init__(self, t_s: float, level: str, message: str) -> None:
        self.t_s = t_s
        self.level = level
        self.message = message


def stamped_log(clock, message: str) -> LogRecord:
    return LogRecord(clock(), "info", message)  # injectable clock: fine
