"""FLT01 violations: raw float equality."""


def is_idle(rate: float) -> bool:
    return rate == 0.0  # finding: float equality


def at_target(ratio: float) -> bool:
    if ratio != 1.5:  # finding: float inequality
        return False
    return True
