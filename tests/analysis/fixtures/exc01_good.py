"""EXC01 clean: narrow catches, logged or re-raised broad ones."""

import logging

logger = logging.getLogger(__name__)


def fetch_or_none(fetcher: object) -> object:
    try:
        return fetcher.fetch()  # type: ignore[attr-defined]
    except ConnectionError:  # narrow: allowed even without logging
        return None


def logged(action: object) -> None:
    try:
        action()  # type: ignore[operator]
    except Exception as exc:
        logger.warning("action failed: %s", exc)


def counted(action: object) -> None:
    try:
        action()  # type: ignore[operator]
    except Exception:
        raise
