"""DET03 clean: sorted() pins the order before scheduling reads it."""

from typing import List


def plan_order(pending: List[str]) -> List[str]:
    order = []
    for name in sorted(set(pending)):
        order.append(name)
    return order


def tags() -> List[str]:
    return [t for t in sorted({"crash", "brownout"})]


def drain(ready: set) -> List[str]:
    order = []
    while ready:
        smallest = min(ready)
        ready.remove(smallest)  # explicit element: deterministic drain
        order.append(smallest)
    return order


def evict(queue: dict) -> tuple:
    key = sorted(queue)[0]
    return key, queue.pop(key)  # keyed pop: order is pinned


def key_order(queue: dict) -> List[str]:
    return [k for k in sorted(queue.keys())]
