"""DET03 clean: sorted() pins the order before scheduling reads it."""

from typing import List


def plan_order(pending: List[str]) -> List[str]:
    order = []
    for name in sorted(set(pending)):
        order.append(name)
    return order


def tags() -> List[str]:
    return [t for t in sorted({"crash", "brownout"})]
