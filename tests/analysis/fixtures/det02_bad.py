"""DET02 violations: global-state and unseeded RNG."""

import random

import numpy as np


def jitter() -> float:
    return random.uniform(0.0, 1.0)  # finding: process-global RNG


def make_rng() -> random.Random:
    return random.Random()  # finding: unseeded


def reseed() -> None:
    np.random.seed(0)  # finding: numpy global state


def draw() -> float:
    rng = np.random.default_rng()  # finding: unseeded
    return float(rng.random())
