"""TNT01 bad: wall-clock and RNG values reaching deterministic outputs."""

import random
import time


class SampleRecord:
    def __init__(self, sample_id: int, cost: float) -> None:
        self.sample_id = sample_id
        self.cost = cost


def stamp(record_id: int) -> SampleRecord:
    started = time.monotonic()
    elapsed = time.monotonic() - started
    return SampleRecord(record_id, elapsed)  # direct flow


def jittered(record_id: int) -> SampleRecord:
    jitter = random.random()
    scaled = jitter * 2.0
    return SampleRecord(record_id, scaled)  # flow through assignments


def _make(value: float) -> SampleRecord:
    return SampleRecord(0, value)


def indirect(record_id: int) -> SampleRecord:
    now = time.time()
    return _make(now)  # tainted argument into a sink-reaching parameter


class LogRecord:
    def __init__(self, t_s: float, level: str, message: str) -> None:
        self.t_s = t_s
        self.level = level
        self.message = message


def stamped_log(message: str) -> LogRecord:
    return LogRecord(time.time(), "info", message)  # bypassed the clock
