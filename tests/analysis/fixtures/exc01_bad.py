"""EXC01 violations: broad handlers that swallow silently."""


def fetch_or_none(fetcher: object) -> object:
    try:
        return fetcher.fetch()  # type: ignore[attr-defined]
    except Exception:  # finding: swallows without logging
        return None


def best_effort(actions: list) -> None:
    for action in actions:
        try:
            action()
        except:  # noqa: E722  # finding: bare except
            pass
