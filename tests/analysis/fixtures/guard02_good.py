"""GUARD02 good: blocking work happens outside the critical sections."""

import os
import queue
import threading
import time


def flush_log(handle, lock: threading.Lock) -> None:
    with lock:
        handle.write(b"x")
    os.fsync(handle.fileno())


class Pump:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._queue: "queue.Queue[int]" = queue.Queue()
        self.flushed = 0

    def _persist(self, handle) -> None:
        os.fsync(handle.fileno())

    def drain_one(self) -> int:
        item = self._queue.get()
        with self._lock:
            self.flushed += 1
        return item

    def checkpoint(self, handle) -> None:
        self._persist(handle)
        with self._lock:
            self.flushed += 1

    def nap(self) -> None:
        time.sleep(0.1)
