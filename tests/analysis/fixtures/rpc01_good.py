"""RPC01 clean: paired codec, registered in FRAME_TYPES."""

import dataclasses


@dataclasses.dataclass
class PingFrame:
    token: int

    def to_bytes(self) -> bytes:
        return b"PG01" + self.token.to_bytes(4, "little")

    @classmethod
    def from_bytes(cls, data: bytes) -> "PingFrame":
        return cls(token=int.from_bytes(data[4:8], "little"))


class FrameError(Exception):
    """Not a frame class: no codec methods, so RPC01 ignores it."""


FRAME_TYPES = {
    b"PG01": PingFrame,
}
