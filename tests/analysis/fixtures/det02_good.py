"""DET02 clean: seeded, instance-scoped generators."""

import random

import numpy as np


def make_rng(seed: int) -> random.Random:
    return random.Random(seed)


def draw(seed: int) -> float:
    rng = np.random.default_rng(seed)
    return float(rng.random())
