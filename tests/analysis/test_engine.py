"""Engine-level tests: suppressions, aliases, severity, config plumbing."""

import json
from pathlib import Path

from repro.analysis import LintConfig, Severity, all_rules, analyze_source
from repro.analysis.engine import (
    collect_suppressions,
    import_aliases,
    module_name_for,
)
from repro.analysis.report import render_json, render_text

import ast


BAD_FLOAT = "def f(x: float) -> bool:\n    return x == 0.0\n"


class TestSuppressions:
    def test_inline_disable_suppresses(self):
        source = (
            "def f(x: float) -> bool:\n"
            "    return x == 0.0  # sophon-lint: disable=FLT01\n"
        )
        assert analyze_source(source, module="repro.core.x") == []

    def test_disable_on_comment_line_above(self):
        source = (
            "def f(x: float) -> bool:\n"
            "    # sophon-lint: disable=FLT01\n"
            "    return x == 0.0\n"
        )
        assert analyze_source(source, module="repro.core.x") == []

    def test_disable_all(self):
        source = (
            "def f(x: float) -> bool:\n"
            "    return x == 0.0  # sophon-lint: disable=all\n"
        )
        assert analyze_source(source, module="repro.core.x") == []

    def test_disable_other_rule_does_not_suppress(self):
        source = (
            "def f(x: float) -> bool:\n"
            "    return x == 0.0  # sophon-lint: disable=MUT01\n"
        )
        findings = analyze_source(source, module="repro.core.x")
        assert [f.rule for f in findings] == ["FLT01"]

    def test_multiple_codes_one_comment(self):
        table = collect_suppressions(
            "x = 1  # sophon-lint: disable=FLT01, DET02\n"
        )
        assert table[1] == {"FLT01", "DET02"}


class TestAliases:
    def test_import_as(self):
        tree = ast.parse("import numpy as np\n")
        assert import_aliases(tree)["np"] == "numpy"

    def test_from_import(self):
        tree = ast.parse("from time import monotonic as mono\n")
        assert import_aliases(tree)["mono"] == "time.monotonic"

    def test_plain_import_binds_root(self):
        tree = ast.parse("import os.path\n")
        assert import_aliases(tree)["os"] == "os"


class TestModuleNames:
    def test_src_rooted(self):
        assert (
            module_name_for(Path("src/repro/rpc/messages.py"))
            == "repro.rpc.messages"
        )

    def test_init_maps_to_package(self):
        assert module_name_for(Path("src/repro/core/__init__.py")) == "repro.core"


class TestConfig:
    def test_select_limits_rules(self):
        config = LintConfig(select={"MUT01"})
        findings = analyze_source(BAD_FLOAT, module="repro.core.x", config=config)
        assert findings == []

    def test_ignore_drops_rule(self):
        config = LintConfig(ignore={"FLT01"})
        findings = analyze_source(BAD_FLOAT, module="repro.core.x", config=config)
        assert findings == []

    def test_severity_override(self):
        config = LintConfig(severities={"FLT01": "warning"})
        findings = analyze_source(BAD_FLOAT, module="repro.core.x", config=config)
        assert [f.severity for f in findings] == [Severity.WARNING]

    def test_rule_options_override(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            "[tool.sophon-lint]\n"
            'ignore = ["API01"]\n'
            "[tool.sophon-lint.severity]\n"
            'EXC01 = "warning"\n'
            "[tool.sophon-lint.rules.DET01]\n"
            'modules = ["mypkg.sim"]\n',
            encoding="utf-8",
        )
        config = LintConfig.from_pyproject(pyproject)
        assert config.ignore == {"API01"}
        assert config.severities["EXC01"] == "warning"
        assert config.rule_options["DET01"]["modules"] == ["mypkg.sim"]
        source = "import time\ndef f() -> float:\n    return time.time()\n"
        assert any(
            f.rule == "DET01"
            for f in analyze_source(source, module="mypkg.sim.clock", config=config)
        )
        assert not analyze_source(source, module="repro.core.x", config=config)

    def test_discover_walks_upward(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            '[tool.sophon-lint]\nignore = ["FLT01"]\n', encoding="utf-8"
        )
        nested = tmp_path / "a" / "b"
        nested.mkdir(parents=True)
        config = LintConfig.discover(nested)
        assert config.ignore == {"FLT01"}


class TestReporting:
    def test_syntax_error_is_a_finding(self):
        findings = analyze_source("def broken(:\n", module="repro.core.x")
        assert [f.rule for f in findings] == ["PARSE"]
        assert findings[0].severity is Severity.ERROR

    def test_text_report_mentions_rule_and_location(self):
        findings = analyze_source(BAD_FLOAT, path="x.py", module="repro.core.x")
        text = render_text(findings, files_checked=1)
        assert "x.py:2" in text
        assert "FLT01" in text

    def test_json_report_round_trips(self):
        findings = analyze_source(BAD_FLOAT, path="x.py", module="repro.core.x")
        payload = json.loads(render_json(findings, files_checked=1))
        assert payload["errors"] == 1
        assert payload["files_checked"] == 1
        assert payload["findings"][0]["rule"] == "FLT01"

    def test_clean_report(self):
        assert "no findings" in render_text([], files_checked=3)


class TestRegistry:
    def test_all_eight_domain_rules_registered(self):
        codes = set(all_rules())
        assert {
            "DET01", "DET02", "DET03", "RPC01",
            "EXC01", "FLT01", "MUT01", "API01",
        } <= codes

    def test_every_rule_documents_itself(self):
        for code, cls in all_rules().items():
            assert cls.code == code
            assert cls.name
            assert cls.rationale
            assert cls.__doc__
