"""Fixture-driven rule tests: every rule catches its bad snippet and
stays quiet on the good one."""

from pathlib import Path

import pytest

from repro.analysis import analyze_source

FIXTURES = Path(__file__).parent / "fixtures"

# (rule, fixture stem, pretend module, findings expected in the bad file)
CASES = [
    ("DET01", "det01", "repro.core.fixture", 3),
    ("DET02", "det02", "repro.harness.fixture", 4),
    ("DET03", "det03", "repro.scheduler.fixture", 6),
    ("RPC01", "rpc01", "repro.rpc.messages", 2),
    ("EXC01", "exc01", "repro.harness.fixture", 2),
    ("FLT01", "flt01", "repro.metrics.fixture", 2),
    ("MUT01", "mut01", "repro.harness.fixture", 3),
    ("API01", "api01", "repro.core.fixture", 5),
    ("GUARD01", "guard01", "repro.service.fixture", 3),
    ("GUARD02", "guard02", "repro.service.fixture", 4),
    ("GUARD03", "guard03", "repro.service.fixture", 2),
    ("TNT01", "tnt01", "repro.service.fixture", 4),
]


def run_rule(rule: str, stem: str, module: str):
    source = (FIXTURES / f"{stem}.py").read_text(encoding="utf-8")
    findings = analyze_source(source, path=f"{stem}.py", module=module)
    return [f for f in findings if f.rule == rule]


@pytest.mark.parametrize("rule,stem,module,expected", CASES)
def test_bad_fixture_detected(rule, stem, module, expected):
    findings = run_rule(rule, f"{stem}_bad", module)
    assert len(findings) == expected, [f.format() for f in findings]
    for finding in findings:
        assert finding.rule == rule
        assert finding.line > 0
        assert finding.message


@pytest.mark.parametrize("rule,stem,module,expected", CASES)
def test_good_fixture_clean(rule, stem, module, expected):
    findings = run_rule(rule, f"{stem}_good", module)
    assert findings == [], [f.format() for f in findings]


class TestScoping:
    """Scoped rules only fire inside their configured module prefixes."""

    def test_det01_ignores_out_of_scope_modules(self):
        source = (FIXTURES / "det01_bad.py").read_text(encoding="utf-8")
        findings = analyze_source(source, module="repro.harness.fixture")
        assert [f for f in findings if f.rule == "DET01"] == []

    def test_api01_ignores_out_of_scope_modules(self):
        # repro.harness joined the API01 scope, so the out-of-scope probe
        # uses a module the rule still does not cover.
        source = (FIXTURES / "api01_bad.py").read_text(encoding="utf-8")
        findings = analyze_source(source, module="repro.metrics.fixture")
        assert [f for f in findings if f.rule == "API01"] == []

    def test_rpc01_only_checks_the_messages_module(self):
        source = (FIXTURES / "rpc01_bad.py").read_text(encoding="utf-8")
        findings = analyze_source(source, module="repro.rpc.other")
        assert [f for f in findings if f.rule == "RPC01"] == []


class TestRuleDetails:
    def test_det01_allows_clock_parameter_default(self):
        source = (
            "import time\n"
            "from typing import Callable\n"
            "def run(clock: Callable[[], float] = time.monotonic) -> float:\n"
            "    return clock()\n"
        )
        findings = analyze_source(source, module="repro.core.x")
        assert [f for f in findings if f.rule == "DET01"] == []

    def test_det02_respects_import_aliases(self):
        source = "import numpy as banana\nbanana.random.seed(3)\n"
        findings = analyze_source(source, module="repro.data.x")
        assert [f.rule for f in findings] == ["DET02"]

    def test_det02_ignores_methods_on_instances(self):
        source = (
            "import numpy as np\n"
            "def draw(rng: np.random.Generator) -> float:\n"
            "    return float(rng.random())\n"
        )
        findings = analyze_source(source, module="repro.data.x")
        assert [f for f in findings if f.rule == "DET02"] == []

    def test_exc01_allows_narrow_tuple(self):
        source = (
            "def f() -> None:\n"
            "    try:\n"
            "        pass\n"
            "    except (ValueError, OSError):\n"
            "        pass\n"
        )
        findings = analyze_source(source, module="repro.harness.x")
        assert [f for f in findings if f.rule == "EXC01"] == []

    def test_exc01_flags_broad_member_of_tuple(self):
        source = (
            "def f() -> None:\n"
            "    try:\n"
            "        pass\n"
            "    except (ValueError, Exception):\n"
            "        pass\n"
        )
        findings = analyze_source(source, module="repro.harness.x")
        assert [f.rule for f in findings] == ["EXC01"]

    def test_flt01_allowlists_the_floats_module(self):
        source = "def z(v: float) -> bool:\n    return v == 0.0\n"
        findings = analyze_source(source, module="repro.utils.floats")
        assert [f for f in findings if f.rule == "FLT01"] == []

    def test_api01_requires_vararg_annotations(self):
        source = "def f(*args, **kwargs):\n    return args, kwargs\n"
        findings = analyze_source(source, module="repro.core.x")
        messages = [f.message for f in findings if f.rule == "API01"]
        assert any("*args" in m and "*kwargs" in m for m in messages)

    def test_rpc01_flags_missing_registry(self):
        source = (
            "class LoneFrame:\n"
            "    def to_bytes(self) -> bytes:\n"
            "        return b''\n"
            "    @classmethod\n"
            "    def from_bytes(cls, data: bytes) -> 'LoneFrame':\n"
            "        return cls()\n"
        )
        findings = analyze_source(source, module="repro.rpc.messages")
        assert [f.rule for f in findings] == ["RPC01"]
        assert "no FRAME_TYPES registry" in findings[0].message
