"""Symbol table, call graph, and cross-module rule behaviour."""

import textwrap

from repro.analysis import analyze_modules
from repro.analysis.callgraph import build_project
from repro.analysis.config import LintConfig
from repro.analysis.engine import _parse_module  # type: ignore[attr-defined]


def project_of(**sources):
    """Build a ProjectContext from module-name -> source kwargs."""
    contexts = {}
    config = LintConfig()
    for module, source in sources.items():
        dotted = module.replace("__", ".")
        ctx, error = _parse_module(
            textwrap.dedent(source), f"<{dotted}>", dotted, config
        )
        assert error is None, error
        contexts[dotted] = ctx
    project = build_project(contexts)
    for ctx in contexts.values():
        ctx.project = project
    return project


class TestSymbolTable:
    def test_functions_and_methods_indexed(self):
        project = project_of(
            repro__a="""
            def helper():
                return 1

            class Box:
                def get(self):
                    return helper()
            """
        )
        assert "repro.a.helper" in project.symbols.functions
        assert "repro.a.Box.get" in project.symbols.functions
        assert project.symbols.functions["repro.a.Box.get"].class_name == "Box"

    def test_attr_types_from_constructor_assignment(self):
        project = project_of(
            repro__store="""
            class Journal:
                def append(self, line):
                    return line
            """,
            repro__svc="""
            from repro.store import Journal

            class Service:
                def __init__(self):
                    self._journal = Journal()

                def write(self, line):
                    return self._journal.append(line)
            """,
        )
        info = project.symbols.classes["repro.svc.Service"]
        assert info.attr_types["_journal"] == "repro.store.Journal"
        assert "repro.store.Journal.append" in project.callgraph.callees(
            "repro.svc.Service.write"
        )

    def test_attr_types_from_annotation(self):
        project = project_of(
            repro__q="""
            import queue

            class Pump:
                def __init__(self):
                    self._queue: "queue.Queue[int]" = queue.Queue()

                def take(self):
                    return self._queue.get()
            """
        )
        info = project.symbols.classes["repro.q.Pump"]
        assert info.attr_types["_queue"] == "queue.Queue"
        assert "queue.Queue.get" in project.callgraph.callees("repro.q.Pump.take")

    def test_bare_name_resolves_to_same_module_function(self):
        project = project_of(
            repro__m="""
            def low():
                return 0

            def high():
                return low()
            """
        )
        assert "repro.m.low" in project.callgraph.callees("repro.m.high")


class TestCallGraph:
    def test_reachable_closes_transitively(self):
        project = project_of(
            repro__m="""
            import os

            def sync(handle):
                os.fsync(handle)

            def save(handle):
                sync(handle)

            def run(handle):
                save(handle)
            """
        )
        reachable = project.callgraph.reachable("repro.m.run")
        assert "repro.m.save" in reachable
        assert "repro.m.sync" in reachable
        assert "os.fsync" in reachable

    def test_path_to_reports_the_chain(self):
        project = project_of(
            repro__m="""
            import os

            def sync(handle):
                os.fsync(handle)

            def run(handle):
                sync(handle)
            """
        )
        chain = project.callgraph.path_to("repro.m.run", {"os.fsync"})
        assert chain == ["repro.m.run", "repro.m.sync", "os.fsync"]


class TestCrossModuleRules:
    def test_guard02_sees_blocking_through_another_module(self):
        findings = analyze_modules(
            {
                "repro.service.store": textwrap.dedent(
                    """
                    import os

                    class Journal:
                        def append(self, handle):
                            os.fsync(handle)
                    """
                ),
                "repro.service.svc": textwrap.dedent(
                    """
                    import threading

                    from repro.service.store import Journal

                    class Service:
                        def __init__(self):
                            self._lock = threading.Lock()
                            self._journal = Journal()

                        def commit(self, handle):
                            with self._lock:
                                self._journal.append(handle)
                    """
                ),
            }
        )
        guard = [f for f in findings if f.rule == "GUARD02"]
        assert len(guard) == 1
        assert guard[0].path == "<repro.service.svc>"
        assert "os.fsync" in guard[0].message

    def test_tnt01_follows_taint_across_modules(self):
        findings = analyze_modules(
            {
                "repro.out.records": textwrap.dedent(
                    """
                    class SampleRecord:
                        def __init__(self, sample_id, cost):
                            self.sample_id = sample_id
                            self.cost = cost

                    def emit(sample_id, cost):
                        return SampleRecord(sample_id, cost)
                    """
                ),
                "repro.out.caller": textwrap.dedent(
                    """
                    import time

                    from repro.out.records import emit

                    def snapshot(sample_id):
                        now = time.time()
                        return emit(sample_id, now)
                    """
                ),
            }
        )
        taint = [f for f in findings if f.rule == "TNT01"]
        assert [f.path for f in taint] == ["<repro.out.caller>"]
        assert "time.time" in taint[0].message

    def test_clean_modules_have_no_cross_module_findings(self):
        findings = analyze_modules(
            {
                "repro.service.a": "def f(x):\n    return x\n",
                "repro.service.b": (
                    "from repro.service.a import f\n"
                    "def g(y):\n"
                    "    return f(y)\n"
                ),
            }
        )
        assert [f for f in findings if f.rule.startswith(("GUARD", "TNT"))] == []
