"""CLI tests, including the live-tree gate: ``python -m repro.analysis src``
must exit 0 on this repository."""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.analysis.__main__ import main

REPO_ROOT = Path(__file__).resolve().parents[2]


def write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text, encoding="utf-8")
    return path


class TestCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = write(tmp_path, "ok.py", "X = 1\n")
        assert main([str(path)]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_violation_exits_one(self, tmp_path, capsys):
        path = write(
            tmp_path, "bad.py", "def f(items=[]):\n    return items\n"
        )
        assert main([str(path)]) == 1
        assert "MUT01" in capsys.readouterr().out

    def test_warning_severity_does_not_fail(self, tmp_path, capsys):
        write(
            tmp_path,
            "pyproject.toml",
            '[tool.sophon-lint.severity]\nMUT01 = "warning"\n',
        )
        path = write(
            tmp_path, "bad.py", "def f(items=[]):\n    return items\n"
        )
        assert main([str(path)]) == 0
        assert "MUT01" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        path = write(
            tmp_path, "bad.py", "def f(items=[]):\n    return items\n"
        )
        assert main([str(path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 1
        assert payload["findings"][0]["rule"] == "MUT01"

    def test_select_and_ignore_flags(self, tmp_path):
        path = write(
            tmp_path, "bad.py", "def f(items=[]):\n    return items\n"
        )
        assert main([str(path), "--select", "FLT01"]) == 0
        assert main([str(path), "--ignore", "MUT01"]) == 0

    def test_missing_path_is_usage_error(self, capsys):
        assert main(["definitely/not/here.py"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("DET01", "DET02", "DET03", "RPC01",
                     "EXC01", "FLT01", "MUT01", "API01"):
            assert code in out


class TestLiveTree:
    def test_src_tree_is_clean(self):
        """The acceptance gate: zero unsuppressed findings on src."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        result = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "src"],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "no findings" in result.stdout

    def test_fixtures_are_dirty_on_purpose(self, tmp_path):
        """The bad fixtures really violate rules when run via the CLI.

        Copied out of the repo first: the repo's [tool.sophon-lint]
        config deliberately excludes tests/analysis/fixtures from walks.
        """
        fixtures = Path(__file__).parent / "fixtures"
        copy = tmp_path / "mut01_bad.py"
        copy.write_text(
            (fixtures / "mut01_bad.py").read_text(encoding="utf-8"),
            encoding="utf-8",
        )
        assert main([str(copy)]) == 1
