"""The --fix autofixer: mechanical rewrites, idempotency, CLI, SARIF."""

import ast
import json
from pathlib import Path

from repro.analysis import analyze_source, apply_fixes, fix_text
from repro.analysis.__main__ import main

FIXTURES = Path(__file__).parent / "fixtures"


def refix(source: str, module: str):
    """fix_text plus the assertions every fix must satisfy."""
    fixed, applied = fix_text(source, module=module)
    ast.parse(fixed)  # the rewrite must still be valid Python
    again, reapplied = fix_text(fixed, module=module)
    assert reapplied == 0, "fix_text is not idempotent"
    assert again == fixed
    return fixed, applied


class TestMut01Fix:
    def test_list_default_rewritten(self):
        fixed, applied = refix(
            "def f(items=[]):\n    return items\n", "repro.harness.x"
        )
        assert applied == 1
        assert "items=None" in fixed
        assert "if items is None:" in fixed
        assert "items = []" in fixed

    def test_docstring_preserved(self):
        fixed, _ = refix(
            'def f(items=[]):\n    """Doc."""\n    return items\n',
            "repro.harness.x",
        )
        lines = fixed.splitlines()
        assert lines[1].strip() == '"""Doc."""'
        assert lines[2].strip() == "if items is None:"

    def test_kwonly_default_rewritten(self):
        fixed, applied = refix(
            "def f(*, caps=dict()):\n    return caps\n", "repro.harness.x"
        )
        assert applied == 1
        assert "caps=None" in fixed
        assert "caps = dict()" in fixed


class TestFlt01Fix:
    def test_zero_comparison_uses_is_exact_zero(self):
        fixed, applied = refix(
            "def f(v):\n    return v == 0.0\n", "repro.metrics.x"
        )
        assert applied == 1
        assert "is_exact_zero(v)" in fixed
        assert "from repro.utils.floats import is_exact_zero" in fixed

    def test_nonzero_comparison_uses_close(self):
        fixed, applied = refix(
            "def f(v):\n    return v != 0.25\n", "repro.metrics.x"
        )
        assert applied == 1
        assert "not close(v, 0.25)" in fixed
        assert "from repro.utils.floats import close" in fixed

    def test_existing_import_not_duplicated(self):
        source = (
            "from repro.utils.floats import is_exact_zero\n"
            "def f(v):\n    return v == 0.0\n"
        )
        fixed, applied = refix(source, "repro.metrics.x")
        assert applied == 1
        assert fixed.count("from repro.utils.floats import is_exact_zero") == 1

    def test_shadowed_helper_name_is_not_fixed(self):
        source = (
            "from somewhere import is_exact_zero\n"
            "def f(v):\n    return v == 0.0\n"
        )
        fixed, applied = fix_text(source, module="repro.metrics.x")
        assert applied == 0
        assert fixed == source


class TestDet03Fix:
    def test_set_iteration_wrapped_in_sorted(self):
        fixed, applied = refix(
            "def f(jobs):\n    return [j for j in set(jobs)]\n",
            "repro.scheduler.x",
        )
        assert applied == 1
        assert "sorted(set(jobs))" in fixed

    def test_keys_iteration_wrapped_in_sorted(self):
        fixed, applied = refix(
            "def f(d):\n    for k in d.keys():\n        yield k\n",
            "repro.scheduler.x",
        )
        assert applied == 1
        assert "sorted(d.keys())" in fixed


class TestFixtureRoundTrips:
    """Every fixable bad fixture fixes to a state its rule accepts."""

    def test_mut01_bad_fixture_fixes_clean(self):
        source = (FIXTURES / "mut01_bad.py").read_text(encoding="utf-8")
        fixed, applied = refix(source, "repro.harness.fixture")
        assert applied >= 1
        remaining = analyze_source(fixed, module="repro.harness.fixture")
        assert [f for f in remaining if f.rule == "MUT01"] == []

    def test_flt01_bad_fixture_fixes_clean(self):
        source = (FIXTURES / "flt01_bad.py").read_text(encoding="utf-8")
        fixed, applied = refix(source, "repro.metrics.fixture")
        assert applied >= 1
        remaining = analyze_source(fixed, module="repro.metrics.fixture")
        assert [f for f in remaining if f.rule == "FLT01"] == []

    def test_det03_bad_fixture_fixes_sorted_wraps(self):
        source = (FIXTURES / "det03_bad.py").read_text(encoding="utf-8")
        fixed, _ = refix(source, "repro.scheduler.fixture")
        remaining = analyze_source(fixed, module="repro.scheduler.fixture")
        # pop()/popitem() have no mechanical fix; the sorted() wraps do.
        assert all(
            ".pop" in f.message for f in remaining if f.rule == "DET03"
        )


class TestApplyFixes:
    def test_findings_without_fixes_change_nothing(self):
        source = "import time\ndef f():\n    return time.time()\n"
        findings = analyze_source(source, module="repro.core.x")
        assert any(f.rule == "DET01" for f in findings)
        fixed, applied = apply_fixes(source, findings)
        assert applied == 0
        assert fixed == source


class TestCliFix:
    def test_fix_flag_rewrites_in_place(self, tmp_path, capsys):
        path = tmp_path / "bad.py"
        path.write_text("def f(items=[]):\n    return items\n", encoding="utf-8")
        assert main([str(path), "--fix"]) == 0
        out = capsys.readouterr()
        assert "fixed" in out.err
        content = path.read_text(encoding="utf-8")
        assert "items=None" in content
        assert "if items is None:" in content

    def test_fix_flag_leaves_unfixable_findings(self, tmp_path):
        path = tmp_path / "bad.py"
        path.write_text(
            "import random\ndef f():\n    return random.random()\n",
            encoding="utf-8",
        )
        # DET02 has no autofix: --fix exits 1 with the finding intact.
        assert main([str(path), "--fix"]) == 1


class TestSarif:
    def test_sarif_output_schema(self, tmp_path, capsys):
        path = tmp_path / "bad.py"
        path.write_text("def f(items=[]):\n    return items\n", encoding="utf-8")
        sarif_path = tmp_path / "report.sarif"
        assert main([str(path), "--sarif", str(sarif_path)]) == 1
        log = json.loads(sarif_path.read_text(encoding="utf-8"))
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "sophon-lint"
        assert [r["id"] for r in run["tool"]["driver"]["rules"]] == ["MUT01"]
        result = run["results"][0]
        assert result["ruleId"] == "MUT01"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1
        assert region["startColumn"] >= 1

    def test_sarif_empty_run_is_valid(self, tmp_path):
        path = tmp_path / "ok.py"
        path.write_text("X = 1\n", encoding="utf-8")
        sarif_path = tmp_path / "report.sarif"
        assert main([str(path), "--sarif", str(sarif_path)]) == 0
        log = json.loads(sarif_path.read_text(encoding="utf-8"))
        assert log["runs"][0]["results"] == []
