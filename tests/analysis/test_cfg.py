"""CFG construction and the forward dataflow engine."""

import ast

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import (
    ForwardAnalysis,
    foreach_element_state,
    run_forward,
)


def cfg_of(source: str):
    fn = ast.parse(source).body[0]
    return build_cfg(fn)


def reachable_blocks(cfg):
    seen = {cfg.entry}
    frontier = [cfg.entry]
    while frontier:
        block = frontier.pop()
        for successor in cfg.blocks[block].successors:
            if successor not in seen:
                seen.add(successor)
                frontier.append(successor)
    return seen


class TestCfgShapes:
    def test_straight_line_single_block(self):
        cfg = cfg_of("def f():\n    a = 1\n    b = 2\n    return a + b\n")
        assert cfg.blocks[cfg.entry].elements  # all three statements
        assert cfg.exit in reachable_blocks(cfg)

    def test_if_branches_rejoin(self):
        cfg = cfg_of(
            "def f(x):\n"
            "    if x:\n"
            "        a = 1\n"
            "    else:\n"
            "        a = 2\n"
            "    return a\n"
        )
        # The branch point has two successors (then / else).
        header = cfg.blocks[cfg.entry]
        assert len(header.successors) == 2
        assert cfg.exit in reachable_blocks(cfg)

    def test_if_without_else_edges_past_the_body(self):
        cfg = cfg_of("def f(x):\n    if x:\n        a = 1\n    return x\n")
        header = cfg.blocks[cfg.entry]
        assert len(header.successors) == 2  # body and fall-through

    def test_while_has_back_edge(self):
        cfg = cfg_of("def f(x):\n    while x:\n        x -= 1\n    return x\n")
        headers = [
            block_id
            for block_id, block in cfg.blocks.items()
            if any(isinstance(e, ast.While) for e in block.elements)
        ]
        assert len(headers) == 1
        header = headers[0]
        # Some reachable block loops back to the header.
        assert any(
            header in cfg.blocks[b].successors
            for b in cfg.blocks
            if b != header and b in reachable_blocks(cfg)
        )

    def test_break_edges_to_loop_exit(self):
        cfg = cfg_of(
            "def f(items):\n"
            "    for item in items:\n"
            "        if item:\n"
            "            break\n"
            "    return items\n"
        )
        assert cfg.exit in reachable_blocks(cfg)

    def test_try_body_edges_into_handler(self):
        cfg = cfg_of(
            "def f():\n"
            "    try:\n"
            "        a = risky()\n"
            "    except ValueError:\n"
            "        a = None\n"
            "    return a\n"
        )
        handler_blocks = [
            block_id
            for block_id, block in cfg.blocks.items()
            if any(isinstance(e, ast.ExceptHandler) for e in block.elements)
        ]
        assert len(handler_blocks) == 1
        assert handler_blocks[0] in reachable_blocks(cfg)

    def test_return_ends_the_block(self):
        cfg = cfg_of("def f():\n    return 1\n    x = 2\n")
        # The unreachable statement is parked in a predecessor-less block.
        parked = [
            block_id
            for block_id, block in cfg.blocks.items()
            if block.elements and block_id not in reachable_blocks(cfg)
        ]
        assert parked


class _Constants(ForwardAnalysis):
    """Toy analysis: the set of variable names assigned so far."""

    def initial(self):
        return frozenset()

    def join(self, left, right):
        return left | right

    def transfer(self, element, state):
        if isinstance(element, ast.Assign):
            names = {
                t.id for t in element.targets if isinstance(t, ast.Name)
            }
            return state | frozenset(names)
        return state


class TestDataflow:
    def test_branch_states_join(self):
        cfg = cfg_of(
            "def f(x):\n"
            "    if x:\n"
            "        a = 1\n"
            "    else:\n"
            "        b = 2\n"
            "    c = 3\n"
            "    return c\n"
        )
        analysis = _Constants()
        in_states = run_forward(cfg, analysis)
        seen = []

        def visit(element, state):
            if isinstance(element, ast.Assign):
                target = element.targets[0]
                assert isinstance(target, ast.Name)
                seen.append((target.id, state))

        foreach_element_state(cfg, analysis, in_states, visit)
        states = dict(seen)
        # At c's assignment, both branches have merged: a OR b may be set.
        assert states["c"] == frozenset({"a"}) | frozenset({"b"})

    def test_loop_reaches_fixpoint(self):
        cfg = cfg_of(
            "def f(n):\n"
            "    total = 0\n"
            "    while n:\n"
            "        step = 1\n"
            "        n = n - step\n"
            "    return total\n"
        )
        in_states = run_forward(cfg, _Constants())
        # The loop header sees both the pre-loop and in-loop assignments.
        header = next(
            block_id
            for block_id, block in cfg.blocks.items()
            if any(isinstance(e, ast.While) for e in block.elements)
        )
        assert {"total", "step", "n"} <= set(in_states[header])

    def test_nonconvergence_raises(self):
        import pytest

        class Diverging(_Constants):
            def __init__(self):
                self.tick = 0

            def transfer(self, element, state):
                self.tick += 1
                return frozenset({f"v{self.tick}"})

        cfg = cfg_of("def f(x):\n    while x:\n        x = x - 1\n    return x\n")
        with pytest.raises(RuntimeError, match="did not converge"):
            run_forward(cfg, Diverging(), max_iterations=50)
