"""Timeline and stall-breakdown tests."""

import pytest

from repro.cluster.spec import standard_cluster
from repro.cluster.trainer import TrainerSim
from repro.core.profiler import StageTwoProfiler
from repro.metrics import BatchTrace, StallBreakdown, Timeline, stall_breakdown
from repro.workloads.models import get_model_profile


class TestTimeline:
    def test_trace_autovivifies_in_order(self):
        timeline = Timeline()
        timeline.trace(2).ready_at = 1.0
        assert len(timeline.batches) == 3
        assert timeline.batches[2].ready_at == 1.0

    def test_validate_accepts_sane_timeline(self):
        timeline = Timeline(
            batches=[
                BatchTrace(0, ready_at=1.0, gpu_start=1.0, gpu_end=2.0),
                BatchTrace(1, ready_at=1.5, gpu_start=2.0, gpu_end=3.0),
            ],
            epoch_end=3.0,
        )
        timeline.validate()

    def test_validate_rejects_disorder(self):
        timeline = Timeline(
            batches=[BatchTrace(0, ready_at=2.0, gpu_start=1.0, gpu_end=3.0)]
        )
        with pytest.raises(ValueError):
            timeline.validate()

    def test_validate_rejects_overlap(self):
        timeline = Timeline(
            batches=[
                BatchTrace(0, ready_at=0.0, gpu_start=0.0, gpu_end=2.0),
                BatchTrace(1, ready_at=0.0, gpu_start=1.0, gpu_end=3.0),
            ]
        )
        with pytest.raises(ValueError):
            timeline.validate()


class TestStallBreakdown:
    def test_hand_built_breakdown(self):
        timeline = Timeline(
            batches=[
                BatchTrace(0, ready_at=2.0, gpu_start=2.0, gpu_end=3.0),
                BatchTrace(1, ready_at=4.0, gpu_start=5.0, gpu_end=6.0),
            ],
            epoch_end=6.0,
        )
        breakdown = stall_breakdown(timeline)
        assert breakdown.gpu_busy_s == pytest.approx(2.0)
        assert breakdown.data_stall_s == pytest.approx(4.0)  # 2 initial + 2 gap
        assert breakdown.stall_fraction == pytest.approx(4.0 / 6.0)

    def test_busy_plus_stall_covers_epoch(self):
        timeline = Timeline(
            batches=[
                BatchTrace(0, ready_at=1.0, gpu_start=1.0, gpu_end=2.5),
                BatchTrace(1, ready_at=2.0, gpu_start=2.5, gpu_end=4.0),
            ],
            epoch_end=4.5,
        )
        breakdown = stall_breakdown(timeline)
        assert breakdown.gpu_busy_s + breakdown.data_stall_s == pytest.approx(4.5)

    def test_empty_timeline(self):
        breakdown = stall_breakdown(Timeline(epoch_end=5.0))
        assert breakdown.gpu_busy_s == 0.0
        assert breakdown.data_stall_s == 5.0


class TestTrainerIntegration:
    @pytest.fixture(scope="class")
    def trainer(self, openimages_small, pipeline, alexnet):
        return TrainerSim(
            openimages_small, pipeline, alexnet,
            spec=standard_cluster(storage_cores=8), batch_size=64,
        )

    def test_timeline_recorded_on_request(self, trainer):
        stats = trainer.run_epoch(splits=None, epoch=0, record_timeline=True)
        assert stats.timeline is not None
        assert len(stats.timeline.batches) == stats.num_batches
        stats.timeline.validate()

    def test_timeline_omitted_by_default(self, trainer):
        assert trainer.run_epoch(splits=None, epoch=0).timeline is None

    def test_breakdown_matches_gpu_utilization(self, trainer):
        stats = trainer.run_epoch(splits=None, epoch=0, record_timeline=True)
        breakdown = stall_breakdown(stats.timeline)
        assert breakdown.gpu_utilization == pytest.approx(
            stats.gpu_utilization, rel=1e-6
        )
        assert breakdown.epoch_time_s == pytest.approx(stats.epoch_time_s)

    def test_io_bound_workload_is_mostly_stall(self, trainer):
        stats = trainer.run_epoch(splits=None, epoch=0, record_timeline=True)
        breakdown = stall_breakdown(stats.timeline)
        assert breakdown.stall_fraction > 0.8  # AlexNet at 500 Mbps

    def test_offloading_shrinks_the_stall(self, trainer, openimages_small):
        records = StageTwoProfiler().profile(
            openimages_small, trainer.pipeline
        )
        splits = [r.min_stage for r in records]
        plain = stall_breakdown(
            trainer.run_epoch(None, epoch=0, record_timeline=True).timeline
        )
        offloaded = stall_breakdown(
            trainer.run_epoch(splits, epoch=0, record_timeline=True).timeline
        )
        assert offloaded.data_stall_s < plain.data_stall_s / 1.8
