"""ClusterSpec tests."""

import pytest

from repro.cluster.spec import ClusterSpec, standard_cluster


class TestClusterSpec:
    def test_standard_matches_paper_setup(self):
        spec = standard_cluster()
        assert spec.compute_cores == 48
        assert spec.storage_cores == 48
        assert spec.bandwidth_mbps == 500.0

    def test_bandwidth_conversion(self):
        spec = standard_cluster(bandwidth_mbps=500.0)
        assert spec.bandwidth_bytes_per_s == pytest.approx(62.5e6)

    def test_zero_storage_cores_disables_offloading(self):
        spec = standard_cluster(storage_cores=0)
        assert not spec.can_offload

    def test_with_storage_cores_is_nondestructive(self):
        base = standard_cluster(storage_cores=48)
        varied = base.with_storage_cores(2)
        assert varied.storage_cores == 2
        assert base.storage_cores == 48
        assert varied.bandwidth_mbps == base.bandwidth_mbps

    def test_with_bandwidth(self):
        assert standard_cluster().with_bandwidth(1000.0).bandwidth_mbps == 1000.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"compute_cores": 0},
            {"storage_cores": -1},
            {"bandwidth_mbps": 0.0},
            {"network_rtt_s": -0.1},
            {"compute_cpu_factor": 0.0},
            {"storage_cpu_factor": -1.0},
            {"prefetch_batches": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ClusterSpec(**kwargs)

    def test_frozen(self):
        with pytest.raises(Exception):
            standard_cluster().storage_cores = 3
