"""Shared-link multi-job simulation tests."""

import pytest

from repro.cluster.multijob import SharedJob, SharedLinkSim
from repro.cluster.spec import standard_cluster
from repro.cluster.trainer import TrainerSim
from repro.core.profiler import StageTwoProfiler
from repro.data.catalog import make_openimages
from repro.workloads.models import get_model_profile


def make_shared_job(name, dataset, pipeline, splits=None):
    return SharedJob(
        name=name,
        dataset=dataset,
        pipeline=pipeline,
        model=get_model_profile("alexnet"),
        splits=splits,
        batch_size=64,
    )


@pytest.fixture(scope="module")
def small_dataset():
    return make_openimages(num_samples=200, seed=5)


class TestSharedLinkSim:
    def test_single_job_matches_trainer_sim(self, small_dataset, pipeline):
        spec = standard_cluster(storage_cores=8)
        shared = SharedLinkSim(spec).run_epoch(
            [make_shared_job("solo", small_dataset, pipeline)]
        )
        solo = TrainerSim(
            small_dataset, pipeline, get_model_profile("alexnet"), spec, batch_size=64
        ).run_epoch(None, epoch=0)
        assert shared.epoch_time("solo") == pytest.approx(solo.epoch_time_s, rel=1e-9)
        assert shared.results["solo"].traffic_bytes == solo.traffic_bytes

    def test_contention_slows_everyone(self, small_dataset, pipeline):
        spec = standard_cluster(storage_cores=8)
        sim = SharedLinkSim(spec)
        one = sim.run_epoch([make_shared_job("a", small_dataset, pipeline)])
        four = sim.run_epoch(
            [
                make_shared_job(f"job{i}", small_dataset, pipeline)
                for i in range(4)
            ]
        )
        # Four I/O-bound jobs on one link: everyone's epoch stretches ~4x.
        assert four.mean_epoch_time_s == pytest.approx(
            4 * one.mean_epoch_time_s, rel=0.15
        )

    def test_total_traffic_is_sum_of_jobs(self, small_dataset, pipeline):
        spec = standard_cluster(storage_cores=8)
        stats = SharedLinkSim(spec).run_epoch(
            [make_shared_job(f"j{i}", small_dataset, pipeline) for i in range(3)]
        )
        assert stats.total_traffic_bytes == sum(
            r.traffic_bytes for r in stats.results.values()
        )
        assert stats.link_utilization > 0.9  # I/O-bound: link saturated

    def test_offloading_jobs_raise_cluster_throughput(self, small_dataset, pipeline):
        spec = standard_cluster(storage_cores=16)
        records = StageTwoProfiler().profile(small_dataset, pipeline)
        splits = [r.min_stage for r in records]
        sim = SharedLinkSim(spec)
        plain = sim.run_epoch(
            [make_shared_job(f"j{i}", small_dataset, pipeline) for i in range(4)]
        )
        offloaded = sim.run_epoch(
            [
                make_shared_job(f"j{i}", small_dataset, pipeline, splits=splits)
                for i in range(4)
            ]
        )
        assert offloaded.makespan_s < plain.makespan_s / 1.5
        assert offloaded.total_traffic_bytes < plain.total_traffic_bytes / 1.8

    def test_duplicate_names_rejected(self, small_dataset, pipeline):
        sim = SharedLinkSim(standard_cluster())
        job = make_shared_job("dup", small_dataset, pipeline)
        with pytest.raises(ValueError):
            sim.run_epoch([job, job])

    def test_empty_job_list_rejected(self):
        with pytest.raises(ValueError):
            SharedLinkSim(standard_cluster()).run_epoch([])

    def test_heterogeneous_jobs_finish_at_different_times(
        self, small_dataset, pipeline
    ):
        big = make_openimages(num_samples=400, seed=6)
        sim = SharedLinkSim(standard_cluster(storage_cores=8))
        stats = sim.run_epoch(
            [
                make_shared_job("small", small_dataset, pipeline),
                make_shared_job("big", big, pipeline),
            ]
        )
        assert stats.epoch_time("big") > stats.epoch_time("small")
        assert stats.makespan_s == pytest.approx(stats.epoch_time("big"))


class TestSharedLinkTelemetry:
    def two_jobs(self, small_dataset, pipeline):
        return [
            make_shared_job("alpha", small_dataset, pipeline),
            make_shared_job("beta", small_dataset, pipeline),
        ]

    def test_byte_identity_with_tracing(self, small_dataset, pipeline):
        sim = SharedLinkSim(standard_cluster(storage_cores=8))
        plain = sim.run_epoch(self.two_jobs(small_dataset, pipeline))
        traced = sim.run_epoch(
            self.two_jobs(small_dataset, pipeline),
            record_spans=True, record_timeline=True,
        )
        assert traced.makespan_s == plain.makespan_s
        assert traced.total_traffic_bytes == plain.total_traffic_bytes
        for name in ("alpha", "beta"):
            assert traced.epoch_time(name) == plain.epoch_time(name)
            assert (
                traced.results[name].traffic_bytes
                == plain.results[name].traffic_bytes
            )

    def test_spans_carry_tenant_labels(self, small_dataset, pipeline):
        sim = SharedLinkSim(standard_cluster(storage_cores=8))
        stats = sim.run_epoch(
            self.two_jobs(small_dataset, pipeline), epoch=3, record_spans=True
        )
        assert stats.spans is not None
        jobs = {
            e.attrs["job"] for e in stats.spans.events
            if e.phase == "B" and e.name == "sample.fetch"
        }
        assert jobs == {"alpha", "beta"}
        # Same trace ids as the single-node path, disambiguated by the
        # job attr rather than a mangled id.
        fetch = next(
            e for e in stats.spans.events if e.name == "sample.fetch"
        )
        assert fetch.trace_id.endswith("-e3")

    def test_per_job_timelines(self, small_dataset, pipeline):
        sim = SharedLinkSim(standard_cluster(storage_cores=8))
        stats = sim.run_epoch(
            self.two_jobs(small_dataset, pipeline), record_timeline=True
        )
        assert stats.timelines is not None
        assert set(stats.timelines) == {"alpha", "beta"}
        for name, timeline in stats.timelines.items():
            timeline.validate()
            assert timeline.epoch_end == pytest.approx(stats.epoch_time(name))

    def test_per_job_adjustments_accepted(self, small_dataset, pipeline):
        from repro.cluster.trainer import WorkAdjustment

        spec = standard_cluster(storage_cores=8)
        sim = SharedLinkSim(spec)
        plain = sim.run_epoch([make_shared_job("a", small_dataset, pipeline)])
        slowed = sim.run_epoch(
            [
                SharedJob(
                    name="a",
                    dataset=small_dataset,
                    pipeline=pipeline,
                    model=get_model_profile("alexnet"),
                    batch_size=64,
                    adjustments={
                        sid: WorkAdjustment(extra_compute_cpu_s=0.005)
                        for sid in small_dataset.sample_ids()
                    },
                )
            ]
        )
        assert slowed.epoch_time("a") > plain.epoch_time("a")
