"""Analytic epoch-model tests (the paper's four T metrics)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.epoch_model import Bottleneck, EpochMetrics, EpochModel
from repro.cluster.spec import standard_cluster


def metrics(gpu=10.0, cc=480.0, cs=0.0, traffic=6.25e8):
    return EpochMetrics(
        gpu_time_s=gpu, compute_cpu_s=cc, storage_cpu_s=cs, traffic_bytes=traffic
    )


class TestEstimate:
    def test_t_metrics_divide_by_capacity(self):
        model = EpochModel(standard_cluster())  # 48/48 cores, 62.5 MB/s
        est = model.estimate(metrics())
        assert est.t_g == 10.0
        assert est.t_cc == pytest.approx(10.0)  # 480 / 48
        assert est.t_cs == 0.0
        assert est.t_net == pytest.approx(10.0)  # 6.25e8 / 62.5e6

    def test_epoch_time_is_max(self):
        model = EpochModel(standard_cluster())
        est = model.estimate(metrics(gpu=50.0))
        assert est.epoch_time_s == 50.0
        assert est.bottleneck is Bottleneck.GPU

    def test_network_bound_flag(self):
        model = EpochModel(standard_cluster())
        assert model.estimate(metrics(traffic=1e10)).network_bound
        assert not model.estimate(metrics(gpu=1000.0)).network_bound

    def test_storage_cpu_divided_by_storage_cores(self):
        model = EpochModel(standard_cluster(storage_cores=2))
        est = model.estimate(metrics(cs=10.0))
        assert est.t_cs == pytest.approx(5.0)

    def test_cpu_factors_applied(self):
        import dataclasses

        spec = dataclasses.replace(
            standard_cluster(storage_cores=4), storage_cpu_factor=2.0
        )
        est = EpochModel(spec).estimate(metrics(cs=8.0))
        assert est.t_cs == pytest.approx(8.0 * 2.0 / 4)

    def test_storage_work_with_zero_cores_rejected(self):
        model = EpochModel(standard_cluster(storage_cores=0))
        with pytest.raises(ValueError):
            model.estimate(metrics(cs=1.0))

    def test_zero_storage_work_with_zero_cores_ok(self):
        model = EpochModel(standard_cluster(storage_cores=0))
        assert model.estimate(metrics(cs=0.0)).t_cs == 0.0

    def test_gpu_utilization(self):
        model = EpochModel(standard_cluster())
        est = model.estimate(metrics(gpu=5.0, traffic=6.25e8))
        assert est.gpu_utilization == pytest.approx(0.5)

    def test_negative_metrics_rejected(self):
        with pytest.raises(ValueError):
            EpochMetrics(-1.0, 0.0, 0.0, 0.0)

    @given(
        gpu=st.floats(0.0, 100.0),
        cc=st.floats(0.0, 1000.0),
        cs=st.floats(0.0, 1000.0),
        traffic=st.floats(0.0, 1e10),
    )
    @settings(max_examples=50, deadline=None)
    def test_epoch_time_dominates_each_metric(self, gpu, cc, cs, traffic):
        model = EpochModel(standard_cluster())
        est = model.estimate(metrics(gpu, cc, cs, traffic))
        assert est.epoch_time_s >= est.t_g
        assert est.epoch_time_s >= est.t_cc
        assert est.epoch_time_s >= est.t_cs
        assert est.epoch_time_s >= est.t_net

    def test_replace(self):
        m = metrics()
        m2 = m.replace(traffic_bytes=5.0)
        assert m2.traffic_bytes == 5.0
        assert m2.gpu_time_s == m.gpu_time_s
