"""Sharded storage cluster tests."""

import pytest

from repro.cluster.sharded import (
    ShardedTrainerSim,
    contiguous_placement,
    round_robin_placement,
    size_balanced_placement,
)
from repro.cluster.spec import standard_cluster
from repro.cluster.trainer import TrainerSim
from repro.core.profiler import StageTwoProfiler
from repro.workloads.models import get_model_profile


@pytest.fixture(scope="module")
def splits(openimages_small, pipeline):
    records = StageTwoProfiler().profile(openimages_small, pipeline)
    return [r.min_stage for r in records]


def make_sim(dataset, pipeline, placement, cores_per_shard=1):
    return ShardedTrainerSim(
        dataset, pipeline, get_model_profile("alexnet"),
        standard_cluster(storage_cores=cores_per_shard),
        placement=placement, batch_size=64,
    )


class TestPlacements:
    def test_round_robin_spreads(self):
        placement = round_robin_placement(10, 3)
        assert placement == [0, 1, 2, 0, 1, 2, 0, 1, 2, 0]

    def test_contiguous_ranges(self):
        placement = contiguous_placement(9, 3)
        assert placement == [0, 0, 0, 1, 1, 1, 2, 2, 2]

    def test_size_balanced_evens_the_bytes(self, openimages_small):
        placement = size_balanced_placement(openimages_small, 4)
        loads = [0] * 4
        for sid in openimages_small.sample_ids():
            loads[placement[sid]] += openimages_small.raw_meta(sid).nbytes
        assert max(loads) < min(loads) * 1.05


class TestShardedSim:
    def test_single_shard_matches_plain_trainer(self, openimages_small, pipeline, splits):
        spec = standard_cluster(storage_cores=4)
        sharded = ShardedTrainerSim(
            openimages_small, pipeline, get_model_profile("alexnet"), spec,
            placement=[0] * len(openimages_small), batch_size=64,
        ).run_epoch(splits, epoch=0)
        plain = TrainerSim(
            openimages_small, pipeline, get_model_profile("alexnet"), spec,
            batch_size=64,
        ).run_epoch(splits, epoch=0)
        assert sharded.epoch_time_s == pytest.approx(plain.epoch_time_s, rel=1e-9)
        assert sharded.stats.traffic_bytes == plain.traffic_bytes

    def test_traffic_independent_of_placement(self, openimages_small, pipeline, splits):
        rr = make_sim(
            openimages_small, pipeline,
            round_robin_placement(len(openimages_small), 4),
        ).run_epoch(splits, epoch=0)
        cont = make_sim(
            openimages_small, pipeline,
            contiguous_placement(len(openimages_small), 4),
        ).run_epoch(splits, epoch=0)
        assert rr.stats.traffic_bytes == cont.stats.traffic_bytes

    def test_per_shard_utilization_reported(self, openimages_small, pipeline, splits):
        result = make_sim(
            openimages_small, pipeline,
            round_robin_placement(len(openimages_small), 4),
        ).run_epoch(splits, epoch=0)
        assert len(result.shard_utilization) == 4
        assert all(0.0 <= u <= 1.0 + 1e-9 for u in result.shard_utilization)

    def test_balanced_placement_no_slower_than_contiguous(
        self, openimages_small, pipeline, splits
    ):
        balanced = make_sim(
            openimages_small, pipeline,
            size_balanced_placement(openimages_small, 4),
        ).run_epoch(splits, epoch=0)
        contiguous = make_sim(
            openimages_small, pipeline,
            contiguous_placement(len(openimages_small), 4),
        ).run_epoch(splits, epoch=0)
        assert balanced.epoch_time_s <= contiguous.epoch_time_s * 1.02

    def test_placement_length_validated(self, openimages_small, pipeline):
        with pytest.raises(ValueError):
            make_sim(openimages_small, pipeline, [0, 1])

    def test_negative_shard_rejected(self, openimages_small, pipeline):
        with pytest.raises(ValueError):
            make_sim(openimages_small, pipeline, [-1] * len(openimages_small))


class TestExplicitNumShards:
    def test_empty_shards_still_reported(self, openimages_small, pipeline, splits):
        """num_shards=8 with samples on 4 shards: 8 utilization entries."""
        placement = round_robin_placement(len(openimages_small), 4)
        result = ShardedTrainerSim(
            openimages_small, pipeline, get_model_profile("alexnet"),
            standard_cluster(storage_cores=1),
            placement=placement, batch_size=64, num_shards=8,
        ).run_epoch(splits, epoch=0)
        assert len(result.shard_utilization) == 8
        assert all(u == 0.0 for u in result.shard_utilization[4:])

    def test_num_shards_defaults_to_inference(self, openimages_small, pipeline):
        sim = make_sim(
            openimages_small, pipeline,
            round_robin_placement(len(openimages_small), 3),
        )
        assert sim.num_shards == 3

    def test_num_shards_below_placement_rejected(self, openimages_small, pipeline):
        with pytest.raises(ValueError):
            ShardedTrainerSim(
                openimages_small, pipeline, get_model_profile("alexnet"),
                standard_cluster(storage_cores=1),
                placement=round_robin_placement(len(openimages_small), 4),
                batch_size=64, num_shards=2,
            )

    def test_nonpositive_num_shards_rejected(self, openimages_small, pipeline):
        with pytest.raises(ValueError):
            ShardedTrainerSim(
                openimages_small, pipeline, get_model_profile("alexnet"),
                standard_cluster(storage_cores=1),
                placement=[0] * len(openimages_small),
                batch_size=64, num_shards=0,
            )


class TestOffloadValidation:
    def test_split_without_storage_cores_raises(self, openimages_small, pipeline):
        """The old sim silently granted max(storage_cores, 1) cores here."""
        sim = make_sim(
            openimages_small, pipeline,
            round_robin_placement(len(openimages_small), 2),
            cores_per_shard=0,
        )
        with pytest.raises(ValueError, match="no storage cores"):
            sim.run_epoch([1] * len(openimages_small), epoch=0)

    def test_no_off_plan_runs_without_storage_cores(
        self, openimages_small, pipeline
    ):
        result = make_sim(
            openimages_small, pipeline,
            round_robin_placement(len(openimages_small), 2),
            cores_per_shard=0,
        ).run_epoch(None, epoch=0)
        assert result.num_samples == len(openimages_small)
        assert result.shard_utilization == [0.0, 0.0]

    def test_plain_trainer_validates_too(self, openimages_small, pipeline):
        sim = TrainerSim(
            openimages_small, pipeline, get_model_profile("alexnet"),
            standard_cluster(storage_cores=0), batch_size=64,
        )
        with pytest.raises(ValueError, match="no storage cores"):
            sim.run_epoch([2] * len(openimages_small), epoch=0)


class TestShardedTelemetry:
    def test_full_base_signature_accepted(self, openimages_small, pipeline, splits):
        """The pre-fix sim raised TypeError on record_spans/record_timeline."""
        result = make_sim(
            openimages_small, pipeline,
            round_robin_placement(len(openimages_small), 4),
        ).run_epoch(
            splits, epoch=1, adjustments=None, record_timeline=True,
            faults=None, record_spans=True,
        )
        assert result.spans is not None
        assert result.timeline is not None
        assert result.timeline.epoch_end == pytest.approx(result.epoch_time_s)

    def test_byte_identity_with_tracing(self, openimages_small, pipeline, splits):
        placement = round_robin_placement(len(openimages_small), 4)
        plain = make_sim(openimages_small, pipeline, placement).run_epoch(
            splits, epoch=1
        )
        traced = make_sim(openimages_small, pipeline, placement).run_epoch(
            splits, epoch=1, record_spans=True, record_timeline=True
        )
        assert traced.epoch_time_s == plain.epoch_time_s
        assert traced.traffic_bytes == plain.traffic_bytes
        assert traced.shard_utilization == plain.shard_utilization

    def test_spans_carry_shard_labels(self, openimages_small, pipeline, splits):
        placement = round_robin_placement(len(openimages_small), 4)
        result = make_sim(openimages_small, pipeline, placement).run_epoch(
            splits, epoch=2, record_spans=True
        )
        fetches = [e for e in result.spans.events if e.name == "sample.fetch"
                   and e.phase == "B"]
        assert fetches
        for event in fetches:
            sample_id = int(event.trace_id.split("-")[0][1:])
            assert event.attrs["shard"] == placement[sample_id]
            assert event.trace_id.endswith("-e2")  # same ids as single-node
