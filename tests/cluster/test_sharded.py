"""Sharded storage cluster tests."""

import pytest

from repro.cluster.sharded import (
    ShardedTrainerSim,
    contiguous_placement,
    round_robin_placement,
    size_balanced_placement,
)
from repro.cluster.spec import standard_cluster
from repro.cluster.trainer import TrainerSim
from repro.core.profiler import StageTwoProfiler
from repro.workloads.models import get_model_profile


@pytest.fixture(scope="module")
def splits(openimages_small, pipeline):
    records = StageTwoProfiler().profile(openimages_small, pipeline)
    return [r.min_stage for r in records]


def make_sim(dataset, pipeline, placement, cores_per_shard=1):
    return ShardedTrainerSim(
        dataset, pipeline, get_model_profile("alexnet"),
        standard_cluster(storage_cores=cores_per_shard),
        placement=placement, batch_size=64,
    )


class TestPlacements:
    def test_round_robin_spreads(self):
        placement = round_robin_placement(10, 3)
        assert placement == [0, 1, 2, 0, 1, 2, 0, 1, 2, 0]

    def test_contiguous_ranges(self):
        placement = contiguous_placement(9, 3)
        assert placement == [0, 0, 0, 1, 1, 1, 2, 2, 2]

    def test_size_balanced_evens_the_bytes(self, openimages_small):
        placement = size_balanced_placement(openimages_small, 4)
        loads = [0] * 4
        for sid in openimages_small.sample_ids():
            loads[placement[sid]] += openimages_small.raw_meta(sid).nbytes
        assert max(loads) < min(loads) * 1.05


class TestShardedSim:
    def test_single_shard_matches_plain_trainer(self, openimages_small, pipeline, splits):
        spec = standard_cluster(storage_cores=4)
        sharded = ShardedTrainerSim(
            openimages_small, pipeline, get_model_profile("alexnet"), spec,
            placement=[0] * len(openimages_small), batch_size=64,
        ).run_epoch(splits, epoch=0)
        plain = TrainerSim(
            openimages_small, pipeline, get_model_profile("alexnet"), spec,
            batch_size=64,
        ).run_epoch(splits, epoch=0)
        assert sharded.epoch_time_s == pytest.approx(plain.epoch_time_s, rel=1e-9)
        assert sharded.stats.traffic_bytes == plain.traffic_bytes

    def test_traffic_independent_of_placement(self, openimages_small, pipeline, splits):
        rr = make_sim(
            openimages_small, pipeline,
            round_robin_placement(len(openimages_small), 4),
        ).run_epoch(splits, epoch=0)
        cont = make_sim(
            openimages_small, pipeline,
            contiguous_placement(len(openimages_small), 4),
        ).run_epoch(splits, epoch=0)
        assert rr.stats.traffic_bytes == cont.stats.traffic_bytes

    def test_per_shard_utilization_reported(self, openimages_small, pipeline, splits):
        result = make_sim(
            openimages_small, pipeline,
            round_robin_placement(len(openimages_small), 4),
        ).run_epoch(splits, epoch=0)
        assert len(result.shard_utilization) == 4
        assert all(0.0 <= u <= 1.0 + 1e-9 for u in result.shard_utilization)

    def test_balanced_placement_no_slower_than_contiguous(
        self, openimages_small, pipeline, splits
    ):
        balanced = make_sim(
            openimages_small, pipeline,
            size_balanced_placement(openimages_small, 4),
        ).run_epoch(splits, epoch=0)
        contiguous = make_sim(
            openimages_small, pipeline,
            contiguous_placement(len(openimages_small), 4),
        ).run_epoch(splits, epoch=0)
        assert balanced.epoch_time_s <= contiguous.epoch_time_s * 1.02

    def test_placement_length_validated(self, openimages_small, pipeline):
        with pytest.raises(ValueError):
            make_sim(openimages_small, pipeline, [0, 1])

    def test_negative_shard_rejected(self, openimages_small, pipeline):
        with pytest.raises(ValueError):
            make_sim(openimages_small, pipeline, [-1] * len(openimages_small))
