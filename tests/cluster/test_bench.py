"""The epoch-simulation bench harness: schema stability and identity gates."""

import json

from repro.cluster.bench import (
    KERNELS,
    SCHEMA,
    aux_gates,
    bench_million,
    bench_scale,
    main,
    run_bench,
)


def ticking_clock():
    """A deterministic injectable timer: each read advances 1ms."""
    state = {"t": 0.0}

    def timer():
        state["t"] += 0.001
        return state["t"]

    return timer


def test_bench_scale_shape_and_identity_gate():
    result = bench_scale(60, repeats=1, timer=ticking_clock())
    assert result["num_samples"] == 60
    assert result["identical"] is True
    assert result["identical_fault_free"] is True
    assert result["identical_faulted"] is True
    sim = result["epoch_simulation"]
    assert set(sim["seconds"]) == set(KERNELS)
    assert all(value > 0 for value in sim["seconds"].values())
    assert sim["speedup_vs_reference"] > 0
    assert sim["fast_us_per_sample"] > 0


def test_aux_gates_all_identical():
    gates = aux_gates(num_samples=64, seed=7)
    assert gates == {
        "spans_identical": True,
        "timeline_identical": True,
        "sharded_identical": True,
        "multijob_identical": True,
    }


def test_run_bench_report_schema():
    report = run_bench(scales=[40, 80], repeats=1, timer=ticking_clock())
    assert report["schema"] == SCHEMA
    assert report["kernels"] == list(KERNELS)
    assert [entry["num_samples"] for entry in report["scales"]] == [40, 80]
    assert report["largest_scale"] == 80
    assert report["identical"] is True
    assert report["largest_scale_speedup"] > 0
    assert report["profiler_e2e"]["identical"] is True
    for kernel in KERNELS:
        assert report["allocation"][kernel]["peak_bytes"] > 0
        assert report["allocation"][kernel]["live_blocks"] > 0
    json.dumps(report)  # the report must be JSON-serializable as-is


def test_million_entry_scaled_down():
    entry = bench_million(num_samples=200, seed=7, timer=ticking_clock())
    assert entry["completed"] is True
    assert entry["num_samples"] == 200
    seconds = entry["seconds"]
    assert seconds["total"] >= seconds["simulate_epoch"]
    assert entry["traffic_bytes"] > 0


def test_main_writes_report(tmp_path):
    out = tmp_path / "BENCH_sim.json"
    assert main(["--scales", "40", "--repeats", "1", "--out", str(out)]) == 0
    report = json.loads(out.read_text())
    assert report["schema"] == SCHEMA
    assert report["identical"] is True
    assert "million" not in report
