"""TrainerSim tests: the event-driven epoch against the analytic model."""

import dataclasses

import pytest

from repro.cluster.spec import standard_cluster
from repro.cluster.trainer import TrainerSim, WorkAdjustment
from repro.workloads.models import get_model_profile


@pytest.fixture
def trainer(openimages_small, pipeline, alexnet):
    return TrainerSim(
        dataset=openimages_small,
        pipeline=pipeline,
        model=alexnet,
        spec=standard_cluster(storage_cores=8),
        batch_size=64,
        seed=0,
    )


class TestSampleWork:
    def test_split_zero_ships_raw(self, trainer, openimages_small):
        work = trainer.sample_work(0, split=0, epoch=0)
        assert work.wire_bytes == openimages_small.raw_meta(0).nbytes
        assert work.prefix_cpu_s == 0.0
        assert work.suffix_cpu_s > 0.0

    def test_full_split_ships_tensor(self, trainer):
        work = trainer.sample_work(0, split=5, epoch=0)
        assert work.wire_bytes == 224 * 224 * 3 * 4
        assert work.suffix_cpu_s == 0.0

    def test_split_two_ships_cropped_pixels(self, trainer):
        work = trainer.sample_work(0, split=2, epoch=0)
        assert work.wire_bytes == 224 * 224 * 3

    def test_costs_partition(self, trainer):
        full = trainer.sample_work(0, split=0, epoch=0).suffix_cpu_s
        for split in range(6):
            work = trainer.sample_work(0, split=split, epoch=0)
            assert work.prefix_cpu_s + work.suffix_cpu_s == pytest.approx(full)

    def test_invalid_split_rejected(self, trainer):
        with pytest.raises(ValueError):
            trainer.sample_work(0, split=6, epoch=0)


class TestRunEpoch:
    def test_no_offload_traffic_is_raw_plus_overhead(self, trainer, openimages_small):
        stats = trainer.run_epoch(splits=None, epoch=0)
        spec = trainer.spec
        expected = openimages_small.total_raw_bytes + len(openimages_small) * spec.response_overhead_bytes
        assert stats.traffic_bytes == expected
        assert stats.offloaded_samples == 0

    def test_epoch_time_close_to_analytic_bound(self, trainer):
        from repro.cluster.epoch_model import EpochModel

        stats = trainer.run_epoch(splits=None, epoch=0)
        bound = EpochModel(trainer.spec).estimate(stats.analytic).epoch_time_s
        assert stats.epoch_time_s >= bound * 0.999
        assert stats.epoch_time_s <= bound * 1.25  # pipeline fill + jitter

    def test_offloading_reduces_traffic_for_large_samples(self, trainer, openimages_small):
        threshold = 224 * 224 * 3
        splits = [
            2 if openimages_small.raw_meta(i).nbytes > threshold else 0
            for i in range(len(openimages_small))
        ]
        base = trainer.run_epoch(splits=None, epoch=0)
        off = trainer.run_epoch(splits=splits, epoch=0)
        assert off.traffic_bytes < base.traffic_bytes
        assert off.epoch_time_s < base.epoch_time_s
        assert off.offloaded_samples == sum(1 for s in splits if s > 0)

    def test_storage_utilization_reported(self, trainer, openimages_small):
        splits = [2] * len(openimages_small)
        stats = trainer.run_epoch(splits=splits, epoch=0)
        assert 0.0 < stats.storage_cpu_utilization <= 1.0

    def test_gpu_utilization_in_range(self, trainer):
        stats = trainer.run_epoch(splits=None, epoch=0)
        assert 0.0 < stats.gpu_utilization <= 1.0

    def test_num_batches(self, trainer, openimages_small):
        stats = trainer.run_epoch(splits=None, epoch=0)
        assert stats.num_batches == (len(openimages_small) + 63) // 64

    def test_splits_length_validated(self, trainer):
        with pytest.raises(ValueError):
            trainer.run_epoch(splits=[0, 0], epoch=0)

    def test_offload_without_storage_cores_rejected(self, openimages_small, pipeline, alexnet):
        trainer = TrainerSim(
            openimages_small, pipeline, alexnet,
            spec=standard_cluster(storage_cores=0), batch_size=64,
        )
        with pytest.raises(ValueError):
            trainer.run_epoch(splits=[1] * len(openimages_small), epoch=0)

    def test_deterministic(self, trainer):
        a = trainer.run_epoch(splits=None, epoch=1)
        b = trainer.run_epoch(splits=None, epoch=1)
        assert a.epoch_time_s == b.epoch_time_s
        assert a.traffic_bytes == b.traffic_bytes

    def test_fewer_storage_cores_never_faster(self, openimages_small, pipeline, alexnet):
        threshold = 224 * 224 * 3
        splits = [
            2 if openimages_small.raw_meta(i).nbytes > threshold else 0
            for i in range(len(openimages_small))
        ]
        times = []
        for cores in (1, 4, 16):
            trainer = TrainerSim(
                openimages_small, pipeline, alexnet,
                spec=standard_cluster(storage_cores=cores), batch_size=64,
            )
            times.append(trainer.run_epoch(splits=splits, epoch=0).epoch_time_s)
        assert times[0] >= times[1] >= times[2]


class TestWorkAdjustment:
    def test_adjustment_changes_wire_and_cpu(self, trainer):
        splits = [2] + [0] * (len(trainer.dataset) - 1)
        adj = {0: WorkAdjustment(wire_bytes_delta=-1000, extra_storage_cpu_s=0.001)}
        base = trainer.run_epoch(splits=splits, epoch=0)
        adjusted = trainer.run_epoch(splits=splits, epoch=0, adjustments=adj)
        assert adjusted.traffic_bytes == base.traffic_bytes - 1000

    def test_negative_wire_rejected(self, trainer):
        splits = [2] + [0] * (len(trainer.dataset) - 1)
        adj = {0: WorkAdjustment(wire_bytes_delta=-10**12)}
        with pytest.raises(ValueError):
            trainer.run_epoch(splits=splits, epoch=0, adjustments=adj)

    def test_storage_work_on_unoffloaded_sample_rejected(self, trainer):
        adj = {0: WorkAdjustment(extra_storage_cpu_s=0.5)}
        with pytest.raises(ValueError):
            trainer.run_epoch(splits=None, epoch=0, adjustments=adj)


class TestBandwidthScaling:
    def test_halving_bandwidth_roughly_doubles_io_bound_epoch(
        self, openimages_small, pipeline, alexnet
    ):
        times = {}
        for mbps in (500.0, 250.0):
            trainer = TrainerSim(
                openimages_small, pipeline, alexnet,
                spec=standard_cluster(storage_cores=8, bandwidth_mbps=mbps),
                batch_size=64,
            )
            times[mbps] = trainer.run_epoch(splits=None, epoch=0).epoch_time_s
        assert times[250.0] == pytest.approx(2 * times[500.0], rel=0.1)
