"""Discrete-event simulation kernel tests."""

import pytest

from repro.cluster.sim import (
    AllOf,
    Environment,
    Event,
    FairResource,
    Resource,
    SimulationError,
    Store,
    hold,
)


class TestEnvironment:
    def test_clock_starts_at_zero(self):
        assert Environment().now == 0.0

    def test_timeout_advances_clock(self):
        env = Environment()

        def proc():
            yield env.timeout(2.5)
            yield env.timeout(1.5)

        env.process(proc())
        env.run()
        assert env.now == 4.0

    def test_run_until_stops_early(self):
        env = Environment()

        def proc():
            yield env.timeout(10.0)

        env.process(proc())
        env.run(until=3.0)
        assert env.now == 3.0

    def test_events_fire_in_time_order(self):
        env = Environment()
        log = []

        def proc(delay, tag):
            yield env.timeout(delay)
            log.append((env.now, tag))

        env.process(proc(3.0, "c"))
        env.process(proc(1.0, "a"))
        env.process(proc(2.0, "b"))
        env.run()
        assert log == [(1.0, "a"), (2.0, "b"), (3.0, "c")]

    def test_simultaneous_events_fifo(self):
        env = Environment()
        log = []

        def proc(tag):
            yield env.timeout(1.0)
            log.append(tag)

        for tag in "abc":
            env.process(proc(tag))
        env.run()
        assert log == ["a", "b", "c"]

    def test_negative_timeout_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.timeout(-1.0)


class TestEventsAndProcesses:
    def test_event_value_delivered_to_waiter(self):
        env = Environment()
        received = []
        evt = env.event()

        def waiter():
            value = yield evt
            received.append(value)

        def firer():
            yield env.timeout(1.0)
            evt.trigger("payload")

        env.process(waiter())
        env.process(firer())
        env.run()
        assert received == ["payload"]

    def test_event_cannot_trigger_twice(self):
        env = Environment()
        evt = env.event()
        evt.trigger()
        with pytest.raises(SimulationError):
            evt.trigger()

    def test_process_return_value_is_event_value(self):
        env = Environment()
        results = []

        def child():
            yield env.timeout(1.0)
            return 42

        def parent():
            value = yield env.process(child())
            results.append(value)

        env.process(parent())
        env.run()
        assert results == [42]

    def test_yielding_non_event_raises(self):
        env = Environment()

        def bad():
            yield 5

        env.process(bad())
        with pytest.raises(SimulationError):
            env.run()

    def test_waiting_on_already_processed_event_resumes(self):
        env = Environment()
        log = []
        evt = env.event()
        evt.trigger("early")

        def late_waiter():
            yield env.timeout(5.0)
            value = yield evt
            log.append((env.now, value))

        env.process(late_waiter())
        env.run()
        assert log == [(5.0, "early")]

    def test_long_chain_of_processed_events_no_recursion(self):
        env = Environment()
        events = [env.event() for _ in range(5000)]
        for evt in events:
            evt.trigger(1)

        def consumer():
            total = 0
            for evt in events:
                total += yield evt
            return total

        proc = env.process(consumer())
        env.run()
        assert proc.value == 5000


class TestAllOf:
    def test_waits_for_all_children(self):
        env = Environment()
        done = []

        def child(delay):
            yield env.timeout(delay)
            return delay

        def parent():
            values = yield env.all_of([env.process(child(d)) for d in (3.0, 1.0, 2.0)])
            done.append((env.now, values))

        env.process(parent())
        env.run()
        assert done == [(3.0, [3.0, 1.0, 2.0])]

    def test_empty_all_of_fires_immediately(self):
        env = Environment()
        log = []

        def parent():
            yield env.all_of([])
            log.append(env.now)

        env.process(parent())
        env.run()
        assert log == [0.0]


class TestResource:
    def test_capacity_limits_concurrency(self):
        env = Environment()
        cpu = Resource(env, capacity=2)
        finish_times = []

        def worker():
            req = cpu.acquire()
            yield req
            yield env.timeout(1.0)
            cpu.release(req)
            finish_times.append(env.now)

        for _ in range(4):
            env.process(worker())
        env.run()
        assert finish_times == [1.0, 1.0, 2.0, 2.0]

    def test_fifo_granting(self):
        env = Environment()
        gate = Resource(env, capacity=1)
        order = []

        def worker(tag, arrive):
            yield env.timeout(arrive)
            req = gate.acquire()
            yield req
            order.append(tag)
            yield env.timeout(10.0)
            gate.release(req)

        env.process(worker("first", 0.0))
        env.process(worker("second", 1.0))
        env.process(worker("third", 2.0))
        env.run()
        assert order == ["first", "second", "third"]

    def test_busy_time_accounting(self):
        env = Environment()
        cpu = Resource(env, capacity=1)
        env.process(hold(env, cpu, 3.0))
        env.run()
        assert cpu.busy_time == pytest.approx(3.0)
        assert cpu.utilization(6.0) == pytest.approx(0.5)

    def test_utilization_of_multi_slot_resource(self):
        env = Environment()
        cpu = Resource(env, capacity=2)
        env.process(hold(env, cpu, 4.0))
        env.process(hold(env, cpu, 2.0))
        env.run()
        assert cpu.utilization(4.0) == pytest.approx(6.0 / 8.0)

    def test_release_of_ungranted_request_raises(self):
        env = Environment()
        cpu = Resource(env, capacity=1)
        with pytest.raises(SimulationError):
            cpu.release(env.event())

    def test_queue_length_visible(self):
        env = Environment()
        cpu = Resource(env, capacity=1)
        cpu.acquire()
        cpu.acquire()
        cpu.acquire()
        assert cpu.in_use == 1
        assert cpu.queue_length == 2

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            Resource(Environment(), capacity=0)

    def test_zero_horizon_utilization(self):
        env = Environment()
        assert Resource(env, 1).utilization(0.0) == 0.0


class TestFairResource:
    def run_flows(self, bursts, hold_s=1.0):
        """Each flow enqueues its burst at t=0; returns per-flow finish times."""
        env = Environment()
        link = FairResource(env, capacity=1)
        finish = {}

        def flow(key, count):
            for _ in range(count):
                req = link.acquire(key)
                yield req
                yield env.timeout(hold_s)
                link.release(req)
            finish[key] = env.now

        for key, count in bursts.items():
            env.process(flow(key, count))
        env.run()
        return finish

    def test_round_robin_interleaves_bursts(self):
        # Flow a bursts 4 requests before flow b's 4; FIFO would finish a
        # at t=4 and b at t=8.  Fair queueing alternates them.
        finish = self.run_flows({"a": 4, "b": 4})
        assert finish["a"] == pytest.approx(7.0)  # a,b,a,b,a,b,a(,b)
        assert finish["b"] == pytest.approx(8.0)

    def test_equal_flows_finish_together(self):
        finish = self.run_flows({"a": 10, "b": 10, "c": 10})
        values = sorted(finish.values())
        assert values[-1] - values[0] <= 2.0 + 1e-9

    def test_single_flow_behaves_like_fifo(self):
        finish = self.run_flows({"only": 5})
        assert finish["only"] == pytest.approx(5.0)

    def test_short_flow_not_starved_by_long_one(self):
        finish = self.run_flows({"elephant": 100, "mouse": 2})
        assert finish["mouse"] < 6.0  # not 100+

    def test_busy_accounting_still_works(self):
        env = Environment()
        link = FairResource(env, capacity=1)
        env.process(hold(env, link, 3.0))
        env.run()
        assert link.busy_time == pytest.approx(3.0)

    def test_queue_length(self):
        env = Environment()
        link = FairResource(env, capacity=1)
        link.acquire("a")
        link.acquire("a")
        link.acquire("b")
        assert link.in_use == 1
        assert link.queue_length == 2

    def test_release_of_ungranted_raises(self):
        env = Environment()
        link = FairResource(env, capacity=1)
        with pytest.raises(SimulationError):
            link.release(env.event())

    def test_front_acquisition_preserves_payload_order(self):
        # Many 3-chunk payloads of one flow, all queued at t=0.  With
        # front=True continuations, at most two payloads interleave at a
        # time and delivery order is preserved -- without it, all four
        # would round-robin and finish together at the very end.
        env = Environment()
        link = FairResource(env, capacity=1)
        finish = {}

        def payload(tag):
            for chunk in range(3):
                req = link.acquire("flow", front=chunk > 0)
                yield req
                yield env.timeout(1.0)
                link.release(req)
            finish[tag] = env.now

        for index in range(4):
            env.process(payload(index))
        env.run()
        assert finish == {0: 5.0, 1: 6.0, 2: 11.0, 3: 12.0}
        # Order preserved: payload k always beats payload k+2.
        assert finish[0] < finish[2] and finish[1] < finish[3]

    def test_front_acquisition_on_plain_resource(self):
        env = Environment()
        gate = Resource(env, capacity=1)
        order = []

        def holder():
            req = gate.acquire()
            yield req
            yield env.timeout(1.0)
            gate.release(req)

        def waiter(tag, front):
            yield env.timeout(0.1)
            req = gate.acquire(front=front)
            yield req
            order.append(tag)
            yield env.timeout(1.0)
            gate.release(req)

        env.process(holder())
        env.process(waiter("normal", False))
        env.process(waiter("jumper", True))
        env.run()
        assert order == ["jumper", "normal"]


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)
        store.put("x")
        got = []

        def getter():
            item = yield store.get()
            got.append(item)

        env.process(getter())
        env.run()
        assert got == ["x"]

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        got = []

        def getter():
            item = yield store.get()
            got.append((env.now, item))

        def putter():
            yield env.timeout(2.0)
            store.put("late")

        env.process(getter())
        env.process(putter())
        env.run()
        assert got == [(2.0, "late")]

    def test_fifo_order(self):
        env = Environment()
        store = Store(env)
        for item in (1, 2, 3):
            store.put(item)
        got = []

        def getter():
            for _ in range(3):
                got.append((yield store.get()))

        env.process(getter())
        env.run()
        assert got == [1, 2, 3]

    def test_len(self):
        env = Environment()
        store = Store(env)
        store.put(1)
        store.put(2)
        assert len(store) == 2


class TestInterrupt:
    def test_interrupt_delivers_cause_at_current_time(self):
        from repro.cluster.sim import Interrupt

        env = Environment()
        seen = []

        def sleeper():
            try:
                yield env.timeout(100.0)
            except Interrupt as exc:
                seen.append((env.now, exc.cause))

        def saboteur(victim):
            yield env.timeout(3.0)
            victim.interrupt(cause="node-crash")

        victim = env.process(sleeper())
        env.process(saboteur(victim))
        env.run()
        assert seen == [(3.0, "node-crash")]

    def test_interrupted_process_can_continue(self):
        from repro.cluster.sim import Interrupt

        env = Environment()
        log = []

        def worker():
            try:
                yield env.timeout(100.0)
            except Interrupt:
                pass
            yield env.timeout(2.0)  # keeps running after the interrupt
            log.append(env.now)

        def saboteur(victim):
            yield env.timeout(1.0)
            victim.interrupt()

        victim = env.process(worker())
        env.process(saboteur(victim))
        env.run()
        assert log == [3.0]

    def test_abandoned_event_does_not_resume_the_process(self):
        from repro.cluster.sim import Interrupt

        env = Environment()
        resumes = []

        def worker():
            try:
                yield env.timeout(5.0)
            except Interrupt:
                resumes.append("interrupted")
                yield env.timeout(10.0)
                resumes.append("second-wait")

        def saboteur(victim):
            yield env.timeout(1.0)
            victim.interrupt()

        victim = env.process(worker())
        env.process(saboteur(victim))
        env.run()
        # The original t=5 timeout fires into the void; the process resumes
        # only from its post-interrupt wait, at t=11.
        assert resumes == ["interrupted", "second-wait"]
        assert env.now == 11.0

    def test_interrupt_after_completion_is_a_noop(self):
        env = Environment()

        def quick():
            yield env.timeout(1.0)
            return "done"

        proc = env.process(quick())
        env.run()
        proc.interrupt(cause="too late")
        assert proc.value == "done"

    def test_uncaught_interrupt_ends_the_process(self):
        from repro.cluster.sim import Interrupt

        env = Environment()

        def oblivious():
            yield env.timeout(100.0)
            return "never"

        def saboteur(victim):
            yield env.timeout(2.0)
            victim.interrupt(cause="brownout")

        victim = env.process(oblivious())
        env.process(saboteur(victim))
        env.run()
        assert isinstance(victim.value, Interrupt)
        assert victim.value.cause == "brownout"
        # The abandoned timeout still drains from the queue, so the clock
        # runs on to t=100 -- but the process ended at t=2.


class TestResourceCancel:
    def test_holds_tracks_grant_lifecycle(self):
        env = Environment()
        res = Resource(env, capacity=1)
        req = res.acquire()
        assert res.holds(req)
        res.release(req)
        assert not res.holds(req)

    def test_cancel_removes_a_waiting_request(self):
        env = Environment()
        res = Resource(env, capacity=1)
        first = res.acquire()
        second = res.acquire()  # queued
        third = res.acquire()  # queued behind it
        res.cancel(second)
        res.release(first)
        env.run()
        # The cancelled request is skipped; the third waiter gets the slot.
        assert not res.holds(second)
        assert res.holds(third)

    def test_cancel_granted_request_is_an_error(self):
        env = Environment()
        res = Resource(env, capacity=1)
        req = res.acquire()
        with pytest.raises(SimulationError):
            res.cancel(req)

    def test_fair_resource_cancel_clears_its_flow(self):
        env = Environment()
        res = FairResource(env, capacity=1)
        first = res.acquire(key="a")
        waiting = res.acquire(key="b")
        res.cancel(waiting)
        res.release(first)
        env.run()
        assert not res.holds(waiting)
        follow_up = res.acquire(key="c")
        assert res.holds(follow_up)  # the slot was genuinely free

    def test_fair_resource_cancel_granted_is_an_error(self):
        env = Environment()
        res = FairResource(env, capacity=1)
        req = res.acquire(key="a")
        with pytest.raises(SimulationError):
            res.cancel(req)
