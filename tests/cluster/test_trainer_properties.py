"""Property-based invariants of the trainer simulation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.epoch_model import EpochModel
from repro.cluster.spec import standard_cluster
from repro.cluster.trainer import TrainerSim
from repro.data.trace import TraceDataset
from repro.preprocessing.pipeline import standard_pipeline
from repro.workloads.models import get_model_profile

CROP_BYTES = 224 * 224 * 3


@st.composite
def small_workloads(draw):
    count = draw(st.integers(4, 24))
    sizes = [draw(st.integers(5_000, 900_000)) for _ in range(count)]
    heights = [draw(st.integers(64, 1200)) for _ in range(count)]
    widths = [draw(st.integers(64, 1200)) for _ in range(count)]
    dataset = TraceDataset(sizes, heights, widths, name="prop")
    splits = [
        draw(st.sampled_from([0, 0, 2, 3, 5])) for _ in range(count)
    ]
    cores = draw(st.integers(1, 8))
    mbps = draw(st.floats(20.0, 2_000.0))
    return dataset, splits, cores, mbps


class TestTrainerInvariants:
    @given(workload=small_workloads())
    @settings(max_examples=25, deadline=None)
    def test_epoch_time_at_least_analytic_bound(self, workload):
        dataset, splits, cores, mbps = workload
        spec = standard_cluster(storage_cores=cores, bandwidth_mbps=mbps)
        trainer = TrainerSim(
            dataset, standard_pipeline(), get_model_profile("alexnet"),
            spec, batch_size=4,
        )
        stats = trainer.run_epoch(splits, epoch=0)
        bound = EpochModel(spec).estimate(stats.analytic).epoch_time_s
        assert stats.epoch_time_s >= bound * (1 - 1e-9)

    @given(workload=small_workloads())
    @settings(max_examples=25, deadline=None)
    def test_traffic_conservation(self, workload):
        dataset, splits, cores, mbps = workload
        spec = standard_cluster(storage_cores=cores, bandwidth_mbps=mbps)
        trainer = TrainerSim(
            dataset, standard_pipeline(), get_model_profile("alexnet"),
            spec, batch_size=4,
        )
        stats = trainer.run_epoch(splits, epoch=0)
        expected = 0
        for sid in dataset.sample_ids():
            work = trainer.sample_work(sid, splits[sid], epoch=0)
            expected += work.wire_bytes + spec.response_overhead_bytes
        assert stats.traffic_bytes == expected
        assert stats.traffic_bytes == int(stats.analytic.traffic_bytes)

    @given(workload=small_workloads())
    @settings(max_examples=15, deadline=None)
    def test_utilizations_within_unit_interval(self, workload):
        dataset, splits, cores, mbps = workload
        spec = standard_cluster(storage_cores=cores, bandwidth_mbps=mbps)
        trainer = TrainerSim(
            dataset, standard_pipeline(), get_model_profile("alexnet"),
            spec, batch_size=4,
        )
        stats = trainer.run_epoch(splits, epoch=0)
        for value in (
            stats.gpu_utilization,
            stats.compute_cpu_utilization,
            stats.storage_cpu_utilization,
            stats.link_utilization,
        ):
            assert 0.0 <= value <= 1.0 + 1e-9

    @given(workload=small_workloads())
    @settings(max_examples=15, deadline=None)
    def test_offloading_never_ships_more_than_raw(self, workload):
        dataset, splits, cores, mbps = workload
        spec = standard_cluster(storage_cores=cores, bandwidth_mbps=mbps)
        trainer = TrainerSim(
            dataset, standard_pipeline(), get_model_profile("alexnet"),
            spec, batch_size=4,
        )
        # Clamp to the per-sample minimum split: traffic must be <= raw.
        from repro.preprocessing.records import build_record

        min_splits = [
            build_record(trainer.pipeline, dataset.raw_meta(i), i, seed=0).min_stage
            for i in dataset.sample_ids()
        ]
        offloaded = trainer.run_epoch(min_splits, epoch=0)
        raw = trainer.run_epoch(None, epoch=0)
        assert offloaded.traffic_bytes <= raw.traffic_bytes
