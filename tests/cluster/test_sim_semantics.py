"""Kernel-semantics regression suite: the contract the DES rewrite must keep.

These tests were pinned against the *seed* kernel before the performance
overhaul (see docs/performance.md) and encode its observable semantics:
FIFO grant order under arbitrary interleavings of acquire / release /
cancel / interrupt, ``AllOf`` joins with already-fired children, interrupt
delivery windows (including interrupting a process that already finished),
and queue-mediated resumption (no synchronous jumps ahead of already
scheduled same-time events).  The optimized kernel must pass every test
unchanged; the frozen reference copy in ``repro.cluster.refsim`` is
parameterized in alongside it so the two can never drift apart silently.
"""

import random

import pytest

import repro.cluster.refsim as refsim
import repro.cluster.sim as optsim
from repro.cluster.sim import Interrupt, SimulationError

#: Both kernels must satisfy the identical contract.  ``sim`` is the live
#: (optimized) kernel; ``refsim`` is the byte-for-byte seed snapshot.
KERNELS = [pytest.param(optsim, id="sim"), pytest.param(refsim, id="refsim")]


@pytest.fixture(params=KERNELS)
def kernel(request):
    return request.param


# ---------------------------------------------------------------------------
# Resource FIFO ordering under interleaved acquire / release / interrupt
# ---------------------------------------------------------------------------


class TestResourceFifo:
    def test_grant_order_is_request_order(self, kernel):
        env = kernel.Environment()
        res = kernel.Resource(env, capacity=1)
        order = []

        def worker(name, hold):
            req = res.acquire()
            yield req
            order.append(name)
            yield env.timeout(hold)
            res.release(req)

        for name in ("a", "b", "c", "d"):
            env.process(worker(name, 1.0))
        env.run()
        assert order == ["a", "b", "c", "d"]

    def test_front_queues_ahead_of_waiters_but_behind_holder(self, kernel):
        env = kernel.Environment()
        res = kernel.Resource(env, capacity=1)
        order = []

        def holder():
            req = res.acquire()
            yield req
            yield env.timeout(1.0)
            res.release(req)

        def plain(name):
            req = res.acquire()
            yield req
            order.append(name)
            res.release(req)

        def jumper(name):
            req = res.acquire(front=True)
            yield req
            order.append(name)
            res.release(req)

        env.process(holder())
        env.run()  # holder owns the slot at t=1.0 release
        env = kernel.Environment()
        res = kernel.Resource(env, capacity=1)
        order = []
        env.process(holder())
        env.process(plain("p1"))
        env.process(plain("p2"))
        env.process(jumper("j"))
        env.run()
        assert order == ["j", "p1", "p2"]

    def test_interrupted_waiter_leaves_queue_without_consuming_slot(self, kernel):
        env = kernel.Environment()
        res = kernel.Resource(env, capacity=1)
        order = []

        def holder():
            req = res.acquire()
            yield req
            yield env.timeout(2.0)
            res.release(req)

        def waiter(name):
            req = res.acquire()
            try:
                yield req
            except Interrupt:
                res.cancel(req)
                order.append(f"{name}-interrupted")
                return
            order.append(name)
            res.release(req)

        def killer(victim):
            yield env.timeout(1.0)
            victim.interrupt("die")

        env.process(holder())
        v = env.process(waiter("v"))
        env.process(waiter("w"))
        env.process(killer(v))
        env.run()
        assert order == ["v-interrupted", "w"]
        assert res.in_use == 0
        assert res.queue_length == 0

    def test_interrupted_holder_releases_slot_to_next_waiter(self, kernel):
        env = kernel.Environment()
        res = kernel.Resource(env, capacity=1)
        order = []

        def holder():
            req = res.acquire()
            try:
                yield req
                yield env.timeout(10.0)
            except Interrupt:
                if res.holds(req):
                    res.release(req)
                order.append("holder-interrupted")
                return
            res.release(req)

        def waiter():
            req = res.acquire()
            yield req
            order.append(("waiter", env.now))
            res.release(req)

        def killer(victim):
            yield env.timeout(3.0)
            victim.interrupt()

        h = env.process(holder())
        env.process(waiter())
        env.process(killer(h))
        env.run()
        assert order == ["holder-interrupted", ("waiter", 3.0)]

    def test_busy_time_survives_interleaved_interrupts(self, kernel):
        env = kernel.Environment()
        res = kernel.Resource(env, capacity=2)

        def holder(delay, hold):
            yield env.timeout(delay)
            req = res.acquire()
            yield req
            yield env.timeout(hold)
            res.release(req)

        def doomed():
            req = res.acquire()
            try:
                yield req
                yield env.timeout(100.0)
            except Interrupt:
                res.release(req)

        def killer(victim):
            yield env.timeout(1.5)
            victim.interrupt()

        d = env.process(doomed())
        env.process(holder(0.0, 2.0))
        env.process(holder(0.5, 1.0))
        env.process(killer(d))
        env.run()
        # doomed held [0, 1.5], holder1 [0, 2.0], holder2 granted at 1.5
        # (capacity 2: slots busy until doomed dies) and held 1.0.
        assert res.busy_time == pytest.approx(1.5 + 2.0 + 1.0)

    def test_randomized_interleavings_match_fifo_model(self, kernel):
        """Property test: arbitrary acquire/release/interrupt interleavings
        grant in request order, never exceed capacity, and leak nothing."""
        for trial in range(12):
            rng = random.Random(1000 + trial)
            env = kernel.Environment()
            capacity = rng.randint(1, 3)
            res = kernel.Resource(env, capacity=capacity)
            n = rng.randint(4, 12)
            grant_log = []
            request_log = []
            live = {"holding": 0, "peak": 0}

            def worker(name, start, hold, rng=rng):
                yield env.timeout(start)
                request_log.append(name)
                req = res.acquire()
                try:
                    yield req
                except Interrupt:
                    res.cancel(req)
                    return
                grant_log.append(name)
                live["holding"] += 1
                live["peak"] = max(live["peak"], live["holding"])
                try:
                    yield env.timeout(hold)
                except Interrupt:
                    pass
                live["holding"] -= 1
                res.release(req)

            procs = []
            for i in range(n):
                start = rng.random() * 4.0
                hold = rng.random() * 2.0
                procs.append(env.process(worker(i, start, hold)))

            def chaos(victims, rng=rng):
                while True:
                    yield env.timeout(rng.random() * 1.5)
                    target = rng.choice(victims)
                    target.interrupt("chaos")
                    if rng.random() < 0.3:
                        return

            env.process(chaos(procs))
            env.run()
            assert live["peak"] <= capacity
            assert res.in_use == 0
            assert res.queue_length == 0
            # FIFO: the granted subsequence respects request order.
            positions = {name: i for i, name in enumerate(request_log)}
            granted_positions = [positions[name] for name in grant_log]
            assert granted_positions == sorted(granted_positions)


# ---------------------------------------------------------------------------
# AllOf joins
# ---------------------------------------------------------------------------


class TestAllOfSemantics:
    def test_all_children_already_fired(self, kernel):
        env = kernel.Environment()
        done = []

        def child(value):
            yield env.timeout(0.5)
            return value

        c1 = env.process(child(1))
        c2 = env.process(child(2))
        env.run()
        assert c1.processed and c2.processed

        def joiner():
            values = yield env.all_of([c1, c2])
            done.append(values)

        env.process(joiner())
        env.run()
        assert done == [[1, 2]]

    def test_mixed_fired_and_pending_children(self, kernel):
        env = kernel.Environment()
        done = []

        def fast():
            yield env.timeout(0.1)
            return "fast"

        def slow():
            yield env.timeout(5.0)
            return "slow"

        f = env.process(fast())
        s = env.process(slow())

        def joiner():
            yield env.timeout(1.0)  # fast already fired, slow pending
            assert f.processed and not s.processed
            values = yield env.all_of([f, s])
            done.append((env.now, values))

        env.process(joiner())
        env.run()
        assert done == [(5.0, ["fast", "slow"])]

    def test_empty_all_of_fires_at_current_time(self, kernel):
        env = kernel.Environment()
        done = []

        def joiner():
            yield env.timeout(2.0)
            values = yield env.all_of([])
            done.append((env.now, values))

        env.process(joiner())
        env.run()
        assert done == [(2.0, [])]

    def test_all_of_value_order_is_child_order_not_firing_order(self, kernel):
        env = kernel.Environment()
        done = []

        def child(delay, value):
            yield env.timeout(delay)
            return value

        slow = env.process(child(3.0, "slow"))
        fast = env.process(child(1.0, "fast"))

        def joiner():
            values = yield env.all_of([slow, fast])
            done.append(values)

        env.process(joiner())
        env.run()
        assert done == [["slow", "fast"]]


# ---------------------------------------------------------------------------
# Interrupt delivery windows
# ---------------------------------------------------------------------------


class TestInterruptDelivery:
    def test_interrupt_after_completion_is_noop(self, kernel):
        env = kernel.Environment()

        def quick():
            yield env.timeout(1.0)
            return "done"

        p = env.process(quick())
        env.run()
        assert p.processed and p.value == "done"
        p.interrupt("too late")  # must not raise, must not reschedule
        env.run()
        assert p.value == "done"

    def test_double_interrupt_delivers_both_or_ends_cleanly(self, kernel):
        env = kernel.Environment()
        caught = []

        def tough():
            try:
                yield env.timeout(10.0)
            except Interrupt as exc:
                caught.append(exc.cause)
            try:
                yield env.timeout(10.0)
            except Interrupt as exc:
                caught.append(exc.cause)

        p = env.process(tough())

        def killer():
            yield env.timeout(1.0)
            p.interrupt("first")
            yield env.timeout(1.0)
            p.interrupt("second")

        env.process(killer())
        env.run()
        assert caught == ["first", "second"]

    def test_uncaught_interrupt_becomes_process_value(self, kernel):
        env = kernel.Environment()

        def victim():
            yield env.timeout(10.0)

        p = env.process(victim())

        def killer():
            yield env.timeout(1.0)
            p.interrupt("cause-object")

        env.process(killer())
        env.run()
        assert p.processed
        assert isinstance(p.value, Interrupt)
        assert p.value.cause == "cause-object"

    def test_abandoned_event_still_fires_without_resuming_victim(self, kernel):
        env = kernel.Environment()
        resumed = []

        def victim():
            try:
                yield env.timeout(5.0)
                resumed.append("not-interrupted")
            except Interrupt:
                resumed.append("interrupted")

        p = env.process(victim())

        def killer():
            yield env.timeout(1.0)
            p.interrupt()

        env.process(killer())
        env.run()
        assert resumed == ["interrupted"]
        assert env.now == 5.0  # the abandoned timeout still drained

    def test_interrupt_delivery_goes_through_queue(self, kernel):
        """interrupt() must not throw synchronously into the generator."""
        env = kernel.Environment()
        log = []

        def victim():
            try:
                yield env.timeout(10.0)
            except Interrupt:
                log.append(("victim", env.now))

        p = env.process(victim())

        def killer():
            yield env.timeout(1.0)
            p.interrupt()
            log.append(("killer-after-interrupt-call", env.now))

        env.process(killer())
        env.run()
        # The killer's code after interrupt() runs before delivery.
        assert log == [("killer-after-interrupt-call", 1.0), ("victim", 1.0)]

    def test_interrupt_while_waiting_on_already_fired_event(self, kernel):
        """The relay window: a process waiting on an *already processed*
        event sits on a same-time relay; an interrupt inside that window
        must win, and the abandoned relay must not resurrect it."""
        env = kernel.Environment()
        log = []
        fired = env.event()
        fired.trigger("early")
        env.run()  # fired is processed before anyone waits on it
        assert fired.processed

        def victim():
            yield env.timeout(1.0)
            try:
                yield fired  # processed -> queued relay at t=1
                log.append("resumed")
            except Interrupt:
                log.append("interrupted")

        p = env.process(victim())

        def killer():
            # Scheduled after the victim, so at t=1 this runs while the
            # victim is parked on its relay.
            yield env.timeout(1.0)
            p.interrupt("window")

        env.process(killer())
        env.run()
        assert log == ["interrupted"]


# ---------------------------------------------------------------------------
# Queue-mediated resumption and error paths
# ---------------------------------------------------------------------------


class TestSchedulingDiscipline:
    def test_already_fired_event_resumes_after_queued_same_time_events(self, kernel):
        env = kernel.Environment()
        log = []
        fired = env.event()
        fired.trigger("early")

        def other():
            yield env.timeout(1.0)
            log.append("other")

        def waiter():
            yield env.timeout(1.0)
            value = yield fired  # processed long ago -> queue relay
            log.append(("waiter", value))

        env.process(waiter())
        env.process(other())
        env.run()
        # waiter's resumption is queued, so `other` (scheduled at the same
        # virtual time, earlier in FIFO order) runs first.
        assert log == ["other", ("waiter", "early")]

    def test_deep_chain_of_fired_events_does_not_recurse(self, kernel):
        env = kernel.Environment()
        fired = []
        for _ in range(4000):
            e = env.event()
            e.trigger()
            fired.append(e)
        env.run()

        def walker():
            for e in fired:
                yield e
            return "walked"

        p = env.process(walker())
        env.run()  # would blow the C stack if relays were synchronous
        assert p.value == "walked"

    def test_yielding_non_event_raises_simulation_error(self, kernel):
        env = kernel.Environment()

        def bad():
            yield 42

        env.process(bad())
        with pytest.raises(SimulationError):
            env.run()

    def test_event_cannot_trigger_twice(self, kernel):
        env = kernel.Environment()
        e = env.event()
        e.trigger()
        with pytest.raises(SimulationError):
            e.trigger()

    def test_release_unacquired_raises(self, kernel):
        env = kernel.Environment()
        res = kernel.Resource(env, capacity=1)
        with pytest.raises(SimulationError):
            res.release(env.event())

    def test_cancel_granted_request_raises(self, kernel):
        env = kernel.Environment()
        res = kernel.Resource(env, capacity=1)

        def worker():
            req = res.acquire()
            yield req
            with pytest.raises(SimulationError):
                res.cancel(req)
            res.release(req)

        env.process(worker())
        env.run()


# ---------------------------------------------------------------------------
# FairResource rotation
# ---------------------------------------------------------------------------


class TestFairResourceSemantics:
    def test_rotation_interleaves_flows(self, kernel):
        env = kernel.Environment()
        res = kernel.FairResource(env, capacity=1)
        order = []

        def burst(flow, count):
            for i in range(count):
                req = res.acquire(flow)
                yield req
                order.append((flow, i))
                yield env.timeout(1.0)
                res.release(req)

        env.process(burst("a", 3))
        env.process(burst("b", 3))
        env.run()
        # After the first grant the flows alternate.
        assert order[:4] == [("a", 0), ("b", 0), ("a", 1), ("b", 1)]

    def test_front_continues_payload_within_flow(self, kernel):
        env = kernel.Environment()
        res = kernel.FairResource(env, capacity=1)
        order = []

        def chunked(flow, chunks):
            first = True
            for i in range(chunks):
                req = res.acquire(flow, front=not first)
                yield req
                order.append((flow, i))
                yield env.timeout(1.0)
                res.release(req)
                first = False

        env.process(chunked("a", 2))
        env.process(chunked("b", 2))
        env.run()
        flows = [f for f, _ in order]
        # Chunk continuation keeps intra-flow order while flows interleave.
        for flow in ("a", "b"):
            chunks = [i for f, i in order if f == flow]
            assert chunks == sorted(chunks)
        assert flows[0] != flows[1]  # rotation interleaved the two flows

    def test_cancelled_flow_request_drops_out(self, kernel):
        env = kernel.Environment()
        res = kernel.FairResource(env, capacity=1)
        order = []

        def holder():
            req = res.acquire("h")
            yield req
            yield env.timeout(2.0)
            res.release(req)

        def quitter():
            req = res.acquire("q")
            try:
                yield req
            except Interrupt:
                res.cancel(req)
                return
            order.append("q")
            res.release(req)

        def steady():
            req = res.acquire("s")
            yield req
            order.append("s")
            res.release(req)

        env.process(holder())
        q = env.process(quitter())
        env.process(steady())

        def killer():
            yield env.timeout(1.0)
            q.interrupt()

        env.process(killer())
        env.run()
        assert order == ["s"]
        assert res.queue_length == 0


# ---------------------------------------------------------------------------
# Store FIFO
# ---------------------------------------------------------------------------


class TestStoreSemantics:
    def test_items_and_getters_are_fifo(self, kernel):
        env = kernel.Environment()
        store = kernel.Store(env)
        got = []

        def consumer(name):
            item = yield store.get()
            got.append((name, item))

        def producer():
            yield env.timeout(1.0)
            store.put("x")
            store.put("y")

        env.process(consumer("c1"))
        env.process(consumer("c2"))
        env.process(producer())
        env.run()
        assert got == [("c1", "x"), ("c2", "y")]

    def test_put_before_get_buffers_in_order(self, kernel):
        env = kernel.Environment()
        store = kernel.Store(env)
        store.put(1)
        store.put(2)
        got = []

        def consumer():
            a = yield store.get()
            b = yield store.get()
            got.append((a, b))

        env.process(consumer())
        env.run()
        assert got == [(1, 2)]
