"""Byte-identity gates: the optimized kernels vs the frozen seed kernel.

``run_epoch(kernel="reference")`` replays the seed simulator
(:mod:`repro.cluster.refsim`) with the sequential work builder;
``kernel="auto"``/``"fast"`` run the optimized kernel, the vectorized
work builder, and (when eligible) the batched cursor engine.  Every test
here asserts the outputs are *equal down to the last float* -- the same
contract ``repro.cluster.bench`` enforces on every ``make bench`` run.
"""

import dataclasses
import json

import pytest

from repro.cluster.multijob import SharedJob, SharedLinkSim
from repro.cluster.sharded import ShardedTrainerSim, round_robin_placement
from repro.cluster.spec import standard_cluster
from repro.cluster.trainer import TrainerSim, WorkAdjustment
from repro.data.catalog import make_openimages
from repro.faults import FaultSchedule
from repro.preprocessing.pipeline import standard_pipeline
from repro.workloads.models import get_model_profile


def stats_fingerprint(stats) -> str:
    """Every float of an EpochStats, serialized exactly (spans excluded:
    Tracer objects carry no deterministic repr; span events are compared
    separately via span_fingerprint)."""
    payload = dataclasses.asdict(stats)
    payload.pop("spans", None)
    return json.dumps(payload, sort_keys=True, default=repr)


def span_fingerprint(stats) -> list:
    assert stats.spans is not None
    return [repr(event) for event in stats.spans.events]


@pytest.fixture(scope="module")
def world():
    spec = dataclasses.replace(standard_cluster(), prefetch_batches=2)
    dataset = make_openimages(num_samples=240, seed=11)
    trainer = TrainerSim(
        dataset=dataset,
        pipeline=standard_pipeline(),
        model=get_model_profile("alexnet"),
        spec=spec,
        batch_size=16,
        seed=3,
    )
    splits = [i % 6 for i in range(len(dataset))]
    return trainer, splits, spec, dataset


class TestSingleNodeIdentity:
    def test_fault_free_fast_engine(self, world):
        trainer, splits, _, _ = world
        ref = trainer.run_epoch(splits, epoch=1, kernel="reference")
        fast = trainer.run_epoch(splits, epoch=1, kernel="fast")
        assert stats_fingerprint(ref) == stats_fingerprint(fast)

    def test_auto_matches_fast_when_eligible(self, world):
        trainer, splits, _, _ = world
        fast = trainer.run_epoch(splits, epoch=1, kernel="fast")
        auto = trainer.run_epoch(splits, epoch=1)
        assert stats_fingerprint(fast) == stats_fingerprint(auto)

    def test_no_offload_plan(self, world):
        trainer, _, _, _ = world
        ref = trainer.run_epoch(splits=None, epoch=0, kernel="reference")
        fast = trainer.run_epoch(splits=None, epoch=0, kernel="fast")
        assert stats_fingerprint(ref) == stats_fingerprint(fast)

    def test_adjustments(self, world):
        trainer, splits, _, dataset = world
        adj = {
            i: WorkAdjustment(
                wire_bytes_delta=-64, extra_storage_cpu_s=1e-4, extra_compute_cpu_s=2e-4
            )
            for i in range(0, len(dataset), 7)
            if splits[i] > 0
        }
        ref = trainer.run_epoch(splits, epoch=1, adjustments=adj, kernel="reference")
        fast = trainer.run_epoch(splits, epoch=1, adjustments=adj, kernel="fast")
        assert stats_fingerprint(ref) == stats_fingerprint(fast)

    def test_faulted_run_on_optimized_kernel(self, world):
        trainer, splits, _, _ = world
        base = trainer.run_epoch(splits, epoch=1, kernel="reference")
        faults = (
            FaultSchedule()
            .with_crash(0.3 * base.epoch_time_s, duration=0.2 * base.epoch_time_s)
            .with_brownout(
                0.6 * base.epoch_time_s,
                duration=0.1 * base.epoch_time_s,
                bandwidth_factor=0.4,
            )
            .with_corruption(0.05)
        )
        ref = trainer.run_epoch(splits, epoch=1, faults=faults, kernel="reference")
        auto = trainer.run_epoch(splits, epoch=1, faults=faults, kernel="auto")
        assert stats_fingerprint(ref) == stats_fingerprint(auto)
        assert dataclasses.asdict(ref.faults) == dataclasses.asdict(auto.faults)

    def test_spans_identical(self, world):
        trainer, splits, _, _ = world
        ref = trainer.run_epoch(splits, epoch=1, record_spans=True, kernel="reference")
        auto = trainer.run_epoch(splits, epoch=1, record_spans=True, kernel="auto")
        assert stats_fingerprint(ref) == stats_fingerprint(auto)
        assert span_fingerprint(ref) == span_fingerprint(auto)

    def test_timeline_identical(self, world):
        trainer, splits, _, _ = world
        ref = trainer.run_epoch(splits, epoch=1, record_timeline=True, kernel="reference")
        auto = trainer.run_epoch(splits, epoch=1, record_timeline=True, kernel="auto")
        assert stats_fingerprint(ref) == stats_fingerprint(auto)

    def test_fast_kernel_rejects_instrumented_runs(self, world):
        trainer, splits, _, _ = world
        with pytest.raises(ValueError, match="kernel='fast'"):
            trainer.run_epoch(splits, epoch=1, record_spans=True, kernel="fast")
        with pytest.raises(ValueError, match="kernel='fast'"):
            trainer.run_epoch(
                splits, epoch=1, faults=FaultSchedule().with_crash(1.0), kernel="fast"
            )

    def test_unknown_kernel_rejected(self, world):
        trainer, splits, _, _ = world
        with pytest.raises(ValueError, match="kernel must be one of"):
            trainer.run_epoch(splits, epoch=1, kernel="warp")

    def test_fast_work_builder_matches_sequential(self, world):
        trainer, splits, _, _ = world
        seq = trainer._epoch_work(splits, epoch=1)
        fast = trainer._epoch_work_fast(splits, epoch=1)
        assert seq == fast
        # Empty folds stay int 0, exactly like sum([]).
        assert isinstance(fast[0].prefix_cpu_s, int) or splits[0] > 0

    def test_fast_work_builder_validation_messages(self, world):
        trainer, _, _, dataset = world
        bad = [0] * len(dataset)
        bad[3] = 99
        with pytest.raises(ValueError, match="bad split 99"):
            trainer._epoch_work_fast(bad, epoch=0)


class TestShardedIdentity:
    def test_fault_free(self, world):
        _, _, spec, dataset = world
        splits = [i % 6 for i in range(len(dataset))]
        sim = ShardedTrainerSim(
            dataset,
            standard_pipeline(),
            get_model_profile("alexnet"),
            spec,
            placement=round_robin_placement(len(dataset), 4),
            batch_size=16,
            seed=2,
        )
        ref = sim.run_epoch(splits, epoch=0, kernel="reference")
        fast = sim.run_epoch(splits, epoch=0, kernel="fast")
        assert stats_fingerprint(ref) == stats_fingerprint(fast)
        assert ref.shard_utilization == fast.shard_utilization


class TestMultiJobIdentity:
    @staticmethod
    def _fingerprint(stats) -> str:
        return json.dumps(
            {
                "results": {
                    name: dataclasses.asdict(result)
                    for name, result in stats.results.items()
                },
                "makespan_s": stats.makespan_s,
                "total_traffic_bytes": stats.total_traffic_bytes,
                "link_utilization": stats.link_utilization,
                "storage_cpu_utilization": stats.storage_cpu_utilization,
            },
            sort_keys=True,
            default=repr,
        )

    def test_shared_link_identity(self, world):
        _, _, spec, _ = world
        pipeline = standard_pipeline()
        model = get_model_profile("alexnet")
        jobs = [
            SharedJob(
                name="tenant-a",
                dataset=make_openimages(num_samples=120, seed=1),
                pipeline=pipeline,
                model=model,
                splits=[2] * 120,
                batch_size=8,
                seed=1,
            ),
            SharedJob(
                name="tenant-b",
                dataset=make_openimages(num_samples=96, seed=2),
                pipeline=pipeline,
                model=model,
                splits=[i % 6 for i in range(96)],
                batch_size=16,
                seed=2,
            ),
        ]
        sim = SharedLinkSim(spec)
        ref = sim.run_epoch(jobs, epoch=0, kernel="reference")
        fast = sim.run_epoch(jobs, epoch=0, kernel="fast")
        assert self._fingerprint(ref) == self._fingerprint(fast)
