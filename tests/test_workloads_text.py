"""LLM ingestion workload tests (the section-5 negative case)."""

import pytest

from repro.cluster.spec import standard_cluster
from repro.core.decision import DecisionEngine
from repro.workloads.text import (
    TextCorpusSpec,
    document_sizes,
    llm_ingestion_records,
    offloadable_fraction,
)


@pytest.fixture(scope="module")
def records():
    return llm_ingestion_records(TextCorpusSpec(num_docs=2000), seed=0)


class TestCorpus:
    def test_document_sizes_shape(self):
        sizes = document_sizes(TextCorpusSpec(num_docs=500), seed=1)
        assert len(sizes) == 500
        assert sizes.min() >= 64

    def test_mean_near_target(self):
        spec = TextCorpusSpec(num_docs=30_000)
        sizes = document_sizes(spec, seed=2)
        assert sizes.mean() == pytest.approx(spec.mean_doc_bytes, rel=0.05)

    def test_deterministic(self):
        spec = TextCorpusSpec(num_docs=100)
        assert (document_sizes(spec, 3) == document_sizes(spec, 3)).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            TextCorpusSpec(num_docs=-1)
        with pytest.raises(ValueError):
            TextCorpusSpec(bytes_per_token=0)


class TestIngestionRecords:
    def test_tokenize_grows_every_document(self, records):
        for record in records[:200]:
            assert record.stage_sizes[1] >= record.stage_sizes[0]

    def test_packing_grows_further(self, records):
        for record in records[:200]:
            assert record.stage_sizes[2] >= record.stage_sizes[1]

    def test_min_stage_is_always_raw(self, records):
        assert all(r.min_stage == 0 for r in records)
        assert offloadable_fraction(records) == 0.0

    def test_decision_engine_plans_nothing(self, records):
        plan = DecisionEngine().plan(
            records, standard_cluster(storage_cores=48), gpu_time_s=1.0
        )
        assert plan.num_offloaded == 0
        assert "positive offloading efficiency" in plan.reason

    def test_small_vocab_could_change_the_story(self):
        # A (hypothetical) tokenizer consuming 20 bytes per token would
        # shrink documents -- the framework detects that case too.
        spec = TextCorpusSpec(num_docs=500, bytes_per_token=20.0, seq_len=1)
        records = llm_ingestion_records(spec, seed=0)
        assert offloadable_fraction(records) > 0.9

    def test_empty_corpus(self):
        assert offloadable_fraction([]) == 0.0
