"""Shared fixtures: small datasets, pipelines, clusters."""

import numpy as np
import pytest

from repro.cluster.spec import standard_cluster
from repro.data.catalog import make_imagenet, make_openimages
from repro.data.synthetic import ImageContentConfig, SyntheticImageDataset
from repro.preprocessing.pipeline import standard_pipeline
from repro.workloads.models import get_model_profile


@pytest.fixture(scope="session")
def pipeline():
    return standard_pipeline()


@pytest.fixture(scope="session")
def openimages_small():
    """Calibrated OpenImages trace, small but statistically faithful."""
    return make_openimages(num_samples=600, seed=7)


@pytest.fixture(scope="session")
def imagenet_small():
    return make_imagenet(num_samples=900, seed=7)


@pytest.fixture(scope="session")
def materialized_tiny():
    """A 10-sample materialized dataset (real pixels + codec)."""
    return SyntheticImageDataset(
        num_samples=10,
        seed=5,
        content=ImageContentConfig(min_side=64, max_side=256),
        name="materialized-tiny",
    )


@pytest.fixture(scope="session")
def alexnet():
    return get_model_profile("alexnet", "rtx6000")


@pytest.fixture
def cluster():
    return standard_cluster(storage_cores=8)


@pytest.fixture
def rng():
    return np.random.default_rng(0)
