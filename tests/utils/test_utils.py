"""Utility tests: RNG derivation, units, tables."""

import numpy as np
import pytest

from repro.utils.rng import derive_rng, op_rng, sample_rng
from repro.utils.tables import render_table
from repro.utils.units import format_bytes, format_seconds, mbps_to_bytes_per_s


class TestRng:
    def test_same_key_same_stream(self):
        a = op_rng(1, 2, 3, 4).random(5)
        b = op_rng(1, 2, 3, 4).random(5)
        assert np.array_equal(a, b)

    def test_any_component_changes_the_stream(self):
        base = op_rng(1, 2, 3, 4).random()
        assert op_rng(9, 2, 3, 4).random() != base
        assert op_rng(1, 9, 3, 4).random() != base
        assert op_rng(1, 2, 9, 4).random() != base
        assert op_rng(1, 2, 3, 9).random() != base

    def test_key_order_matters(self):
        assert derive_rng(1, 2).random() != derive_rng(2, 1).random()

    def test_negative_components_rejected(self):
        with pytest.raises(ValueError):
            derive_rng(1, -2)

    def test_sample_rng_with_salt(self):
        assert sample_rng(0, 1).random() != sample_rng(0, 1, salt=7).random()


class TestUnits:
    def test_mbps_conversion(self):
        assert mbps_to_bytes_per_s(500.0) == pytest.approx(62.5e6)

    def test_mbps_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            mbps_to_bytes_per_s(0.0)

    @pytest.mark.parametrize(
        "n,expected",
        [
            (0, "0 B"),
            (999, "999 B"),
            (1500, "1.50 KB"),
            (2.5e6, "2.50 MB"),
            (3.1e9, "3.10 GB"),
            (-1500, "-1.50 KB"),
        ],
    )
    def test_format_bytes(self, n, expected):
        assert format_bytes(n) == expected

    @pytest.mark.parametrize(
        "s,expected",
        [
            (0.0125, "12.5 ms"),
            (2.5, "2.50 s"),
            (90.0, "1m30.0s"),
            (3723.0, "1h02m03.0s"),
            (-2.5, "-2.50 s"),
        ],
    )
    def test_format_seconds(self, s, expected):
        assert format_seconds(s) == expected


class TestTables:
    def test_renders_aligned_columns(self):
        out = render_table(("A", "Bee"), [("x", 1), ("long", 22)])
        lines = out.splitlines()
        assert lines[0].startswith("A")
        assert "Bee" in lines[0]
        assert lines[1].startswith("-")
        assert len(lines) == 4

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(("A", "B"), [("only-one",)])

    def test_empty_rows_ok(self):
        out = render_table(("A",), [])
        assert out.splitlines()[0] == "A"
