"""ByteCache and eviction policy tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.core import ByteCache, FifoPolicy, LfuPolicy, LruPolicy


class TestByteCache:
    def test_put_get(self):
        cache = ByteCache(100)
        cache.put("a", "va", 10)
        assert cache.get("a") == "va"
        assert cache.stats.hits == 1

    def test_miss_counts_size_hint(self):
        cache = ByteCache(100)
        assert cache.get("a", size_hint=42) is None
        assert cache.stats.misses == 1
        assert cache.stats.bytes_missed == 42

    def test_eviction_respects_budget(self):
        cache = ByteCache(25)
        cache.put("a", 1, 10)
        cache.put("b", 2, 10)
        cache.put("c", 3, 10)  # must evict one
        assert cache.used_bytes <= 25
        assert len(cache) == 2
        assert cache.stats.evictions == 1

    def test_oversized_value_not_admitted(self):
        cache = ByteCache(10)
        assert not cache.put("big", 1, 11)
        assert len(cache) == 0

    def test_reinsert_updates_size(self):
        cache = ByteCache(100)
        cache.put("a", 1, 10)
        cache.put("a", 2, 30)
        assert cache.used_bytes == 30
        assert cache.get("a") == 2

    def test_invalidate(self):
        cache = ByteCache(100)
        cache.put("a", 1, 10)
        cache.invalidate("a")
        assert "a" not in cache
        assert cache.used_bytes == 0
        cache.invalidate("ghost")  # no-op

    def test_hit_ratio(self):
        cache = ByteCache(100)
        cache.put("a", 1, 1)
        cache.get("a")
        cache.get("b")
        assert cache.stats.hit_ratio == pytest.approx(0.5)

    def test_zero_capacity(self):
        cache = ByteCache(0)
        assert not cache.put("a", 1, 1)
        assert cache.put("empty", 1, 0)  # zero-size values always fit

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            ByteCache(-1)
        with pytest.raises(ValueError):
            ByteCache(10).put("a", 1, -1)

    @given(
        capacity=st.integers(0, 200),
        ops=st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 40)), max_size=60
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_budget_invariant(self, capacity, ops):
        cache = ByteCache(capacity)
        for key, size in ops:
            cache.put(key, key, size)
            assert cache.used_bytes <= capacity
            assert cache.used_bytes == sum(cache._sizes.values())


class TestEvictionPolicies:
    def fill(self, policy, capacity=30):
        cache = ByteCache(capacity, policy)
        for key in ("a", "b", "c"):
            cache.put(key, key, 10)
        return cache

    def test_lru_evicts_least_recent(self):
        cache = self.fill(LruPolicy())
        cache.get("a")  # refresh a
        cache.put("d", "d", 10)  # evicts b
        assert "a" in cache and "b" not in cache

    def test_fifo_ignores_access(self):
        cache = self.fill(FifoPolicy())
        cache.get("a")
        cache.put("d", "d", 10)  # evicts a regardless
        assert "a" not in cache

    def test_lfu_evicts_least_frequent(self):
        cache = self.fill(LfuPolicy())
        cache.get("a")
        cache.get("a")
        cache.get("c")
        cache.put("d", "d", 10)  # evicts b (1 use)
        assert "b" not in cache
        assert "a" in cache and "c" in cache
