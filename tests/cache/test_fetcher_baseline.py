"""CachingFetcher and cache-baseline traffic tests."""

import pytest

from repro.cache.baseline import (
    epoch_traffic_with_cache,
    epoch_traffic_with_pinned_cache,
)
from repro.cache.core import ByteCache
from repro.cache.fetcher import CachingFetcher
from repro.core.profiler import StageTwoProfiler
from repro.data.loader import DataLoader, DirectFetcher
from repro.rpc import InMemoryChannel, StorageClient, StorageServer


class TestCachingFetcher:
    @pytest.fixture
    def stack(self, materialized_tiny, pipeline):
        server = StorageServer(materialized_tiny, pipeline, seed=0)
        channel = InMemoryChannel(server.handle)
        client = StorageClient(channel)
        cache = ByteCache(10**9)  # effectively unbounded
        return CachingFetcher(client, cache), client, cache

    def test_second_epoch_raw_fetches_hit_cache(self, stack, materialized_tiny, pipeline):
        fetcher, client, cache = stack
        loader = DataLoader(materialized_tiny, pipeline, fetcher, batch_size=5, seed=0)
        for _ in loader.epoch(0):
            pass
        first_epoch_traffic = client.traffic_bytes
        for _ in loader.epoch(1):
            pass
        assert client.traffic_bytes == first_epoch_traffic  # all hits
        assert cache.stats.hits == len(materialized_tiny)

    def test_offloaded_samples_bypass_cache(self, stack):
        fetcher, client, cache = stack
        fetcher.fetch(0, 0, 2)
        fetcher.fetch(0, 1, 2)
        assert len(cache) == 0  # nothing cached
        assert cache.stats.lookups == 0

    def test_offloaded_payloads_differ_per_epoch(self, stack):
        import numpy as np

        fetcher, _, _ = stack
        a = fetcher.fetch(0, 0, 2).data
        b = fetcher.fetch(0, 1, 2).data
        assert not np.array_equal(a, b)

    def test_cached_payload_identical_to_fresh(self, stack, materialized_tiny):
        fetcher, _, _ = stack
        first = fetcher.fetch(3, 0, 0)
        second = fetcher.fetch(3, 5, 0)  # cache hit, epoch-independent
        assert first.data == second.data == materialized_tiny.raw_payload(3).data


class TestBaselineTraffic:
    def test_infinite_cache_first_epoch_full_rest_zero(self, openimages_small):
        traffic = epoch_traffic_with_cache(
            openimages_small, capacity_bytes=10**12, epochs=3
        )
        assert traffic[0] == openimages_small.total_raw_bytes
        assert traffic[1] == 0 and traffic[2] == 0

    def test_zero_cache_every_epoch_full(self, openimages_small):
        traffic = epoch_traffic_with_cache(openimages_small, 0, epochs=2)
        assert traffic[0] == traffic[1] == openimages_small.total_raw_bytes

    def test_lru_thrashes_under_epoch_reshuffles(self, openimages_small):
        # LRU + per-epoch random permutations: an item survives only if it
        # was late in one epoch and early in the next, so a 25% cache
        # serves far less than 25% of bytes.
        total = openimages_small.total_raw_bytes
        traffic = epoch_traffic_with_cache(
            openimages_small, capacity_bytes=total // 4, epochs=4, seed=3
        )
        steady = traffic[-1] / total
        assert 0.9 < steady <= 1.0

    def test_pinned_cache_saves_exactly_its_capacity(self, openimages_small):
        total = openimages_small.total_raw_bytes
        traffic = epoch_traffic_with_pinned_cache(
            openimages_small, capacity_bytes=total // 4, epochs=3
        )
        assert traffic[0] == total
        steady = traffic[-1] / total
        # Pinning the largest samples saves at least the capacity fraction
        # (exactly, up to the last sample that didn't fit).
        assert steady == pytest.approx(0.75, abs=0.02)
        assert traffic[1] == traffic[2]

    def test_pinned_cache_extremes(self, openimages_small):
        total = openimages_small.total_raw_bytes
        full = epoch_traffic_with_pinned_cache(openimages_small, total, epochs=2)
        assert full[1] == 0
        none = epoch_traffic_with_pinned_cache(openimages_small, 0, epochs=2)
        assert none[1] == total

    def test_plan_layered_on_cache(self, openimages_small, pipeline):
        records = StageTwoProfiler().profile(openimages_small, pipeline)
        splits = [r.min_stage for r in records]
        traffic = epoch_traffic_with_cache(
            openimages_small,
            capacity_bytes=10**12,
            epochs=2,
            splits=splits,
            records=records,
        )
        # Offloaded samples are re-fetched every epoch even with an
        # infinite cache (their payloads embed fresh augmentations).
        offloaded_bytes = sum(
            r.size_at(s) for r, s in zip(records, splits) if s > 0
        )
        assert traffic[1] == offloaded_bytes

    def test_validation(self, openimages_small):
        with pytest.raises(ValueError):
            epoch_traffic_with_cache(openimages_small, 10, epochs=0)
        with pytest.raises(ValueError):
            epoch_traffic_with_cache(
                openimages_small, 10, epochs=1, splits=[0] * len(openimages_small)
            )
        with pytest.raises(ValueError):
            epoch_traffic_with_cache(
                openimages_small, 10, epochs=1, splits=[0], records=[]
            )


class TestCounterHoisting:
    def test_one_registry_lookup_per_fetcher_lifetime(
        self, materialized_tiny, pipeline, monkeypatch
    ):
        # Regression: the requests counter used to be resolved from the
        # registry on every fetch(); it must be resolved exactly once, in
        # __init__, no matter how many fetches follow.
        import repro.cache.fetcher as fetcher_module

        real_registry = fetcher_module.get_default_registry()
        lookups = []
        real_counter = real_registry.counter

        def counting_counter(name, *args, **kwargs):
            if name == "cache_requests_total":
                lookups.append(name)
            return real_counter(name, *args, **kwargs)

        monkeypatch.setattr(real_registry, "counter", counting_counter)
        server = StorageServer(materialized_tiny, pipeline, seed=0)
        client = StorageClient(InMemoryChannel(server.handle))
        fetcher = CachingFetcher(client, ByteCache(10**9))
        assert lookups == ["cache_requests_total"]
        for epoch in range(3):
            fetcher.fetch(0, epoch, 0)  # raw path (miss then hits)
            fetcher.fetch(1, epoch, 2)  # bypass path
        assert lookups == ["cache_requests_total"]
