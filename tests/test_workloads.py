"""Model profile registry tests."""

import pytest

from repro.workloads.models import (
    MODEL_REGISTRY,
    ModelProfile,
    get_model_profile,
    register_model_profile,
)


class TestModelProfiles:
    def test_paper_models_registered_for_both_gpus(self):
        for model in ("alexnet", "resnet18", "resnet50"):
            for gpu in ("rtx6000", "v100"):
                assert get_model_profile(model, gpu).images_per_second > 0

    def test_relative_compute_intensity(self):
        alexnet = get_model_profile("alexnet", "rtx6000")
        resnet18 = get_model_profile("resnet18", "rtx6000")
        resnet50 = get_model_profile("resnet50", "rtx6000")
        assert alexnet.images_per_second > resnet18.images_per_second
        assert resnet18.images_per_second > resnet50.images_per_second

    def test_batch_time(self):
        profile = ModelProfile("m", "g", images_per_second=100.0)
        assert profile.batch_time_s(50) == pytest.approx(0.5)

    def test_epoch_gpu_time(self):
        profile = ModelProfile("m", "g", images_per_second=100.0)
        assert profile.epoch_gpu_time_s(1000) == pytest.approx(10.0)

    def test_unknown_profile_lists_known(self):
        with pytest.raises(KeyError, match="alexnet/rtx6000"):
            get_model_profile("vit", "h100")

    def test_register_custom(self):
        profile = ModelProfile("custom", "gpu-x", images_per_second=1.0)
        register_model_profile(profile)
        try:
            assert get_model_profile("custom", "gpu-x") is profile
        finally:
            del MODEL_REGISTRY[("custom", "gpu-x")]

    def test_validation(self):
        with pytest.raises(ValueError):
            ModelProfile("m", "g", images_per_second=0.0)
        with pytest.raises(ValueError):
            ModelProfile("m", "g", images_per_second=1.0, batch_size=0)
        with pytest.raises(ValueError):
            ModelProfile("m", "g", images_per_second=1.0).batch_time_s(0)
        with pytest.raises(ValueError):
            ModelProfile("m", "g", images_per_second=1.0).epoch_gpu_time_s(-1)
