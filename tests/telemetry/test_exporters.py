"""Exporter round-trips: Prometheus parse-back and JSONL replay."""

import pytest

from repro.telemetry.audit import AuditLog, CandidateSplit, DecisionRecord
from repro.telemetry.clock import ManualClock
from repro.telemetry.exporters import (
    parse_prometheus,
    read_jsonl,
    render_prometheus,
    replay_jsonl_lines,
    telemetry_jsonl_lines,
    write_jsonl,
)
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.spans import Tracer


def populated_registry():
    registry = MetricsRegistry()
    registry.counter("rpc_fetches_total", labels=["result"]).inc(7, result="ok")
    registry.counter("rpc_fetches_total", labels=["result"]).inc(2, result="error")
    registry.gauge("queue_depth").set(3.5)
    hist = registry.histogram("fetch_seconds", buckets=[0.01, 0.1, 1.0])
    for value in (0.005, 0.05, 0.05, 0.5, 9.0):
        hist.observe(value)
    registry.counter("odd_labels_total", labels=["path"]).inc(
        path='a"quoted\\path\nwith newline'
    )
    return registry


def populated_tracer():
    clock = ManualClock()
    tracer = Tracer(clock=clock)
    tracer.begin("s0-e1", "sample.fetch", split=2)
    clock.advance(0.25)
    tracer.instant("s0-e1", "rpc.retry", attempt=1, backoff_s=0.1)
    clock.advance(0.25)
    tracer.end("s0-e1", "sample.fetch", wire_bytes=4096)
    return tracer


def populated_audit():
    log = AuditLog()
    log.add(
        DecisionRecord(
            sample_id=0,
            candidates=(
                CandidateSplit(split=0, size_bytes=100, prefix_cpu_s=0.0, savings_bytes=0),
                CandidateSplit(split=1, size_bytes=40, prefix_cpu_s=0.0, savings_bytes=60),
            ),
            chosen_split=1,
            best_split=1,
            efficiency=float("inf"),
            efficiency_rank=1,
            outcome="offloaded",
            reason="free prefix",
        )
    )
    return log


class TestPrometheusRoundTrip:
    def test_parse_back_equals_snapshot(self):
        registry = populated_registry()
        text = render_prometheus(registry)
        assert parse_prometheus(text) == registry.snapshot()

    def test_histogram_exposition_shape(self):
        text = render_prometheus(populated_registry())
        assert "# TYPE fetch_seconds histogram" in text
        assert 'fetch_seconds_bucket{le="+Inf"} 5' in text
        assert "fetch_seconds_count 5" in text

    def test_label_escaping_round_trips(self):
        registry = populated_registry()
        snapshot = parse_prometheus(render_prometheus(registry))
        value = snapshot.value(
            "odd_labels_total", path='a"quoted\\path\nwith newline'
        )
        assert value == 1.0

    def test_unparseable_line_raises(self):
        with pytest.raises(ValueError):
            parse_prometheus("!!! not exposition\n")


class TestJsonlRoundTrip:
    def test_replay_reconstructs_everything(self):
        registry = populated_registry()
        tracer = populated_tracer()
        audit = populated_audit()
        lines = telemetry_jsonl_lines(registry=registry, tracer=tracer, audit=audit)
        replayed = replay_jsonl_lines(lines)
        assert replayed.registry.snapshot() == registry.snapshot()
        assert replayed.tracer.events == tracer.events
        assert replayed.audit.to_dicts() == audit.to_dicts()

    def test_replayed_log_reexports_identically(self):
        lines = telemetry_jsonl_lines(
            registry=populated_registry(),
            tracer=populated_tracer(),
            audit=populated_audit(),
        )
        replayed = replay_jsonl_lines(lines)
        again = telemetry_jsonl_lines(
            registry=replayed.registry, tracer=replayed.tracer, audit=replayed.audit
        )
        assert again == lines

    def test_write_and_read_files(self, tmp_path):
        path = tmp_path / "run.telemetry.jsonl"
        write_jsonl(str(path), registry=populated_registry(), tracer=populated_tracer())
        replayed = read_jsonl(str(path))
        assert replayed.registry.snapshot() == populated_registry().snapshot()
        assert len(replayed.tracer.events) == 3

    def test_identical_content_writes_identical_bytes(self, tmp_path):
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        for path in paths:
            write_jsonl(
                str(path),
                registry=populated_registry(),
                tracer=populated_tracer(),
                audit=populated_audit(),
            )
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError):
            replay_jsonl_lines(['{"kind":"header","version":99}'])

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            replay_jsonl_lines(['{"kind":"mystery"}'])
