"""Tracer and span events: ids, phases, clocks, queries."""

import pytest

from repro.telemetry.clock import LogicalClock, ManualClock
from repro.telemetry.spans import (
    BEGIN,
    END,
    INSTANT,
    SpanEvent,
    Tracer,
    parse_trace_id,
    trace_id,
)


class TestTraceId:
    def test_round_trip(self):
        assert trace_id(17, 3) == "s17-e3"
        assert parse_trace_id("s17-e3") == (17, 3)

    @pytest.mark.parametrize("bad", ["", "17-3", "sx-e1", "s1e2", "b0-e1"])
    def test_foreign_ids_raise(self, bad):
        with pytest.raises(ValueError):
            parse_trace_id(bad)


class TestTracer:
    def test_events_stamp_from_the_injected_clock(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        tracer.begin("s0-e1", "fetch", split=2)
        clock.advance(1.5)
        tracer.end("s0-e1", "fetch", bytes=42)
        begin, end = tracer.events
        assert (begin.phase, begin.t_s, begin.attrs) == (BEGIN, 0.0, {"split": 2})
        assert (end.phase, end.t_s, end.attrs) == (END, 1.5, {"bytes": 42})

    def test_instant(self):
        tracer = Tracer(clock=ManualClock(3.0))
        event = tracer.instant("s1-e0", "demote", reason="breaker-open")
        assert event.phase == INSTANT
        assert event.t_s == 3.0

    def test_span_context_manager_pairs_begin_and_end(self):
        tracer = Tracer()
        with tracer.span("s0-e0", "work"):
            tracer.instant("s0-e0", "tick")
        assert [e.phase for e in tracer.events] == [BEGIN, INSTANT, END]

    def test_default_logical_clock_is_strictly_increasing(self):
        tracer = Tracer()
        for _ in range(5):
            tracer.instant("s0-e0", "tick")
        stamps = [e.t_s for e in tracer.events]
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == len(stamps)

    def test_bad_phase_rejected(self):
        with pytest.raises(ValueError):
            SpanEvent(trace_id="s0-e0", name="x", phase="Q", t_s=0.0)

    def test_for_sample_filters_one_trace(self):
        tracer = Tracer()
        tracer.instant(trace_id(1, 0), "a")
        tracer.instant(trace_id(2, 0), "b")
        tracer.instant(trace_id(1, 0), "c")
        names = [e.name for e in tracer.for_sample(1, 0)]
        assert names == ["a", "c"]

    def test_trace_ids_first_seen_order(self):
        tracer = Tracer()
        for sample in (3, 1, 2, 1, 3):
            tracer.instant(trace_id(sample, 0), "tick")
        assert tracer.trace_ids() == ["s3-e0", "s1-e0", "s2-e0"]

    def test_clear(self):
        tracer = Tracer()
        tracer.instant("s0-e0", "tick")
        tracer.clear()
        assert tracer.events == []


class TestClocks:
    def test_manual_clock_cannot_rewind(self):
        clock = ManualClock(5.0)
        with pytest.raises(ValueError):
            clock.set(4.0)
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_logical_clock_steps(self):
        clock = LogicalClock(step_s=0.5)
        assert [clock() for _ in range(3)] == [0.0, 0.5, 1.0]
        assert clock.ticks == 3

    def test_logical_clock_rejects_bad_step(self):
        with pytest.raises(ValueError):
            LogicalClock(step_s=0.0)
