"""Structured logging: record validation, renderers, sinks, the bridge."""

import json
import logging

import pytest

from repro.telemetry.clock import ManualClock
from repro.telemetry.logs import (
    LEVELS,
    LogRecord,
    StructuredLogger,
    render_json,
    render_logfmt,
)


class TestLogRecord:
    def test_levels_are_validated(self):
        with pytest.raises(ValueError, match="bad log level"):
            LogRecord(t_s=0.0, level="fatal", logger="x", message="boom")

    def test_logger_name_must_be_non_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            LogRecord(t_s=0.0, level="info", logger="", message="hi")

    def test_every_declared_level_constructs(self):
        for level in LEVELS:
            record = LogRecord(t_s=1.0, level=level, logger="x", message="m")
            assert record.level == level


class TestLogfmt:
    def test_fixed_fields_lead_attrs_sorted(self):
        record = LogRecord(
            t_s=2.5, level="warning", logger="repro.svc", message="shed",
            trace_id="job-0-r1", attrs={"b": 2, "a": 1},
        )
        assert render_logfmt(record) == (
            "ts=2.5 level=warning logger=repro.svc msg=shed "
            "trace=job-0-r1 a=1 b=2"
        )

    def test_values_needing_quotes_are_escaped(self):
        record = LogRecord(
            t_s=0.0, level="info", logger="x",
            message='say "hi"\nthere', attrs={"path": "a b\\c"},
        )
        line = render_logfmt(record)
        assert 'msg="say \\"hi\\"\\nthere"' in line
        assert 'path="a b\\\\c"' in line

    def test_bools_and_numbers_render_bare(self):
        record = LogRecord(
            t_s=0.0, level="info", logger="x", message="m",
            attrs={"ok": True, "n": 3, "f": 0.25},
        )
        line = render_logfmt(record)
        assert "ok=true" in line and "n=3" in line and "f=0.25" in line

    def test_identical_records_render_identically(self):
        make = lambda: LogRecord(  # noqa: E731
            t_s=1.0, level="error", logger="x", message="m", attrs={"k": "v"}
        )
        assert render_logfmt(make()) == render_logfmt(make())


class TestJsonRenderer:
    def test_round_trips_through_json(self):
        record = LogRecord(
            t_s=3.0, level="info", logger="x", message="m",
            trace_id="t1", attrs={"k": "v"},
        )
        loaded = json.loads(render_json(record))
        assert loaded == {
            "ts": 3.0, "level": "info", "logger": "x", "msg": "m",
            "trace": "t1", "attrs": {"k": "v"},
        }

    def test_omits_absent_trace_and_empty_attrs(self):
        record = LogRecord(t_s=0.0, level="info", logger="x", message="m")
        loaded = json.loads(render_json(record))
        assert "trace" not in loaded and "attrs" not in loaded


class TestStructuredLogger:
    def test_stamps_from_the_injected_clock(self):
        clock = ManualClock()
        log = StructuredLogger("t", clock=clock, bridge=False)
        clock.advance(4.0)
        record = log.info("hello")
        assert record.t_s == 4.0

    def test_default_clock_is_logical_not_wall(self):
        log = StructuredLogger("t", bridge=False)
        first = log.info("a")
        second = log.info("b")
        assert (first.t_s, second.t_s) == (0.0, 1.0)

    def test_sink_receives_every_record(self):
        seen = []
        log = StructuredLogger("t", sink=seen.append, bridge=False)
        log.debug("a")
        log.error("b", code=7)
        assert [r.message for r in seen] == ["a", "b"]
        assert seen[1].attrs == {"code": 7}

    def test_trace_id_carried_through(self):
        log = StructuredLogger("t", bridge=False)
        record = log.warning("w", trace="s1-e0")
        assert record.trace_id == "s1-e0"

    def test_bridges_logfmt_to_stdlib(self, caplog):
        log = StructuredLogger("repro.test.bridge")
        with caplog.at_level(logging.WARNING, logger="repro.test.bridge"):
            log.warning("bridged", count=2)
        assert any("msg=bridged" in m and "count=2" in m
                   for m in caplog.messages)
