"""SLO engine: percentiles, objective validation, burn rates, windows."""

import pytest

from repro.telemetry.clock import ManualClock
from repro.telemetry.slo import (
    LATENCY,
    RATE,
    SCHEMA,
    Objective,
    SloEvaluator,
    latency_objective,
    percentile,
    rate_objective,
)


class TestPercentile:
    def test_nearest_rank_semantics(self):
        values = [4.0, 1.0, 3.0, 2.0]
        assert percentile(values, 0.5) == 2.0
        assert percentile(values, 0.51) == 3.0
        assert percentile(values, 1.0) == 4.0
        # q=0 still yields the smallest sample (rank floors at 1).
        assert percentile(values, 0.0) == 1.0

    def test_empty_sequence_raises(self):
        with pytest.raises(ValueError, match="empty sequence"):
            percentile([], 0.5)

    def test_q_out_of_range_raises(self):
        with pytest.raises(ValueError, match=r"q must be in \[0, 1\]"):
            percentile([1.0], 1.5)


class TestObjective:
    def test_latency_needs_quantile(self):
        with pytest.raises(ValueError, match="quantile"):
            Objective(name="p50", kind=LATENCY, threshold=1.0, quantile=0.0)

    def test_rate_needs_bad_outcomes(self):
        with pytest.raises(ValueError, match="bad outcome"):
            Objective(name="errs", kind=RATE, threshold=0.1)

    def test_kind_and_threshold_validated(self):
        with pytest.raises(ValueError, match="bad objective kind"):
            Objective(name="x", kind="uptime", threshold=1.0)
        with pytest.raises(ValueError, match="threshold"):
            latency_objective("p99", 0.99, -1.0)

    def test_shorthands(self):
        lat = latency_objective("p99", 0.99, 2.0)
        assert (lat.kind, lat.quantile, lat.threshold) == (LATENCY, 0.99, 2.0)
        rate = rate_objective("shed", ["shed", "failed"], 0.25)
        assert (rate.kind, rate.bad_outcomes) == (RATE, ("shed", "failed"))


class TestSloEvaluator:
    def test_needs_objectives_and_unique_names(self):
        with pytest.raises(ValueError, match="at least one objective"):
            SloEvaluator([])
        dup = latency_objective("p50", 0.5, 1.0)
        with pytest.raises(ValueError, match="duplicate"):
            SloEvaluator([dup, dup])

    def test_negative_latency_rejected(self):
        evaluator = SloEvaluator([latency_objective("p50", 0.5, 1.0)])
        with pytest.raises(ValueError, match="latency_s"):
            evaluator.record(-0.1)

    def test_batch_pass_fail_and_burn(self):
        evaluator = SloEvaluator(
            [
                latency_objective("p50", 0.5, 1.0),
                rate_objective("shed", ["shed"], 0.25),
            ]
        )
        for latency, outcome in [(0.2, "ok"), (0.4, "ok"), (0.6, "shed"), (0.8, "ok")]:
            evaluator.record(latency, outcome)
        report = evaluator.evaluate()
        by_name = {r.objective.name: r for r in report.results}
        assert by_name["p50"].observed == 0.4
        assert by_name["p50"].passed
        assert by_name["p50"].burn_rate == pytest.approx(0.4)
        assert by_name["shed"].observed == 0.25
        assert by_name["shed"].passed  # <= threshold is within budget
        assert by_name["shed"].burn_rate == pytest.approx(1.0)
        assert report.passed and report.samples == 4

    def test_violation_flips_the_report(self):
        evaluator = SloEvaluator([latency_objective("p99", 0.99, 0.1)])
        evaluator.record(0.5)
        report = evaluator.evaluate()
        assert not report.passed
        assert report.results[0].burn_rate == pytest.approx(5.0)
        assert "VIOLATED" in report.render() and "FAIL" in report.render()

    def test_zero_threshold_has_no_burn_rate(self):
        evaluator = SloEvaluator([rate_objective("failed", ["failed"], 0.0)])
        evaluator.record(0.1, "ok")
        result = evaluator.evaluate().results[0]
        assert result.observed == 0.0
        assert result.passed
        assert result.burn_rate is None

    def test_no_data_passes_with_observed_none(self):
        evaluator = SloEvaluator([latency_objective("p50", 0.5, 1.0)])
        report = evaluator.evaluate()
        assert report.passed and report.samples == 0
        assert report.results[0].observed is None
        assert report.results[0].burn_rate is None
        assert "n/a" in report.render()

    def test_sliding_window_prunes_old_observations(self):
        clock = ManualClock()
        evaluator = SloEvaluator(
            [latency_objective("p50", 0.5, 1.0)], window_s=10.0, clock=clock
        )
        evaluator.record(5.0)  # at t=0: violating
        clock.advance(20.0)
        evaluator.record(0.1)  # at t=20: the old sample is outside the window
        report = evaluator.evaluate()
        assert report.samples == 1
        assert report.results[0].observed == 0.1
        assert report.passed

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError, match="window_s"):
            SloEvaluator([latency_objective("p50", 0.5, 1.0)], window_s=0.0)

    def test_to_dict_schema(self):
        evaluator = SloEvaluator(
            [
                latency_objective("p50", 0.5, 1.0),
                rate_objective("shed", ["shed"], 0.25),
            ]
        )
        evaluator.record(0.3, "ok")
        payload = evaluator.evaluate().to_dict()
        assert payload["schema"] == SCHEMA
        assert payload["passed"] is True
        assert payload["samples"] == 1
        assert payload["window_s"] is None
        names = [obj["name"] for obj in payload["objectives"]]
        assert names == ["p50", "shed"]
        assert payload["objectives"][0]["quantile"] == 0.5
        assert payload["objectives"][1]["bad_outcomes"] == ["shed"]
