"""Prometheus exposition edge cases: hostile labels, histogram round-trips."""

import math

from repro.telemetry.exporters import parse_prometheus, render_prometheus
from repro.telemetry.registry import MetricsRegistry


class TestLabelEscaping:
    def test_quotes_backslashes_and_newlines_round_trip(self):
        registry = MetricsRegistry()
        counter = registry.counter("edge_total", labels=["path"])
        hostile = [
            'plain"quote',
            "back\\slash",
            "new\nline",
            'all\\three\n"at once"',
            "trailing\\",
        ]
        for value in hostile:
            counter.inc(path=value)
        snapshot = registry.snapshot()
        assert parse_prometheus(render_prometheus(snapshot)) == snapshot

    def test_escaped_text_has_no_raw_newlines_inside_values(self):
        registry = MetricsRegistry()
        registry.counter("edge_total", labels=["p"]).inc(p="a\nb")
        text = render_prometheus(registry)
        sample_lines = [l for l in text.splitlines() if not l.startswith("#")]
        assert sample_lines == ['edge_total{p="a\\nb"} 1.0']

    def test_label_values_that_look_like_syntax(self):
        registry = MetricsRegistry()
        counter = registry.counter("edge_total", labels=["expr"])
        for value in ['x="1"', "a{b}c 2", 'm{l="v"} 3']:
            counter.inc(expr=value)
        snapshot = registry.snapshot()
        assert parse_prometheus(render_prometheus(snapshot)) == snapshot


class TestHistogramRoundTrip:
    def test_observations_survive_render_and_parse(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "lat_seconds", labels=["op"], buckets=[0.1, 1.0, 10.0]
        )
        for value in [0.05, 0.5, 5.0, 50.0]:
            hist.observe(value, op="plan")
        hist.observe(0.2, op="release")
        snapshot = registry.snapshot()
        assert parse_prometheus(render_prometheus(snapshot)) == snapshot

    def test_rendered_histogram_has_inf_bucket_sum_and_count(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds", buckets=[1.0])
        hist.observe(0.5)
        hist.observe(2.0)
        text = render_prometheus(registry)
        assert 'lat_seconds_bucket{le="1.0"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text
        assert "lat_seconds_count 2" in text
        assert "lat_seconds_sum 2.5" in text

    def test_default_bucket_histogram_round_trips(self):
        registry = MetricsRegistry()
        hist = registry.histogram("rpc_seconds")
        for exponent in range(-4, 4):
            hist.observe(math.pow(10.0, exponent))
        snapshot = registry.snapshot()
        assert parse_prometheus(render_prometheus(snapshot)) == snapshot

    def test_mixed_kinds_round_trip_together(self):
        registry = MetricsRegistry()
        registry.counter("req_total", labels=["code"]).inc(3, code="200")
        registry.gauge("depth").set(7.0)
        registry.histogram("lat_seconds", buckets=[0.5]).observe(0.25)
        snapshot = registry.snapshot()
        assert parse_prometheus(render_prometheus(snapshot)) == snapshot
