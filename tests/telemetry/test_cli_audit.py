"""The audit subcommand and --telemetry-dir harness flags."""

import pytest

from repro.cli import main


class TestAuditCommand:
    def test_explains_one_sample_end_to_end(self, capsys):
        assert main(["--samples", "40", "audit", "3"]) == 0
        out = capsys.readouterr().out
        assert "sample 3:" in out
        assert "candidate splits:" in out
        assert "simulated spans for sample 3" in out
        assert "sample.fetch" in out

    def test_out_of_range_sample_exits(self):
        with pytest.raises(SystemExit):
            main(["--samples", "10", "audit", "999"])


class TestTelemetryDirFlags:
    def test_fig3_writes_artifacts(self, capsys, tmp_path):
        assert main([
            "--samples", "40", "fig3", "--telemetry-dir", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "telemetry written to" in out
        assert (tmp_path / "fig3.metrics.prom").exists()
        text = (tmp_path / "fig3.metrics.prom").read_text()
        assert 'harness_epoch_time_seconds{run="sophon"}' in text

    def test_fig4_writes_artifacts(self, tmp_path):
        assert main([
            "--samples", "30", "fig4", "--cores", "0", "2",
            "--telemetry-dir", str(tmp_path),
        ]) == 0
        text = (tmp_path / "fig4.metrics.prom").read_text()
        assert 'run="sophon@2c"' in text

    def test_fig1d_writes_artifacts(self, tmp_path):
        assert main([
            "--samples", "40", "fig1d", "--telemetry-dir", str(tmp_path),
        ]) == 0
        text = (tmp_path / "fig1d.metrics.prom").read_text()
        assert "harness_gpu_utilization" in text

    def test_flags_are_optional(self, capsys, tmp_path):
        assert main(["--samples", "40", "fig3"]) == 0
        assert "telemetry written" not in capsys.readouterr().out
