"""Metrics registry: counters/gauges/histograms, snapshots, the default."""

import pytest

from repro.telemetry.registry import (
    DEFAULT_BUCKETS,
    HistogramValue,
    MetricError,
    MetricsRegistry,
    get_default_registry,
    set_default_registry,
    use_registry,
)


class TestCounter:
    def test_inc_accumulates(self):
        counter = MetricsRegistry().counter("events_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_labelled_series_are_independent(self):
        counter = MetricsRegistry().counter("events_total", labels=["kind"])
        counter.inc(kind="hit")
        counter.inc(3, kind="miss")
        assert counter.value(kind="hit") == 1.0
        assert counter.value(kind="miss") == 3.0

    def test_unseen_series_reads_zero(self):
        counter = MetricsRegistry().counter("events_total", labels=["kind"])
        assert counter.value(kind="never") == 0.0

    def test_counters_cannot_decrease(self):
        counter = MetricsRegistry().counter("events_total")
        with pytest.raises(MetricError):
            counter.inc(-1)

    def test_label_names_must_match_declaration(self):
        counter = MetricsRegistry().counter("events_total", labels=["kind"])
        with pytest.raises(MetricError):
            counter.inc(colour="red")


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value() == 13.0


class TestHistogram:
    def test_observations_land_in_the_right_bucket(self):
        hist = MetricsRegistry().histogram("lat", buckets=[0.1, 1.0])
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(100.0)  # +Inf overflow
        value = hist.value()
        assert value.bucket_counts == (1, 1, 1)
        assert value.count == 3
        assert value.sum == pytest.approx(100.55)

    def test_buckets_must_strictly_increase(self):
        with pytest.raises(MetricError):
            MetricsRegistry().histogram("lat", buckets=[1.0, 1.0])

    def test_restore_refuses_populated_series(self):
        hist = MetricsRegistry().histogram("lat", buckets=[1.0])
        hist.observe(0.5)
        with pytest.raises(MetricError):
            hist.restore(
                HistogramValue(buckets=(1.0,), bucket_counts=(1, 0), sum=0.5, count=1)
            )


class TestRegistry:
    def test_get_or_create_returns_the_same_metric(self):
        registry = MetricsRegistry()
        assert registry.counter("a_total") is registry.counter("a_total")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(MetricError):
            registry.gauge("x")

    def test_label_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x", labels=["a"])
        with pytest.raises(MetricError):
            registry.counter("x", labels=["b"])

    def test_histogram_rebucket_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=[1.0])
        with pytest.raises(MetricError):
            registry.histogram("h", buckets=[2.0])

    def test_identical_usage_gives_equal_snapshots(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("c", labels=["k"]).inc(2, k="x")
            registry.gauge("g").set(1.5)
            registry.histogram("h", buckets=list(DEFAULT_BUCKETS)).observe(0.2)
            return registry.snapshot()

        assert build() == build()

    def test_diff_subtracts_counters_and_keeps_gauges(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        gauge = registry.gauge("g")
        counter.inc(5)
        gauge.set(1)
        older = registry.snapshot()
        counter.inc(3)
        gauge.set(9)
        delta = registry.snapshot().diff(older)
        assert delta.value("c") == 3.0
        assert delta.value("g") == 9.0


class TestDefaultRegistry:
    def test_use_registry_scopes_and_restores(self):
        outer = get_default_registry()
        with use_registry() as scoped:
            assert get_default_registry() is scoped
            assert scoped is not outer
        assert get_default_registry() is outer

    def test_set_default_registry_returns_previous(self):
        outer = get_default_registry()
        fresh = MetricsRegistry()
        previous = set_default_registry(fresh)
        try:
            assert previous is outer
            assert get_default_registry() is fresh
        finally:
            set_default_registry(outer)
