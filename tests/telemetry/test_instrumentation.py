"""Instrumented subsystems: breaker history, decision audit, trainer spans."""

import pytest

from repro.cluster.spec import standard_cluster
from repro.cluster.trainer import TrainerSim
from repro.core.decision import DecisionConfig, DecisionEngine
from repro.core.policy import PolicyContext
from repro.data.catalog import make_openimages
from repro.faults import FaultSchedule
from repro.preprocessing.pipeline import standard_pipeline
from repro.rpc.breaker import BreakerState, CircuitBreaker
from repro.telemetry.audit import AuditLog
from repro.telemetry.clock import ManualClock
from repro.telemetry.registry import use_registry
from repro.telemetry.spans import INSTANT, Tracer
from repro.workloads.models import get_model_profile


def small_setup(samples=48, seed=7):
    dataset = make_openimages(num_samples=samples, seed=seed)
    spec = standard_cluster()
    model = get_model_profile("alexnet")
    context = PolicyContext(
        dataset=dataset,
        pipeline=standard_pipeline(),
        spec=spec,
        model=model,
        batch_size=8,
        seed=seed,
    )
    return dataset, spec, model, context


class TestBreakerTransitionHistory:
    def test_full_cycle_is_recorded_with_timestamps_and_reasons(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        with use_registry() as registry:
            breaker = CircuitBreaker(
                failure_threshold=2, recovery_time_s=10.0, clock=clock, tracer=tracer
            )
            breaker.record_failure()
            clock.advance(1.0)
            breaker.record_failure()  # trips OPEN at t=1
            clock.advance(10.0)
            assert breaker.state is BreakerState.HALF_OPEN  # t=11
            assert breaker.allow()
            breaker.record_success()  # closes

        edges = [
            (t.from_state, t.to_state, t.at_s, t.reason) for t in breaker.transitions
        ]
        assert edges == [
            (BreakerState.CLOSED, BreakerState.OPEN, 1.0, "failure-threshold"),
            (BreakerState.OPEN, BreakerState.HALF_OPEN, 11.0, "cooldown-elapsed"),
            (BreakerState.HALF_OPEN, BreakerState.CLOSED, 11.0, "probe-succeeded"),
        ]
        # the same edges surfaced as telemetry: counter series + instants
        counter = registry.counter(
            "breaker_transitions_total", labels=["from_state", "to_state"]
        )
        assert counter.value(from_state="closed", to_state="open") == 1.0
        instants = [e for e in tracer.events if e.name == "breaker.transition"]
        assert [e.phase for e in instants] == [INSTANT] * 3
        assert instants[1].attrs["reason"] == "cooldown-elapsed"

    def test_probe_failure_reopens_with_reason(self):
        clock = ManualClock()
        breaker = CircuitBreaker(failure_threshold=1, recovery_time_s=5.0, clock=clock)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_failure()
        assert breaker.transitions[-1].reason == "probe-failed"
        assert breaker.transitions[-1].to_state is BreakerState.OPEN


class TestDecisionAudit:
    def test_every_sample_gets_a_record_and_offloads_match_the_plan(self):
        dataset, spec, model, context = small_setup()
        audit = AuditLog()
        plan = DecisionEngine(DecisionConfig()).plan(
            context.records(), spec,
            gpu_time_s=context.epoch_gpu_time_s, audit=audit,
        )
        assert len(audit) == len(dataset)
        offloaded = {r.sample_id for r in audit if r.outcome == "offloaded"}
        assert offloaded == {
            i for i, split in enumerate(plan.splits) if split > 0
        }
        for record in audit:
            assert record.chosen_split == plan.splits[record.sample_id]
            assert record.reason

    def test_offloaded_records_carry_budget_and_rank(self):
        _, spec, _, context = small_setup()
        audit = AuditLog()
        DecisionEngine(DecisionConfig()).plan(
            context.records(), spec,
            gpu_time_s=context.epoch_gpu_time_s, audit=audit,
        )
        offloaded = [r for r in audit if r.outcome == "offloaded"]
        assert offloaded, "expected some offloads in the standard setup"
        for record in offloaded:
            assert record.budget is not None
            assert record.budget.network_bound
            assert record.efficiency_rank is not None
            assert record.candidate_at(record.chosen_split).savings_bytes > 0

    def test_audit_is_optional_and_changes_nothing(self):
        _, spec, _, context = small_setup()
        engine = DecisionEngine(DecisionConfig())
        bare = engine.plan(context.records(), spec, gpu_time_s=context.epoch_gpu_time_s)
        audited = engine.plan(
            context.records(), spec,
            gpu_time_s=context.epoch_gpu_time_s, audit=AuditLog(),
        )
        assert list(bare.splits) == list(audited.splits)


class TestTrainerSpans:
    def test_recording_spans_never_changes_the_simulation(self):
        dataset, spec, model, context = small_setup()
        trainer = TrainerSim(dataset, context.pipeline, model, spec, batch_size=8, seed=7)
        plain = trainer.run_epoch(None, epoch=1)
        traced = trainer.run_epoch(None, epoch=1, record_spans=True)
        assert traced.epoch_time_s == plain.epoch_time_s
        assert traced.traffic_bytes == plain.traffic_bytes
        assert traced.spans is not None and plain.spans is None

    def test_every_sample_gets_a_bracketed_fetch_span(self):
        dataset, spec, model, context = small_setup()
        trainer = TrainerSim(dataset, context.pipeline, model, spec, batch_size=8, seed=7)
        stats = trainer.run_epoch(None, epoch=1, record_spans=True)
        for sample_id in range(len(dataset)):
            events = stats.spans.for_sample(sample_id, 1)
            names = [(e.name, e.phase) for e in events]
            assert ("sample.fetch", "B") in names
            assert ("sample.fetch", "E") in names

    def test_timestamps_are_virtual_and_bounded_by_the_epoch(self):
        dataset, spec, model, context = small_setup()
        trainer = TrainerSim(dataset, context.pipeline, model, spec, batch_size=8, seed=7)
        stats = trainer.run_epoch(None, epoch=1, record_spans=True)
        assert all(0.0 <= e.t_s <= stats.epoch_time_s for e in stats.spans.events)

    def test_faulty_epoch_emits_fault_instants(self):
        import dataclasses

        dataset, spec, model, _ = small_setup()
        # Shallow prefetch staggers offloads across the epoch, so the
        # crash window finds storage work in flight (as make chaos does).
        spec = dataclasses.replace(spec, prefetch_batches=2)
        context = PolicyContext(
            dataset=dataset,
            pipeline=standard_pipeline(),
            spec=spec,
            model=model,
            batch_size=8,
            seed=7,
        )
        plan = DecisionEngine(DecisionConfig()).plan(
            context.records(), spec, gpu_time_s=context.epoch_gpu_time_s
        )
        trainer = TrainerSim(dataset, context.pipeline, model, spec, batch_size=8, seed=7)
        probe = trainer.run_epoch(list(plan.splits), epoch=1)
        schedule = FaultSchedule(seed=7).with_crash(
            0.3 * probe.epoch_time_s, duration=0.3 * probe.epoch_time_s
        )
        stats = trainer.run_epoch(
            list(plan.splits), epoch=1, faults=schedule, record_spans=True
        )
        names = {e.name for e in stats.spans.events}
        assert "fault.storage_down" in names or "fault.crash_interrupt" in names

    def test_identical_seeds_emit_identical_span_streams(self):
        dataset, spec, model, context = small_setup()

        def run():
            trainer = TrainerSim(
                dataset, context.pipeline, model, spec, batch_size=8, seed=7
            )
            return trainer.run_epoch(None, epoch=1, record_spans=True).spans.events

        assert run() == run()
