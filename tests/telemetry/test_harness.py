"""Harness telemetry: artifact emission, chaos integration, determinism gate."""

import json

import pytest

from repro.data.catalog import make_openimages
from repro.harness.chaos import run_chaos, write_chaos_telemetry
from repro.harness.telemetry import emit_artifacts, record_epoch_stats
from repro.telemetry.exporters import (
    parse_prometheus,
    read_jsonl,
    telemetry_jsonl_lines,
)
from repro.telemetry.registry import MetricsRegistry

SAMPLES = 48
SEED = 7


@pytest.fixture(scope="module")
def report():
    dataset = make_openimages(num_samples=SAMPLES, seed=SEED)
    return run_chaos(dataset, batch_size=8, seed=SEED, telemetry=True)


class TestRecordEpochStats:
    def test_gauges_and_counter_land_in_the_registry(self, report):
        registry = MetricsRegistry()
        record_epoch_stats(report.baseline, "baseline", registry)
        snapshot = registry.snapshot()
        assert snapshot.value("harness_epoch_time_seconds", run="baseline") == (
            report.baseline.epoch_time_s
        )
        assert snapshot.value("harness_traffic_bytes", run="baseline") == float(
            report.baseline.traffic_bytes
        )
        assert snapshot.value("harness_epochs_total", run="baseline") == 1.0


class TestChaosTelemetry:
    def test_report_carries_audit_registry_and_spans(self, report):
        assert report.audit is not None and len(report.audit) == SAMPLES
        assert report.registry is not None
        assert report.baseline.spans is not None
        assert all(run.stats.spans is not None for run in report.runs)
        assert report.survived

    def test_registry_holds_per_run_gauges_and_decision_outcomes(self, report):
        snapshot = report.registry.snapshot()
        assert snapshot.value("harness_epoch_time_seconds", run="baseline") > 0
        for run in report.runs:
            assert (
                snapshot.value("harness_epoch_time_seconds", run=run.scenario.name) > 0
            )
        outcomes = {
            key[1][0][1]
            for key in snapshot.series
            if key[0] == "decision_outcomes_total"
        }
        assert "offloaded" in outcomes

    def test_telemetry_off_by_default_and_identical_simulation(self, report):
        dataset = make_openimages(num_samples=SAMPLES, seed=SEED)
        bare = run_chaos(dataset, batch_size=8, seed=SEED)
        assert bare.registry is None and bare.audit is None
        assert bare.baseline.spans is None
        assert bare.baseline.epoch_time_s == report.baseline.epoch_time_s
        assert bare.baseline.traffic_bytes == report.baseline.traffic_bytes
        for mine, theirs in zip(bare.runs, report.runs):
            assert mine.stats.epoch_time_s == theirs.stats.epoch_time_s
            assert mine.stats.traffic_bytes == theirs.stats.traffic_bytes

    def test_write_chaos_telemetry_emits_the_full_tree(self, report, tmp_path):
        paths = write_chaos_telemetry(report, str(tmp_path))
        names = sorted(p.split("/")[-1] for p in paths)
        expected = ["baseline.telemetry.jsonl", "baseline.trace.json"]
        for run in report.runs:
            expected += [
                f"{run.scenario.name}.telemetry.jsonl",
                f"{run.scenario.name}.trace.json",
            ]
        expected += ["chaos.metrics.prom", "chaos.telemetry.jsonl"]
        assert names == sorted(expected)

    def test_chrome_trace_loads_with_per_sample_rows(self, report, tmp_path):
        write_chaos_telemetry(report, str(tmp_path))
        document = json.loads((tmp_path / "storage-crash.trace.json").read_text())
        events = document["traceEvents"]
        sample_threads = [
            e for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
            and e["args"]["name"].startswith("s")
        ]
        assert len(sample_threads) >= SAMPLES
        assert any(e["ph"] == "X" and e["name"] == "sample.fetch" for e in events)

    def test_jsonl_artifacts_replay(self, report, tmp_path):
        write_chaos_telemetry(report, str(tmp_path))
        replayed = read_jsonl(str(tmp_path / "chaos.telemetry.jsonl"))
        assert replayed.registry.snapshot() == report.registry.snapshot()
        assert replayed.audit.to_dicts() == report.audit.to_dicts()
        spans = read_jsonl(str(tmp_path / "baseline.telemetry.jsonl"))
        assert spans.tracer.events == report.baseline.spans.events

    def test_prometheus_artifact_parses_back(self, report, tmp_path):
        write_chaos_telemetry(report, str(tmp_path))
        text = (tmp_path / "chaos.metrics.prom").read_text()
        assert parse_prometheus(text) == report.registry.snapshot()

    def test_write_requires_telemetry(self, tmp_path):
        dataset = make_openimages(num_samples=SAMPLES, seed=SEED)
        bare = run_chaos(dataset, batch_size=8, seed=SEED)
        with pytest.raises(ValueError):
            write_chaos_telemetry(bare, str(tmp_path))


class TestDeterminismGate:
    """Identical seeds must export byte-identical telemetry."""

    def test_chaos_jsonl_is_byte_identical_across_runs(self, report):
        dataset = make_openimages(num_samples=SAMPLES, seed=SEED)
        again = run_chaos(dataset, batch_size=8, seed=SEED, telemetry=True)
        assert telemetry_jsonl_lines(
            registry=again.registry, audit=again.audit
        ) == telemetry_jsonl_lines(registry=report.registry, audit=report.audit)
        assert telemetry_jsonl_lines(tracer=again.baseline.spans) == (
            telemetry_jsonl_lines(tracer=report.baseline.spans)
        )
        for mine, theirs in zip(again.runs, report.runs):
            assert telemetry_jsonl_lines(tracer=mine.stats.spans) == (
                telemetry_jsonl_lines(tracer=theirs.stats.spans)
            )


class TestEmitArtifacts:
    def test_registry_only_emits_jsonl_and_prom(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        paths = emit_artifacts(str(tmp_path), "run", registry=registry)
        names = sorted(p.split("/")[-1] for p in paths)
        assert names == ["run.metrics.prom", "run.telemetry.jsonl"]

    def test_nothing_to_write_returns_no_paths(self, tmp_path):
        assert emit_artifacts(str(tmp_path), "run") == []
