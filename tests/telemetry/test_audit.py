"""The decision audit log: records, rendering, serialization."""

import pytest

from repro.telemetry.audit import (
    NOT_BENEFICIAL,
    OFFLOADED,
    SKIPPED_WOULD_WORSEN,
    AuditLog,
    BudgetState,
    CandidateSplit,
    DecisionRecord,
)


def make_record(sample_id=0, outcome=OFFLOADED, budget=None, efficiency=100.0):
    candidates = (
        CandidateSplit(split=0, size_bytes=1000, prefix_cpu_s=0.0, savings_bytes=0),
        CandidateSplit(split=1, size_bytes=400, prefix_cpu_s=0.01, savings_bytes=600),
    )
    return DecisionRecord(
        sample_id=sample_id,
        candidates=candidates,
        chosen_split=1,
        best_split=1,
        efficiency=efficiency,
        efficiency_rank=1,
        outcome=outcome,
        reason="test",
        budget=budget,
    )


class TestCandidateSplit:
    def test_split_zero_has_zero_efficiency(self):
        cand = CandidateSplit(split=0, size_bytes=10, prefix_cpu_s=0.0, savings_bytes=0)
        assert cand.efficiency == 0.0

    def test_negative_savings_have_zero_efficiency(self):
        cand = CandidateSplit(split=1, size_bytes=10, prefix_cpu_s=0.1, savings_bytes=-5)
        assert cand.efficiency == 0.0

    def test_free_prefix_is_infinitely_efficient(self):
        cand = CandidateSplit(split=1, size_bytes=10, prefix_cpu_s=0.0, savings_bytes=5)
        assert cand.efficiency == float("inf")

    def test_normal_ratio(self):
        cand = CandidateSplit(split=1, size_bytes=10, prefix_cpu_s=0.5, savings_bytes=100)
        assert cand.efficiency == pytest.approx(200.0)


class TestDecisionRecord:
    def test_unknown_outcome_rejected(self):
        with pytest.raises(ValueError):
            make_record(outcome="shrugged")

    def test_candidate_at(self):
        record = make_record()
        assert record.candidate_at(1).size_bytes == 400
        with pytest.raises(KeyError):
            record.candidate_at(9)


class TestAuditLog:
    def test_duplicate_sample_rejected(self):
        log = AuditLog()
        log.add(make_record(sample_id=4))
        with pytest.raises(ValueError):
            log.add(make_record(sample_id=4))

    def test_missing_sample_raises_keyerror(self):
        with pytest.raises(KeyError):
            AuditLog().get(7)

    def test_iterates_sorted_by_sample_id(self):
        log = AuditLog()
        for sample_id in (5, 1, 3):
            log.add(make_record(sample_id=sample_id))
        assert [r.sample_id for r in log] == [1, 3, 5]

    def test_outcome_counts(self):
        log = AuditLog()
        log.add(make_record(sample_id=0, outcome=OFFLOADED))
        log.add(make_record(sample_id=1, outcome=NOT_BENEFICIAL))
        log.add(make_record(sample_id=2, outcome=NOT_BENEFICIAL))
        assert log.outcome_counts() == {OFFLOADED: 1, NOT_BENEFICIAL: 2}

    def test_explain_tells_the_whole_story(self):
        budget = BudgetState(
            accepted_samples=3,
            epoch_estimate_s=1.25,
            bottleneck="network",
            network_bound=True,
            storage_cpu_s=0.5,
            traffic_bytes=2e6,
        )
        log = AuditLog()
        log.add(make_record(sample_id=9, budget=budget))
        text = log.explain(9)
        assert "sample 9: offloaded" in text
        assert "candidate splits:" in text
        assert "<- chosen" in text
        assert "3 samples already offloaded" in text
        assert "network-bound" in text


class TestSerialization:
    def test_round_trip_preserves_records(self):
        log = AuditLog()
        log.add(make_record(sample_id=0))
        log.add(
            make_record(
                sample_id=1,
                outcome=SKIPPED_WOULD_WORSEN,
                budget=BudgetState(
                    accepted_samples=0,
                    epoch_estimate_s=2.0,
                    bottleneck="gpu",
                    network_bound=False,
                    storage_cpu_s=0.0,
                    traffic_bytes=0.0,
                ),
            )
        )
        restored = AuditLog.from_dicts(log.to_dicts())
        assert restored.to_dicts() == log.to_dicts()
        assert restored.get(1).budget.bottleneck == "gpu"

    def test_infinite_efficiency_survives_json(self):
        log = AuditLog()
        log.add(make_record(sample_id=0, efficiency=float("inf")))
        dumped = log.to_dicts()
        assert dumped[0]["efficiency"] == "inf"  # no bare Infinity in JSON
        assert AuditLog.from_dicts(dumped).get(0).efficiency == float("inf")
