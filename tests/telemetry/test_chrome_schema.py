"""Chrome-trace rendering of spans: pairing, schema, determinism."""

import json

from repro.metrics.chrometrace import spans_to_trace_events, write_chrome_trace
from repro.telemetry.clock import ManualClock
from repro.telemetry.spans import Tracer

#: Keys chrome://tracing requires per event phase.
REQUIRED = {"X": {"name", "ph", "pid", "tid", "ts", "dur"},
            "i": {"name", "ph", "pid", "tid", "ts", "s"},
            "M": {"name", "ph", "pid"}}


def traced_sample():
    clock = ManualClock()
    tracer = Tracer(clock=clock)
    tracer.begin("s1-e1", "sample.fetch", split=2)
    clock.advance(0.001)
    tracer.begin("s1-e1", "storage.prefix")
    clock.advance(0.010)
    tracer.end("s1-e1", "storage.prefix", cpu_s=0.01)
    tracer.instant("s1-e1", "cache.miss")
    clock.advance(0.004)
    tracer.end("s1-e1", "sample.fetch", wire_bytes=2048)
    tracer.instant("s2-e1", "degraded.demote", reason="breaker-open")
    return tracer


class TestSpansToTraceEvents:
    def test_every_event_satisfies_the_schema(self):
        events = spans_to_trace_events(traced_sample().events)
        for event in events:
            assert REQUIRED[event["ph"]] <= set(event), event

    def test_begin_end_pairs_become_complete_events(self):
        events = spans_to_trace_events(traced_sample().events)
        fetch = next(e for e in events if e["name"] == "sample.fetch")
        assert fetch["ph"] == "X"
        assert fetch["ts"] == 0
        assert fetch["dur"] == 15000  # 15ms in microseconds
        # attrs from both ends merged
        assert fetch["args"] == {"split": 2, "wire_bytes": 2048}

    def test_nested_span_sits_inside_its_parent(self):
        events = spans_to_trace_events(traced_sample().events)
        fetch = next(e for e in events if e["name"] == "sample.fetch")
        prefix = next(e for e in events if e["name"] == "storage.prefix")
        assert fetch["ts"] <= prefix["ts"]
        assert prefix["ts"] + prefix["dur"] <= fetch["ts"] + fetch["dur"]
        assert prefix["tid"] == fetch["tid"]

    def test_traces_get_distinct_threads_in_first_seen_order(self):
        events = spans_to_trace_events(traced_sample().events)
        threads = {
            e["args"]["name"]: e["tid"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert threads == {"s1-e1": 0, "s2-e1": 1}

    def test_instants_are_thread_scoped(self):
        events = spans_to_trace_events(traced_sample().events)
        miss = next(e for e in events if e["name"] == "cache.miss")
        assert miss["ph"] == "i"
        assert miss["s"] == "t"

    def test_unmatched_begin_closes_at_last_trace_timestamp(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        tracer.begin("s0-e0", "sample.fetch")
        clock.advance(2.0)
        tracer.instant("s0-e0", "fault.crash_interrupt")
        events = spans_to_trace_events(tracer.events)
        fetch = next(e for e in events if e["name"] == "sample.fetch")
        assert fetch["ph"] == "X"
        assert fetch["dur"] == 2_000_000

    def test_unmatched_end_is_dropped(self):
        tracer = Tracer()
        tracer.end("s0-e0", "never.began")
        events = spans_to_trace_events(tracer.events)
        assert all(e["name"] != "never.began" for e in events)

    def test_rendering_is_deterministic(self):
        one = spans_to_trace_events(traced_sample().events)
        two = spans_to_trace_events(traced_sample().events)
        assert json.dumps(one, sort_keys=True) == json.dumps(two, sort_keys=True)


class TestWriteChromeTrace:
    def test_spans_only_document_loads(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(None, str(path), spans=traced_sample().events)
        document = json.loads(path.read_text())
        assert isinstance(document["traceEvents"], list)
        assert any(e["ph"] == "X" for e in document["traceEvents"])

    def test_identical_spans_write_identical_bytes(self, tmp_path):
        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        for path in paths:
            write_chrome_trace(None, str(path), spans=traced_sample().events)
        assert paths[0].read_bytes() == paths[1].read_bytes()
