"""Flight recorder: bounded rings, teeing, and the chrome-trace dump."""

import json

from repro.telemetry.clock import ManualClock
from repro.telemetry.flight import FlightRecorder
from repro.telemetry.logs import LogRecord, StructuredLogger, render_logfmt
from repro.telemetry.spans import BEGIN, Tracer


def make_recorder(**kwargs):
    return FlightRecorder(clock=ManualClock(), **kwargs)


class TestBoundedRings:
    def test_span_ring_evicts_oldest_and_counts_drops(self):
        recorder = make_recorder(capacity=3)
        for i in range(5):
            recorder.instant("t", f"ev{i}")
        snap = recorder.snapshot()
        assert [e.name for e in snap.spans] == ["ev2", "ev3", "ev4"]
        assert snap.dropped_spans == 2
        assert snap.dropped_logs == 0

    def test_log_ring_evicts_independently(self):
        recorder = make_recorder(capacity=2)
        log = StructuredLogger("t", sink=recorder.record_log, bridge=False)
        for i in range(4):
            log.info(f"m{i}")
        snap = recorder.snapshot()
        assert [r.message for r in snap.logs] == ["m2", "m3"]
        assert snap.dropped_logs == 2

    def test_capacity_validated(self):
        import pytest

        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(capacity=0)

    def test_clear_resets_rings_and_counters(self):
        recorder = make_recorder(capacity=1)
        recorder.instant("t", "a")
        recorder.instant("t", "b")
        recorder.clear()
        snap = recorder.snapshot()
        assert snap.spans == () and snap.dropped_spans == 0


class TestTee:
    def test_tee_tracer_keeps_the_full_stream(self):
        tee = Tracer(clock=ManualClock())
        recorder = make_recorder(capacity=2, tee=tee)
        for i in range(5):
            recorder.instant("t", f"ev{i}")
        assert len(recorder.snapshot().spans) == 2  # ring stays bounded
        assert [e.name for e in tee.events] == [f"ev{i}" for i in range(5)]

    def test_record_span_forwards_prebuilt_events(self):
        tee = Tracer(clock=ManualClock())
        recorder = make_recorder(tee=tee)
        source = Tracer(clock=ManualClock())
        event = source.instant("s1-e0", "decision")
        recorder.record_span(event)
        assert recorder.snapshot().spans == (event,)
        assert tee.events == [event]


class TestChromeTrace:
    def test_begin_end_pairs_become_complete_events_with_merged_attrs(self):
        clock = ManualClock()
        recorder = FlightRecorder(clock=clock)
        recorder.begin("job-0-r1", "service.plan", tenant="a")
        clock.advance(2.0)
        recorder.end("job-0-r1", "service.plan", cores=4)
        trace = recorder.to_chrome_trace()
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == 1
        assert complete[0]["name"] == "service.plan"
        assert complete[0]["ts"] == 0.0 and complete[0]["dur"] == 2.0 * 1e6
        assert complete[0]["args"] == {"tenant": "a", "cores": 4}

    def test_each_trace_gets_a_named_thread_row(self):
        recorder = make_recorder()
        recorder.instant("job-0-r1", "service.shed")
        recorder.instant("job-1-r1", "service.shed")
        trace = recorder.to_chrome_trace()
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        assert [(m["tid"], m["args"]["name"]) for m in meta] == [
            (1, "job-0-r1"),
            (2, "job-1-r1"),
        ]
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert {e["tid"] for e in instants} == {1, 2}
        assert all(e["s"] == "t" for e in instants)

    def test_unmatched_begin_closes_at_window_end_marked_truncated(self):
        clock = ManualClock()
        recorder = FlightRecorder(clock=clock)
        recorder.begin("t", "service.request")
        clock.advance(3.0)
        recorder.instant("t", "service.shed")
        trace = recorder.to_chrome_trace()
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == 1
        assert complete[0]["dur"] == 3.0 * 1e6
        assert complete[0]["args"]["truncated"] is True

    def test_logs_land_on_a_dedicated_row(self):
        recorder = make_recorder()
        recorder.instant("t", "service.shed")
        record = LogRecord(t_s=1.0, level="warning", logger="svc", message="shed")
        recorder.record_log(record)
        trace = recorder.to_chrome_trace()
        log_events = [
            e for e in trace["traceEvents"]
            if e["ph"] == "i" and e["name"].startswith("log.")
        ]
        assert len(log_events) == 1
        assert log_events[0]["name"] == "log.warning"
        assert log_events[0]["args"] == {"line": render_logfmt(record)}
        meta_names = [
            e["args"]["name"] for e in trace["traceEvents"] if e["ph"] == "M"
        ]
        assert meta_names == ["t", "logs"]
        # The logs row sits after every trace row.
        assert log_events[0]["tid"] == 2

    def test_other_data_counts(self):
        recorder = make_recorder(capacity=2)
        for i in range(3):
            recorder.instant("t", f"ev{i}")
        recorder.record_log(
            LogRecord(t_s=0.0, level="info", logger="svc", message="m")
        )
        other = recorder.to_chrome_trace()["otherData"]
        assert other == {
            "dropped_spans": 1, "dropped_logs": 0, "spans": 2, "logs": 1
        }


class TestDump:
    def test_dump_bytes_are_deterministic(self, tmp_path):
        def build():
            clock = ManualClock()
            recorder = FlightRecorder(clock=clock)
            recorder.begin("t", "service.plan", tenant="a")
            clock.advance(1.0)
            recorder.end("t", "service.plan")
            recorder.record_log(
                LogRecord(t_s=0.5, level="info", logger="svc", message="planned")
            )
            return recorder

        path_a = build().dump(str(tmp_path / "a.json"))
        path_b = build().dump(str(tmp_path / "b.json"))
        first = open(path_a, "rb").read()
        assert first == open(path_b, "rb").read()
        assert first.endswith(b"\n")
        loaded = json.loads(first)
        assert loaded["displayTimeUnit"] == "ms"
        assert {e["ph"] for e in loaded["traceEvents"]} >= {"M", "X"}

    def test_snapshot_is_a_stable_copy(self):
        recorder = make_recorder()
        recorder.begin("t", "phase")
        snap = recorder.snapshot()
        recorder.end("t", "phase")
        assert len(snap.spans) == 1
        assert snap.spans[0].phase == BEGIN
