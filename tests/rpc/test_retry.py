"""Retrying client tests with injected transport faults."""

import pytest

from repro.rpc import InMemoryChannel, StorageClient, StorageServer
from repro.rpc.messages import ProtocolError
from repro.rpc.retry import FetchFailedError, RetryingClient


class FlakyFault:
    """Raises for the first ``failures`` calls, then lets traffic through."""

    def __init__(self, failures: int, exc=ConnectionError) -> None:
        self.remaining = failures
        self.exc = exc

    def __call__(self, request_bytes: bytes) -> None:
        if self.remaining > 0:
            self.remaining -= 1
            raise self.exc("injected transport fault")


@pytest.fixture
def server(materialized_tiny, pipeline):
    return StorageServer(materialized_tiny, pipeline, seed=0)


class TestRetryingClient:
    def test_transient_fault_recovered(self, server, materialized_tiny):
        channel = InMemoryChannel(server.handle, fault=FlakyFault(2))
        client = RetryingClient(StorageClient(channel), max_attempts=3)
        payload = client.fetch(0, 0, 0)
        assert payload.data == materialized_tiny.raw_payload(0).data
        assert client.stats.retries == 2
        assert client.stats.failures == 0

    def test_exhausted_retries_raise_with_cause(self, server):
        channel = InMemoryChannel(server.handle, fault=FlakyFault(10))
        client = RetryingClient(StorageClient(channel), max_attempts=3)
        with pytest.raises(FetchFailedError) as err:
            client.fetch(0, 0, 0)
        assert isinstance(err.value.__cause__, ConnectionError)
        assert client.stats.failures == 1
        assert client.stats.retries == 2

    def test_timeouts_retryable_by_default(self, server):
        channel = InMemoryChannel(server.handle, fault=FlakyFault(1, TimeoutError))
        client = RetryingClient(StorageClient(channel))
        client.fetch(0, 0, 0)
        assert client.stats.retries == 1

    def test_protocol_errors_not_retried(self, server):
        channel = InMemoryChannel(lambda b: b"garbage")
        client = RetryingClient(StorageClient(channel), max_attempts=5)
        with pytest.raises(ProtocolError):
            client.fetch(0, 0, 0)
        assert client.stats.retries == 0

    def test_no_fault_no_retries(self, server):
        client = RetryingClient(StorageClient(InMemoryChannel(server.handle)))
        client.fetch(0, 0, 2)
        assert client.stats.retries == 0
        assert client.stats.fetches == 1

    def test_works_under_the_loader(self, server, materialized_tiny, pipeline):
        from repro.data.loader import DataLoader

        channel = InMemoryChannel(server.handle, fault=FlakyFault(1))
        client = RetryingClient(StorageClient(channel), max_attempts=2)
        loader = DataLoader(materialized_tiny, pipeline, client, batch_size=5, seed=0)
        batches = list(loader.epoch(0))
        assert sum(len(b) for b in batches) == len(materialized_tiny)

    def test_validates_attempts(self):
        with pytest.raises(ValueError):
            RetryingClient(None, max_attempts=0)
