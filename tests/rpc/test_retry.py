"""Retrying client tests with injected transport faults."""

import pytest

from repro.rpc import InMemoryChannel, StorageClient, StorageServer
from repro.rpc.messages import ChecksumError, ProtocolError
from repro.rpc.retry import (
    DeadlineExceededError,
    FetchFailedError,
    RetryBudgetExhaustedError,
    RetryingClient,
)


class FlakyFault:
    """Raises for the first ``failures`` calls, then lets traffic through."""

    def __init__(self, failures: int, exc=ConnectionError) -> None:
        self.remaining = failures
        self.exc = exc

    def __call__(self, request_bytes: bytes) -> None:
        if self.remaining > 0:
            self.remaining -= 1
            raise self.exc("injected transport fault")


@pytest.fixture
def server(materialized_tiny, pipeline):
    return StorageServer(materialized_tiny, pipeline, seed=0)


class TestRetryingClient:
    def test_transient_fault_recovered(self, server, materialized_tiny):
        channel = InMemoryChannel(server.handle, fault=FlakyFault(2))
        client = RetryingClient(StorageClient(channel), max_attempts=3)
        payload = client.fetch(0, 0, 0)
        assert payload.data == materialized_tiny.raw_payload(0).data
        assert client.stats.retries == 2
        assert client.stats.failures == 0

    def test_exhausted_retries_raise_with_cause(self, server):
        channel = InMemoryChannel(server.handle, fault=FlakyFault(10))
        client = RetryingClient(StorageClient(channel), max_attempts=3)
        with pytest.raises(FetchFailedError) as err:
            client.fetch(0, 0, 0)
        assert isinstance(err.value.__cause__, ConnectionError)
        assert client.stats.failures == 1
        assert client.stats.retries == 2

    def test_timeouts_retryable_by_default(self, server):
        channel = InMemoryChannel(server.handle, fault=FlakyFault(1, TimeoutError))
        client = RetryingClient(StorageClient(channel))
        client.fetch(0, 0, 0)
        assert client.stats.retries == 1

    def test_protocol_errors_not_retried(self, server):
        channel = InMemoryChannel(lambda b: b"garbage")
        client = RetryingClient(StorageClient(channel), max_attempts=5)
        with pytest.raises(ProtocolError):
            client.fetch(0, 0, 0)
        assert client.stats.retries == 0

    def test_no_fault_no_retries(self, server):
        client = RetryingClient(StorageClient(InMemoryChannel(server.handle)))
        client.fetch(0, 0, 2)
        assert client.stats.retries == 0
        assert client.stats.fetches == 1

    def test_works_under_the_loader(self, server, materialized_tiny, pipeline):
        from repro.data.loader import DataLoader

        channel = InMemoryChannel(server.handle, fault=FlakyFault(1))
        client = RetryingClient(StorageClient(channel), max_attempts=2)
        loader = DataLoader(materialized_tiny, pipeline, client, batch_size=5, seed=0)
        batches = list(loader.epoch(0))
        assert sum(len(b) for b in batches) == len(materialized_tiny)

    def test_validates_attempts(self):
        with pytest.raises(ValueError):
            RetryingClient(None, max_attempts=0)

    def test_attempts_invariant(self, server):
        channel = InMemoryChannel(server.handle, fault=FlakyFault(4))
        client = RetryingClient(
            StorageClient(channel), max_attempts=3, base_delay=0.0
        )
        with pytest.raises(FetchFailedError):
            client.fetch(0, 0, 0)
        client.fetch(0, 0, 0)  # fault exhausted on its 4th failure
        stats = client.stats
        assert stats.attempts == stats.fetches + stats.retries
        assert (stats.fetches, stats.attempts, stats.retries) == (2, 5, 3)


class SleepRecorder:
    def __init__(self) -> None:
        self.delays = []

    def __call__(self, seconds: float) -> None:
        self.delays.append(seconds)


class TestBackoff:
    def test_exponential_delays_without_jitter(self, server):
        sleep = SleepRecorder()
        channel = InMemoryChannel(server.handle, fault=FlakyFault(10))
        client = RetryingClient(
            StorageClient(channel),
            max_attempts=5,
            base_delay=0.1,
            max_delay=0.5,
            jitter=False,
            sleep=sleep,
        )
        with pytest.raises(FetchFailedError):
            client.fetch(0, 0, 0)
        # 0.1 * 2^k capped at max_delay.
        assert sleep.delays == pytest.approx([0.1, 0.2, 0.4, 0.5])
        assert client.stats.backoff_s == pytest.approx(sum(sleep.delays))

    def test_jittered_delays_stay_under_the_cap(self, server):
        sleep = SleepRecorder()
        channel = InMemoryChannel(server.handle, fault=FlakyFault(10))
        client = RetryingClient(
            StorageClient(channel),
            max_attempts=6,
            base_delay=0.1,
            max_delay=0.4,
            seed=3,
            sleep=sleep,
        )
        with pytest.raises(FetchFailedError):
            client.fetch(0, 0, 0)
        caps = [0.1, 0.2, 0.4, 0.4, 0.4]
        assert len(sleep.delays) <= len(caps)
        for delay, cap in zip(sleep.delays, caps):
            assert 0.0 <= delay <= cap

    def test_jitter_is_seeded(self, server):
        def delays_for(seed):
            sleep = SleepRecorder()
            channel = InMemoryChannel(server.handle, fault=FlakyFault(10))
            client = RetryingClient(
                StorageClient(channel), max_attempts=4, seed=seed, sleep=sleep
            )
            with pytest.raises(FetchFailedError):
                client.fetch(0, 0, 0)
            return sleep.delays

        assert delays_for(7) == delays_for(7)
        assert delays_for(7) != delays_for(8)


class TestDeadline:
    def test_deadline_cuts_retries_short(self, server):
        clock = {"now": 0.0}

        def fake_clock():
            return clock["now"]

        def fake_sleep(seconds):
            clock["now"] += seconds

        channel = InMemoryChannel(server.handle, fault=FlakyFault(100))
        client = RetryingClient(
            StorageClient(channel),
            max_attempts=50,
            base_delay=1.0,
            max_delay=1.0,
            jitter=False,
            deadline_s=2.5,
            sleep=fake_sleep,
            clock=fake_clock,
        )
        with pytest.raises(DeadlineExceededError):
            client.fetch(0, 0, 0)
        # Attempt at t=0, sleeps at 1.0 each: the third sleep would end at
        # t=3.0 > 2.5, so only two retries run.
        assert client.stats.retries == 2
        assert client.stats.failures == 1

    def test_deadline_error_is_a_fetch_failure(self):
        assert issubclass(DeadlineExceededError, FetchFailedError)

    def test_validates_deadline(self):
        with pytest.raises(ValueError):
            RetryingClient(None, deadline_s=0.0)


class TestChecksumRetries:
    def test_checksum_errors_are_retried_and_counted(self, server, materialized_tiny):
        channel = InMemoryChannel(
            server.handle, fault=FlakyFault(2, exc=ChecksumError)
        )
        client = RetryingClient(
            StorageClient(channel), max_attempts=3, base_delay=0.0
        )
        payload = client.fetch(0, 0, 0)
        assert payload.data == materialized_tiny.raw_payload(0).data
        assert client.stats.checksum_failures == 2
        assert client.stats.retries == 2


class TestRetryBudget:
    def make_client(self, server, budget_s, failures=100, **kwargs):
        channel = InMemoryChannel(server.handle, fault=FlakyFault(failures))
        defaults = dict(
            max_attempts=10,
            base_delay=1.0,
            max_delay=1.0,
            jitter=False,
            budget_s=budget_s,
            sleep=lambda _: None,
        )
        defaults.update(kwargs)
        return RetryingClient(StorageClient(channel), **defaults)

    def test_budget_spans_fetches(self, server):
        client = self.make_client(server, budget_s=2.5)
        with pytest.raises(RetryBudgetExhaustedError):
            client.fetch(0, 0, 0)  # two 1.0s backoffs fit, the third doesn't
        assert client.stats.retries == 2
        assert client.budget_remaining_s == pytest.approx(0.5)
        # The next fetch inherits what's left: its FIRST backoff overdraws.
        with pytest.raises(RetryBudgetExhaustedError):
            client.fetch(1, 0, 0)
        assert client.stats.retries == 2  # no new backoff was spent
        assert client.stats.budget_exhaustions == 2
        assert client.stats.failures == 2

    def test_recovery_before_budget_spends_nothing_more(self, server):
        client = self.make_client(server, budget_s=10.0, failures=2)
        client.fetch(0, 0, 0)
        assert client.stats.backoff_s == pytest.approx(2.0)
        assert client.budget_remaining_s == pytest.approx(8.0)

    def test_unlimited_budget_by_default(self, server):
        client = self.make_client(server, budget_s=None, failures=1)
        assert client.budget_remaining_s is None
        client.fetch(0, 0, 0)

    def test_budget_error_is_a_fetch_failure(self):
        assert issubclass(RetryBudgetExhaustedError, FetchFailedError)

    def test_validates_budget(self):
        with pytest.raises(ValueError):
            RetryingClient(None, budget_s=0.0)

    def test_budget_outcome_label_distinguishes_shed_from_timeout(self, server):
        from repro.telemetry.registry import MetricsRegistry, use_registry

        registry = MetricsRegistry()
        with use_registry(registry):
            client = self.make_client(server, budget_s=0.5)
            with pytest.raises(RetryBudgetExhaustedError):
                client.fetch(0, 0, 0)
        snapshot = registry.snapshot()
        labels = {
            labels
            for (name, labels) in snapshot.series
            if name == "rpc_fetch_seconds"
        }
        assert labels == {(("outcome", "budget"),)}

    def test_failure_outcome_classification(self):
        from repro.rpc.retry import failure_outcome

        assert failure_outcome(DeadlineExceededError()) == "deadline"
        assert failure_outcome(RetryBudgetExhaustedError()) == "budget"
        assert failure_outcome(FetchFailedError()) == "exhausted"
        assert failure_outcome(ValueError()) == "error"
