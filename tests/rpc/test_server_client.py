"""Storage server + client tests over the in-memory channel."""

import numpy as np
import pytest

from repro.data.trace import TraceDataset
from repro.preprocessing.payload import PayloadKind
from repro.rpc import (
    FetchRequest,
    InMemoryChannel,
    ProtocolError,
    StorageClient,
    StorageServer,
    response_wire_size,
)


@pytest.fixture
def server(materialized_tiny, pipeline):
    return StorageServer(materialized_tiny, pipeline, seed=0)


@pytest.fixture
def client(server):
    return StorageClient(InMemoryChannel(server.handle))


class TestServer:
    def test_rejects_trace_dataset(self, pipeline):
        trace = TraceDataset([100], [32], [32])
        with pytest.raises(ValueError):
            StorageServer(trace, pipeline)

    def test_split_zero_returns_stored_bytes(self, server, materialized_tiny):
        resp = server.serve(FetchRequest(0, 0, 0))
        assert resp.kind is PayloadKind.ENCODED
        assert resp.payload == materialized_tiny.raw_payload(0).data

    def test_split_two_returns_cropped_pixels(self, server):
        resp = server.serve(FetchRequest(0, 0, 2))
        assert resp.kind is PayloadKind.IMAGE_U8
        assert (resp.height, resp.width) == (224, 224)
        assert len(resp.payload) == 224 * 224 * 3

    def test_full_split_returns_tensor(self, server, pipeline):
        resp = server.serve(FetchRequest(0, 0, len(pipeline)))
        assert resp.kind is PayloadKind.TENSOR_F32
        assert len(resp.payload) == 224 * 224 * 3 * 4

    def test_out_of_range_sample_rejected(self, server, materialized_tiny):
        with pytest.raises(ProtocolError):
            server.serve(FetchRequest(len(materialized_tiny), 0, 0))

    def test_split_beyond_pipeline_rejected(self, server):
        with pytest.raises(ProtocolError):
            server.serve(FetchRequest(0, 0, 6))

    def test_accounting(self, server):
        server.serve(FetchRequest(0, 0, 0))
        server.serve(FetchRequest(1, 0, 3))
        assert server.requests_served == 2
        assert server.ops_executed == 3
        assert server.cpu_seconds > 0
        assert server.splits_served == {0: 1, 3: 1}


class TestClient:
    def test_fetch_counts_response_traffic(self, client, materialized_tiny):
        payload = client.fetch(0, 0, 0)
        assert client.traffic_bytes == response_wire_size(payload.nbytes)

    def test_fetch_split_two_traffic_is_crop_size(self, client):
        client.fetch(0, 0, 2)
        assert client.traffic_bytes == response_wire_size(224 * 224 * 3)

    def test_fetched_prefix_continues_identically(
        self, client, server, materialized_tiny, pipeline
    ):
        sid = 3
        local = pipeline.run(
            materialized_tiny.raw_payload(sid), seed=0, epoch=1, sample_id=sid
        ).payload.data
        for split in range(6):
            partial = client.fetch(sid, 1, split)
            finished = pipeline.run(
                partial, seed=0, epoch=1, sample_id=sid, start=split
            ).payload.data
            assert np.array_equal(finished, local), f"split {split}"

    def test_epoch_changes_server_side_augmentation(self, client):
        a = client.fetch(0, 0, 2).data
        b = client.fetch(0, 1, 2).data
        assert not np.array_equal(a, b)

    def test_traffic_accumulates(self, client):
        client.fetch(0, 0, 0)
        first = client.traffic_bytes
        client.fetch(1, 0, 0)
        assert client.traffic_bytes > first
