"""Fuzzing the wire parsers: arbitrary bytes must fail cleanly.

A storage server faces whatever the network delivers; the parsers must
raise ProtocolError (never segfault-style surprises like IndexError or
struct.error) on any input.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec import CorruptStreamError, ToyJpegCodec
from repro.rpc.messages import FetchRequest, FetchResponse, ProtocolError


class TestRequestFuzz:
    @given(data=st.binary(max_size=64))
    @settings(max_examples=200, deadline=None)
    def test_arbitrary_bytes_never_crash(self, data):
        try:
            request = FetchRequest.from_bytes(data)
        except ProtocolError:
            return
        # Anything that parses must re-serialize to the same bytes.
        assert request.to_bytes() == data

    @given(seed_request=st.tuples(st.integers(0, 2**32 - 1), st.integers(0, 255)),
           flip=st.integers(0, 12))
    @settings(max_examples=100, deadline=None)
    def test_bit_flipped_requests(self, seed_request, flip):
        sample_id, split = seed_request
        data = bytearray(FetchRequest(sample_id, 0, split).to_bytes())
        data[flip] ^= 0xFF
        try:
            FetchRequest.from_bytes(bytes(data))
        except ProtocolError:
            pass  # corrupted magic -> rejected; corrupted fields may parse


class TestResponseFuzz:
    @given(data=st.binary(max_size=256))
    @settings(max_examples=200, deadline=None)
    def test_arbitrary_bytes_raise_protocol_error(self, data):
        try:
            response = FetchResponse.from_bytes(data)
        except ProtocolError:
            return
        # A parse that survives must also produce a payload or a clean
        # ProtocolError (dimension/length mismatch).
        try:
            response.to_payload()
        except ProtocolError:
            pass

    @given(cut=st.integers(0, 100))
    @settings(max_examples=50, deadline=None)
    def test_truncations_of_a_valid_response(self, cut):
        import numpy as np

        from repro.preprocessing.payload import Payload

        array = np.random.default_rng(0).integers(
            0, 256, size=(6, 6, 3), dtype=np.uint8
        )
        wire = FetchResponse.from_payload(
            FetchRequest(1, 2, 2), Payload.image(array), 6, 6
        ).to_bytes()
        cut = min(cut, len(wire) - 1)
        with pytest.raises(ProtocolError):
            FetchResponse.from_bytes(wire[:cut])


class TestCodecFuzz:
    @given(data=st.binary(max_size=300))
    @settings(max_examples=150, deadline=None)
    def test_codec_rejects_garbage_cleanly(self, data):
        codec = ToyJpegCodec()
        try:
            codec.decode(data)
        except CorruptStreamError:
            pass  # the only acceptable failure mode
