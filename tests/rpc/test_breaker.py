"""Circuit breaker state machine tests (injected clock, no real waiting)."""

import threading

import pytest

from repro.rpc.breaker import (
    BreakerOpenError,
    BreakerState,
    CircuitBreaker,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


def make_breaker(clock, threshold=3, recovery=10.0):
    return CircuitBreaker(
        failure_threshold=threshold, recovery_time_s=recovery, clock=clock
    )


class TestClosedState:
    def test_starts_closed_and_allows(self, clock):
        breaker = make_breaker(clock)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_failures_below_threshold_stay_closed(self, clock):
        breaker = make_breaker(clock, threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_success_resets_the_consecutive_count(self, clock):
        breaker = make_breaker(clock, threshold=3)
        for _ in range(5):
            breaker.record_failure()
            breaker.record_failure()
            breaker.record_success()  # never 3 in a row
        assert breaker.state is BreakerState.CLOSED

    def test_threshold_consecutive_failures_trip(self, clock):
        breaker = make_breaker(clock, threshold=3)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.stats.opens == 1


class TestOpenState:
    def test_open_rejects_until_cooldown(self, clock):
        breaker = make_breaker(clock, threshold=1, recovery=10.0)
        breaker.record_failure()
        assert not breaker.allow()
        assert not breaker.allow()
        assert breaker.stats.rejections == 2

    def test_cooldown_promotes_to_half_open(self, clock):
        breaker = make_breaker(clock, threshold=1, recovery=10.0)
        breaker.record_failure()
        clock.advance(9.999)
        assert breaker.state is BreakerState.OPEN
        clock.advance(0.001)
        assert breaker.state is BreakerState.HALF_OPEN


class TestHalfOpenState:
    def trip_and_cool(self, clock, breaker):
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.state is BreakerState.HALF_OPEN

    def test_exactly_one_probe_is_admitted(self, clock):
        breaker = make_breaker(clock, threshold=1)
        self.trip_and_cool(clock, breaker)
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # everyone else waits for the verdict
        assert breaker.stats.probes == 1

    def test_probe_success_closes(self, clock):
        breaker = make_breaker(clock, threshold=1)
        self.trip_and_cool(clock, breaker)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_and_restarts_the_timer(self, clock):
        breaker = make_breaker(clock, threshold=1, recovery=10.0)
        self.trip_and_cool(clock, breaker)
        assert breaker.allow()
        clock.advance(1.0)
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        clock.advance(9.999)  # old timer would have expired; new one has not
        assert breaker.state is BreakerState.OPEN
        clock.advance(0.001)
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.stats.opens == 2

    def test_full_cycle_open_half_open_closed(self, clock):
        breaker = make_breaker(clock, threshold=2, recovery=5.0)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED


class TestCallGuard:
    def test_call_passes_results_through(self, clock):
        breaker = make_breaker(clock)
        assert breaker.call(lambda x: x + 1, 41) == 42
        assert breaker.stats.successes == 1

    def test_call_records_failures_and_reraises(self, clock):
        breaker = make_breaker(clock, threshold=1)

        def boom():
            raise ConnectionError("down")

        with pytest.raises(ConnectionError):
            breaker.call(boom)
        assert breaker.state is BreakerState.OPEN

    def test_call_raises_breaker_open_when_blocked(self, clock):
        breaker = make_breaker(clock, threshold=1)
        breaker.record_failure()
        with pytest.raises(BreakerOpenError):
            breaker.call(lambda: None)


class TestConcurrency:
    """The breaker is shared by concurrent loader workers; its check-and-set
    paths (most critically the half-open probe slot) must be atomic."""

    THREADS = 16
    ROUNDS = 50

    def run_contended(self, worker, threads=THREADS):
        """Start ``threads`` copies of ``worker`` behind a barrier."""
        barrier = threading.Barrier(threads)
        errors = []

        def wrapped(index):
            barrier.wait()
            try:
                worker(index)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        pool = [
            threading.Thread(target=wrapped, args=(i,)) for i in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert errors == []

    def test_half_open_admits_exactly_one_probe_under_contention(self, clock):
        # Repeat the race many times: every round trips the breaker, cools
        # it down, then stampedes allow() from THREADS threads at once.
        # Exactly one may claim the probe slot each round.
        breaker = make_breaker(clock, threshold=1, recovery=10.0)
        for round_index in range(self.ROUNDS):
            breaker.record_failure()
            clock.advance(10.0)
            admitted = []

            def worker(index):
                if breaker.allow():
                    admitted.append(index)

            self.run_contended(worker)
            assert len(admitted) == 1, (
                f"round {round_index}: {len(admitted)} threads claimed "
                f"the single half-open probe slot"
            )
            breaker.record_success()  # settle the probe, close for next round
        assert breaker.stats.probes == self.ROUNDS

    def test_cooldown_promotion_happens_exactly_once(self, clock):
        # Concurrent state reads right after the cooldown elapses must
        # produce exactly one OPEN -> HALF_OPEN transition, not one per
        # racing reader.
        breaker = make_breaker(clock, threshold=1, recovery=10.0)
        breaker.record_failure()
        clock.advance(10.0)

        def worker(index):
            assert breaker.state is BreakerState.HALF_OPEN

        self.run_contended(worker)
        promotions = [
            t
            for t in breaker.transitions
            if t.to_state is BreakerState.HALF_OPEN
        ]
        assert len(promotions) == 1

    def test_concurrent_failures_trip_exactly_once(self, clock):
        breaker = make_breaker(clock, threshold=self.THREADS, recovery=10.0)

        def worker(index):
            breaker.record_failure()

        self.run_contended(worker)
        assert breaker.state is BreakerState.OPEN
        assert breaker.stats.opens == 1
        assert breaker.stats.failures == self.THREADS

    def test_contended_call_guard_runs_one_probe(self, clock):
        # Through the public call() guard: one probe runs, the rest are
        # rejected with BreakerOpenError while it is in flight, and the
        # probe's success closes the breaker.  The probe blocks until all
        # other threads have been turned away -- otherwise its instant
        # success would close the breaker and legitimately admit them.
        breaker = make_breaker(clock, threshold=1, recovery=10.0)
        breaker.record_failure()
        clock.advance(10.0)
        outcomes = []
        outcomes_lock = threading.Lock()
        everyone_else_rejected = threading.Event()

        def probe_fn():
            everyone_else_rejected.wait(timeout=10.0)
            return "ok"

        def worker(index):
            try:
                breaker.call(probe_fn)
                with outcomes_lock:
                    outcomes.append("probed")
            except BreakerOpenError:
                with outcomes_lock:
                    outcomes.append("rejected")
                    if outcomes.count("rejected") == self.THREADS - 1:
                        everyone_else_rejected.set()

        self.run_contended(worker)
        assert outcomes.count("probed") == 1
        assert outcomes.count("rejected") == self.THREADS - 1
        assert breaker.state is BreakerState.CLOSED


class TestValidation:
    def test_rejects_bad_parameters(self, clock):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(recovery_time_s=-1.0)
