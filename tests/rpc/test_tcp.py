"""TCP transport tests: real sockets between 'nodes'."""

import numpy as np
import pytest

from repro.data.loader import DataLoader
from repro.rpc import StorageServer
from repro.rpc.messages import ProtocolError, response_wire_size
from repro.rpc.tcp import TcpStorageClient, TcpStorageServer


@pytest.fixture
def server(materialized_tiny, pipeline):
    return StorageServer(materialized_tiny, pipeline, seed=0)


class TestTcpTransport:
    def test_fetch_round_trip(self, server, materialized_tiny):
        with TcpStorageServer(server.handle) as tcp:
            with TcpStorageClient(tcp.address) as client:
                payload = client.fetch(0, 0, 0)
                assert payload.data == materialized_tiny.raw_payload(0).data

    def test_offloaded_fetch_over_tcp(self, server):
        with TcpStorageServer(server.handle) as tcp:
            with TcpStorageClient(tcp.address) as client:
                payload = client.fetch(1, 0, 2)
                assert payload.data.shape == (224, 224, 3)

    def test_traffic_counts_wire_bytes(self, server):
        with TcpStorageServer(server.handle) as tcp:
            with TcpStorageClient(tcp.address) as client:
                payload = client.fetch(0, 0, 2)
                assert client.traffic_bytes == response_wire_size(payload.nbytes)

    def test_many_sequential_fetches_one_connection(self, server, materialized_tiny):
        import time

        with TcpStorageServer(server.handle) as tcp:
            with TcpStorageClient(tcp.address) as client:
                for sid in range(len(materialized_tiny)):
                    client.fetch(sid, 0, 0)
            # The counter increments just after the last send; give the
            # server thread a moment to get there.
            deadline = time.time() + 2.0
            while tcp.requests_served < len(materialized_tiny) and time.time() < deadline:
                time.sleep(0.01)
            assert tcp.requests_served == len(materialized_tiny)

    def test_loader_trains_over_tcp(self, server, materialized_tiny, pipeline):
        with TcpStorageServer(server.handle) as tcp:
            with TcpStorageClient(tcp.address) as client:
                loader = DataLoader(
                    materialized_tiny, pipeline, client, batch_size=5, seed=0
                )
                total = sum(len(batch) for batch in loader.epoch(0))
                assert total == len(materialized_tiny)

    def test_tcp_matches_in_memory_results(self, server, materialized_tiny, pipeline):
        from repro.rpc import InMemoryChannel, StorageClient

        memory_client = StorageClient(InMemoryChannel(server.handle))
        with TcpStorageServer(server.handle) as tcp:
            with TcpStorageClient(tcp.address) as client:
                over_tcp = client.fetch(2, 1, 3).data
        in_memory = memory_client.fetch(2, 1, 3).data
        assert np.array_equal(over_tcp, in_memory)

    def test_server_error_surfaces_as_protocol_error(self, server):
        with TcpStorageServer(server.handle) as tcp:
            with TcpStorageClient(tcp.address) as client:
                with pytest.raises(ProtocolError):
                    client.fetch(10_000, 0, 0)  # out of range on the server

    def test_concurrent_clients(self, server, materialized_tiny):
        import threading

        results = {}

        def worker(tag):
            with TcpStorageClient(tcp.address) as client:
                results[tag] = client.fetch(tag, 0, 0).nbytes

        with TcpStorageServer(server.handle) as tcp:
            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10.0)
        assert results == {
            i: materialized_tiny.raw_meta(i).nbytes for i in range(4)
        }
