"""TCP transport tests: real sockets between 'nodes'."""

import numpy as np
import pytest

from repro.data.loader import DataLoader
from repro.rpc import StorageServer
from repro.rpc.messages import ProtocolError, response_wire_size
from repro.rpc.tcp import TcpStorageClient, TcpStorageServer


@pytest.fixture
def server(materialized_tiny, pipeline):
    return StorageServer(materialized_tiny, pipeline, seed=0)


class TestTcpTransport:
    def test_fetch_round_trip(self, server, materialized_tiny):
        with TcpStorageServer(server.handle) as tcp:
            with TcpStorageClient(tcp.address) as client:
                payload = client.fetch(0, 0, 0)
                assert payload.data == materialized_tiny.raw_payload(0).data

    def test_offloaded_fetch_over_tcp(self, server):
        with TcpStorageServer(server.handle) as tcp:
            with TcpStorageClient(tcp.address) as client:
                payload = client.fetch(1, 0, 2)
                assert payload.data.shape == (224, 224, 3)

    def test_traffic_counts_wire_bytes(self, server):
        with TcpStorageServer(server.handle) as tcp:
            with TcpStorageClient(tcp.address) as client:
                payload = client.fetch(0, 0, 2)
                assert client.traffic_bytes == response_wire_size(payload.nbytes)

    def test_many_sequential_fetches_one_connection(self, server, materialized_tiny):
        import time

        with TcpStorageServer(server.handle) as tcp:
            with TcpStorageClient(tcp.address) as client:
                for sid in range(len(materialized_tiny)):
                    client.fetch(sid, 0, 0)
            # The counter increments just after the last send; give the
            # server thread a moment to get there.
            deadline = time.time() + 2.0
            while tcp.requests_served < len(materialized_tiny) and time.time() < deadline:
                time.sleep(0.01)
            assert tcp.requests_served == len(materialized_tiny)

    def test_loader_trains_over_tcp(self, server, materialized_tiny, pipeline):
        with TcpStorageServer(server.handle) as tcp:
            with TcpStorageClient(tcp.address) as client:
                loader = DataLoader(
                    materialized_tiny, pipeline, client, batch_size=5, seed=0
                )
                total = sum(len(batch) for batch in loader.epoch(0))
                assert total == len(materialized_tiny)

    def test_tcp_matches_in_memory_results(self, server, materialized_tiny, pipeline):
        from repro.rpc import InMemoryChannel, StorageClient

        memory_client = StorageClient(InMemoryChannel(server.handle))
        with TcpStorageServer(server.handle) as tcp:
            with TcpStorageClient(tcp.address) as client:
                over_tcp = client.fetch(2, 1, 3).data
        in_memory = memory_client.fetch(2, 1, 3).data
        assert np.array_equal(over_tcp, in_memory)

    def test_server_error_surfaces_as_protocol_error(self, server):
        with TcpStorageServer(server.handle) as tcp:
            with TcpStorageClient(tcp.address) as client:
                with pytest.raises(ProtocolError):
                    client.fetch(10_000, 0, 0)  # out of range on the server

    def test_concurrent_clients(self, server, materialized_tiny):
        import threading

        results = {}

        def worker(tag):
            with TcpStorageClient(tcp.address) as client:
                results[tag] = client.fetch(tag, 0, 0).nbytes

        with TcpStorageServer(server.handle) as tcp:
            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10.0)
        assert results == {
            i: materialized_tiny.raw_meta(i).nbytes for i in range(4)
        }


class TestCounterThreadSafety:
    """Regression tests for the shared-counter races sophon-lint GUARD01
    flagged: increments now happen under the owning lock, so the totals
    below are exact even under thread contention, not approximate."""

    def test_shared_client_traffic_bytes_is_exact(self, server):
        import threading

        num_threads = 4
        fetches_per_thread = 25
        with TcpStorageServer(server.handle) as tcp:
            with TcpStorageClient(tcp.address) as client:
                per_fetch = response_wire_size(client.fetch(0, 0, 0).nbytes)

                def worker():
                    for _ in range(fetches_per_thread):
                        client.fetch(0, 0, 0)

                threads = [
                    threading.Thread(target=worker) for _ in range(num_threads)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=30.0)
                assert not any(t.is_alive() for t in threads)
                total = 1 + num_threads * fetches_per_thread
                assert client.traffic_bytes == total * per_fetch
                assert client.checksum_failures == 0

    def test_requests_served_exact_under_concurrent_clients(self, server):
        import threading
        import time

        num_clients = 4
        fetches_per_client = 25

        def worker(tag):
            with TcpStorageClient(tcp.address) as client:
                for _ in range(fetches_per_client):
                    client.fetch(tag, 0, 0)

        with TcpStorageServer(server.handle) as tcp:
            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(num_clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30.0)
            assert not any(t.is_alive() for t in threads)
            # The server-side counter increments just after each send;
            # give the handler threads a moment to reach it.
            expected = num_clients * fetches_per_client
            deadline = time.time() + 5.0
            while tcp.requests_served < expected and time.time() < deadline:
                time.sleep(0.01)
            assert tcp.requests_served == expected


class TestTimeouts:
    def test_read_timeout_surfaces_as_timeout_error(self, server):
        import time as time_mod

        def slow_handler(request_bytes):
            time_mod.sleep(0.5)
            return server.handle(request_bytes)

        with TcpStorageServer(slow_handler) as tcp:
            with TcpStorageClient(tcp.address, read_timeout=0.05) as client:
                with pytest.raises(TimeoutError):
                    client.fetch(0, 0, 0)

    def test_generous_read_timeout_is_harmless(self, server, materialized_tiny):
        with TcpStorageServer(server.handle) as tcp:
            with TcpStorageClient(tcp.address, read_timeout=30.0) as client:
                payload = client.fetch(0, 0, 0)
                assert payload.data == materialized_tiny.raw_payload(0).data

    def test_timeout_parameters_validated(self):
        with pytest.raises(ValueError):
            TcpStorageClient(("127.0.0.1", 1), connect_timeout=0.0)
        with pytest.raises(ValueError):
            TcpStorageClient(("127.0.0.1", 1), read_timeout=-1.0)


class TestProtocolHardening:
    def test_oversized_frame_rejected_with_protocol_error(self, server):
        # The 13-byte request blows a tiny server-side cap; the server
        # answers an explicit error frame, so the client can tell "you
        # sent garbage" (no retry) from "the network ate it" (retry).
        with TcpStorageServer(server.handle, max_message_bytes=8) as tcp:
            with TcpStorageClient(tcp.address) as client:
                with pytest.raises(ProtocolError):
                    client.fetch(0, 0, 0)

    def test_oversized_response_rejected_client_side(self, server):
        import socket
        import struct

        def huge_handler(request_bytes):
            return b"\x00" * 64

        with TcpStorageServer(huge_handler) as tcp:
            sock = socket.create_connection(tcp.address, timeout=5.0)
            try:
                request = struct.pack("<I", 13) + b"\x00" * 13
                sock.sendall(request)
                # Re-parse through the client-side receive path with a
                # tiny cap: the length prefix alone must trigger the cap.
                from repro.rpc.tcp import _recv_message

                with pytest.raises(ProtocolError):
                    _recv_message(sock, max_bytes=16)
            finally:
                sock.close()

    def test_stop_unblocks_waiting_clients(self, server):
        import threading

        tcp = TcpStorageServer(server.handle).start()
        client = TcpStorageClient(tcp.address)
        client.fetch(0, 0, 0)  # connection is live
        errors = []

        def fetch_until_dead():
            try:
                for _ in range(1000):
                    client.fetch(0, 0, 0)
            except (ConnectionError, TimeoutError) as exc:
                errors.append(exc)

        thread = threading.Thread(target=fetch_until_dead)
        thread.start()
        tcp.stop()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert errors  # the in-flight fetch failed fast instead of hanging
        client.close()

    def test_stop_is_idempotent(self, server):
        tcp = TcpStorageServer(server.handle).start()
        tcp.stop()
        tcp.stop()
        tcp.close()


class TestDegradedEpochOverTcp:
    def test_server_killed_mid_epoch_loader_finishes_on_fallback(
        self, server, materialized_tiny, pipeline
    ):
        import numpy as np

        from repro.core.degraded import DegradedModeFetcher
        from repro.data.loader import DirectFetcher
        from repro.rpc.breaker import CircuitBreaker
        from repro.rpc.retry import RetryingClient

        splits = [2] * len(materialized_tiny)
        reference = DataLoader(
            materialized_tiny, pipeline, DirectFetcher(materialized_tiny),
            batch_size=5, splits=None, seed=0,
        )
        expected = list(reference.epoch(1))

        tcp = TcpStorageServer(server.handle).start()
        client = TcpStorageClient(tcp.address, read_timeout=5.0)

        class KillSwitch:
            """Stops the server after ``after`` successful fetches."""

            def __init__(self, inner, after):
                self.inner = inner
                self.after = after
                self.calls = 0

            def fetch(self, sample_id, epoch, split):
                self.calls += 1
                if self.calls == self.after:
                    tcp.stop()
                return self.inner.fetch(sample_id, epoch, split)

        primary = RetryingClient(
            KillSwitch(client, after=4), max_attempts=2, base_delay=0.0
        )
        fetcher = DegradedModeFetcher(
            primary,
            pipeline,
            fallback=DirectFetcher(materialized_tiny),
            breaker=CircuitBreaker(failure_threshold=2, recovery_time_s=60.0),
            seed=0,
        )
        loader = DataLoader(
            materialized_tiny, pipeline, fetcher, batch_size=5, splits=splits, seed=0
        )
        try:
            batches = list(loader.epoch(1))
        finally:
            client.close()
            tcp.stop()

        assert sum(len(b) for b in batches) == len(materialized_tiny)
        assert fetcher.demotion_count > 0  # the outage really happened
        for got, want in zip(batches, expected):
            assert got.sample_ids == want.sample_ids
            assert np.array_equal(got.tensors, want.tensors)
