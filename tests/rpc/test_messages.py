"""Wire message serialization tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.preprocessing.payload import Payload, PayloadKind
from repro.rpc.messages import (
    REQUEST_HEADER_SIZE,
    RESPONSE_HEADER_SIZE,
    FetchRequest,
    FetchResponse,
    ProtocolError,
    response_wire_size,
)


class TestFetchRequest:
    def test_round_trip(self):
        req = FetchRequest(sample_id=123, epoch=7, split=3)
        assert FetchRequest.from_bytes(req.to_bytes()) == req

    def test_wire_size_is_fixed(self):
        assert len(FetchRequest(0, 0, 0).to_bytes()) == REQUEST_HEADER_SIZE

    @given(
        sample_id=st.integers(0, 2**32 - 1),
        epoch=st.integers(0, 2**32 - 1),
        split=st.integers(0, 255),
    )
    @settings(max_examples=30, deadline=None)
    def test_round_trip_property(self, sample_id, epoch, split):
        req = FetchRequest(sample_id, epoch, split)
        assert FetchRequest.from_bytes(req.to_bytes()) == req

    def test_rejects_bad_magic(self):
        data = bytearray(FetchRequest(1, 1, 1).to_bytes())
        data[:4] = b"XXXX"
        with pytest.raises(ProtocolError):
            FetchRequest.from_bytes(bytes(data))

    def test_rejects_wrong_length(self):
        with pytest.raises(ProtocolError):
            FetchRequest.from_bytes(b"\x00" * 5)

    def test_validates_fields(self):
        with pytest.raises(ValueError):
            FetchRequest(-1, 0, 0)
        with pytest.raises(ValueError):
            FetchRequest(0, 0, 256)


class TestFetchResponse:
    def make_request(self):
        return FetchRequest(sample_id=9, epoch=2, split=2)

    def test_encoded_payload_round_trip(self):
        req = FetchRequest(9, 2, 0)
        payload = Payload.encoded(b"\x01\x02\x03", height=20, width=30)
        resp = FetchResponse.from_payload(req, payload, 20, 30)
        back = FetchResponse.from_bytes(resp.to_bytes())
        restored = back.to_payload()
        assert restored.kind is PayloadKind.ENCODED
        assert restored.data == b"\x01\x02\x03"
        assert restored.meta.height == 20

    def test_image_payload_round_trip(self, rng):
        array = rng.integers(0, 256, size=(8, 6, 3), dtype=np.uint8)
        resp = FetchResponse.from_payload(self.make_request(), Payload.image(array), 8, 6)
        restored = FetchResponse.from_bytes(resp.to_bytes()).to_payload()
        assert np.array_equal(restored.data, array)

    def test_tensor_payload_round_trip(self, rng):
        array = rng.uniform(size=(3, 5, 4)).astype(np.float32)
        req = FetchRequest(9, 2, 5)
        resp = FetchResponse.from_payload(req, Payload.tensor(array), 5, 4)
        restored = FetchResponse.from_bytes(resp.to_bytes()).to_payload()
        assert np.allclose(restored.data, array)
        assert restored.data.dtype == np.float32

    def test_wire_size_formula(self, rng):
        array = rng.integers(0, 256, size=(10, 10, 3), dtype=np.uint8)
        resp = FetchResponse.from_payload(self.make_request(), Payload.image(array), 10, 10)
        assert len(resp.to_bytes()) == response_wire_size(array.nbytes)

    def test_truncated_response_rejected(self, rng):
        array = rng.integers(0, 256, size=(8, 8, 3), dtype=np.uint8)
        data = FetchResponse.from_payload(
            self.make_request(), Payload.image(array), 8, 8
        ).to_bytes()
        with pytest.raises(ProtocolError):
            FetchResponse.from_bytes(data[:-5])

    def test_bad_magic_rejected(self):
        with pytest.raises(ProtocolError):
            FetchResponse.from_bytes(b"ZZZZ" + b"\x00" * RESPONSE_HEADER_SIZE)

    def test_short_stream_rejected(self):
        with pytest.raises(ProtocolError):
            FetchResponse.from_bytes(b"\x00" * 4)

    def test_payload_size_mismatch_rejected(self, rng):
        array = rng.integers(0, 256, size=(4, 4, 3), dtype=np.uint8)
        resp = FetchResponse.from_payload(self.make_request(), Payload.image(array), 4, 4)
        # Corrupt the dims so the pixel count no longer matches the payload.
        import dataclasses

        bad = dataclasses.replace(resp, height=5)
        with pytest.raises(ProtocolError):
            bad.to_payload()

    def test_response_wire_size_validates(self):
        with pytest.raises(ValueError):
            response_wire_size(-1)
