"""Wire message serialization tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.preprocessing.payload import Payload, PayloadKind
from repro.rpc.messages import (
    REQUEST_HEADER_SIZE,
    RESPONSE_HEADER_SIZE,
    RESPONSE_HEADER_SIZE_V1,
    ChecksumError,
    FetchRequest,
    FetchResponse,
    ProtocolError,
    payload_checksum,
    response_wire_size,
)


class TestFetchRequest:
    def test_round_trip(self):
        req = FetchRequest(sample_id=123, epoch=7, split=3)
        assert FetchRequest.from_bytes(req.to_bytes()) == req

    def test_wire_size_is_fixed(self):
        assert len(FetchRequest(0, 0, 0).to_bytes()) == REQUEST_HEADER_SIZE

    @given(
        sample_id=st.integers(0, 2**32 - 1),
        epoch=st.integers(0, 2**32 - 1),
        split=st.integers(0, 255),
    )
    @settings(max_examples=30, deadline=None)
    def test_round_trip_property(self, sample_id, epoch, split):
        req = FetchRequest(sample_id, epoch, split)
        assert FetchRequest.from_bytes(req.to_bytes()) == req

    def test_rejects_bad_magic(self):
        data = bytearray(FetchRequest(1, 1, 1).to_bytes())
        data[:4] = b"XXXX"
        with pytest.raises(ProtocolError):
            FetchRequest.from_bytes(bytes(data))

    def test_rejects_wrong_length(self):
        with pytest.raises(ProtocolError):
            FetchRequest.from_bytes(b"\x00" * 5)

    def test_validates_fields(self):
        with pytest.raises(ValueError):
            FetchRequest(-1, 0, 0)
        with pytest.raises(ValueError):
            FetchRequest(0, 0, 256)


class TestFetchResponse:
    def make_request(self):
        return FetchRequest(sample_id=9, epoch=2, split=2)

    def test_encoded_payload_round_trip(self):
        req = FetchRequest(9, 2, 0)
        payload = Payload.encoded(b"\x01\x02\x03", height=20, width=30)
        resp = FetchResponse.from_payload(req, payload, 20, 30)
        back = FetchResponse.from_bytes(resp.to_bytes())
        restored = back.to_payload()
        assert restored.kind is PayloadKind.ENCODED
        assert restored.data == b"\x01\x02\x03"
        assert restored.meta.height == 20

    def test_image_payload_round_trip(self, rng):
        array = rng.integers(0, 256, size=(8, 6, 3), dtype=np.uint8)
        resp = FetchResponse.from_payload(self.make_request(), Payload.image(array), 8, 6)
        restored = FetchResponse.from_bytes(resp.to_bytes()).to_payload()
        assert np.array_equal(restored.data, array)

    def test_tensor_payload_round_trip(self, rng):
        array = rng.uniform(size=(3, 5, 4)).astype(np.float32)
        req = FetchRequest(9, 2, 5)
        resp = FetchResponse.from_payload(req, Payload.tensor(array), 5, 4)
        restored = FetchResponse.from_bytes(resp.to_bytes()).to_payload()
        assert np.allclose(restored.data, array)
        assert restored.data.dtype == np.float32

    def test_wire_size_formula(self, rng):
        array = rng.integers(0, 256, size=(10, 10, 3), dtype=np.uint8)
        resp = FetchResponse.from_payload(self.make_request(), Payload.image(array), 10, 10)
        assert len(resp.to_bytes()) == response_wire_size(array.nbytes)

    def test_truncated_response_rejected(self, rng):
        array = rng.integers(0, 256, size=(8, 8, 3), dtype=np.uint8)
        data = FetchResponse.from_payload(
            self.make_request(), Payload.image(array), 8, 8
        ).to_bytes()
        with pytest.raises(ProtocolError):
            FetchResponse.from_bytes(data[:-5])

    def test_bad_magic_rejected(self):
        with pytest.raises(ProtocolError):
            FetchResponse.from_bytes(b"ZZZZ" + b"\x00" * RESPONSE_HEADER_SIZE)

    def test_short_stream_rejected(self):
        with pytest.raises(ProtocolError):
            FetchResponse.from_bytes(b"\x00" * 4)

    def test_payload_size_mismatch_rejected(self, rng):
        array = rng.integers(0, 256, size=(4, 4, 3), dtype=np.uint8)
        resp = FetchResponse.from_payload(self.make_request(), Payload.image(array), 4, 4)
        # Corrupt the dims so the pixel count no longer matches the payload.
        import dataclasses

        bad = dataclasses.replace(resp, height=5)
        with pytest.raises(ProtocolError):
            bad.to_payload()

    def test_response_wire_size_validates(self):
        with pytest.raises(ValueError):
            response_wire_size(-1)


class TestChecksummedFrames:
    def make_response(self):
        payload = Payload.encoded(b"stable bytes", height=10, width=12)
        return FetchResponse.from_payload(FetchRequest(3, 1, 0), payload, 10, 12)

    def test_v2_frame_carries_the_payload_crc32(self):
        resp = self.make_response()
        wire = resp.to_bytes()
        assert wire[:4] == b"FR02"
        assert len(wire) == RESPONSE_HEADER_SIZE + len(resp.payload)
        assert FetchResponse.from_bytes(wire) == resp

    def test_flipped_payload_byte_raises_checksum_error(self):
        wire = bytearray(self.make_response().to_bytes())
        wire[RESPONSE_HEADER_SIZE + 3] ^= 0xFF
        with pytest.raises(ChecksumError):
            FetchResponse.from_bytes(bytes(wire))

    def test_checksum_error_is_a_protocol_error(self):
        assert issubclass(ChecksumError, ProtocolError)

    def test_v1_frame_still_accepted(self):
        resp = self.make_response()
        wire = resp.to_bytes_v1()
        assert wire[:4] == b"FR01"
        assert len(wire) == RESPONSE_HEADER_SIZE_V1 + len(resp.payload)
        assert FetchResponse.from_bytes(wire) == resp

    def test_v1_frame_has_no_corruption_protection(self):
        # Documents the compat hole the version bump exists to close: v1
        # payload damage parses fine and only fails later (or never).
        wire = bytearray(self.make_response().to_bytes_v1())
        wire[-1] ^= 0xFF
        parsed = FetchResponse.from_bytes(bytes(wire))
        assert parsed.payload != self.make_response().payload

    def test_payload_checksum_is_plain_crc32(self):
        import zlib

        assert payload_checksum(b"abc") == zlib.crc32(b"abc") & 0xFFFFFFFF

    @given(payload=st.binary(min_size=0, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_any_payload_round_trips_with_checksum(self, payload):
        resp = FetchResponse(
            sample_id=1,
            epoch=0,
            split=0,
            kind=PayloadKind.ENCODED,
            height=4,
            width=4,
            channels=3,
            payload=payload,
        )
        assert FetchResponse.from_bytes(resp.to_bytes()).payload == payload
