"""Channel byte-accounting and fault-injection tests."""

import pytest

from repro.rpc.channel import InMemoryChannel


def echo(data: bytes) -> bytes:
    return data + b"!"


class TestChannel:
    def test_counts_every_byte(self):
        channel = InMemoryChannel(echo)
        channel.call(b"abc")
        channel.call(b"de")
        assert channel.stats.calls == 2
        assert channel.stats.request_bytes == 5
        assert channel.stats.response_bytes == 7
        assert channel.stats.total_bytes == 12

    def test_reset(self):
        channel = InMemoryChannel(echo)
        channel.call(b"abc")
        channel.stats.reset()
        assert channel.stats.calls == 0
        assert channel.stats.total_bytes == 0

    def test_rejects_non_bytes_request(self):
        channel = InMemoryChannel(echo)
        with pytest.raises(TypeError):
            channel.call("not bytes")

    def test_rejects_non_bytes_response(self):
        channel = InMemoryChannel(lambda b: "oops")
        with pytest.raises(TypeError):
            channel.call(b"x")

    def test_fault_injection_raises_before_delivery(self):
        calls = []

        def fault(data):
            raise ConnectionError("link down")

        channel = InMemoryChannel(lambda b: calls.append(b) or b"", fault=fault)
        with pytest.raises(ConnectionError):
            channel.call(b"x")
        assert calls == []  # handler never reached
        assert channel.stats.calls == 0  # failed call not counted

    def test_selective_fault(self):
        attempts = {"n": 0}

        def fault(data):
            attempts["n"] += 1
            if attempts["n"] == 1:
                raise TimeoutError("transient")

        channel = InMemoryChannel(echo, fault=fault)
        with pytest.raises(TimeoutError):
            channel.call(b"a")
        assert channel.call(b"a") == b"a!"  # retry succeeds

    def test_accepts_bytearray(self):
        channel = InMemoryChannel(echo)
        assert channel.call(bytearray(b"xy")) == b"xy!"
