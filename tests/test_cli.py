"""CLI smoke tests (small sample counts keep them fast)."""

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "sophon" in out

    def test_fig1a(self, capsys):
        assert main(["--samples", "100", "fig1a"]) == 0
        out = capsys.readouterr().out
        assert "Sample A" in out and "Sample B" in out

    def test_fig1b(self, capsys):
        assert main(["--samples", "150", "fig1b"]) == 0
        out = capsys.readouterr().out
        assert "openimages-12g" in out and "imagenet-11g" in out

    def test_fig1c(self, capsys):
        assert main(["--samples", "150", "fig1c"]) == 0
        assert "EfficiencySummary" in capsys.readouterr().out

    def test_fig1d(self, capsys):
        assert main(["--samples", "200", "fig1d"]) == 0
        out = capsys.readouterr().out
        assert "resnet50" in out and "alexnet" in out

    def test_fig3(self, capsys):
        assert main(["--samples", "200", "fig3", "--dataset", "imagenet"]) == 0
        assert "sophon" in capsys.readouterr().out

    def test_fig4(self, capsys):
        assert main(["--samples", "150", "fig4", "--cores", "0", "2"]) == 0
        out = capsys.readouterr().out
        assert "storage-core sweep" in out
        assert "marginal gain" in out

    def test_table1_shows_both_matrices(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "cedar" in out  # published systems table
        assert "resize-off" in out  # implemented policies table

    def test_sweep(self, capsys, tmp_path):
        path = tmp_path / "grid.csv"
        assert main([
            "--samples", "150", "sweep",
            "--cores", "1", "8", "--csv", str(path),
        ]) == 0
        out = capsys.readouterr().out
        assert "storage_cores" in out
        assert path.read_text().startswith("storage_cores")

    def test_frontier_emits_table_and_json_in_one_invocation(self, capsys, tmp_path):
        path = tmp_path / "frontier.json"
        assert main([
            "--samples", "12", "frontier",
            "--bandwidth", "40", "--floors", "40", "30",
            "--json", str(path),
        ]) == 0
        out = capsys.readouterr().out
        assert "traffic-vs-fidelity frontier" in out
        assert "Floor" in out and "WorstPSNR" in out
        import json
        report = json.loads(path.read_text())
        assert report["kind"] == "fidelity-frontier"
        # The fidelity-free anchor plus one point per requested floor.
        assert [p["min_psnr_db"] for p in report["points"]] == [None, 40.0, 30.0]
        traffic = [p["traffic_bytes"] for p in report["points"]]
        assert traffic[0] >= traffic[1] >= traffic[2]

    def test_frontier_without_json_path_prints_json(self, capsys):
        assert main(["--samples", "8", "frontier", "--bandwidth", "40"]) == 0
        out = capsys.readouterr().out
        assert '"kind": "fidelity-frontier"' in out

    def test_sweep_requires_an_axis(self):
        import pytest as _pytest

        with _pytest.raises(SystemExit):
            main(["--samples", "50", "sweep"])

    def test_fig3_csv_export(self, capsys, tmp_path):
        path = tmp_path / "fig3.csv"
        assert main(["--samples", "150", "fig3", "--csv", str(path)]) == 0
        text = path.read_text()
        assert text.startswith("dataset,policy")
        assert "sophon" in text

    def test_plan_save_round_trip(self, capsys, tmp_path):
        path = tmp_path / "plan.json"
        assert main(["--samples", "150", "plan", "--save", str(path)]) == 0
        out = capsys.readouterr().out
        assert "split histogram" in out

        from repro.core.serialize import plan_from_json

        plan = plan_from_json(path.read_text())
        assert len(plan) == 150
        assert plan.num_offloaded > 0

    def test_stalls(self, capsys):
        assert main(["--samples", "150", "stalls"]) == 0
        out = capsys.readouterr().out
        assert "no-off" in out and "sophon" in out

    def test_ext_llm(self, capsys):
        assert main(["--samples", "500", "ext-llm"]) == 0
        out = capsys.readouterr().out
        assert "offloadable documents: 0%" in out

    def test_unknown_dataset_exits(self):
        with pytest.raises(SystemExit):
            main(["--samples", "10", "fig3", "--dataset", "mnist"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestClusterTelemetryCli:
    def test_audit_with_shards(self, capsys):
        """Regression: audit calls run_epoch(..., record_spans=True) on the
        sharded sim; the narrowed pre-fix signature raised TypeError."""
        assert main(["--samples", "100", "audit", "5", "--shards", "2"]) == 0
        out = capsys.readouterr().out
        assert "simulated spans for sample 5" in out
        assert "shard=" in out

    def test_adaptive_plain(self, capsys):
        assert main(["--samples", "100", "adaptive", "--epochs", "3"]) == 0
        out = capsys.readouterr().out
        assert "adaptive run: 3 epochs" in out
        assert "Replanned" in out

    def test_adaptive_sharded_telemetry_and_replay(self, capsys, tmp_path):
        assert main([
            "--samples", "100", "adaptive",
            "--epochs", "3", "--shards", "2", "--job-name", "tenant-a",
            "--telemetry-dir", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "2 shards" in out
        trace = tmp_path / "tenant-a.trace.json"
        log = tmp_path / "tenant-a.telemetry.jsonl"
        assert trace.exists() and log.exists()

        import json

        names = {
            e["args"]["name"]
            for e in json.loads(trace.read_text())["traceEvents"]
            if e["name"] == "process_name"
        }
        for epoch in range(3):
            assert f"tenant-a epoch {epoch} (virtual time)" in names
        assert "shards (virtual time)" in names
        assert "tenants (virtual time)" in names

        assert main(["replay", str(log)]) == 0
        out = capsys.readouterr().out
        assert "per-epoch:" in out
        assert "per-shard:" in out
        assert "per-tenant:" in out
        assert "shard 0" in out and "shard 1" in out
        assert "job tenant-a" in out

    def test_replay_without_cluster_labels_stays_plain(self, capsys, tmp_path):
        assert main([
            "--samples", "100", "fig1d", "--telemetry-dir", str(tmp_path),
        ]) == 0
        capsys.readouterr()
        assert main(["replay", str(tmp_path / "fig1d.telemetry.jsonl")]) == 0
        out = capsys.readouterr().out
        assert "per-shard:" not in out
        assert "per-tenant:" not in out
