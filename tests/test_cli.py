"""CLI smoke tests (small sample counts keep them fast)."""

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "sophon" in out

    def test_fig1a(self, capsys):
        assert main(["--samples", "100", "fig1a"]) == 0
        out = capsys.readouterr().out
        assert "Sample A" in out and "Sample B" in out

    def test_fig1b(self, capsys):
        assert main(["--samples", "150", "fig1b"]) == 0
        out = capsys.readouterr().out
        assert "openimages-12g" in out and "imagenet-11g" in out

    def test_fig1c(self, capsys):
        assert main(["--samples", "150", "fig1c"]) == 0
        assert "EfficiencySummary" in capsys.readouterr().out

    def test_fig1d(self, capsys):
        assert main(["--samples", "200", "fig1d"]) == 0
        out = capsys.readouterr().out
        assert "resnet50" in out and "alexnet" in out

    def test_fig3(self, capsys):
        assert main(["--samples", "200", "fig3", "--dataset", "imagenet"]) == 0
        assert "sophon" in capsys.readouterr().out

    def test_fig4(self, capsys):
        assert main(["--samples", "150", "fig4", "--cores", "0", "2"]) == 0
        out = capsys.readouterr().out
        assert "storage-core sweep" in out
        assert "marginal gain" in out

    def test_table1_shows_both_matrices(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "cedar" in out  # published systems table
        assert "resize-off" in out  # implemented policies table

    def test_sweep(self, capsys, tmp_path):
        path = tmp_path / "grid.csv"
        assert main([
            "--samples", "150", "sweep",
            "--cores", "1", "8", "--csv", str(path),
        ]) == 0
        out = capsys.readouterr().out
        assert "storage_cores" in out
        assert path.read_text().startswith("storage_cores")

    def test_sweep_requires_an_axis(self):
        import pytest as _pytest

        with _pytest.raises(SystemExit):
            main(["--samples", "50", "sweep"])

    def test_fig3_csv_export(self, capsys, tmp_path):
        path = tmp_path / "fig3.csv"
        assert main(["--samples", "150", "fig3", "--csv", str(path)]) == 0
        text = path.read_text()
        assert text.startswith("dataset,policy")
        assert "sophon" in text

    def test_plan_save_round_trip(self, capsys, tmp_path):
        path = tmp_path / "plan.json"
        assert main(["--samples", "150", "plan", "--save", str(path)]) == 0
        out = capsys.readouterr().out
        assert "split histogram" in out

        from repro.core.serialize import plan_from_json

        plan = plan_from_json(path.read_text())
        assert len(plan) == 150
        assert plan.num_offloaded > 0

    def test_stalls(self, capsys):
        assert main(["--samples", "150", "stalls"]) == 0
        out = capsys.readouterr().out
        assert "no-off" in out and "sophon" in out

    def test_ext_llm(self, capsys):
        assert main(["--samples", "500", "ext-llm"]) == 0
        out = capsys.readouterr().out
        assert "offloadable documents: 0%" in out

    def test_unknown_dataset_exits(self):
        with pytest.raises(SystemExit):
            main(["--samples", "10", "fig3", "--dataset", "mnist"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
