"""Paper-calibrated dataset spec tests: the ratios must be emergent."""

import numpy as np
import pytest

from repro.data.catalog import (
    IMAGENET_SPEC,
    OPENIMAGES_SPEC,
    DatasetSpec,
    make_imagenet,
    make_openimages,
)


class TestSpecDerivation:
    def test_crop_and_tensor_bytes(self):
        assert OPENIMAGES_SPEC.crop_bytes == 224 * 224 * 3 == 150_528
        assert OPENIMAGES_SPEC.tensor_bytes == 602_112

    def test_mean_raw_from_alloff_ratio(self):
        assert OPENIMAGES_SPEC.mean_raw_bytes == pytest.approx(602_112 / 1.9)
        assert IMAGENET_SPEC.mean_raw_bytes == pytest.approx(602_112 / 5.1)

    def test_component_means_consistent_with_mixture(self):
        for spec in (OPENIMAGES_SPEC, IMAGENET_SPEC):
            p = spec.benefit_fraction
            mixture = p * spec.mean_above_threshold + (1 - p) * spec.mean_below_threshold
            assert mixture == pytest.approx(spec.mean_raw_bytes, rel=1e-9)

    def test_component_means_on_correct_sides(self):
        for spec in (OPENIMAGES_SPEC, IMAGENET_SPEC):
            assert spec.mean_above_threshold > spec.crop_bytes
            assert spec.mean_below_threshold < spec.crop_bytes

    def test_full_scale_counts_match_paper_footprints(self):
        # 12 GB / 11 GB subsets of tens of thousands of images.
        assert 30_000 < OPENIMAGES_SPEC.full_scale_samples < 50_000
        assert 80_000 < IMAGENET_SPEC.full_scale_samples < 110_000


class TestBuiltDatasets:
    @pytest.mark.parametrize("spec", [OPENIMAGES_SPEC, IMAGENET_SPEC], ids=["oi", "in"])
    def test_population_reproduces_paper_ratios(self, spec):
        dataset = spec.build(num_samples=20_000, seed=3)
        sizes = np.asarray(dataset.raw_sizes, dtype=np.float64)

        benefit = (sizes > spec.crop_bytes).mean()
        assert benefit == pytest.approx(spec.benefit_fraction, abs=0.015)

        alloff_ratio = spec.tensor_bytes * len(sizes) / sizes.sum()
        assert alloff_ratio == pytest.approx(spec.alloff_traffic_ratio, rel=0.04)

        sophon_traffic = np.minimum(sizes, spec.crop_bytes).sum()
        sophon_ratio = sizes.sum() / sophon_traffic
        assert sophon_ratio == pytest.approx(spec.sophon_traffic_ratio, rel=0.04)

    def test_scale_controls_count(self):
        ds = OPENIMAGES_SPEC.build(scale=0.01, seed=0)
        assert len(ds) == round(OPENIMAGES_SPEC.full_scale_samples * 0.01)

    def test_num_samples_overrides_scale(self):
        assert len(make_openimages(num_samples=123)) == 123

    def test_seeded_builds_are_identical(self):
        a = make_imagenet(num_samples=50, seed=4)
        b = make_imagenet(num_samples=50, seed=4)
        assert np.array_equal(a.raw_sizes, b.raw_sizes)

    def test_different_seeds_differ(self):
        a = make_openimages(num_samples=50, seed=1)
        b = make_openimages(num_samples=50, seed=2)
        assert not np.array_equal(a.raw_sizes, b.raw_sizes)

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            OPENIMAGES_SPEC.build(scale=0.0)

    def test_names(self):
        assert make_openimages(num_samples=5).name == "openimages-12g"
        assert make_imagenet(num_samples=5).name == "imagenet-11g"
