"""TraceDataset tests."""

import numpy as np
import pytest

from repro.data.dataset import UnmaterializedSampleError
from repro.data.trace import TraceDataset


@pytest.fixture
def trace():
    return TraceDataset(
        raw_bytes=[100, 200_000, 50_000],
        heights=[32, 600, 300],
        widths=[48, 800, 400],
        name="t",
    )


class TestTraceDataset:
    def test_length_and_metas(self, trace):
        assert len(trace) == 3
        meta = trace.raw_meta(1)
        assert meta.nbytes == 200_000
        assert (meta.height, meta.width) == (600, 800)

    def test_total_raw_bytes(self, trace):
        assert trace.total_raw_bytes == 100 + 200_000 + 50_000

    def test_not_materialized(self, trace):
        assert not trace.is_materialized
        with pytest.raises(UnmaterializedSampleError):
            trace.raw_payload(0)

    def test_out_of_range_id(self, trace):
        with pytest.raises(IndexError):
            trace.raw_meta(3)
        with pytest.raises(IndexError):
            trace.raw_meta(-1)

    def test_benefit_fraction(self, trace):
        assert trace.benefit_fraction(150_528) == pytest.approx(1 / 3)
        assert trace.benefit_fraction(100) == pytest.approx(2 / 3)  # strict >
        assert trace.benefit_fraction(10) == pytest.approx(1.0)

    def test_raw_sizes_view_is_readonly(self, trace):
        with pytest.raises(ValueError):
            trace.raw_sizes[0] = 5

    def test_subset_renumbers(self, trace):
        sub = trace.subset([2, 0])
        assert len(sub) == 2
        assert sub.raw_meta(0).nbytes == 50_000
        assert sub.raw_meta(1).nbytes == 100

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TraceDataset([1, 2], [3], [4, 5])

    def test_nonpositive_sizes_rejected(self):
        with pytest.raises(ValueError):
            TraceDataset([0], [10], [10])

    def test_empty_dataset(self):
        empty = TraceDataset([], [], [])
        assert len(empty) == 0
        assert empty.total_raw_bytes == 0
        assert empty.benefit_fraction(100) == 0.0
