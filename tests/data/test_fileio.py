"""Trace dataset persistence tests."""

import numpy as np
import pytest

from repro.data.fileio import load_trace_dataset, save_trace_dataset


class TestTraceDatasetIO:
    def test_round_trip(self, openimages_small, tmp_path):
        path = str(tmp_path / "oi.npz")
        save_trace_dataset(openimages_small, path)
        restored = load_trace_dataset(path)
        assert restored.name == openimages_small.name
        assert len(restored) == len(openimages_small)
        assert np.array_equal(restored.raw_sizes, openimages_small.raw_sizes)
        for sid in (0, len(restored) - 1):
            assert restored.raw_meta(sid) == openimages_small.raw_meta(sid)

    def test_suffix_appended_transparently(self, openimages_small, tmp_path):
        stem = str(tmp_path / "dataset")
        save_trace_dataset(openimages_small, stem)  # numpy appends .npz
        restored = load_trace_dataset(stem)
        assert len(restored) == len(openimages_small)

    def test_restored_dataset_plans_identically(
        self, openimages_small, pipeline, tmp_path
    ):
        from repro.cluster.spec import standard_cluster
        from repro.core.policy import PolicyContext
        from repro.core.sophon import Sophon
        from repro.workloads.models import get_model_profile

        path = str(tmp_path / "oi.npz")
        save_trace_dataset(openimages_small, path)
        restored = load_trace_dataset(path)

        def plan_for(dataset):
            context = PolicyContext(
                dataset=dataset,
                pipeline=pipeline,
                spec=standard_cluster(storage_cores=8),
                model=get_model_profile("alexnet"),
                batch_size=64,
                seed=0,
            )
            return Sophon().plan(context)

        assert list(plan_for(openimages_small).splits) == list(
            plan_for(restored).splits
        )

    def test_rejects_foreign_archives(self, tmp_path):
        path = str(tmp_path / "foreign.npz")
        np.savez_compressed(path, data=np.arange(3))
        with pytest.raises(ValueError):
            load_trace_dataset(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_trace_dataset(str(tmp_path / "ghost.npz"))


class TestSizeListing:
    def test_from_iterable(self):
        from repro.data.fileio import trace_from_size_listing

        dataset = trace_from_size_listing([100_000, 300_000, 50_000], name="mine")
        assert len(dataset) == 3
        assert dataset.name == "mine"
        assert dataset.raw_meta(1).nbytes == 300_000
        assert dataset.raw_meta(0).height >= 64

    def test_from_file_with_comments(self, tmp_path):
        from repro.data.fileio import trace_from_size_listing

        path = tmp_path / "sizes.txt"
        path.write_text("# my dataset\n120000\n\n340000  # big one\n90000\n")
        dataset = trace_from_size_listing(str(path))
        assert list(dataset.raw_sizes) == [120_000, 340_000, 90_000]

    def test_dims_deterministic_in_seed(self):
        from repro.data.fileio import trace_from_size_listing

        a = trace_from_size_listing([200_000] * 5, seed=1)
        b = trace_from_size_listing([200_000] * 5, seed=1)
        assert a.raw_meta(2) == b.raw_meta(2)

    def test_sophon_runs_on_listing_dataset(self, pipeline):
        from repro.cluster.spec import standard_cluster
        from repro.core.policy import PolicyContext
        from repro.core.sophon import Sophon
        from repro.data.fileio import trace_from_size_listing
        from repro.workloads.models import get_model_profile

        dataset = trace_from_size_listing(
            [400_000, 50_000, 280_000, 90_000] * 10, name="listing"
        )
        context = PolicyContext(
            dataset=dataset,
            pipeline=pipeline,
            spec=standard_cluster(storage_cores=8),
            model=get_model_profile("alexnet"),
            batch_size=8,
            seed=0,
        )
        plan = Sophon().plan(context)
        # The 400k/280k samples shrink, the 50k/90k do not.
        assert plan.num_offloaded == 20

    def test_validation(self, tmp_path):
        from repro.data.fileio import trace_from_size_listing

        with pytest.raises(ValueError):
            trace_from_size_listing([])
        with pytest.raises(ValueError):
            trace_from_size_listing([100, 0])
        bad = tmp_path / "bad.txt"
        bad.write_text("12\nnot-a-number\n")
        with pytest.raises(ValueError, match="bad.txt:2"):
            trace_from_size_listing(str(bad))
