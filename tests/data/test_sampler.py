"""Sampler and batch sampler tests."""

import pytest

from repro.data.sampler import BatchSampler, RandomSampler, SequentialSampler


class TestSequentialSampler:
    def test_order_is_identity(self):
        assert SequentialSampler(5).epoch_order(0) == [0, 1, 2, 3, 4]

    def test_same_every_epoch(self):
        sampler = SequentialSampler(4)
        assert sampler.epoch_order(0) == sampler.epoch_order(7)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            SequentialSampler(-1)


class TestRandomSampler:
    def test_is_a_permutation(self):
        order = RandomSampler(100, seed=1).epoch_order(0)
        assert sorted(order) == list(range(100))

    def test_epochs_reshuffle(self):
        sampler = RandomSampler(50, seed=1)
        assert sampler.epoch_order(0) != sampler.epoch_order(1)

    def test_deterministic_in_seed_and_epoch(self):
        assert RandomSampler(50, seed=3).epoch_order(2) == RandomSampler(
            50, seed=3
        ).epoch_order(2)

    def test_seed_changes_order(self):
        assert RandomSampler(50, seed=1).epoch_order(0) != RandomSampler(
            50, seed=2
        ).epoch_order(0)


class TestBatchSampler:
    def test_batches_cover_everything_in_order(self):
        batches = list(BatchSampler(SequentialSampler(10), 4).epoch_batches(0))
        assert batches == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]

    def test_drop_last(self):
        batches = list(
            BatchSampler(SequentialSampler(10), 4, drop_last=True).epoch_batches(0)
        )
        assert batches == [[0, 1, 2, 3], [4, 5, 6, 7]]

    def test_batches_per_epoch(self):
        assert BatchSampler(SequentialSampler(10), 4).batches_per_epoch() == 3
        assert BatchSampler(SequentialSampler(10), 4, drop_last=True).batches_per_epoch() == 2
        assert BatchSampler(SequentialSampler(8), 4).batches_per_epoch() == 2

    def test_empty_sampler(self):
        assert list(BatchSampler(SequentialSampler(0), 4).epoch_batches(0)) == []

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            BatchSampler(SequentialSampler(5), 0)
