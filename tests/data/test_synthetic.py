"""SyntheticImageDataset tests."""

import numpy as np
import pytest

from repro.data.synthetic import (
    ImageContentConfig,
    SyntheticImageDataset,
    generate_image,
)


class TestGenerateImage:
    def test_shape_and_dtype(self, rng):
        image = generate_image(rng, 40, 60, texture=0.5)
        assert image.shape == (40, 60, 3)
        assert image.dtype == np.uint8

    def test_texture_zero_is_smooth(self, rng):
        smooth = generate_image(rng, 64, 64, texture=0.0)
        noisy = generate_image(rng, 64, 64, texture=1.0)
        # Horizontal high-frequency energy is much larger with texture.
        def hf_energy(img):
            return float(np.abs(np.diff(img.astype(float), axis=1)).mean())
        assert hf_energy(noisy) > 2 * hf_energy(smooth)

    def test_validates_inputs(self, rng):
        with pytest.raises(ValueError):
            generate_image(rng, 0, 10, texture=0.5)
        with pytest.raises(ValueError):
            generate_image(rng, 10, 10, texture=1.5)


class TestSyntheticImageDataset:
    def test_deterministic_across_instances(self):
        a = SyntheticImageDataset(4, seed=9)
        b = SyntheticImageDataset(4, seed=9)
        assert a.raw_payload(2).data == b.raw_payload(2).data

    def test_different_seeds_differ(self):
        a = SyntheticImageDataset(2, seed=1)
        b = SyntheticImageDataset(2, seed=2)
        assert a.raw_payload(0).data != b.raw_payload(0).data

    def test_meta_matches_payload(self, materialized_tiny):
        for sid in range(3):
            meta = materialized_tiny.raw_meta(sid)
            payload = materialized_tiny.raw_payload(sid)
            assert meta.nbytes == payload.nbytes

    def test_meta_dims_match_decoded_image(self, materialized_tiny):
        meta = materialized_tiny.raw_meta(0)
        image = materialized_tiny.codec.decode(materialized_tiny.raw_payload(0).data)
        assert image.shape[:2] == (meta.height, meta.width)

    def test_is_materialized(self, materialized_tiny):
        assert materialized_tiny.is_materialized

    def test_dims_within_config_bounds(self):
        config = ImageContentConfig(min_side=100, max_side=200)
        ds = SyntheticImageDataset(8, seed=0, content=config)
        for sid in range(8):
            meta = ds.raw_meta(sid)
            assert 100 <= meta.height <= 201
            assert 100 <= meta.width <= 201

    def test_cache_limit_evicts(self):
        ds = SyntheticImageDataset(5, seed=0, cache_limit=2)
        for sid in range(5):
            ds.raw_payload(sid)
        assert len(ds._cache) <= 2
        # Evicted samples regenerate identically.
        again = ds.raw_payload(0)
        fresh = SyntheticImageDataset(5, seed=0).raw_payload(0)
        assert again.data == fresh.data

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            SyntheticImageDataset(-1)

    def test_validates_config(self):
        with pytest.raises(ValueError):
            ImageContentConfig(min_side=0)
        with pytest.raises(ValueError):
            ImageContentConfig(texture_range=(0.5, 0.1))

    def test_out_of_range_sample(self, materialized_tiny):
        with pytest.raises(IndexError):
            materialized_tiny.raw_payload(10)
