"""DataLoader tests over the direct (no-RPC) fetch path."""

import numpy as np
import pytest

from repro.data.loader import DataLoader, DirectFetcher
from repro.data.sampler import RandomSampler
from repro.data.trace import TraceDataset


@pytest.fixture
def loader(materialized_tiny, pipeline):
    fetcher = DirectFetcher(materialized_tiny)
    return DataLoader(materialized_tiny, pipeline, fetcher, batch_size=4, seed=0)


class TestDirectFetcher:
    def test_returns_raw_payload(self, materialized_tiny):
        fetcher = DirectFetcher(materialized_tiny)
        payload = fetcher.fetch(0, 0, 0)
        assert payload.nbytes == materialized_tiny.raw_meta(0).nbytes

    def test_rejects_nonzero_split(self, materialized_tiny):
        with pytest.raises(ValueError):
            DirectFetcher(materialized_tiny).fetch(0, 0, 2)

    def test_rejects_trace_dataset(self):
        trace = TraceDataset([100], [10], [10])
        with pytest.raises(ValueError):
            DirectFetcher(trace)


class TestDataLoader:
    def test_epoch_yields_full_coverage(self, loader, materialized_tiny):
        seen = []
        for batch in loader.epoch(0):
            seen.extend(batch.sample_ids)
            assert batch.tensors.dtype == np.float32
            assert batch.tensors.shape[1:] == (3, 224, 224)
        assert sorted(seen) == list(range(len(materialized_tiny)))

    def test_batches_per_epoch(self, loader):
        assert loader.batches_per_epoch() == 3  # 10 samples / 4

    def test_random_sampler_changes_order(self, materialized_tiny, pipeline):
        fetcher = DirectFetcher(materialized_tiny)
        loader = DataLoader(
            materialized_tiny,
            pipeline,
            fetcher,
            batch_size=10,
            sampler=RandomSampler(len(materialized_tiny), seed=3),
        )
        order0 = next(iter(loader.epoch(0))).sample_ids
        order1 = next(iter(loader.epoch(1))).sample_ids
        assert sorted(order0) == sorted(order1)
        assert order0 != order1

    def test_same_epoch_reproducible(self, loader):
        a = np.concatenate([b.tensors for b in loader.epoch(2)])
        b = np.concatenate([b.tensors for b in loader.epoch(2)])
        assert np.array_equal(a, b)

    def test_different_epochs_produce_different_tensors(self, loader):
        a = np.concatenate([b.tensors for b in loader.epoch(0)])
        b = np.concatenate([b.tensors for b in loader.epoch(1)])
        assert not np.array_equal(a, b)  # random augmentations re-drawn

    def test_splits_length_validated(self, materialized_tiny, pipeline):
        fetcher = DirectFetcher(materialized_tiny)
        with pytest.raises(ValueError):
            DataLoader(materialized_tiny, pipeline, fetcher, splits=[0, 0])

    def test_sampler_length_validated(self, materialized_tiny, pipeline):
        fetcher = DirectFetcher(materialized_tiny)
        with pytest.raises(ValueError):
            DataLoader(
                materialized_tiny, pipeline, fetcher, sampler=RandomSampler(3)
            )
