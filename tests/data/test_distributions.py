"""Calibrated size-distribution tests."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.distributions import (
    BimodalSizeDistribution,
    dimensions_for_sizes,
    solve_truncated_lognormal_mu,
    truncated_lognormal_mean,
)

THRESHOLD = 224 * 224 * 3


class TestTruncatedLognormal:
    def test_untruncated_mean_matches_closed_form(self):
        mu, sigma = 1.0, 0.5
        assert truncated_lognormal_mean(mu, sigma) == pytest.approx(
            math.exp(mu + sigma**2 / 2)
        )

    def test_truncation_above_raises_mean(self):
        mu, sigma = 1.0, 0.5
        base = truncated_lognormal_mean(mu, sigma)
        above = truncated_lognormal_mean(mu, sigma, lower=math.exp(mu))
        assert above > base

    def test_truncation_below_lowers_mean(self):
        mu, sigma = 1.0, 0.5
        base = truncated_lognormal_mean(mu, sigma)
        below = truncated_lognormal_mean(mu, sigma, upper=math.exp(mu))
        assert below < base

    def test_solver_hits_target(self):
        target = 250_000.0
        mu = solve_truncated_lognormal_mu(target, 0.45, lower=float(THRESHOLD))
        assert truncated_lognormal_mean(mu, 0.45, lower=float(THRESHOLD)) == pytest.approx(
            target, rel=1e-6
        )

    def test_solver_with_upper_bound(self):
        target = 100_000.0
        mu = solve_truncated_lognormal_mu(
            target, 0.35, lower=2048.0, upper=float(THRESHOLD)
        )
        got = truncated_lognormal_mean(mu, 0.35, lower=2048.0, upper=float(THRESHOLD))
        assert got == pytest.approx(target, rel=1e-6)

    def test_solver_rejects_unreachable_targets(self):
        with pytest.raises(ValueError):
            solve_truncated_lognormal_mu(100.0, 0.4, lower=1000.0)
        with pytest.raises(ValueError):
            solve_truncated_lognormal_mu(2000.0, 0.4, lower=0.0, upper=1000.0)

    @given(
        target=st.floats(min_value=160_000, max_value=5_000_000),
        sigma=st.floats(min_value=0.1, max_value=1.2),
    )
    @settings(max_examples=25, deadline=None)
    def test_solver_property(self, target, sigma):
        mu = solve_truncated_lognormal_mu(target, sigma, lower=float(THRESHOLD))
        got = truncated_lognormal_mean(mu, sigma, lower=float(THRESHOLD))
        # Accuracy degrades when the target sits just above the truncation
        # bound with large sigma (the mean is nearly flat in mu there).
        assert got == pytest.approx(target, rel=1e-3)


class TestBimodalDistribution:
    def make(self, benefit=0.76, mean_above=380_000.0, mean_below=120_000.0):
        return BimodalSizeDistribution(
            threshold_bytes=THRESHOLD,
            benefit_fraction=benefit,
            mean_above=mean_above,
            mean_below=mean_below,
        )

    def test_benefit_fraction_exact_in_population(self, rng):
        dist = self.make(benefit=0.5)
        sizes = dist.sample(rng, 20_000)
        frac = (sizes > THRESHOLD).mean()
        assert abs(frac - 0.5) < 0.02

    def test_components_respect_threshold_strictly(self, rng):
        dist = self.make()
        sizes = dist.sample(rng, 5_000)
        above = sizes[sizes > THRESHOLD]
        below = sizes[sizes <= THRESHOLD]
        assert above.min() > THRESHOLD
        assert below.max() <= THRESHOLD
        assert below.min() >= dist.floor_bytes

    def test_conditional_means_close_to_targets(self, rng):
        dist = self.make()
        sizes = dist.sample(rng, 40_000)
        above = sizes[sizes > THRESHOLD]
        below = sizes[sizes <= THRESHOLD]
        assert above.mean() == pytest.approx(dist.mean_above, rel=0.03)
        assert below.mean() == pytest.approx(dist.mean_below, rel=0.03)

    def test_mixture_mean_formula(self):
        dist = self.make(benefit=0.3, mean_above=400_000, mean_below=90_000)
        assert dist.mixture_mean == pytest.approx(0.3 * 400_000 + 0.7 * 90_000)

    def test_zero_samples(self, rng):
        assert len(self.make().sample(rng, 0)) == 0

    def test_deterministic_given_rng_seed(self):
        dist = self.make()
        a = dist.sample(np.random.default_rng(42), 100)
        b = dist.sample(np.random.default_rng(42), 100)
        assert np.array_equal(a, b)

    def test_rejects_mean_above_below_threshold(self):
        with pytest.raises(ValueError):
            self.make(mean_above=100_000.0)

    def test_rejects_mean_below_above_threshold(self):
        with pytest.raises(ValueError):
            self.make(mean_below=200_000.0)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            self.make(benefit=1.5)


class TestDimensions:
    def test_dimension_arrays_match_sizes(self, rng):
        sizes = np.full(100, 300_000, dtype=np.int64)
        heights, widths = dimensions_for_sizes(rng, sizes)
        assert len(heights) == len(widths) == 100
        assert heights.min() >= 64 and widths.min() >= 64

    def test_pixels_track_bytes(self, rng):
        small = np.full(500, 30_000, dtype=np.int64)
        large = np.full(500, 600_000, dtype=np.int64)
        h_s, w_s = dimensions_for_sizes(rng, small)
        h_l, w_l = dimensions_for_sizes(rng, large)
        assert (h_l * w_l).mean() > 5 * (h_s * w_s).mean()

    def test_aspect_ratio_bounded(self, rng):
        sizes = np.full(2000, 400_000, dtype=np.int64)
        heights, widths = dimensions_for_sizes(rng, sizes)
        aspect = widths / heights
        assert aspect.min() > 0.5 and aspect.max() < 2.4
