"""DatasetSpec consistency: contradictory paper ratios must fail loudly."""

import pytest

from repro.data.catalog import DatasetSpec


def spec(**overrides):
    base = dict(
        name="test",
        total_bytes=1e9,
        alloff_traffic_ratio=1.9,
        benefit_fraction=0.76,
        sophon_traffic_ratio=2.2,
    )
    base.update(overrides)
    return DatasetSpec(**base)


class TestSpecConsistency:
    def test_paperlike_spec_builds(self):
        dataset = spec().build(num_samples=50, seed=0)
        assert len(dataset) == 50

    def test_impossible_sophon_ratio_rejected_at_build(self):
        # A traffic reduction so large it would need negative sizes for the
        # non-benefiting population.
        bad = spec(sophon_traffic_ratio=10.0)
        assert bad.mean_below_threshold < bad.floor_bytes if hasattr(bad, "floor_bytes") else True
        with pytest.raises(ValueError):
            bad.build(num_samples=10, seed=0)

    def test_sophon_ratio_below_one_rejected(self):
        # "SOPHON increases traffic" contradicts shipping per-sample minima.
        bad = spec(sophon_traffic_ratio=0.9)
        with pytest.raises(ValueError):
            bad.build(num_samples=10, seed=0)

    def test_tiny_alloff_ratio_means_huge_raws(self):
        # All-Off ratio < 1 means raw bigger than float tensors; the SOPHON
        # ratio must rise accordingly (everything benefits hugely) for the
        # mixture to stay consistent.
        dataset = spec(alloff_traffic_ratio=0.8, sophon_traffic_ratio=5.5).build(
            num_samples=50, seed=0
        )
        assert dataset.raw_sizes.mean() > 600_000

    def test_inconsistent_ratio_pair_rejected(self):
        # alloff 0.8 forces a huge mean raw; a modest SOPHON ratio would
        # then require non-benefiting samples *larger* than the crop.
        with pytest.raises(ValueError):
            spec(alloff_traffic_ratio=0.8, sophon_traffic_ratio=3.5).build(
                num_samples=10, seed=0
            )

    def test_derivations_match_hand_algebra(self):
        s = spec()
        assert s.mean_raw_bytes == pytest.approx(602_112 / 1.9)
        sophon_traffic = (
            s.benefit_fraction * s.crop_bytes
            + (1 - s.benefit_fraction) * s.mean_below_threshold
        )
        assert s.mean_raw_bytes / sophon_traffic == pytest.approx(2.2)
