"""Multi-tenant core scheduler tests."""

import pytest

from repro.cluster.spec import standard_cluster
from repro.data.catalog import make_imagenet, make_openimages
from repro.scheduler import GreedyCoreScheduler, TenantJob
from repro.scheduler.multitenant import make_job


@pytest.fixture(scope="module")
def jobs():
    return [
        make_job("oi", make_openimages(num_samples=300, seed=1)),
        make_job("in", make_imagenet(num_samples=300, seed=2)),
    ]


@pytest.fixture
def scheduler():
    return GreedyCoreScheduler(standard_cluster())


class TestAllocation:
    def test_allocates_within_budget(self, scheduler, jobs):
        allocation = scheduler.allocate(jobs, total_cores=6)
        assert sum(allocation.cores.values()) <= 6
        assert set(allocation.cores) == {"oi", "in"}

    def test_zero_budget(self, scheduler, jobs):
        allocation = scheduler.allocate(jobs, total_cores=0)
        assert all(c == 0 for c in allocation.cores.values())
        assert allocation.objective > 0

    def test_more_cores_never_hurt(self, scheduler, jobs):
        small = scheduler.allocate(jobs, total_cores=2)
        large = scheduler.allocate(jobs, total_cores=10)
        assert large.objective <= small.objective + 1e-9

    def test_epoch_time_monotone_in_cores_per_job(self, scheduler, jobs):
        times = [scheduler.epoch_time_at(jobs[0], cores) for cores in range(0, 6)]
        assert all(a >= b - 1e-9 for a, b in zip(times, times[1:]))

    def test_stops_early_when_no_job_benefits(self, scheduler, jobs):
        allocation = scheduler.allocate(jobs, total_cores=10_000)
        assert sum(allocation.cores.values()) < 10_000

    def test_io_heavy_job_prioritized(self, scheduler):
        io_heavy = make_job("io-heavy", make_openimages(num_samples=300, seed=3))
        gpu_heavy = make_job(
            "gpu-heavy", make_openimages(num_samples=300, seed=4), model_name="resnet50"
        )
        # Make the GPU job genuinely compute-bound by giving it a fat pipe.
        allocation = scheduler.allocate([io_heavy, gpu_heavy], total_cores=2)
        assert allocation.cores["io-heavy"] >= allocation.cores["gpu-heavy"]

    def test_weight_biases_allocation(self):
        spec = standard_cluster()
        job_a = make_job("a", make_openimages(num_samples=300, seed=5), weight=100.0)
        job_b = make_job("b", make_openimages(num_samples=300, seed=5), weight=1.0)
        allocation = GreedyCoreScheduler(spec).allocate([job_a, job_b], total_cores=1)
        assert allocation.cores["a"] == 1

    def test_duplicate_names_rejected(self, scheduler):
        job = make_job("dup", make_openimages(num_samples=50, seed=0))
        with pytest.raises(ValueError):
            scheduler.allocate([job, job], total_cores=2)

    def test_negative_budget_rejected(self, scheduler, jobs):
        with pytest.raises(ValueError):
            scheduler.allocate(jobs, total_cores=-1)

    def test_render(self, scheduler, jobs):
        allocation = scheduler.allocate(jobs, total_cores=2)
        text = allocation.render()
        assert "oi" in text and "in" in text


class TestTenantJob:
    def test_default_pipeline_attached(self):
        job = make_job("j", make_openimages(num_samples=10, seed=0))
        assert job.pipeline is not None

    def test_weight_validated(self):
        with pytest.raises(ValueError):
            TenantJob(
                name="bad",
                dataset=make_openimages(num_samples=10, seed=0),
                model=make_job("x", make_openimages(num_samples=10, seed=0)).model,
                weight=0.0,
            )
