"""Experiment runner tests."""

import pytest

from repro.baselines import NoOff
from repro.cluster.spec import standard_cluster
from repro.core.sophon import Sophon
from repro.harness.runner import DEFAULT_POLICY_SET, compare_policies, run_experiment


class TestRunExperiment:
    def test_result_fields_populated(self, openimages_small):
        result = run_experiment(
            openimages_small, NoOff(), standard_cluster(), batch_size=64
        )
        assert result.policy_name == "no-off"
        assert result.dataset_name == openimages_small.name
        assert result.epoch_time_s > 0
        assert result.traffic_bytes > 0
        assert 0 < result.gpu_utilization <= 1

    def test_sophon_offloads_and_wins(self, openimages_small):
        cluster = standard_cluster(storage_cores=48)
        base = run_experiment(openimages_small, NoOff(), cluster, batch_size=64)
        sophon = run_experiment(openimages_small, Sophon(), cluster, batch_size=64)
        assert sophon.plan.num_offloaded > 0
        assert sophon.traffic_bytes < base.traffic_bytes
        assert sophon.epoch_time_s < base.epoch_time_s

    def test_plans_profile_epoch0_measure_epoch1(self, openimages_small):
        result = run_experiment(
            openimages_small, Sophon(), standard_cluster(), batch_size=64
        )
        # Measured on epoch 1: traffic still reflects the plan because stage
        # sizes are epoch-invariant for this pipeline.
        assert result.stats.offloaded_samples == result.plan.num_offloaded

    def test_zero_core_cluster_clamps_everything(self, openimages_small):
        cluster = standard_cluster(storage_cores=0)
        for factory in DEFAULT_POLICY_SET.values():
            result = run_experiment(
                openimages_small, factory(), cluster, batch_size=64
            )
            assert result.plan.num_offloaded == 0


class TestComparePolicies:
    def test_runs_all_five(self, openimages_small):
        results = compare_policies(
            openimages_small, standard_cluster(), batch_size=64
        )
        assert [r.policy_name for r in results] == [
            "no-off", "all-off", "fastflow", "resize-off", "sophon",
        ]

    def test_custom_policy_list(self, openimages_small):
        results = compare_policies(
            openimages_small, standard_cluster(), policies=[NoOff()], batch_size=64
        )
        assert len(results) == 1
