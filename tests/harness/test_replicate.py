"""Replication helper tests."""

import pytest

from repro.harness.replicate import Replication, replicate


class TestReplicate:
    def test_evaluates_every_seed(self):
        seen = []

        def metric(seed):
            seen.append(seed)
            return seed * 2.0

        rep = replicate(metric, (1, 2, 3))
        assert seen == [1, 2, 3]
        assert rep.values == (2.0, 4.0, 6.0)
        assert rep.mean == pytest.approx(4.0)

    def test_std(self):
        rep = Replication(values=(2.0, 4.0, 6.0), seeds=(1, 2, 3))
        assert rep.std == pytest.approx(2.0)

    def test_spread(self):
        rep = Replication(values=(9.0, 10.0, 11.0), seeds=(1, 2, 3))
        assert rep.spread == pytest.approx(0.2)

    def test_single_value(self):
        rep = replicate(lambda s: 5.0, (0,))
        assert rep.std == 0.0
        assert rep.spread == 0.0

    def test_zero_mean_spread(self):
        rep = Replication(values=(0.0, 0.0), seeds=(1, 2))
        assert rep.spread == 0.0

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            replicate(lambda s: 1.0, ())

    def test_str(self):
        rep = Replication(values=(1.0, 3.0), seeds=(1, 2))
        assert "n=2" in str(rep)
