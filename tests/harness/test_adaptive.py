"""Adaptive re-planning tests."""

import pytest

from repro.cluster.spec import standard_cluster
from repro.harness.adaptive import AdaptiveTrainingRun


@pytest.fixture(scope="module")
def drifting_runs(openimages_small):
    """Storage cores collapse 48 -> 1 at epoch 3 (a tenant moved in)."""
    base = standard_cluster(storage_cores=48)
    schedule = {3: base.with_storage_cores(1)}

    adaptive = AdaptiveTrainingRun(
        openimages_small, base, schedule, batch_size=64, adaptive=True
    ).run(epochs=6)
    static = AdaptiveTrainingRun(
        openimages_small, base, schedule, batch_size=64, adaptive=False
    ).run(epochs=6)
    return adaptive, static


class TestAdaptiveRun:
    def test_profiling_epoch_unoffloaded(self, drifting_runs):
        adaptive, _ = drifting_runs
        assert adaptive.epochs[0].plan.num_offloaded == 0

    def test_replans_exactly_on_changes(self, drifting_runs):
        adaptive, static = drifting_runs
        assert [e.replanned for e in adaptive.epochs] == [
            False, True, False, True, False, False,
        ]
        assert static.replan_count == 1  # only the initial plan

    def test_adaptive_shrinks_plan_after_core_collapse(self, drifting_runs):
        adaptive, _ = drifting_runs
        before = adaptive.epochs[2].plan.num_offloaded
        after = adaptive.epochs[3].plan.num_offloaded
        assert after < before / 2

    def test_static_plan_becomes_harmful(self, drifting_runs, openimages_small):
        _, static = drifting_runs
        base = standard_cluster(storage_cores=1)
        from repro.baselines import NoOff
        from repro.harness.runner import run_experiment

        no_off = run_experiment(
            openimages_small, NoOff(), base, batch_size=64
        ).epoch_time_s
        # The stale 48-core plan drowns the single core.
        assert static.epochs[3].stats.epoch_time_s > no_off * 1.5

    def test_adaptive_beats_static_after_the_drift(self, drifting_runs):
        adaptive, static = drifting_runs
        for epoch in (3, 4, 5):
            assert (
                adaptive.epochs[epoch].stats.epoch_time_s
                < static.epochs[epoch].stats.epoch_time_s / 1.5
            )
        assert adaptive.total_time_s < static.total_time_s

    def test_identical_before_the_drift(self, drifting_runs):
        adaptive, static = drifting_runs
        for epoch in (0, 1, 2):
            assert adaptive.epochs[epoch].stats.epoch_time_s == pytest.approx(
                static.epochs[epoch].stats.epoch_time_s
            )

    def test_offloading_disabled_entirely(self, openimages_small):
        base = standard_cluster(storage_cores=48)
        schedule = {2: base.with_storage_cores(0)}
        run = AdaptiveTrainingRun(
            openimages_small, base, schedule, batch_size=64, adaptive=True
        ).run(epochs=4)
        assert run.epochs[2].plan.num_offloaded == 0
        assert run.epochs[3].plan.num_offloaded == 0

    def test_static_clamps_when_offloading_impossible(self, openimages_small):
        base = standard_cluster(storage_cores=48)
        schedule = {2: base.with_storage_cores(0)}
        run = AdaptiveTrainingRun(
            openimages_small, base, schedule, batch_size=64, adaptive=False
        ).run(epochs=4)
        assert run.epochs[2].plan.num_offloaded == 0  # clamped, not crashed

    def test_requires_two_epochs(self, openimages_small):
        run = AdaptiveTrainingRun(openimages_small, standard_cluster())
        with pytest.raises(ValueError):
            run.run(epochs=1)
