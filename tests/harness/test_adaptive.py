"""Adaptive re-planning tests."""

import pytest

from repro.cluster.spec import standard_cluster
from repro.harness.adaptive import AdaptiveTrainingRun


@pytest.fixture(scope="module")
def drifting_runs(openimages_small):
    """Storage cores collapse 48 -> 1 at epoch 3 (a tenant moved in)."""
    base = standard_cluster(storage_cores=48)
    schedule = {3: base.with_storage_cores(1)}

    adaptive = AdaptiveTrainingRun(
        openimages_small, base, schedule, batch_size=64, adaptive=True
    ).run(epochs=6)
    static = AdaptiveTrainingRun(
        openimages_small, base, schedule, batch_size=64, adaptive=False
    ).run(epochs=6)
    return adaptive, static


class TestAdaptiveRun:
    def test_profiling_epoch_unoffloaded(self, drifting_runs):
        adaptive, _ = drifting_runs
        assert adaptive.epochs[0].plan.num_offloaded == 0

    def test_replans_exactly_on_changes(self, drifting_runs):
        adaptive, static = drifting_runs
        assert [e.replanned for e in adaptive.epochs] == [
            False, True, False, True, False, False,
        ]
        assert static.replan_count == 1  # only the initial plan

    def test_adaptive_shrinks_plan_after_core_collapse(self, drifting_runs):
        adaptive, _ = drifting_runs
        before = adaptive.epochs[2].plan.num_offloaded
        after = adaptive.epochs[3].plan.num_offloaded
        assert after < before / 2

    def test_static_plan_becomes_harmful(self, drifting_runs, openimages_small):
        _, static = drifting_runs
        base = standard_cluster(storage_cores=1)
        from repro.baselines import NoOff
        from repro.harness.runner import run_experiment

        no_off = run_experiment(
            openimages_small, NoOff(), base, batch_size=64
        ).epoch_time_s
        # The stale 48-core plan drowns the single core.
        assert static.epochs[3].stats.epoch_time_s > no_off * 1.5

    def test_adaptive_beats_static_after_the_drift(self, drifting_runs):
        adaptive, static = drifting_runs
        for epoch in (3, 4, 5):
            assert (
                adaptive.epochs[epoch].stats.epoch_time_s
                < static.epochs[epoch].stats.epoch_time_s / 1.5
            )
        assert adaptive.total_time_s < static.total_time_s

    def test_identical_before_the_drift(self, drifting_runs):
        adaptive, static = drifting_runs
        for epoch in (0, 1, 2):
            assert adaptive.epochs[epoch].stats.epoch_time_s == pytest.approx(
                static.epochs[epoch].stats.epoch_time_s
            )

    def test_offloading_disabled_entirely(self, openimages_small):
        base = standard_cluster(storage_cores=48)
        schedule = {2: base.with_storage_cores(0)}
        run = AdaptiveTrainingRun(
            openimages_small, base, schedule, batch_size=64, adaptive=True
        ).run(epochs=4)
        assert run.epochs[2].plan.num_offloaded == 0
        assert run.epochs[3].plan.num_offloaded == 0

    def test_static_clamps_when_offloading_impossible(self, openimages_small):
        base = standard_cluster(storage_cores=48)
        schedule = {2: base.with_storage_cores(0)}
        run = AdaptiveTrainingRun(
            openimages_small, base, schedule, batch_size=64, adaptive=False
        ).run(epochs=4)
        assert run.epochs[2].plan.num_offloaded == 0  # clamped, not crashed

    def test_requires_two_epochs(self, openimages_small):
        run = AdaptiveTrainingRun(openimages_small, standard_cluster())
        with pytest.raises(ValueError):
            run.run(epochs=1)


class TestShardedAdaptive:
    """The uniform run_epoch contract: sharded epochs through the same calls."""

    def make_run(self, openimages_small, **kwargs):
        from repro.cluster.sharded import round_robin_placement

        return AdaptiveTrainingRun(
            openimages_small,
            standard_cluster(storage_cores=8),
            batch_size=64,
            placement=round_robin_placement(len(openimages_small), 4),
            **kwargs,
        )

    def test_sharded_epochs_with_telemetry(self, openimages_small):
        """Pre-fix, run_epoch(..., record_spans=True) raised TypeError here."""
        result = self.make_run(openimages_small, job_name="tenant-a").run(
            epochs=3, record_spans=True, record_timeline=True
        )
        for epoch, stats in result.instrumented_epochs():
            assert stats.spans is not None
            assert stats.timeline is not None
            labels = {
                (e.attrs.get("shard"), e.attrs.get("job"))
                for e in stats.spans.events
                if e.name == "sample.fetch" and e.phase == "B"
            }
            assert all(job == "tenant-a" for _, job in labels)
            assert {shard for shard, _ in labels} == {0, 1, 2, 3}

    def test_telemetry_is_byte_identical(self, openimages_small):
        plain = self.make_run(openimages_small).run(epochs=3)
        traced = self.make_run(openimages_small).run(
            epochs=3, record_spans=True, record_timeline=True
        )
        assert plain.epoch_times() == traced.epoch_times()
        assert [e.stats.traffic_bytes for e in plain.epochs] == [
            e.stats.traffic_bytes for e in traced.epochs
        ]

    def test_combined_artifacts_written(self, openimages_small, tmp_path):
        import json

        from repro.harness.telemetry import emit_combined_artifacts

        result = self.make_run(openimages_small, job_name="tenant-a").run(
            epochs=3, record_spans=True, record_timeline=True
        )
        paths = emit_combined_artifacts(
            str(tmp_path), "run", result.instrumented_epochs()
        )
        assert {p.split("/")[-1] for p in paths} == {
            "run.telemetry.jsonl", "run.trace.json",
        }
        document = json.loads((tmp_path / "run.trace.json").read_text())
        names = {
            e["args"]["name"]
            for e in document["traceEvents"]
            if e["name"] == "process_name"
        }
        for epoch in range(3):
            assert f"run epoch {epoch} (virtual time)" in names
        assert "shards (virtual time)" in names
        assert "tenants (virtual time)" in names


class TestObserveOutage:
    def make_run(self, openimages_small):
        return AdaptiveTrainingRun(
            openimages_small, standard_cluster(), batch_size=64, adaptive=True
        )

    def test_outage_installs_degraded_spec(self, openimages_small):
        from repro.core.degraded import OutageReport

        run = self.make_run(openimages_small)
        report = OutageReport(started_at_s=10.0)  # still unrecovered
        degraded = run.observe_outage(report, at_epoch=2)
        assert run.spec_schedule[2] is degraded
        assert not degraded.can_offload
        assert 3 not in run.spec_schedule  # no recovery, no restore point

    def test_recovered_outage_restores_the_prior_spec(self, openimages_small):
        from repro.core.degraded import OutageReport

        run = self.make_run(openimages_small)
        report = OutageReport(started_at_s=10.0, recovered_at_s=14.0)
        run.observe_outage(report, at_epoch=2)
        assert not run.spec_schedule[2].can_offload
        assert run.spec_schedule[3].can_offload  # back to the base spec

    def test_explicit_recovery_epoch(self, openimages_small):
        from repro.core.degraded import OutageReport

        run = self.make_run(openimages_small)
        report = OutageReport(started_at_s=0.0, recovered_at_s=1.0)
        run.observe_outage(report, at_epoch=1, recovery_epoch=4)
        assert not run.spec_schedule[1].can_offload
        assert 2 not in run.spec_schedule
        assert run.spec_schedule[4].can_offload

    def test_validates_epochs(self, openimages_small):
        from repro.core.degraded import OutageReport

        run = self.make_run(openimages_small)
        report = OutageReport(started_at_s=0.0, recovered_at_s=1.0)
        with pytest.raises(ValueError):
            run.observe_outage(report, at_epoch=-1)
        with pytest.raises(ValueError):
            run.observe_outage(report, at_epoch=3, recovery_epoch=3)
