"""Grid sweep utility tests."""

import csv
import io

import pytest

from repro.baselines import NoOff
from repro.cluster.spec import standard_cluster
from repro.core.sophon import Sophon
from repro.harness.sweeps import grid_sweep, spec_grid


class TestSpecGrid:
    def test_cartesian_product(self):
        base = standard_cluster()
        points = list(
            spec_grid(base, {"storage_cores": [1, 2], "bandwidth_mbps": [100.0, 500.0]})
        )
        assert len(points) == 4
        combos = {(p["storage_cores"], p["bandwidth_mbps"]) for p, _ in points}
        assert combos == {(1, 100.0), (1, 500.0), (2, 100.0), (2, 500.0)}

    def test_specs_carry_the_point(self):
        base = standard_cluster()
        for point, spec in spec_grid(base, {"storage_cores": [3]}):
            assert spec.storage_cores == 3
            assert spec.bandwidth_mbps == base.bandwidth_mbps

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="not a ClusterSpec field"):
            list(spec_grid(standard_cluster(), {"gpu_count": [1]}))


class TestGridSweep:
    @pytest.fixture(scope="class")
    def table(self, openimages_small):
        return grid_sweep(
            openimages_small,
            standard_cluster(),
            {"storage_cores": [1, 8], "bandwidth_mbps": [250.0, 500.0]},
            policies=[NoOff(), Sophon()],
            batch_size=64,
        )

    def test_row_count(self, table):
        assert len(table.rows) == 4 * 2  # 4 grid points x 2 policies

    def test_filter_by_policy(self, table):
        sophon_rows = table.filter("sophon")
        assert len(sophon_rows) == 4
        assert all(row.policy == "sophon" for row in sophon_rows)

    def test_policies_replan_per_point(self, table):
        offloaded = {
            (row.point["storage_cores"], row.point["bandwidth_mbps"]): row.result.plan.num_offloaded
            for row in table.filter("sophon")
        }
        # Scarce cores shrink the plan relative to ample ones.
        assert offloaded[(1, 500.0)] < offloaded[(8, 500.0)]

    def test_render_contains_axes(self, table):
        text = table.render()
        assert "storage_cores" in text and "bandwidth_mbps" in text

    def test_csv_parses(self, table):
        rows = list(csv.DictReader(io.StringIO(table.to_csv())))
        assert len(rows) == len(table.rows)
        assert {"storage_cores", "policy", "traffic_bytes"} <= set(rows[0])
