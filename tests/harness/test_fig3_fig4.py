"""Figure 3/4 regenerator tests (small-scale shape checks)."""

import pytest

from repro.cluster.spec import standard_cluster
from repro.harness.fig3 import ample_cpu_comparison
from repro.harness.fig4 import limited_cpu_sweep


@pytest.fixture(scope="module")
def oi_comparison(openimages_small):
    return ample_cpu_comparison(openimages_small, standard_cluster(storage_cores=48))


class TestFig3:
    def test_all_five_policies_present(self, oi_comparison):
        assert set(oi_comparison.by_policy()) == {
            "no-off", "all-off", "fastflow", "resize-off", "sophon",
        }

    def test_alloff_inflates_traffic(self, oi_comparison):
        assert oi_comparison.traffic_ratio("all-off") > 1.5

    def test_fastflow_matches_nooff(self, oi_comparison):
        assert oi_comparison.traffic_ratio("fastflow") == pytest.approx(1.0)

    def test_sophon_has_lowest_traffic(self, oi_comparison):
        table = oi_comparison.by_policy()
        sophon = table["sophon"].traffic_bytes
        assert all(sophon <= r.traffic_bytes for r in table.values())

    def test_sophon_has_best_time(self, oi_comparison):
        table = oi_comparison.by_policy()
        sophon = table["sophon"].epoch_time_s
        assert all(sophon <= r.epoch_time_s + 1e-9 for r in table.values())

    def test_render_mentions_every_policy(self, oi_comparison):
        text = oi_comparison.render()
        for name in ("no-off", "all-off", "fastflow", "resize-off", "sophon"):
            assert name in text


class TestFig4:
    @pytest.fixture(scope="class")
    def sweep(self, openimages_small):
        return limited_cpu_sweep(openimages_small, cores=(0, 1, 3))

    def test_zero_cores_all_policies_equal(self, sweep):
        row = sweep.results[0]
        times = {r.epoch_time_s for r in row.values()}
        assert len(times) == 1

    def test_sophon_epoch_times_nonincreasing(self, sweep):
        times = sweep.epoch_times("sophon")
        assert all(a >= b - 1e-9 for a, b in zip(times, times[1:]))

    def test_marginal_gains_length(self, sweep):
        assert len(sweep.sophon_marginal_gains()) == 2

    def test_resize_off_worse_than_nooff_at_one_core(self, sweep):
        row = sweep.results[1]
        assert row["resize-off"].epoch_time_s > row["no-off"].epoch_time_s

    def test_sophon_best_at_every_core_count(self, sweep):
        for cores in sweep.cores:
            row = sweep.results[cores]
            best = min(r.epoch_time_s for r in row.values())
            assert row["sophon"].epoch_time_s == pytest.approx(best)

    def test_traffic_series_accessible(self, sweep):
        assert len(sweep.traffic("resize-off")) == len(sweep.cores)

    def test_render(self, sweep):
        assert "storage-core sweep" in sweep.render()
