"""Fidelity frontier harness tests."""

import json
import math

import pytest

from repro.cluster.spec import standard_cluster
from repro.harness.frontier import (
    DEFAULT_FLOORS,
    build_progressive_records,
    fidelity_frontier,
)
from repro.preprocessing.records import ProgressiveSampleRecord


@pytest.fixture(scope="module")
def progressive_records(request):
    materialized_tiny = request.getfixturevalue("materialized_tiny")
    return build_progressive_records(materialized_tiny)


class TestBuildProgressiveRecords:
    def test_records_carry_a_consistent_ladder(self, progressive_records):
        assert progressive_records
        for record in progressive_records:
            assert isinstance(record, ProgressiveSampleRecord)
            assert record.scan_sizes[-1] == record.stage_sizes[0]
            psnrs = record.scan_psnr_db
            assert all(b >= a for a, b in zip(psnrs, psnrs[1:]))
            assert math.isinf(psnrs[-1])

    def test_requires_materialized_dataset(self, openimages_small):
        with pytest.raises(ValueError, match="materialized"):
            build_progressive_records(openimages_small)


class TestFidelityFrontier:
    @pytest.fixture(scope="class")
    def frontier(self, request, progressive_records):
        materialized_tiny = request.getfixturevalue("materialized_tiny")
        return fidelity_frontier(
            materialized_tiny,
            spec=standard_cluster().with_bandwidth(40.0),
            floors=(None, 40.0, 30.0),
            records=progressive_records,
            gpu_time_s=0.001,
        )

    def test_anchor_point_never_degrades(self, frontier):
        anchor = frontier.points[0]
        assert anchor.min_psnr_db is None
        assert anchor.degraded_samples == 0
        assert anchor.worst_psnr_db is None

    def test_relaxing_the_floor_never_ships_more(self, frontier):
        traffic = [p.traffic_bytes for p in frontier.points]
        assert traffic[0] >= traffic[1] >= traffic[2]

    def test_saved_plus_traffic_is_constant(self, frontier):
        totals = {p.traffic_bytes + p.saved_bytes for p in frontier.points}
        assert len(totals) == 1

    def test_worst_psnr_respects_the_floor(self, frontier):
        for point in frontier.points[1:]:
            if point.worst_psnr_db is not None:
                assert point.worst_psnr_db >= point.min_psnr_db

    def test_render_and_json(self, frontier):
        text = frontier.render()
        assert "traffic-vs-fidelity frontier" in text
        assert "Floor" in text
        report = json.loads(frontier.to_json())
        assert report["kind"] == "fidelity-frontier"
        assert len(report["points"]) == 3

    def test_default_floors_start_with_the_anchor(self):
        assert DEFAULT_FLOORS[0] is None
        floors = [f for f in DEFAULT_FLOORS[1:]]
        assert floors == sorted(floors, reverse=True)
