"""Multi-epoch training run tests."""

import pytest

from repro.baselines import NoOff
from repro.cluster.spec import standard_cluster
from repro.core.sophon import Sophon
from repro.harness.training import TrainingRun


@pytest.fixture(scope="module")
def runs(openimages_small):
    spec = standard_cluster(storage_cores=48)
    sophon = TrainingRun(
        openimages_small, Sophon(), spec, batch_size=64, seed=0
    ).run(epochs=5)
    baseline = TrainingRun(
        openimages_small, NoOff(), spec, batch_size=64, seed=0
    ).run(epochs=5)
    return sophon, baseline


class TestTrainingRun:
    def test_first_epoch_is_unoffloaded(self, runs):
        sophon, baseline = runs
        assert sophon.per_epoch[0].offloaded_samples == 0
        # Profiling epoch costs exactly a No-Off epoch: no extra pass.
        assert sophon.profile_epoch_time_s == pytest.approx(
            baseline.per_epoch[0].epoch_time_s
        )

    def test_plan_applies_from_epoch_one(self, runs):
        sophon, _ = runs
        for stats in sophon.per_epoch[1:]:
            assert stats.offloaded_samples == sophon.plan.num_offloaded
        assert sophon.plan.num_offloaded > 0

    def test_steady_state_faster_than_profiling_epoch(self, runs):
        sophon, _ = runs
        assert sophon.steady_epoch_time_s < sophon.profile_epoch_time_s / 1.8

    def test_job_level_speedup_grows_with_epochs(self, openimages_small):
        spec = standard_cluster(storage_cores=48)
        short = TrainingRun(openimages_small, Sophon(), spec, batch_size=64).run(2)
        long = TrainingRun(openimages_small, Sophon(), spec, batch_size=64).run(8)
        short_base = TrainingRun(openimages_small, NoOff(), spec, batch_size=64).run(2)
        long_base = TrainingRun(openimages_small, NoOff(), spec, batch_size=64).run(8)
        assert long.speedup_over(long_base) > short.speedup_over(short_base)

    def test_totals_are_sums(self, runs):
        sophon, _ = runs
        assert sophon.total_time_s == pytest.approx(
            sum(s.epoch_time_s for s in sophon.per_epoch)
        )
        assert sophon.total_traffic_bytes == sum(
            s.traffic_bytes for s in sophon.per_epoch
        )

    def test_speedup_requires_equal_epochs(self, runs, openimages_small):
        sophon, _ = runs
        other = TrainingRun(
            openimages_small, NoOff(), standard_cluster(), batch_size=64
        ).run(2)
        with pytest.raises(ValueError):
            sophon.speedup_over(other)

    def test_requires_two_epochs(self, openimages_small):
        run = TrainingRun(openimages_small, Sophon(), standard_cluster())
        with pytest.raises(ValueError):
            run.run(epochs=1)


class TestTrainingRunTelemetry:
    def test_every_epoch_instrumented(self, openimages_small):
        result = TrainingRun(
            openimages_small, Sophon(), standard_cluster(storage_cores=48),
            batch_size=64, seed=0,
        ).run(epochs=3, record_spans=True, record_timeline=True)
        pairs = result.instrumented_epochs()
        assert [epoch for epoch, _ in pairs] == [0, 1, 2]
        for epoch, stats in pairs:
            assert stats.spans is not None
            assert stats.timeline is not None
            assert any(
                e.trace_id.endswith(f"-e{epoch}") for e in stats.spans.events
            )

    def test_telemetry_is_byte_identical(self, runs, openimages_small):
        sophon, _ = runs
        traced = TrainingRun(
            openimages_small, Sophon(), standard_cluster(storage_cores=48),
            batch_size=64, seed=0,
        ).run(epochs=5, record_spans=True, record_timeline=True)
        assert [s.epoch_time_s for s in traced.per_epoch] == [
            s.epoch_time_s for s in sophon.per_epoch
        ]
        assert traced.total_traffic_bytes == sophon.total_traffic_bytes
