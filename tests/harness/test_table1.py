"""Table 1 regeneration tests."""

from repro.harness.table1 import (
    capability_matrix,
    render_capability_matrix,
    sophon_is_strictly_most_capable,
)


class TestCapabilityMatrix:
    def test_five_rows_in_order(self):
        rows = capability_matrix()
        assert [r[0] for r in rows] == [
            "no-off", "all-off", "fastflow", "resize-off", "sophon",
        ]

    def test_sophon_checks_every_column(self):
        rows = capability_matrix()
        sophon = next(r for r in rows if r[0] == "sophon")
        assert all(cell == "yes" for cell in sophon[1:])

    def test_only_sophon_is_fully_capable(self):
        assert sophon_is_strictly_most_capable()

    def test_no_off_checks_nothing(self):
        rows = capability_matrix()
        no_off = next(r for r in rows if r[0] == "no-off")
        assert all(cell == "-" for cell in no_off[1:])

    def test_render_contains_headers(self):
        text = render_capability_matrix()
        assert "Operation Selective" in text
        assert "Data Selective" in text
        assert "sophon" in text


class TestPublishedMatrix:
    def test_lists_the_papers_comparators(self):
        from repro.harness.table1 import published_matrix

        names = [row[0] for row in published_matrix()]
        assert names == [
            "tf.data service [32]",
            "FastFlow [33]",
            "GoldMiner [34]",
            "cedar [35]",
            "SOPHON",
        ]

    def test_only_sophon_fully_capable(self):
        from repro.harness.table1 import published_matrix

        full = [r[0] for r in published_matrix() if all(c == "yes" for c in r[1:])]
        assert full == ["SOPHON"]

    def test_render(self):
        from repro.harness.table1 import render_published_matrix

        text = render_published_matrix()
        assert "cedar" in text and "SOPHON" in text
