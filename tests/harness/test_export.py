"""CSV export tests."""

import csv
import io

import pytest

from repro.cluster.spec import standard_cluster
from repro.harness.export import (
    comparison_to_csv,
    series_to_csv,
    sweep_to_csv,
    write_csv,
)
from repro.harness.fig3 import ample_cpu_comparison
from repro.harness.fig4 import limited_cpu_sweep


@pytest.fixture(scope="module")
def comparison(openimages_small):
    return ample_cpu_comparison(openimages_small, standard_cluster(storage_cores=8))


class TestExport:
    def test_comparison_csv_parses_back(self, comparison):
        rows = list(csv.DictReader(io.StringIO(comparison_to_csv(comparison))))
        assert len(rows) == 5
        assert {r["policy"] for r in rows} == {
            "no-off", "all-off", "fastflow", "resize-off", "sophon",
        }
        nooff = next(r for r in rows if r["policy"] == "no-off")
        assert float(nooff["traffic_vs_nooff"]) == pytest.approx(1.0)

    def test_sweep_csv_covers_grid(self, openimages_small):
        sweep = limited_cpu_sweep(openimages_small, cores=(0, 2))
        rows = list(csv.DictReader(io.StringIO(sweep_to_csv(sweep))))
        assert len(rows) == 2 * 5
        assert {r["storage_cores"] for r in rows} == {"0", "2"}

    def test_series_csv(self):
        text = series_to_csv(("a", "b"), [(1, 2), (3, 4)])
        rows = list(csv.reader(io.StringIO(text)))
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_series_validates_rows(self):
        with pytest.raises(ValueError):
            series_to_csv(("a", "b"), [(1,)])

    def test_write_csv(self, comparison, tmp_path):
        path = tmp_path / "fig3.csv"
        write_csv(comparison_to_csv(comparison), str(path))
        assert path.read_text().startswith("dataset,policy")
