"""Chaos experiment tests: every fault class survives with zero lost samples."""

import pytest

from repro.data.catalog import make_openimages
from repro.faults import FaultSchedule
from repro.harness.chaos import (
    ChaosScenario,
    default_scenarios,
    run_chaos,
)


@pytest.fixture(scope="module")
def chaos_report():
    dataset = make_openimages(num_samples=80, seed=11)
    return run_chaos(dataset, seed=3)


class TestDefaultScenarios:
    def test_covers_all_four_fault_classes(self):
        names = [s.name for s in default_scenarios(epoch_time_s=1.0)]
        assert names == [
            "storage-crash",
            "link-brownout",
            "storage-cpu-drift",
            "payload-corruption",
        ]

    def test_schedules_scale_with_epoch_time(self):
        short = default_scenarios(epoch_time_s=1.0)[0].schedule
        long = default_scenarios(epoch_time_s=10.0)[0].schedule
        assert long.crashes[0].start == pytest.approx(10 * short.crashes[0].start)

    def test_rejects_nonpositive_epoch_time(self):
        with pytest.raises(ValueError):
            default_scenarios(epoch_time_s=0.0)


class TestChaosReport:
    def test_every_scenario_survives(self, chaos_report):
        assert chaos_report.survived
        for run in chaos_report.runs:
            assert run.lost_samples == 0

    def test_crash_demotes_but_loses_nothing(self, chaos_report):
        crash = chaos_report.run_named("storage-crash")
        assert crash.demoted_samples > 0
        assert crash.lost_samples == 0
        assert crash.recovery_latency_s is not None
        assert crash.recovery_latency_s > 0
        # Demoted samples ship raw: the epoch moves more bytes, not fewer.
        assert crash.traffic_delta_bytes > 0

    def test_corruption_detected_and_resent(self, chaos_report):
        run = chaos_report.run_named("payload-corruption")
        assert run.corrupted_payloads > 0
        assert run.lost_samples == 0
        assert run.traffic_delta_bytes > 0  # resends cost wire bytes


class TestShardedChaos:
    def test_sharded_sim_survives_every_scenario(self):
        """Regression: the chaos path passes record_spans/record_timeline
        and faults through run_epoch; the pre-fix sharded sim raised
        TypeError on that call shape."""
        dataset = make_openimages(num_samples=80, seed=11)
        report = run_chaos(dataset, seed=3, shards=3, telemetry=True)
        assert report.survived
        crash = report.run_named("storage-crash")
        assert crash.demoted_samples > 0
        assert crash.stats.spans is not None
        shards = {
            e.attrs["shard"]
            for e in crash.stats.spans.events
            if "shard" in e.attrs
        }
        assert shards == {0, 1, 2}

    def test_brownout_slows_the_epoch(self, chaos_report):
        run = chaos_report.run_named("link-brownout")
        assert run.epoch_delta_s > 0
        assert run.lost_samples == 0

    def test_run_named_rejects_unknown(self, chaos_report):
        with pytest.raises(KeyError):
            chaos_report.run_named("meteor-strike")

    def test_render_mentions_every_scenario(self, chaos_report):
        text = chaos_report.render()
        for run in chaos_report.runs:
            assert run.scenario.name in text


class TestEmptySchedule:
    def test_empty_schedule_is_byte_identical_to_baseline(self):
        dataset = make_openimages(num_samples=60, seed=5)
        null_scenario = ChaosScenario(
            name="no-faults", schedule=FaultSchedule(), description="control"
        )
        report = run_chaos(dataset, seed=2, scenarios=[null_scenario])
        run = report.run_named("no-faults")
        assert run.epoch_delta_s == 0.0
        assert run.traffic_delta_bytes == 0
        assert run.demoted_samples == 0
        assert run.corrupted_payloads == 0
