"""Figure 1 regenerator tests."""

import pytest

from repro.cluster.spec import standard_cluster
from repro.harness.fig1 import (
    benefit_fraction,
    gpu_utilization_by_model,
    minstage_fractions,
    representative_samples,
    size_trace,
)


class TestSizeTrace:
    def test_stage_names_and_sizes_aligned(self, openimages_small):
        trace = size_trace(openimages_small, 0)
        assert len(trace.stage_names) == len(trace.stage_sizes) == 6
        assert trace.stage_names[0] == "raw"

    def test_trace_follows_size_algebra(self, openimages_small):
        trace = size_trace(openimages_small, 0)
        assert trace.stage_sizes[2] == 224 * 224 * 3
        assert trace.stage_sizes[4] == 4 * trace.stage_sizes[2]

    def test_representative_samples_have_opposite_minima(self, openimages_small):
        sample_a, sample_b = representative_samples(openimages_small)
        assert size_trace(openimages_small, sample_a).min_stage > 0
        assert size_trace(openimages_small, sample_b).min_stage == 0

    def test_render_marks_minimum(self, openimages_small):
        sample_a, _ = representative_samples(openimages_small)
        assert "<- min" in size_trace(openimages_small, sample_a).render()

    def test_missing_population_raises(self):
        from repro.data.trace import TraceDataset

        all_small = TraceDataset([1000] * 5, [64] * 5, [64] * 5)
        with pytest.raises(ValueError):
            representative_samples(all_small)


class TestMinstageFractions:
    def test_fractions_sum_to_one(self, openimages_small):
        fractions = minstage_fractions(openimages_small)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_openimages_benefit_near_paper(self, openimages_small):
        fractions = minstage_fractions(openimages_small)
        assert benefit_fraction(fractions) == pytest.approx(0.76, abs=0.05)

    def test_imagenet_benefit_near_paper(self, imagenet_small):
        fractions = minstage_fractions(imagenet_small)
        assert benefit_fraction(fractions) == pytest.approx(0.26, abs=0.05)

    def test_minimum_never_after_totensor(self, openimages_small):
        fractions = minstage_fractions(openimages_small)
        assert fractions["ToTensor"] == 0.0
        assert fractions["Normalize"] == 0.0


class TestGpuUtilization:
    def test_ordering_matches_compute_intensity(self, openimages_small):
        spec = standard_cluster().with_bandwidth(1000.0)
        utils = dict(
            gpu_utilization_by_model(
                openimages_small, spec, models=("resnet50", "resnet18", "alexnet")
            )
        )
        assert utils["resnet50"] > utils["resnet18"] > utils["alexnet"]

    def test_resnet18_mostly_idle_like_paper(self, openimages_small):
        # Paper: ResNet-18 spends ~65% of its time waiting on data.
        spec = standard_cluster().with_bandwidth(1000.0)
        utils = dict(gpu_utilization_by_model(openimages_small, spec, models=("resnet18",)))
        assert utils["resnet18"] < 0.5
