"""Markdown report generator tests (small scale)."""

import pytest

from repro.harness.report import generate_markdown_report


class TestReport:
    @pytest.fixture(scope="class")
    def report(self):
        return generate_markdown_report(samples=200, seed=7, cores=(0, 2))

    def test_contains_every_section(self, report):
        for heading in (
            "# SOPHON reproduction report",
            "## Table 1",
            "## Figure 1a",
            "## Figure 1b",
            "## Figure 1c",
            "## Figure 1d",
            "## Figure 3 — openimages-12g",
            "## Figure 3 — imagenet-11g",
            "## Figure 4",
        ):
            assert heading in report

    def test_reports_the_headline_numbers(self, report):
        assert "SOPHON traffic reduction" in report
        assert "marginal gain per added core" in report
        assert "zero-efficiency fraction" in report

    def test_mentions_all_policies(self, report):
        for policy in ("no-off", "all-off", "fastflow", "resize-off", "sophon"):
            assert policy in report

    def test_validates_sample_floor(self):
        with pytest.raises(ValueError):
            generate_markdown_report(samples=10)
