"""Wire-compression tests: real deflate vs the compression model."""

import pytest

from repro.compression.codecs import CompressionModel
from repro.compression.wire import CompressedChannel
from repro.data.loader import DataLoader
from repro.data.synthetic import ImageContentConfig, SyntheticImageDataset
from repro.preprocessing.payload import PayloadKind
from repro.rpc import StorageClient, StorageServer
from repro.rpc.messages import RESPONSE_HEADER_SIZE


@pytest.fixture(scope="module")
def dataset():
    return SyntheticImageDataset(
        num_samples=8,
        seed=33,
        content=ImageContentConfig(min_side=128, max_side=320),
        name="wire-compression",
    )


@pytest.fixture
def compressed_stack(dataset, pipeline):
    server = StorageServer(dataset, pipeline, seed=0)
    channel = CompressedChannel(server.handle, level=1)
    return channel, StorageClient(channel)


class TestCompressedChannel:
    def test_transparent_to_the_client(self, compressed_stack, dataset, pipeline):
        _, client = compressed_stack
        payload = client.fetch(0, 0, 2)
        assert payload.data.shape == (224, 224, 3)

    def test_wire_bytes_smaller_than_payload(self, compressed_stack):
        channel, client = compressed_stack
        client.fetch(0, 0, 2)  # uint8 pixels compress
        assert channel.stats.response_bytes < channel.uncompressed_response_bytes
        assert channel.achieved_ratio < 1.0

    def test_loader_runs_over_compressed_wire(self, compressed_stack, dataset, pipeline):
        channel, client = compressed_stack
        loader = DataLoader(dataset, pipeline, client, batch_size=4,
                            splits=[2] * len(dataset), seed=0)
        for batch in loader.epoch(0):
            assert batch.tensors.shape[1:] == (3, 224, 224)
        assert channel.achieved_ratio < 0.95

    def test_validates_level(self):
        with pytest.raises(ValueError):
            CompressedChannel(lambda b: b, level=0)

    def test_rejects_non_bytes(self, compressed_stack):
        channel, _ = compressed_stack
        with pytest.raises(TypeError):
            channel.call("nope")


class TestModelGrounding:
    """The CompressionModel's assumed ratios must match real deflate."""

    def measured_ratio(self, dataset, pipeline, split):
        server = StorageServer(dataset, pipeline, seed=0)
        channel = CompressedChannel(server.handle, level=1)
        client = StorageClient(channel)
        for sid in range(len(dataset)):
            client.fetch(sid, 0, split)
        return channel.achieved_ratio

    def test_image_payload_ratio_within_model_band(self, dataset, pipeline):
        measured = self.measured_ratio(dataset, pipeline, split=2)
        assumed = CompressionModel().profile_for(PayloadKind.IMAGE_U8).ratio
        # Procedural content compresses somewhat differently than photos;
        # the model must sit in the same band, not match exactly.
        assert measured == pytest.approx(assumed, abs=0.25)

    def test_tensor_payload_more_compressible_than_encoded(self, dataset, pipeline):
        tensor_ratio = self.measured_ratio(dataset, pipeline, split=5)
        raw_ratio = self.measured_ratio(dataset, pipeline, split=0)
        assert tensor_ratio < raw_ratio
        # Stored payloads are already entropy coded: deflate buys ~nothing.
        assert raw_ratio > 0.95
