"""Selective compression planner tests."""

import pytest

from repro.cluster.spec import standard_cluster
from repro.cluster.trainer import TrainerSim
from repro.compression.selective import SelectiveCompressor, stage_kinds
from repro.core.policy import PolicyContext
from repro.core.sophon import Sophon
from repro.preprocessing.payload import PayloadKind
from repro.workloads.models import get_model_profile


@pytest.fixture
def planned(openimages_small, pipeline):
    spec = standard_cluster(storage_cores=48)
    ctx = PolicyContext(
        dataset=openimages_small,
        pipeline=pipeline,
        spec=spec,
        model=get_model_profile("alexnet"),
        batch_size=64,
        seed=0,
    )
    plan = Sophon().plan(ctx)
    return ctx, plan, spec


class TestStageKinds:
    def test_kinds_track_pipeline(self, pipeline):
        kinds = stage_kinds(pipeline)
        assert kinds[0] is PayloadKind.ENCODED
        assert kinds[1] is PayloadKind.IMAGE_U8  # post decode
        assert kinds[3] is PayloadKind.IMAGE_U8  # post flip
        assert kinds[5] is PayloadKind.TENSOR_F32  # post normalize


class TestSelectiveCompressor:
    def test_compresses_only_offloaded_samples(self, planned):
        ctx, plan, spec = planned
        result = SelectiveCompressor().plan(
            ctx.records(), plan, ctx.pipeline, spec, ctx.epoch_gpu_time_s
        )
        assert result.num_compressed > 0
        for sid in result.decisions:
            assert plan.split_for(sid) > 0

    def test_savings_positive(self, planned):
        ctx, plan, spec = planned
        result = SelectiveCompressor().plan(
            ctx.records(), plan, ctx.pipeline, spec, ctx.epoch_gpu_time_s
        )
        assert result.total_saved_bytes > 0
        for decision in result.decisions.values():
            assert decision.saved_bytes > 0
            assert decision.storage_cpu_s > 0
            assert decision.efficiency > 0

    def test_no_storage_cores_no_compression(self, planned):
        ctx, plan, _ = planned
        spec0 = standard_cluster(storage_cores=0)
        result = SelectiveCompressor().plan(
            ctx.records(), plan, ctx.pipeline, spec0, ctx.epoch_gpu_time_s
        )
        assert result.num_compressed == 0

    def test_adjustments_reduce_simulated_traffic_and_time(
        self, planned, openimages_small, pipeline
    ):
        ctx, plan, spec = planned
        result = SelectiveCompressor().plan(
            ctx.records(), plan, ctx.pipeline, spec, ctx.epoch_gpu_time_s
        )
        trainer = TrainerSim(
            openimages_small, pipeline, ctx.model, spec, batch_size=64, seed=0
        )
        base = trainer.run_epoch(list(plan.splits), epoch=0)
        compressed = trainer.run_epoch(
            list(plan.splits), epoch=0, adjustments=result.adjustments()
        )
        assert compressed.traffic_bytes == base.traffic_bytes - result.total_saved_bytes
        assert compressed.epoch_time_s <= base.epoch_time_s

    def test_record_plan_length_mismatch(self, planned):
        ctx, plan, spec = planned
        with pytest.raises(ValueError):
            SelectiveCompressor().plan(
                ctx.records()[:-1], plan, ctx.pipeline, spec, 0.1
            )

    def test_epoch0_of_records_drives_decisions_deterministically(self, planned):
        ctx, plan, spec = planned
        a = SelectiveCompressor().plan(
            ctx.records(), plan, ctx.pipeline, spec, ctx.epoch_gpu_time_s
        )
        b = SelectiveCompressor().plan(
            ctx.records(), plan, ctx.pipeline, spec, ctx.epoch_gpu_time_s
        )
        assert a.decisions.keys() == b.decisions.keys()
