"""Joint offload+compression planner tests."""

import pytest

from repro.cluster.spec import standard_cluster
from repro.cluster.trainer import TrainerSim
from repro.compression import JointPlanner, SelectiveCompressor
from repro.core.decision import DecisionEngine
from repro.core.profiler import StageTwoProfiler
from repro.workloads.models import get_model_profile


@pytest.fixture(scope="module")
def records(openimages_small, pipeline):
    return StageTwoProfiler().profile(openimages_small, pipeline)


def sequential_plans(records, pipeline, spec, gpu_time):
    offload = DecisionEngine().plan(records, spec, gpu_time_s=gpu_time)
    compression = SelectiveCompressor().plan(
        records, offload, pipeline, spec, gpu_time
    )
    return offload, compression


class TestJointPlanner:
    def test_structure(self, records, pipeline):
        spec = standard_cluster(storage_cores=8)
        joint = JointPlanner().plan(records, pipeline, spec, gpu_time_s=0.1)
        assert len(joint.offload) == len(records)
        # Compression only ever applies to offloaded samples.
        for sid in joint.compression.decisions:
            assert joint.offload.split_for(sid) > 0

    def test_no_storage_cores(self, records, pipeline):
        spec = standard_cluster(storage_cores=0)
        joint = JointPlanner().plan(records, pipeline, spec, gpu_time_s=0.1)
        assert joint.num_offloaded == 0
        assert joint.num_compressed == 0

    def test_matches_sequential_with_ample_cores(self, records, pipeline):
        # With no CPU contention the two formulations admit the same sets.
        spec = standard_cluster(storage_cores=48)
        joint = JointPlanner().plan(records, pipeline, spec, gpu_time_s=0.1)
        offload, compression = sequential_plans(records, pipeline, spec, 0.1)
        assert list(joint.offload.splits) == list(offload.splits)
        assert set(joint.compression.decisions) == set(compression.decisions)

    @pytest.mark.parametrize("cores", [1, 2, 4])
    def test_never_worse_than_sequential(self, records, pipeline, cores, openimages_small):
        spec = standard_cluster(storage_cores=cores)
        model = get_model_profile("alexnet")
        gpu_time = len(records) / model.images_per_second
        trainer = TrainerSim(
            openimages_small, pipeline, model, spec, batch_size=64, seed=0
        )

        joint = JointPlanner().plan(records, pipeline, spec, gpu_time_s=gpu_time)
        offload, compression = sequential_plans(records, pipeline, spec, gpu_time)

        joint_stats = trainer.run_epoch(
            list(joint.offload.splits), epoch=1,
            adjustments=joint.compression.adjustments(),
        )
        seq_stats = trainer.run_epoch(
            list(offload.splits), epoch=1,
            adjustments=compression.adjustments(),
        )
        assert joint_stats.epoch_time_s <= seq_stats.epoch_time_s * 1.03

    def test_expected_estimate_attached(self, records, pipeline):
        spec = standard_cluster(storage_cores=4)
        joint = JointPlanner().plan(records, pipeline, spec, gpu_time_s=0.1)
        assert joint.offload.expected is not None
        assert joint.offload.expected.epoch_time_s > 0
