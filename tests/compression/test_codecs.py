"""Compression codec and model tests."""

import numpy as np
import pytest

from repro.compression.codecs import CompressionModel, DeflatePayloadCodec, KindProfile
from repro.preprocessing.payload import PayloadKind


class TestDeflateCodec:
    def test_round_trip(self):
        codec = DeflatePayloadCodec()
        data = b"hello world " * 100
        assert codec.decompress(codec.compress(data)) == data

    def test_repetitive_data_shrinks(self):
        codec = DeflatePayloadCodec()
        data = b"\x00" * 10_000
        assert len(codec.compress(data)) < 100

    def test_validates_level(self):
        with pytest.raises(ValueError):
            DeflatePayloadCodec(level=0)

    def test_actually_compresses_pixel_payloads(self, rng):
        from repro.data.synthetic import generate_image

        pixels = generate_image(rng, 128, 128, texture=0.3).tobytes()
        codec = DeflatePayloadCodec()
        ratio = len(codec.compress(pixels)) / len(pixels)
        assert ratio < 0.95  # pixels are compressible, as the model assumes


class TestCompressionModel:
    def test_profiles_exist_for_all_kinds(self):
        model = CompressionModel()
        for kind in PayloadKind:
            assert model.profile_for(kind).ratio > 0

    def test_encoded_payloads_incompressible(self):
        model = CompressionModel()
        assert model.savings_bytes(PayloadKind.ENCODED, 10_000) == 0

    def test_tensor_savings_positive(self):
        model = CompressionModel()
        assert model.savings_bytes(PayloadKind.TENSOR_F32, 10_000) > 0

    def test_compressed_bytes_scale_linearly(self):
        model = CompressionModel()
        one = model.compressed_bytes(PayloadKind.IMAGE_U8, 1000)
        ten = model.compressed_bytes(PayloadKind.IMAGE_U8, 10_000)
        assert ten == pytest.approx(10 * one, rel=0.01)

    def test_cpu_seconds_positive_and_asymmetric(self):
        model = CompressionModel()
        comp = model.compress_seconds(PayloadKind.IMAGE_U8, 1_000_000)
        decomp = model.decompress_seconds(PayloadKind.IMAGE_U8, 1_000_000)
        assert comp > decomp > 0  # inflate is cheaper than deflate

    def test_kind_profile_validation(self):
        with pytest.raises(ValueError):
            KindProfile(ratio=0.0, compress_bytes_per_s=1.0, decompress_bytes_per_s=1.0)
        with pytest.raises(ValueError):
            KindProfile(ratio=0.5, compress_bytes_per_s=0.0, decompress_bytes_per_s=1.0)

    def test_unknown_kind_raises(self):
        model = CompressionModel(profiles={})
        with pytest.raises(KeyError):
            model.profile_for(PayloadKind.ENCODED)
