"""ScanTruncationLambda and fetch_scans: store-side fidelity truncation."""

import numpy as np
import pytest

from repro.codec import ProgressiveJpegCodec, scan_count_of, scan_sizes, truncate_scans
from repro.objectstore.dataset import sample_key, upload_dataset
from repro.objectstore.fetcher import ObjectLambdaFetcher
from repro.objectstore.lambdas import (
    LambdaError,
    LambdaRegistry,
    PreprocessingLambda,
    ScanTruncationLambda,
)
from repro.objectstore.store import Bucket
from repro.preprocessing.payload import PayloadKind
from repro.preprocessing.pipeline import standard_pipeline


@pytest.fixture
def codec():
    return ProgressiveJpegCodec()


@pytest.fixture
def progressive_bucket(materialized_tiny, codec):
    """A bucket whose stored objects are progressive re-encodes."""
    bucket = Bucket("train-progressive")
    for sid in materialized_tiny.sample_ids():
        image = codec.decode(materialized_tiny.raw_payload(sid).data)
        meta = materialized_tiny.raw_meta(sid)
        bucket.put(
            sample_key(sid),
            codec.encode(image),
            metadata={"height": str(meta.height), "width": str(meta.width)},
        )
    return bucket


@pytest.fixture
def registry(progressive_bucket, codec):
    registry = LambdaRegistry(progressive_bucket)
    PreprocessingLambda(standard_pipeline(crop_size=16, codec=codec)).install(registry)
    ScanTruncationLambda().install(registry)
    return registry


class TestScanTruncationLambda:
    def test_truncates_to_the_requested_prefix(self, registry, progressive_bucket):
        from repro.rpc.messages import FetchResponse

        stored = progressive_bucket.get(sample_key(0))
        wire = registry.get_through(
            sample_key(0),
            ScanTruncationLambda.NAME,
            {
                "sample_id": 0,
                "epoch": 0,
                "scan_count": 2,
                "height": 1,
                "width": 1,
            },
        )
        payload = FetchResponse.from_bytes(wire).to_payload()
        assert payload.kind is PayloadKind.ENCODED
        assert payload.data == truncate_scans(stored, 2)
        assert scan_count_of(payload.data) == 2

    @pytest.mark.parametrize("scan_count", [0, -1, 99])
    def test_out_of_range_scan_count_is_a_lambda_error(self, registry, scan_count):
        with pytest.raises(LambdaError):
            registry.get_through(
                sample_key(0),
                ScanTruncationLambda.NAME,
                {
                    "sample_id": 0,
                    "epoch": 0,
                    "scan_count": scan_count,
                    "height": 1,
                    "width": 1,
                },
            )

    def test_missing_argument_is_a_lambda_error(self, registry):
        with pytest.raises(LambdaError, match="missing"):
            registry.get_through(
                sample_key(0), ScanTruncationLambda.NAME, {"sample_id": 0}
            )

    def test_non_progressive_object_is_a_lambda_error(self, materialized_tiny):
        # Baseline (TJPG) objects have no scans; the CodecError must come
        # back as a LambdaError, never leak as a codec exception.
        bucket = Bucket("train-baseline")
        upload_dataset(materialized_tiny, bucket)
        registry = LambdaRegistry(bucket)
        ScanTruncationLambda().install(registry)
        with pytest.raises(LambdaError, match="not a valid progressive stream"):
            registry.get_through(
                sample_key(0),
                ScanTruncationLambda.NAME,
                {
                    "sample_id": 0,
                    "epoch": 0,
                    "scan_count": 1,
                    "height": 1,
                    "width": 1,
                },
            )


class TestFetchScans:
    def test_fetch_scans_round_trip(
        self, registry, progressive_bucket, codec
    ):
        fetcher = ObjectLambdaFetcher(registry)
        stored = progressive_bucket.get(sample_key(2))
        payload = fetcher.fetch_scans(2, epoch=0, scan_count=2)
        assert payload.data == truncate_scans(stored, 2)
        # The truncated stream decodes to a real (reduced-fidelity) image
        # of the full dimensions.
        image = codec.decode(payload.data)
        assert image.shape == codec.decode(stored).shape

    def test_fewer_scans_means_fewer_wire_bytes(self, registry, progressive_bucket):
        low = ObjectLambdaFetcher(registry)
        low.fetch_scans(0, epoch=0, scan_count=1)
        high = ObjectLambdaFetcher(registry)
        high.fetch_scans(0, epoch=0, scan_count=scan_count_of(
            progressive_bucket.get(sample_key(0))
        ))
        assert low.traffic_bytes < high.traffic_bytes

    def test_full_count_ships_the_whole_stream(self, registry, progressive_bucket):
        stored = progressive_bucket.get(sample_key(1))
        fetcher = ObjectLambdaFetcher(registry)
        payload = fetcher.fetch_scans(1, epoch=0, scan_count=scan_count_of(stored))
        assert payload.data == stored
        assert scan_sizes(payload.data) == scan_sizes(stored)

    def test_requires_the_lambda_installed(self, progressive_bucket, codec):
        registry = LambdaRegistry(progressive_bucket)
        PreprocessingLambda(
            standard_pipeline(crop_size=16, codec=codec)
        ).install(registry)
        fetcher = ObjectLambdaFetcher(registry)
        with pytest.raises(ValueError, match="ScanTruncationLambda"):
            fetcher.fetch_scans(0, epoch=0, scan_count=1)

    def test_split_fetch_still_works_alongside(self, registry):
        # The same registry serves both axes: offloaded prefixes through
        # the preprocessing lambda, fidelity prefixes through truncation.
        fetcher = ObjectLambdaFetcher(registry)
        preprocessed = fetcher.fetch(0, epoch=0, split=2)
        assert isinstance(preprocessed.data, np.ndarray)
        truncated = fetcher.fetch_scans(0, epoch=0, scan_count=2)
        assert isinstance(truncated.data, bytes)
