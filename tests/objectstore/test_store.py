"""Object store tests."""

import pytest

from repro.objectstore.store import (
    Bucket,
    NoSuchBucketError,
    NoSuchKeyError,
    ObjectStore,
    ObjectStoreError,
)


@pytest.fixture
def bucket():
    return Bucket("data")


class TestBucket:
    def test_put_get_round_trip(self, bucket):
        bucket.put("a", b"hello")
        assert bucket.get("a") == b"hello"

    def test_put_overwrites(self, bucket):
        bucket.put("a", b"one")
        bucket.put("a", b"two")
        assert bucket.get("a") == b"two"
        assert len(bucket) == 1

    def test_head_returns_meta_without_read_traffic(self, bucket):
        bucket.put("a", b"hello", metadata={"k": "v"})
        meta = bucket.head("a")
        assert meta.size == 5
        assert meta.metadata_dict() == {"k": "v"}
        assert bucket.stats.gets == 0
        assert bucket.stats.bytes_read == 0

    def test_etag_tracks_content(self, bucket):
        bucket.put("a", b"one")
        first = bucket.head("a").etag
        bucket.put("a", b"two")
        assert bucket.head("a").etag != first

    def test_range_read(self, bucket):
        bucket.put("a", b"0123456789")
        assert bucket.get("a", byte_range=(2, 5)) == b"234"
        assert bucket.get("a", byte_range=(0, 0)) == b""

    def test_range_validation(self, bucket):
        bucket.put("a", b"0123")
        with pytest.raises(ValueError):
            bucket.get("a", byte_range=(3, 2))
        with pytest.raises(ValueError):
            bucket.get("a", byte_range=(0, 5))

    def test_missing_key(self, bucket):
        with pytest.raises(NoSuchKeyError):
            bucket.get("nope")
        with pytest.raises(NoSuchKeyError):
            bucket.head("nope")
        with pytest.raises(NoSuchKeyError):
            bucket.delete("nope")

    def test_delete(self, bucket):
        bucket.put("a", b"x")
        bucket.delete("a")
        assert "a" not in bucket

    def test_keys_sorted_and_prefixed(self, bucket):
        for key in ("b/2", "a/1", "b/1"):
            bucket.put(key, b"x")
        assert bucket.keys() == ["a/1", "b/1", "b/2"]
        assert bucket.keys(prefix="b/") == ["b/1", "b/2"]

    def test_stats_accumulate(self, bucket):
        bucket.put("a", b"12345")
        bucket.get("a")
        bucket.get("a", byte_range=(0, 2))
        assert bucket.stats.puts == 1
        assert bucket.stats.bytes_written == 5
        assert bucket.stats.gets == 2
        assert bucket.stats.bytes_read == 7

    def test_total_bytes(self, bucket):
        bucket.put("a", b"123")
        bucket.put("b", b"4567")
        assert bucket.total_bytes() == 7

    def test_validates_inputs(self, bucket):
        with pytest.raises(ValueError):
            bucket.put("", b"x")
        with pytest.raises(TypeError):
            bucket.put("a", "not bytes")
        with pytest.raises(ValueError):
            Bucket("has/slash")


class TestObjectStore:
    def test_create_and_get_bucket(self):
        store = ObjectStore()
        created = store.create_bucket("b1")
        assert store.bucket("b1") is created
        assert "b1" in store
        assert store.buckets() == ["b1"]

    def test_duplicate_bucket_rejected(self):
        store = ObjectStore()
        store.create_bucket("b1")
        with pytest.raises(ObjectStoreError):
            store.create_bucket("b1")

    def test_missing_bucket(self):
        with pytest.raises(NoSuchBucketError):
            ObjectStore().bucket("ghost")

    def test_delete_bucket_requires_empty_or_force(self):
        store = ObjectStore()
        store.create_bucket("b1").put("k", b"x")
        with pytest.raises(ObjectStoreError):
            store.delete_bucket("b1")
        store.delete_bucket("b1", force=True)
        assert "b1" not in store
