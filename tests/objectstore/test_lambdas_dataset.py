"""Object lambda and bucket-backed dataset tests."""

import numpy as np
import pytest

from repro.objectstore.dataset import ObjectBackedDataset, sample_key, upload_dataset
from repro.objectstore.lambdas import LambdaError, LambdaRegistry, PreprocessingLambda
from repro.objectstore.store import Bucket
from repro.preprocessing.payload import PayloadKind
from repro.rpc.messages import FetchResponse


@pytest.fixture
def loaded_bucket(materialized_tiny):
    bucket = Bucket("train-data")
    upload_dataset(materialized_tiny, bucket)
    return bucket


class TestLambdaRegistry:
    def test_register_and_invoke(self, loaded_bucket):
        registry = LambdaRegistry(loaded_bucket)
        registry.register("upper-16", lambda raw, args: raw[: args.get("n", 16)])
        out = registry.get_through(sample_key(0), "upper-16", {"n": 4})
        assert len(out) == 4
        assert registry.invocations["upper-16"] == 1

    def test_none_lambda_returns_raw(self, loaded_bucket, materialized_tiny):
        registry = LambdaRegistry(loaded_bucket)
        raw = registry.get_through(sample_key(0), None)
        assert raw == materialized_tiny.raw_payload(0).data

    def test_unknown_lambda(self, loaded_bucket):
        registry = LambdaRegistry(loaded_bucket)
        with pytest.raises(LambdaError):
            registry.get_through(sample_key(0), "ghost")

    def test_duplicate_name_rejected(self, loaded_bucket):
        registry = LambdaRegistry(loaded_bucket)
        registry.register("x", lambda raw, args: raw)
        with pytest.raises(LambdaError):
            registry.register("x", lambda raw, args: raw)

    def test_unregister(self, loaded_bucket):
        registry = LambdaRegistry(loaded_bucket)
        registry.register("x", lambda raw, args: raw)
        registry.unregister("x")
        assert registry.names() == []
        with pytest.raises(LambdaError):
            registry.unregister("x")

    def test_failing_lambda_wrapped(self, loaded_bucket):
        registry = LambdaRegistry(loaded_bucket)
        registry.register("boom", lambda raw, args: 1 / 0)
        with pytest.raises(LambdaError, match="boom"):
            registry.get_through(sample_key(0), "boom")

    def test_non_bytes_result_rejected(self, loaded_bucket):
        registry = LambdaRegistry(loaded_bucket)
        registry.register("bad", lambda raw, args: 42)
        with pytest.raises(LambdaError, match="expected bytes"):
            registry.get_through(sample_key(0), "bad")


class TestPreprocessingLambda:
    def test_split_zero_wraps_raw(self, loaded_bucket, materialized_tiny, pipeline):
        registry = LambdaRegistry(loaded_bucket)
        PreprocessingLambda(pipeline, seed=0).install(registry)
        meta = materialized_tiny.raw_meta(0)
        out = registry.get_through(
            sample_key(0),
            PreprocessingLambda.NAME,
            {"sample_id": 0, "epoch": 0, "split": 0,
             "height": meta.height, "width": meta.width},
        )
        response = FetchResponse.from_bytes(out)
        assert response.kind is PayloadKind.ENCODED
        assert response.payload == materialized_tiny.raw_payload(0).data

    def test_offloaded_prefix_matches_rpc_server(
        self, loaded_bucket, materialized_tiny, pipeline
    ):
        from repro.rpc import FetchRequest, StorageServer

        registry = LambdaRegistry(loaded_bucket)
        PreprocessingLambda(pipeline, seed=0).install(registry)
        server = StorageServer(materialized_tiny, pipeline, seed=0)

        meta = materialized_tiny.raw_meta(2)
        via_lambda = registry.get_through(
            sample_key(2),
            PreprocessingLambda.NAME,
            {"sample_id": 2, "epoch": 1, "split": 3,
             "height": meta.height, "width": meta.width},
        )
        via_server = server.serve(FetchRequest(2, 1, 3)).to_bytes()
        assert via_lambda == via_server

    def test_missing_argument(self, loaded_bucket, pipeline):
        registry = LambdaRegistry(loaded_bucket)
        PreprocessingLambda(pipeline).install(registry)
        with pytest.raises(LambdaError, match="missing"):
            registry.get_through(sample_key(0), PreprocessingLambda.NAME, {"split": 1})

    def test_bad_split(self, loaded_bucket, materialized_tiny, pipeline):
        registry = LambdaRegistry(loaded_bucket)
        PreprocessingLambda(pipeline).install(registry)
        meta = materialized_tiny.raw_meta(0)
        with pytest.raises(LambdaError, match="split"):
            registry.get_through(
                sample_key(0), PreprocessingLambda.NAME,
                {"sample_id": 0, "epoch": 0, "split": 9,
                 "height": meta.height, "width": meta.width},
            )


class TestObjectBackedDataset:
    def test_round_trips_through_bucket(self, loaded_bucket, materialized_tiny):
        view = ObjectBackedDataset(loaded_bucket)
        assert len(view) == len(materialized_tiny)
        for sid in range(len(view)):
            assert view.raw_payload(sid).data == materialized_tiny.raw_payload(sid).data
            assert view.raw_meta(sid) == materialized_tiny.raw_meta(sid)

    def test_upload_returns_bytes_written(self, materialized_tiny):
        bucket = Bucket("b")
        written = upload_dataset(materialized_tiny, bucket)
        assert written == materialized_tiny.total_raw_bytes
        assert bucket.total_bytes() == written

    def test_whole_stack_runs_against_bucket(self, loaded_bucket, pipeline):
        """The SOPHON server can serve straight from a bucket view."""
        import numpy as np

        from repro.rpc import InMemoryChannel, StorageClient, StorageServer

        view = ObjectBackedDataset(loaded_bucket)
        server = StorageServer(view, pipeline, seed=0)
        client = StorageClient(InMemoryChannel(server.handle))
        payload = client.fetch(1, 0, 2)
        assert payload.data.shape == (224, 224, 3)

    def test_rejects_non_contiguous_bucket(self):
        bucket = Bucket("holes")
        bucket.put(sample_key(0), b"x", metadata={"height": "4", "width": "4"})
        bucket.put(sample_key(2), b"y", metadata={"height": "4", "width": "4"})
        with pytest.raises(ValueError):
            ObjectBackedDataset(bucket)

    def test_rejects_missing_dim_metadata(self):
        bucket = Bucket("nodims")
        bucket.put(sample_key(0), b"x")
        view = ObjectBackedDataset(bucket)
        with pytest.raises(ValueError):
            view.raw_meta(0)

    def test_upload_rejects_trace_dataset(self, openimages_small):
        with pytest.raises(ValueError):
            upload_dataset(openimages_small, Bucket("b"))

    def test_sample_key_validation(self):
        with pytest.raises(ValueError):
            sample_key(-1)
