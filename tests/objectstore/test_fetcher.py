"""Object-lambda fetcher tests: full training path against the store."""

import numpy as np
import pytest

from repro.data.loader import DataLoader
from repro.objectstore import (
    Bucket,
    LambdaRegistry,
    ObjectBackedDataset,
    ObjectLambdaFetcher,
    PreprocessingLambda,
    upload_dataset,
)
from repro.rpc import InMemoryChannel, StorageClient, StorageServer


@pytest.fixture
def stack(materialized_tiny, pipeline):
    bucket = Bucket("train")
    upload_dataset(materialized_tiny, bucket)
    registry = LambdaRegistry(bucket)
    PreprocessingLambda(pipeline, seed=0).install(registry)
    return bucket, registry, ObjectLambdaFetcher(registry)


class TestObjectLambdaFetcher:
    def test_requires_installed_lambda(self, materialized_tiny):
        bucket = Bucket("b")
        upload_dataset(materialized_tiny, bucket)
        with pytest.raises(ValueError):
            ObjectLambdaFetcher(LambdaRegistry(bucket))

    def test_fetch_matches_rpc_server(self, stack, materialized_tiny, pipeline):
        _, _, fetcher = stack
        server = StorageServer(materialized_tiny, pipeline, seed=0)
        client = StorageClient(InMemoryChannel(server.handle))
        for split in (0, 2, 5):
            via_lambda = fetcher.fetch(1, 0, split)
            via_rpc = client.fetch(1, 0, split)
            if split == 0:
                assert via_lambda.data == via_rpc.data
            else:
                assert np.array_equal(via_lambda.data, via_rpc.data)

    def test_loader_trains_against_the_store(self, stack, materialized_tiny, pipeline):
        bucket, _, fetcher = stack
        view = ObjectBackedDataset(bucket)
        splits = [2 if view.raw_meta(i).nbytes > 150_528 else 0 for i in range(len(view))]
        loader = DataLoader(view, pipeline, fetcher, batch_size=5, splits=splits, seed=0)
        count = 0
        for batch in loader.epoch(0):
            count += len(batch)
            assert batch.tensors.shape[1:] == (3, 224, 224)
        assert count == len(materialized_tiny)
        assert fetcher.traffic_bytes > 0

    def test_traffic_counts_post_lambda_bytes(self, stack):
        _, _, fetcher = stack
        before = fetcher.traffic_bytes
        payload = fetcher.fetch(0, 0, 2)
        from repro.rpc import response_wire_size

        assert fetcher.traffic_bytes - before == response_wire_size(payload.nbytes)

    def test_lambda_invocations_counted(self, stack):
        _, registry, fetcher = stack
        fetcher.fetch(0, 0, 2)
        fetcher.fetch(1, 0, 0)
        assert registry.invocations[PreprocessingLambda.NAME] == 2
