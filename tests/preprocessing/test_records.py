"""SampleRecord tests: min stage, savings, efficiency."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.preprocessing.payload import StageMeta
from repro.preprocessing.pipeline import standard_pipeline
from repro.preprocessing.records import SampleRecord, best_split, build_record

CROP_BYTES = 224 * 224 * 3


def record(sizes, costs=None, sample_id=0):
    if costs is None:
        costs = [0.01] * (len(sizes) - 1)
    return SampleRecord(sample_id=sample_id, stage_sizes=tuple(sizes), op_costs=tuple(costs))


class TestValidation:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SampleRecord(0, (10, 20), (0.1, 0.2))

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            record([10, -1, 5])

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            record([10, 20, 5], costs=[0.1, -0.1])


class TestMinStage:
    def test_raw_smallest(self):
        rec = record([100, 500, 200, 200, 800, 800])
        assert rec.min_stage == 0
        assert rec.min_size == 100
        assert rec.offload_efficiency == 0.0

    def test_intermediate_smallest(self):
        rec = record([400, 900, 150, 150, 600, 600])
        assert rec.min_stage == 2  # tie between 2 and 3 breaks earlier
        assert rec.min_size == 150

    def test_tie_with_raw_prefers_raw(self):
        rec = record([150, 900, 150, 150, 600, 600])
        assert rec.min_stage == 0


class TestCosts:
    def test_prefix_suffix_partition_total(self):
        rec = record([5, 4, 3, 2, 1, 1], costs=[0.1, 0.2, 0.3, 0.4, 0.5])
        for split in range(6):
            assert rec.prefix_cost(split) + rec.suffix_cost(split) == pytest.approx(
                rec.total_cost
            )

    def test_prefix_cost_bounds_checked(self):
        rec = record([5, 4], costs=[0.1])
        with pytest.raises(ValueError):
            rec.prefix_cost(2)
        with pytest.raises(ValueError):
            rec.suffix_cost(-1)


class TestEfficiency:
    def test_efficiency_is_savings_over_prefix_cost(self):
        rec = record([1000, 5000, 400, 400, 1600, 1600], costs=[0.1, 0.1, 0.1, 0.1, 0.1])
        assert rec.min_stage == 2
        assert rec.savings(2) == 600
        assert rec.offload_efficiency == pytest.approx(600 / 0.2)

    def test_zero_cost_prefix_gives_infinite_efficiency(self):
        rec = record([1000, 400], costs=[0.0])
        assert rec.offload_efficiency == float("inf")

    @given(
        raw=st.integers(1, 10_000_000),
        mid=st.integers(1, 10_000_000),
    )
    @settings(max_examples=50, deadline=None)
    def test_efficiency_nonnegative(self, raw, mid):
        rec = record([raw, raw * 3, mid, mid, mid * 4, mid * 4])
        assert rec.offload_efficiency >= 0.0


class TestBuildRecord:
    def test_build_from_pipeline_simulation(self):
        pipe = standard_pipeline()
        meta = StageMeta.for_encoded(300_000, 600, 800)
        rec = build_record(pipe, meta, sample_id=3, seed=0)
        assert rec.sample_id == 3
        assert rec.stage_sizes[0] == 300_000
        assert rec.stage_sizes[2] == CROP_BYTES
        assert rec.min_stage == 2  # raw 300 KB > 147 KB crop
        assert len(rec.op_costs) == 5

    def test_small_sample_prefers_raw(self):
        pipe = standard_pipeline()
        meta = StageMeta.for_encoded(50_000, 300, 400)
        rec = build_record(pipe, meta, sample_id=0, seed=0)
        assert rec.min_stage == 0

    def test_best_split_vectorizes(self):
        pipe = standard_pipeline()
        records = [
            build_record(pipe, StageMeta.for_encoded(nbytes, 600, 800), i, seed=0)
            for i, nbytes in enumerate([50_000, 300_000])
        ]
        assert best_split(records) == [0, 2]


class TestProgressiveRecord:
    def make(self, scan_sizes=(100, 250, 1000), psnrs=(20.0, 35.0, float("inf"))):
        from repro.preprocessing.records import ProgressiveSampleRecord

        sizes = (scan_sizes[-1], 4000, 500, 500, 2000, 2000)
        costs = (0.01,) * 5
        return ProgressiveSampleRecord(
            0, sizes, costs, scan_sizes=scan_sizes, scan_psnr_db=psnrs
        )

    def test_fidelity_accessors(self):
        rec = self.make()
        assert rec.num_scans == 3
        assert rec.size_at_fidelity(1) == 100
        assert rec.size_at_fidelity(3) == rec.raw_size == 1000
        assert rec.psnr_at(2) == 35.0
        assert rec.fidelity_savings(2) == 750

    def test_out_of_range_scan_counts_rejected(self):
        rec = self.make()
        for count in (0, 4):
            with pytest.raises(ValueError):
                rec.size_at_fidelity(count)
            with pytest.raises(ValueError):
                rec.psnr_at(count)

    def test_requires_at_least_one_scan(self):
        from repro.preprocessing.records import ProgressiveSampleRecord

        with pytest.raises(ValueError):
            ProgressiveSampleRecord(
                0,
                (1000, 4000, 500, 500, 2000, 2000),
                (0.01,) * 5,
                scan_sizes=(),
                scan_psnr_db=(),
            )

    def test_psnr_and_size_lengths_must_match(self):
        with pytest.raises(ValueError):
            self.make(psnrs=(20.0, float("inf")))

    def test_sizes_must_strictly_increase(self):
        with pytest.raises(ValueError):
            self.make(scan_sizes=(100, 100, 1000))

    def test_full_prefix_must_equal_raw_stage(self):
        from repro.preprocessing.records import ProgressiveSampleRecord

        with pytest.raises(ValueError):
            ProgressiveSampleRecord(
                0,
                (999, 4000, 500, 500, 2000, 2000),
                (0.01,) * 5,
                scan_sizes=(100, 1000),
                scan_psnr_db=(20.0, float("inf")),
            )

    def test_psnr_must_be_monotone_and_end_at_inf(self):
        with pytest.raises(ValueError):
            self.make(psnrs=(35.0, 20.0, float("inf")))
        with pytest.raises(ValueError):
            self.make(psnrs=(20.0, 35.0, 50.0))
