"""Pipeline composition, split execution, and real/simulated agreement."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec import ToyJpegCodec
from repro.data.synthetic import generate_image
from repro.preprocessing.ops import Decode, Normalize, ToTensor
from repro.preprocessing.payload import Payload, PayloadKind, StageMeta
from repro.preprocessing.pipeline import Pipeline, standard_pipeline


@pytest.fixture
def encoded(rng):
    image = generate_image(rng, 100, 140, texture=0.5)
    return Payload.encoded(ToyJpegCodec().encode(image), height=100, width=140)


class TestConstruction:
    def test_standard_pipeline_has_five_ops(self, pipeline):
        assert len(pipeline) == 5
        assert pipeline.op_names == [
            "Decode",
            "RandomResizedCrop",
            "RandomHorizontalFlip",
            "ToTensor",
            "Normalize",
        ]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Pipeline([])

    def test_rejects_kind_mismatch(self):
        with pytest.raises(ValueError):
            Pipeline([Decode(), Normalize()])  # image -> tensor op gap

    def test_accepts_compatible_sub_chain(self):
        Pipeline([ToTensor(), Normalize()])  # image -> tensor -> tensor


class TestExecution:
    def test_full_run_yields_normalized_tensor(self, pipeline, encoded):
        run = pipeline.run(encoded, seed=0, epoch=0, sample_id=0)
        assert run.payload.kind is PayloadKind.TENSOR_F32
        assert run.payload.data.shape == (3, 224, 224)
        assert len(run.stages) == 5
        assert run.total_cost_s > 0

    def test_stage_sizes_follow_paper_algebra(self, pipeline, encoded):
        sizes = pipeline.stage_sizes(encoded.meta, seed=0, epoch=0, sample_id=0)
        assert sizes[0] == encoded.nbytes
        assert sizes[1] == 100 * 140 * 3  # decode
        assert sizes[2] == 224 * 224 * 3  # crop
        assert sizes[3] == sizes[2]  # flip
        assert sizes[4] == 4 * sizes[2]  # to-tensor
        assert sizes[5] == sizes[4]  # normalize

    def test_split_execution_identical_to_full(self, pipeline, encoded):
        full = pipeline.run(encoded, seed=3, epoch=2, sample_id=9)
        for split in range(0, 6):
            head = pipeline.run(encoded, seed=3, epoch=2, sample_id=9, stop=split)
            head_payload = head.payload if split > 0 else encoded
            tail = pipeline.run(
                head_payload, seed=3, epoch=2, sample_id=9, start=split
            )
            assert np.array_equal(tail.payload.data, full.payload.data), split

    def test_simulate_agrees_with_run_exactly(self, pipeline, encoded):
        real = pipeline.run(encoded, seed=1, epoch=4, sample_id=7)
        sim = pipeline.simulate(encoded.meta, seed=1, epoch=4, sample_id=7)
        for r, s in zip(real.stages, sim.stages):
            assert r.out_meta.nbytes == s.out_meta.nbytes
            assert r.cost_s == pytest.approx(s.cost_s, abs=0.0)
            assert r.params == s.params

    def test_different_epochs_draw_different_augmentations(self, pipeline, encoded):
        run_a = pipeline.simulate(encoded.meta, seed=0, epoch=0, sample_id=0)
        run_b = pipeline.simulate(encoded.meta, seed=0, epoch=1, sample_id=0)
        params_a = run_a.stages[1].params
        params_b = run_b.stages[1].params
        assert params_a != params_b  # crop geometry reshuffles per epoch

    def test_same_key_is_deterministic(self, pipeline, encoded):
        run_a = pipeline.simulate(encoded.meta, seed=0, epoch=3, sample_id=5)
        run_b = pipeline.simulate(encoded.meta, seed=0, epoch=3, sample_id=5)
        assert [s.params for s in run_a.stages] == [s.params for s in run_b.stages]

    def test_rejects_bad_ranges(self, pipeline, encoded):
        with pytest.raises(ValueError):
            pipeline.run(encoded, seed=0, epoch=0, sample_id=0, start=3, stop=2)
        with pytest.raises(ValueError):
            pipeline.run(encoded, seed=0, epoch=0, sample_id=0, stop=6)

    @given(split=st.integers(0, 5), epoch=st.integers(0, 3))
    @settings(max_examples=12, deadline=None)
    def test_split_size_invariant(self, split, epoch):
        pipe = standard_pipeline()
        meta = StageMeta.for_encoded(300_000, 600, 800)
        head = pipe.simulate(meta, seed=0, epoch=epoch, sample_id=1, stop=split)
        tail = pipe.simulate(
            head.out_meta if split else meta,
            seed=0, epoch=epoch, sample_id=1, start=split,
        )
        full = pipe.simulate(meta, seed=0, epoch=epoch, sample_id=1)
        assert tail.out_meta.nbytes == full.out_meta.nbytes
        assert head.total_cost_s + tail.total_cost_s == pytest.approx(full.total_cost_s)
