"""Individual preprocessing op tests: real path vs simulated path."""

import numpy as np
import pytest

from repro.codec import ToyJpegCodec
from repro.data.synthetic import generate_image
from repro.preprocessing.ops import (
    Decode,
    Normalize,
    RandomHorizontalFlip,
    RandomResizedCrop,
    ToTensor,
)
from repro.preprocessing.payload import Payload, PayloadKind, StageMeta


@pytest.fixture
def image_payload(rng):
    return Payload.image(generate_image(rng, 60, 80, texture=0.4))


@pytest.fixture
def encoded_payload(rng):
    image = generate_image(rng, 60, 80, texture=0.4)
    return Payload.encoded(ToyJpegCodec().encode(image), height=60, width=80)


class TestDecode:
    def test_produces_uint8_image_of_recorded_dims(self, encoded_payload):
        out = Decode().apply(encoded_payload, {})
        assert out.kind is PayloadKind.IMAGE_U8
        assert out.data.shape == (60, 80, 3)

    def test_simulate_matches_apply_size(self, encoded_payload):
        op = Decode()
        real = op.apply(encoded_payload, {})
        sim = op.simulate(encoded_payload.meta, {})
        assert sim.nbytes == real.nbytes

    def test_rejects_wrong_input_kind(self, image_payload):
        with pytest.raises(TypeError):
            Decode().apply(image_payload, {})

    def test_grayscale_promoted_to_three_channels(self, rng):
        gray = rng.integers(0, 256, size=(24, 24), dtype=np.uint8)
        payload = Payload.encoded(ToyJpegCodec().encode(gray), height=24, width=24)
        out = Decode().apply(payload, {})
        assert out.data.shape == (24, 24, 3)

    def test_cost_charged_on_output_pixels(self):
        op = Decode()
        in_meta = StageMeta.for_encoded(1000, 60, 80)
        out_meta = StageMeta.for_image(60, 80)
        assert op.work_pixels(in_meta, out_meta, {}) == (0, 60 * 80)


class TestRandomResizedCrop:
    def test_output_always_target_size(self, image_payload, rng):
        op = RandomResizedCrop(size=32)
        params = op.draw_params(rng, image_payload.meta)
        out = op.apply(image_payload, params)
        assert out.data.shape == (32, 32, 3)

    def test_params_always_within_image(self, rng):
        op = RandomResizedCrop(size=16)
        meta = StageMeta.for_image(40, 30)
        for _ in range(200):
            params = op.draw_params(rng, meta)
            assert 0 <= params["top"] <= 40 - params["crop_h"]
            assert 0 <= params["left"] <= 30 - params["crop_w"]
            assert params["crop_h"] >= 1 and params["crop_w"] >= 1

    def test_crop_areas_span_scale_range(self, rng):
        op = RandomResizedCrop(size=16, scale=(0.08, 1.0))
        meta = StageMeta.for_image(100, 100)
        fractions = []
        for _ in range(300):
            params = op.draw_params(rng, meta)
            fractions.append(params["crop_h"] * params["crop_w"] / 10_000)
        assert min(fractions) < 0.3
        assert max(fractions) > 0.6

    def test_tiny_image_uses_fallback(self, rng):
        op = RandomResizedCrop(size=224)
        meta = StageMeta.for_image(2, 2)
        params = op.draw_params(rng, meta)
        assert params["crop_h"] >= 1 and params["crop_w"] >= 1

    def test_extreme_aspect_fallback_respects_ratio_bounds(self, rng):
        op = RandomResizedCrop(size=16, scale=(0.99, 1.0))
        meta = StageMeta.for_image(10, 1000)  # aspect 100, far above 4/3
        params = {"crop_h": 0, "crop_w": 0}
        # Force fallback by exhausting attempts: wide aspect rejects most draws.
        for _ in range(20):
            params = op.draw_params(rng, meta)
        assert params["crop_w"] <= 1000 and params["crop_h"] <= 10

    def test_simulate_size_is_target(self, rng):
        op = RandomResizedCrop(size=224)
        meta = StageMeta.for_image(480, 640)
        params = op.draw_params(rng, meta)
        assert op.simulate(meta, params).nbytes == 224 * 224 * 3

    def test_upscales_small_images(self, rng):
        small = Payload.image(np.full((8, 8, 3), 50, dtype=np.uint8))
        op = RandomResizedCrop(size=64)
        params = op.draw_params(rng, small.meta)
        assert op.apply(small, params).data.shape == (64, 64, 3)

    @pytest.mark.parametrize("kwargs", [
        {"size": 0},
        {"scale": (0.0, 1.0)},
        {"scale": (0.9, 0.1)},
        {"ratio": (2.0, 1.0)},
    ])
    def test_validates_constructor_args(self, kwargs):
        with pytest.raises(ValueError):
            RandomResizedCrop(**kwargs)


class TestRandomHorizontalFlip:
    def test_flip_reverses_columns(self, image_payload):
        op = RandomHorizontalFlip()
        flipped = op.apply(image_payload, {"flip": True})
        assert np.array_equal(flipped.data, image_payload.data[:, ::-1])

    def test_no_flip_passthrough(self, image_payload):
        op = RandomHorizontalFlip()
        out = op.apply(image_payload, {"flip": False})
        assert np.array_equal(out.data, image_payload.data)

    def test_flip_probability_roughly_respected(self, rng):
        op = RandomHorizontalFlip(p=0.25)
        meta = StageMeta.for_image(4, 4)
        flips = sum(op.draw_params(rng, meta)["flip"] for _ in range(2000))
        assert 400 < flips < 600

    def test_p_zero_never_flips(self, rng):
        op = RandomHorizontalFlip(p=0.0)
        meta = StageMeta.for_image(4, 4)
        assert not any(op.draw_params(rng, meta)["flip"] for _ in range(50))

    def test_size_unchanged(self, image_payload):
        op = RandomHorizontalFlip()
        assert op.simulate(image_payload.meta, {"flip": True}).nbytes == image_payload.nbytes

    def test_validates_probability(self):
        with pytest.raises(ValueError):
            RandomHorizontalFlip(p=1.5)

    def test_no_flip_costs_nothing(self):
        op = RandomHorizontalFlip()
        meta = StageMeta.for_image(10, 10)
        assert op.work_pixels(meta, meta, {"flip": False}) == (0, 0)


class TestToTensor:
    def test_scales_to_unit_range_chw(self, image_payload):
        out = ToTensor().apply(image_payload, {})
        assert out.kind is PayloadKind.TENSOR_F32
        assert out.data.shape == (3, 60, 80)
        assert 0.0 <= out.data.min() and out.data.max() <= 1.0

    def test_values_exact(self):
        image = Payload.image(np.array([[[255, 0, 127]]], dtype=np.uint8))
        out = ToTensor().apply(image, {})
        assert out.data[0, 0, 0] == pytest.approx(1.0)
        assert out.data[1, 0, 0] == pytest.approx(0.0)
        assert out.data[2, 0, 0] == pytest.approx(127 / 255)

    def test_quadruples_bytes(self, image_payload):
        out = ToTensor().apply(image_payload, {})
        assert out.nbytes == 4 * image_payload.nbytes

    def test_simulate_matches(self, image_payload):
        op = ToTensor()
        assert op.simulate(image_payload.meta, {}).nbytes == op.apply(image_payload, {}).nbytes


class TestNormalize:
    def test_normalizes_channelwise(self):
        tensor = Payload.tensor(np.full((3, 2, 2), 0.5, dtype=np.float32))
        op = Normalize(mean=(0.5, 0.25, 0.0), std=(1.0, 0.5, 0.25))
        out = op.apply(tensor, {})
        assert np.allclose(out.data[0], 0.0)
        assert np.allclose(out.data[1], 0.5)
        assert np.allclose(out.data[2], 2.0)

    def test_size_unchanged(self):
        tensor = Payload.tensor(np.zeros((3, 5, 5), dtype=np.float32))
        op = Normalize()
        assert op.apply(tensor, {}).nbytes == tensor.nbytes
        assert op.simulate(tensor.meta, {}).nbytes == tensor.nbytes

    def test_validates_zero_std(self):
        with pytest.raises(ValueError):
            Normalize(std=(0.0, 1.0, 1.0))

    def test_validates_length_mismatch(self):
        with pytest.raises(ValueError):
            Normalize(mean=(0.5,), std=(1.0, 1.0))

    def test_channel_count_mismatch_raises(self):
        tensor = Payload.tensor(np.zeros((1, 4, 4), dtype=np.float32))
        with pytest.raises(ValueError):
            Normalize().apply(tensor, {})
