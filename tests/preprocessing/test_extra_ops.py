"""Extra op library tests: validation + augmented pipelines."""

import numpy as np
import pytest

from repro.data.synthetic import generate_image
from repro.preprocessing.extra_ops import (
    CenterCrop,
    ColorJitter,
    RandomGrayscale,
    Resize,
    augmented_training_pipeline,
    cost_model_with_extras,
    validation_pipeline,
)
from repro.preprocessing.payload import Payload, PayloadKind, StageMeta


@pytest.fixture
def image_payload(rng):
    return Payload.image(generate_image(rng, 300, 500, texture=0.4))


class TestResize:
    def test_shorter_side_hits_target(self, image_payload):
        out = Resize(256).apply(image_payload, {})
        assert out.data.shape[0] == 256  # height was the shorter side
        assert out.data.shape[1] == round(500 * 256 / 300)

    def test_portrait_orientation(self, rng):
        tall = Payload.image(generate_image(rng, 500, 300, texture=0.2))
        out = Resize(256).apply(tall, {})
        assert out.data.shape[1] == 256

    def test_simulate_matches_apply(self, image_payload):
        op = Resize(256)
        assert op.simulate(image_payload.meta, {}).nbytes == op.apply(
            image_payload, {}
        ).nbytes

    def test_square_input(self, rng):
        square = Payload.image(generate_image(rng, 100, 100, texture=0.2))
        out = Resize(50).apply(square, {})
        assert out.data.shape[:2] == (50, 50)

    def test_validates_size(self):
        with pytest.raises(ValueError):
            Resize(0)


class TestCenterCrop:
    def test_crops_center(self):
        image = np.zeros((10, 10, 3), dtype=np.uint8)
        image[4:6, 4:6] = 255
        out = CenterCrop(2).apply(Payload.image(image), {})
        assert (out.data == 255).all()

    def test_pads_small_images(self, rng):
        small = Payload.image(generate_image(rng, 100, 100, texture=0.2))
        out = CenterCrop(224).apply(small, {})
        assert out.data.shape == (224, 224, 3)

    def test_simulate_always_square(self, image_payload):
        assert CenterCrop(224).simulate(image_payload.meta, {}).nbytes == 224 * 224 * 3


class TestColorJitter:
    def test_output_shape_unchanged(self, image_payload, rng):
        op = ColorJitter()
        params = op.draw_params(rng, image_payload.meta)
        out = op.apply(image_payload, params)
        assert out.data.shape == image_payload.data.shape
        assert out.data.dtype == np.uint8

    def test_identity_at_unit_factors(self, image_payload):
        out = ColorJitter().apply(
            image_payload, {"brightness": 1.0, "contrast": 1.0}
        )
        assert np.array_equal(out.data, image_payload.data)

    def test_brightness_shifts_mean(self, image_payload):
        op = ColorJitter()
        dim = op.apply(image_payload, {"brightness": 0.6, "contrast": 1.0})
        assert dim.data.mean() < image_payload.data.mean()

    def test_validates_ranges(self):
        with pytest.raises(ValueError):
            ColorJitter(brightness=1.0)


class TestRandomGrayscale:
    def test_grayscale_equalizes_channels(self, image_payload):
        out = RandomGrayscale().apply(image_payload, {"grayscale": True})
        assert np.array_equal(out.data[..., 0], out.data[..., 1])
        assert np.array_equal(out.data[..., 1], out.data[..., 2])
        assert out.data.shape == image_payload.data.shape

    def test_passthrough(self, image_payload):
        out = RandomGrayscale().apply(image_payload, {"grayscale": False})
        assert np.array_equal(out.data, image_payload.data)

    def test_probability(self, rng):
        op = RandomGrayscale(p=0.5)
        meta = StageMeta.for_image(4, 4)
        hits = sum(op.draw_params(rng, meta)["grayscale"] for _ in range(1000))
        assert 400 < hits < 600


class TestPipelines:
    def test_validation_pipeline_runs_end_to_end(self, rng):
        from repro.codec import ToyJpegCodec

        image = generate_image(rng, 300, 400, texture=0.4)
        payload = Payload.encoded(ToyJpegCodec().encode(image), height=300, width=400)
        pipe = validation_pipeline()
        run = pipe.run(payload, seed=0, epoch=0, sample_id=0)
        assert run.payload.data.shape == (3, 224, 224)
        assert run.payload.kind is PayloadKind.TENSOR_F32

    def test_validation_pipeline_is_deterministic_across_epochs(self):
        pipe = validation_pipeline()
        meta = StageMeta.for_encoded(300_000, 600, 800)
        a = pipe.simulate(meta, seed=0, epoch=0, sample_id=0)
        b = pipe.simulate(meta, seed=0, epoch=5, sample_id=0)
        assert [s.out_meta.nbytes for s in a.stages] == [
            s.out_meta.nbytes for s in b.stages
        ]
        assert [s.cost_s for s in a.stages] == [s.cost_s for s in b.stages]

    def test_validation_stage_sizes(self):
        pipe = validation_pipeline()
        meta = StageMeta.for_encoded(300_000, 600, 800)
        sizes = pipe.stage_sizes(meta, seed=0, epoch=0, sample_id=0)
        # decode -> resize(shorter=256) -> centercrop(224) -> tensor
        assert sizes[1] == 600 * 800 * 3
        assert sizes[2] == 256 * round(800 * 256 / 600) * 3
        assert sizes[3] == 224 * 224 * 3
        assert sizes[4] == 224 * 224 * 3 * 4

    def test_augmented_pipeline_runs_end_to_end(self, rng):
        from repro.codec import ToyJpegCodec

        image = generate_image(rng, 200, 260, texture=0.5)
        payload = Payload.encoded(ToyJpegCodec().encode(image), height=200, width=260)
        pipe = augmented_training_pipeline()
        run = pipe.run(payload, seed=1, epoch=0, sample_id=3)
        assert run.payload.data.shape == (3, 224, 224)
        assert len(run.stages) == 7

    def test_cost_model_covers_all_ops(self):
        model = cost_model_with_extras()
        for name in ("Decode", "Resize", "CenterCrop", "ColorJitter",
                     "RandomGrayscale", "ToTensor", "Normalize"):
            assert model.op_seconds(name, 1000, 1000) > 0

    def test_sophon_plans_on_validation_pipeline(self, openimages_small):
        """SOPHON's machinery is pipeline-agnostic: the deterministic
        validation transform offloads the same way."""
        from repro.cluster.spec import standard_cluster
        from repro.core.policy import PolicyContext
        from repro.core.sophon import Sophon
        from repro.workloads.models import get_model_profile

        context = PolicyContext(
            dataset=openimages_small,
            pipeline=validation_pipeline(),
            spec=standard_cluster(storage_cores=48),
            model=get_model_profile("alexnet"),
            batch_size=64,
            seed=0,
        )
        plan = Sophon().plan(context)
        assert plan.num_offloaded > 0
        # Minimum is after CenterCrop (stage 3) for shrinking samples.
        histogram = plan.split_histogram()
        assert set(histogram) <= {0, 3}
