"""Payload and StageMeta tests."""

import numpy as np
import pytest

from repro.preprocessing.payload import Payload, PayloadKind, StageMeta


class TestStageMeta:
    def test_encoded_meta_carries_size_and_dims(self):
        meta = StageMeta.for_encoded(1000, 480, 640)
        assert meta.kind is PayloadKind.ENCODED
        assert meta.nbytes == 1000
        assert meta.pixels == 480 * 640

    def test_image_meta_size_is_hwc(self):
        meta = StageMeta.for_image(224, 224)
        assert meta.nbytes == 224 * 224 * 3

    def test_tensor_meta_size_is_4x_image(self):
        image = StageMeta.for_image(224, 224)
        tensor = StageMeta.for_tensor(224, 224)
        assert tensor.nbytes == 4 * image.nbytes

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            StageMeta(PayloadKind.ENCODED, -1, 10, 10)

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            StageMeta(PayloadKind.ENCODED, 10, 0, 10)

    def test_bytes_per_value(self):
        assert PayloadKind.TENSOR_F32.bytes_per_value == 4
        assert PayloadKind.IMAGE_U8.bytes_per_value == 1
        assert PayloadKind.ENCODED.bytes_per_value == 1


class TestPayload:
    def test_encoded_nbytes_is_stream_length(self):
        payload = Payload.encoded(b"\x00" * 123, height=10, width=10)
        assert payload.nbytes == 123
        assert payload.meta.kind is PayloadKind.ENCODED
        assert payload.meta.height == 10

    def test_image_payload_meta(self):
        array = np.zeros((8, 6, 3), dtype=np.uint8)
        payload = Payload.image(array)
        assert payload.nbytes == 8 * 6 * 3
        meta = payload.meta
        assert (meta.height, meta.width, meta.channels) == (8, 6, 3)

    def test_tensor_payload_meta(self):
        array = np.zeros((3, 8, 6), dtype=np.float32)
        payload = Payload.tensor(array)
        assert payload.nbytes == 3 * 8 * 6 * 4
        meta = payload.meta
        assert (meta.height, meta.width, meta.channels) == (8, 6, 3)
        assert meta.kind is PayloadKind.TENSOR_F32

    def test_image_constructor_validates_dtype(self):
        with pytest.raises(ValueError):
            Payload.image(np.zeros((4, 4, 3), dtype=np.float32))

    def test_tensor_constructor_validates_dtype(self):
        with pytest.raises(ValueError):
            Payload.tensor(np.zeros((3, 4, 4), dtype=np.float64))

    def test_image_constructor_validates_rank(self):
        with pytest.raises(ValueError):
            Payload.image(np.zeros((4, 4), dtype=np.uint8))
