"""Bilinear resize tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.preprocessing.resize import resize_bilinear


class TestResize:
    def test_identity_when_size_unchanged(self, rng):
        image = rng.integers(0, 256, size=(10, 12, 3), dtype=np.uint8)
        out = resize_bilinear(image, 10, 12)
        assert np.array_equal(out, image)
        assert out is not image  # a copy, not an alias

    def test_output_shape_color(self, rng):
        image = rng.integers(0, 256, size=(100, 50, 3), dtype=np.uint8)
        assert resize_bilinear(image, 224, 224).shape == (224, 224, 3)

    def test_output_shape_grayscale(self, rng):
        image = rng.integers(0, 256, size=(30, 40), dtype=np.uint8)
        assert resize_bilinear(image, 7, 9).shape == (7, 9)

    def test_constant_image_stays_constant(self):
        image = np.full((13, 17, 3), 99, dtype=np.uint8)
        out = resize_bilinear(image, 224, 224)
        assert (out == 99).all()

    def test_preserves_dtype(self, rng):
        image = rng.integers(0, 256, size=(10, 10, 3), dtype=np.uint8)
        assert resize_bilinear(image, 5, 5).dtype == np.uint8
        imagef = rng.uniform(size=(10, 10)).astype(np.float32)
        assert resize_bilinear(imagef, 5, 5).dtype == np.float32

    def test_upscale_interpolates_between_values(self):
        image = np.array([[0.0, 100.0]])
        out = resize_bilinear(image, 1, 4)
        assert out[0, 0] <= out[0, 1] <= out[0, 2] <= out[0, 3]
        assert out[0, 1] > 0.0 and out[0, 2] < 100.0

    def test_downscale_mean_roughly_preserved(self, rng):
        image = rng.uniform(0, 255, size=(64, 64)).astype(np.float64)
        out = resize_bilinear(image, 16, 16)
        assert abs(out.mean() - image.mean()) < 10.0

    def test_values_stay_in_input_range(self, rng):
        image = rng.integers(0, 256, size=(9, 9, 3), dtype=np.uint8)
        out = resize_bilinear(image, 31, 31)
        assert out.min() >= image.min()
        assert out.max() <= image.max()

    def test_rejects_bad_output_size(self, rng):
        image = rng.integers(0, 256, size=(4, 4), dtype=np.uint8)
        with pytest.raises(ValueError):
            resize_bilinear(image, 0, 5)

    @given(
        in_h=st.integers(1, 32),
        in_w=st.integers(1, 32),
        out_h=st.integers(1, 48),
        out_w=st.integers(1, 48),
    )
    @settings(max_examples=30, deadline=None)
    def test_shape_property(self, in_h, in_w, out_h, out_w):
        image = np.zeros((in_h, in_w, 3), dtype=np.uint8)
        assert resize_bilinear(image, out_h, out_w).shape == (out_h, out_w, 3)
