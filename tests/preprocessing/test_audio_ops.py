"""Audio pipeline tests: the second workload domain."""

import numpy as np
import pytest

from repro.data.audio import SyntheticAudioDataset, make_audio_trace
from repro.preprocessing.audio_ops import (
    DecodeAudio,
    MelSpectrogram,
    NormalizeSpectrogram,
    audio_pipeline,
)
from repro.preprocessing.payload import Payload, PayloadKind, StageMeta


@pytest.fixture(scope="module")
def audio_dataset():
    return SyntheticAudioDataset(6, seed=2, duration_s=(0.5, 3.0))


@pytest.fixture(scope="module")
def pipe():
    return audio_pipeline()


class TestDecodeAudio:
    def test_decodes_to_unit_range_pcm(self, audio_dataset):
        out = DecodeAudio().apply(audio_dataset.raw_payload(0), {})
        assert out.kind is PayloadKind.TENSOR_F32
        assert out.data.shape[0] == 1 and out.data.shape[1] == 1
        assert np.abs(out.data).max() <= 1.0

    def test_simulate_matches_apply(self, audio_dataset):
        op = DecodeAudio()
        payload = audio_dataset.raw_payload(1)
        assert op.simulate(payload.meta, {}).nbytes == op.apply(payload, {}).nbytes


class TestMelSpectrogram:
    def test_output_shape(self):
        op = MelSpectrogram(n_fft=512, hop=256, n_mels=32)
        signal = Payload.tensor(
            np.random.default_rng(0).uniform(-1, 1, size=(1, 1, 4096)).astype(np.float32)
        )
        out = op.apply(signal, {})
        assert out.data.shape == (1, 32, op.num_frames(4096))

    def test_short_signal_padded_to_one_frame(self):
        op = MelSpectrogram(n_fft=512, hop=256, n_mels=16)
        signal = Payload.tensor(np.zeros((1, 1, 100), dtype=np.float32))
        assert op.apply(signal, {}).data.shape == (1, 16, 1)

    def test_pure_tone_concentrates_energy(self):
        rate = 16_000
        t = np.arange(rate) / rate
        tone = np.sin(2 * np.pi * 440.0 * t).astype(np.float32)
        op = MelSpectrogram(sample_rate=rate)
        features = op.apply(Payload.tensor(tone.reshape(1, 1, -1)), {}).data[0]
        profile = features.mean(axis=1)
        # The strongest mel bin should dwarf the quietest.
        assert profile.max() > 10 * (profile.min() + 1e-6)

    def test_spectrogram_shrinks_long_clips(self, audio_dataset, pipe):
        payload = audio_dataset.raw_payload(0)
        run = pipe.run(payload, seed=0, epoch=0, sample_id=0)
        pcm_bytes = run.stages[0].out_meta.nbytes
        spec_bytes = run.stages[1].out_meta.nbytes
        assert spec_bytes < pcm_bytes / 3

    def test_validates_construction(self):
        with pytest.raises(ValueError):
            MelSpectrogram(n_fft=1000)  # not a power of two
        with pytest.raises(ValueError):
            MelSpectrogram(hop=0)
        with pytest.raises(ValueError):
            MelSpectrogram(n_mels=0)


class TestNormalizeSpectrogram:
    def test_zero_mean_unit_std_per_bin(self):
        rng = np.random.default_rng(3)
        features = Payload.tensor(
            rng.uniform(0, 5, size=(1, 8, 200)).astype(np.float32)
        )
        out = NormalizeSpectrogram().apply(features, {}).data[0]
        assert np.allclose(out.mean(axis=1), 0.0, atol=1e-4)
        assert np.allclose(out.std(axis=1), 1.0, atol=1e-2)


class TestAudioPipeline:
    def test_real_and_simulated_agree(self, audio_dataset, pipe):
        for sid in range(3):
            payload = audio_dataset.raw_payload(sid)
            real = pipe.run(payload, seed=0, epoch=0, sample_id=sid)
            sim = pipe.simulate(payload.meta, seed=0, epoch=0, sample_id=sid)
            assert [s.out_meta.nbytes for s in real.stages] == [
                s.out_meta.nbytes for s in sim.stages
            ]
            assert real.total_cost_s == pytest.approx(sim.total_cost_s)

    def test_min_stage_is_the_spectrogram(self, pipe):
        trace = make_audio_trace(100, seed=1)
        from repro.core.profiler import StageTwoProfiler

        records = StageTwoProfiler().profile(trace, pipe)
        assert all(r.min_stage == 2 for r in records)
        assert all(r.offload_efficiency > 0 for r in records)

    def test_sophon_offloads_the_feature_frontend(self, pipe):
        from repro.cluster.spec import standard_cluster
        from repro.core.policy import PolicyContext
        from repro.core.sophon import Sophon
        from repro.workloads.models import get_model_profile

        trace = make_audio_trace(300, seed=4)
        context = PolicyContext(
            dataset=trace,
            pipeline=pipe,
            spec=standard_cluster(storage_cores=8, bandwidth_mbps=100.0),
            model=get_model_profile("alexnet"),
            batch_size=32,
            seed=0,
        )
        plan = Sophon().plan(context)
        assert plan.num_offloaded == len(trace)
        assert set(plan.split_histogram()) == {2}

    def test_rpc_path_carries_spectrograms(self, audio_dataset, pipe):
        from repro.rpc import InMemoryChannel, StorageClient, StorageServer

        server = StorageServer(audio_dataset, pipe, seed=0)
        client = StorageClient(InMemoryChannel(server.handle))
        local = pipe.run(
            audio_dataset.raw_payload(2), seed=0, epoch=0, sample_id=2
        ).payload.data
        fetched = client.fetch(2, 0, 2)
        finished = pipe.run(
            fetched, seed=0, epoch=0, sample_id=2, start=2
        ).payload.data
        assert np.allclose(finished, local)
