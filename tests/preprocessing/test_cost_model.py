"""Cost model tests."""

import pytest

from repro.preprocessing.cost_model import (
    CostModel,
    DEFAULT_COST_MODEL,
    DEFAULT_OP_COSTS,
    OpCost,
    calibrate,
)


class TestOpCost:
    def test_affine_formula(self):
        cost = OpCost(fixed_ns=1000, ns_per_input_pixel=2, ns_per_output_pixel=3)
        assert cost.seconds(10, 20) == pytest.approx((1000 + 20 + 60) * 1e-9)

    def test_zero_work_costs_fixed_only(self):
        cost = OpCost(fixed_ns=500)
        assert cost.seconds(0, 0) == pytest.approx(5e-7)


class TestCostModel:
    def test_default_covers_all_five_ops(self):
        for name in ("Decode", "RandomResizedCrop", "RandomHorizontalFlip",
                     "ToTensor", "Normalize"):
            assert DEFAULT_COST_MODEL.op_seconds(name, 1000, 1000) > 0

    def test_decode_dominates_the_pipeline(self):
        pixels = 1_000_000
        decode = DEFAULT_COST_MODEL.op_seconds("Decode", 0, pixels)
        others = sum(
            DEFAULT_COST_MODEL.op_seconds(name, 0, 224 * 224)
            for name in ("RandomHorizontalFlip", "ToTensor", "Normalize")
        )
        assert decode > 3 * others

    def test_unknown_op_raises_with_known_names(self):
        with pytest.raises(KeyError, match="Decode"):
            DEFAULT_COST_MODEL.op_seconds("Blur", 10, 10)

    def test_speed_factor_scales_costs(self):
        slow = DEFAULT_COST_MODEL.scaled(2.0)
        assert slow.op_seconds("Decode", 0, 1000) == pytest.approx(
            2.0 * DEFAULT_COST_MODEL.op_seconds("Decode", 0, 1000)
        )

    def test_rejects_nonpositive_factor(self):
        with pytest.raises(ValueError):
            CostModel(cpu_speed_factor=0.0)

    def test_scaled_preserves_table(self):
        slow = DEFAULT_COST_MODEL.scaled(3.0)
        assert slow.op_costs == DEFAULT_COST_MODEL.op_costs


class TestCalibration:
    def test_calibrate_produces_positive_rates_for_all_ops(self):
        table = calibrate(image_side=64, repeats=1)
        assert set(table) == set(DEFAULT_OP_COSTS)
        for name, cost in table.items():
            total = cost.fixed_ns + cost.ns_per_input_pixel + cost.ns_per_output_pixel
            assert total > 0, name

    def test_calibrated_table_usable_in_model(self):
        model = CostModel(calibrate(image_side=64, repeats=1))
        assert model.op_seconds("Decode", 0, 64 * 64) > 0
