"""ISSUE-4 telemetry satellites: the fetch histogram and CLI replay."""

import pytest

from repro.cli import main as cli_main
from repro.rpc.retry import FetchFailedError, RetryingClient
from repro.telemetry.registry import MetricsRegistry, use_registry


class FlakyFetcher:
    def __init__(self, failures: int) -> None:
        self.failures = failures
        self.calls = 0

    def fetch(self, sample_id, epoch, split):
        self.calls += 1
        if self.calls <= self.failures:
            raise ConnectionError("simulated transport failure")
        return object()


def _series(registry, metric_name):
    snapshot = registry.snapshot()
    return {
        key: value for key, value in snapshot.series.items() if key[0] == metric_name
    }


def test_fetch_histogram_observes_success():
    registry = MetricsRegistry()
    clock = iter(float(i) for i in range(100))
    with use_registry(registry):
        client = RetryingClient(
            FlakyFetcher(failures=1),
            sleep=lambda _: None,
            clock=lambda: next(clock),
        )
        client.fetch(0, epoch=1, split=2)
    series = _series(registry, "rpc_fetch_seconds")
    assert len(series) == 1
    ((_, labels),) = series.keys()
    assert labels == (("outcome", "ok"),)
    (histogram,) = series.values()
    assert histogram.count == 1
    assert histogram.sum > 0  # latency covers the failed attempt + retry


def test_fetch_histogram_observes_failure():
    registry = MetricsRegistry()
    clock = iter(float(i) for i in range(100))
    with use_registry(registry):
        client = RetryingClient(
            FlakyFetcher(failures=99),
            max_attempts=2,
            sleep=lambda _: None,
            clock=lambda: next(clock),
        )
        with pytest.raises(FetchFailedError):
            client.fetch(0, epoch=1, split=0)
    series = _series(registry, "rpc_fetch_seconds")
    ((_, labels),) = series.keys()
    assert labels == (("outcome", "exhausted"),)  # attempts spent, not shed
    (histogram,) = series.values()
    assert histogram.count == 1


@pytest.fixture
def telemetry_log(tmp_path):
    """A real chaos-telemetry JSONL export to replay."""
    from repro.data.catalog import make_openimages
    from repro.harness.chaos import run_chaos, write_chaos_telemetry

    report = run_chaos(
        make_openimages(num_samples=40, seed=7),
        seed=7,
        telemetry=True,
        parallel="vectorized",
    )
    paths = write_chaos_telemetry(report, str(tmp_path))
    (log,) = [p for p in paths if p.endswith("chaos.telemetry.jsonl")]
    return log


def test_replay_summarizes_log(telemetry_log, capsys):
    assert cli_main(["replay", telemetry_log]) == 0
    out = capsys.readouterr().out
    assert "metric series" in out
    assert "audit" in out
    assert "decision_outcomes_total" in out


def test_replay_explains_sample(telemetry_log, capsys):
    assert cli_main(["replay", telemetry_log, "--sample", "1"]) == 0
    out = capsys.readouterr().out
    assert "sample 1:" in out
    assert "candidate splits" in out


def test_replay_unknown_sample_fails(telemetry_log):
    with pytest.raises(SystemExit):
        cli_main(["replay", telemetry_log, "--sample", "999999"])


def test_replay_missing_file_fails(tmp_path):
    with pytest.raises(SystemExit):
        cli_main(["replay", str(tmp_path / "nope.jsonl")])
