"""Record-cache keying: content fingerprints, LRU behaviour, sharing."""

import pytest

from repro.cluster.spec import standard_cluster
from repro.core.policy import PolicyContext
from repro.data.catalog import make_openimages
from repro.parallel import (
    RecordCache,
    build_records,
    dataset_fingerprint,
    pipeline_fingerprint,
    record_key,
)
from repro.preprocessing.cost_model import CostModel
from repro.preprocessing.pipeline import standard_pipeline
from repro.workloads.models import get_model_profile


def test_identically_configured_pipelines_share_a_fingerprint():
    assert pipeline_fingerprint(standard_pipeline()) == pipeline_fingerprint(
        standard_pipeline()
    )


def test_pipeline_config_changes_fingerprint():
    assert pipeline_fingerprint(standard_pipeline()) != pipeline_fingerprint(
        standard_pipeline(crop_size=192)
    )


def test_cost_model_changes_fingerprint():
    pipeline = standard_pipeline()
    assert pipeline_fingerprint(pipeline) != pipeline_fingerprint(
        pipeline, CostModel(cpu_speed_factor=3.0)
    )


def test_dataset_fingerprint_keys_on_content():
    a = make_openimages(num_samples=100, seed=7)
    same = make_openimages(num_samples=100, seed=7)
    different_seed = make_openimages(num_samples=100, seed=8)
    different_size = make_openimages(num_samples=101, seed=7)
    assert dataset_fingerprint(a) == dataset_fingerprint(same)
    assert dataset_fingerprint(a) != dataset_fingerprint(different_seed)
    assert dataset_fingerprint(a) != dataset_fingerprint(different_size)


def test_record_key_separates_seed_and_epoch():
    dataset = make_openimages(num_samples=50, seed=7)
    pipeline = standard_pipeline()
    base = record_key(dataset, pipeline, 0, 0)
    assert base == record_key(dataset, pipeline, 0, 0)
    assert base != record_key(dataset, pipeline, 1, 0)
    assert base != record_key(dataset, pipeline, 0, 1)


def test_get_or_build_builds_once():
    dataset = make_openimages(num_samples=60, seed=7)
    pipeline = standard_pipeline()
    cache = RecordCache()
    key = record_key(dataset, pipeline, 0, 0)
    calls = []

    def builder():
        calls.append(1)
        return build_records(pipeline, dataset, seed=0)

    first = cache.get_or_build(key, builder)
    second = cache.get_or_build(key, builder)
    assert len(calls) == 1
    assert first is second
    assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1, "evictions": 0}


def test_lru_evicts_oldest():
    cache = RecordCache(max_entries=2)
    cache.put(("a", "p", 0, 0), [])
    cache.put(("b", "p", 0, 0), [])
    assert cache.get(("a", "p", 0, 0)) is not None  # refresh "a"
    cache.put(("c", "p", 0, 0), [])  # evicts "b", the least recent
    assert cache.get(("b", "p", 0, 0)) is None
    assert cache.get(("a", "p", 0, 0)) is not None
    assert cache.get(("c", "p", 0, 0)) is not None
    assert cache.stats()["evictions"] == 1


def test_max_entries_validation():
    with pytest.raises(ValueError):
        RecordCache(max_entries=0)


def test_policy_context_uses_shared_cache():
    dataset = make_openimages(num_samples=80, seed=7)
    cache = RecordCache()
    contexts = [
        PolicyContext(dataset=dataset, pipeline=standard_pipeline(),
                      spec=standard_cluster(), model=get_model_profile("alexnet"),
                      seed=0, record_cache=cache)
        for _ in range(3)
    ]
    records = [context.records() for context in contexts]
    assert records[1] is records[0] and records[2] is records[0]
    stats = cache.stats()
    assert stats["misses"] == 1 and stats["hits"] == 2
