"""The perf-regression harness: schema stability and the determinism gate."""

import json

from repro.parallel.bench import MODES, SCHEMA, bench_scale, main, run_bench


def ticking_clock():
    """A deterministic injectable timer: each read advances 1ms."""
    state = {"t": 0.0}

    def timer():
        state["t"] += 0.001
        return state["t"]

    return timer


def test_bench_scale_shape_and_determinism_gate():
    result = bench_scale(60, repeats=1, timer=ticking_clock())
    assert result["num_samples"] == 60
    assert result["identical"] is True
    seconds = result["record_building"]["seconds"]
    speedups = result["record_building"]["speedup_vs_sequential"]
    assert set(seconds) == set(MODES) == set(speedups)
    assert all(value > 0 for value in seconds.values())
    assert speedups["sequential"] == 1.0
    assert result["plan"]["seconds"] > 0


def test_run_bench_report_schema():
    report = run_bench(scales=[40, 80], repeats=1, timer=ticking_clock())
    assert report["schema"] == SCHEMA
    assert report["modes"] == list(MODES)
    assert [entry["num_samples"] for entry in report["scales"]] == [40, 80]
    assert report["largest_scale"] == 80
    assert report["identical"] is True
    assert report["largest_scale_best_speedup"] > 0
    for mode in MODES:
        assert report["allocation"][mode]["peak_bytes"] > 0
        assert report["allocation"][mode]["live_blocks"] > 0
    json.dumps(report)  # the report must be JSON-serializable as-is


def test_main_writes_report(tmp_path):
    out = tmp_path / "BENCH_profiling.json"
    assert main(["--scales", "40", "--repeats", "1", "--out", str(out)]) == 0
    report = json.loads(out.read_text())
    assert report["schema"] == SCHEMA
    assert report["identical"] is True
