"""Byte-identity of the vectorized simulator against ``Pipeline.simulate``.

SampleRecord equality compares every stage size and cost float exactly, so
``seq == vec`` failing on any sample means a single bit diverged somewhere
in the RNG emulation, the size arithmetic, or the cost fold order.
"""

import numpy as np
import pytest

from repro.data.catalog import make_imagenet, make_openimages
from repro.parallel.vectorized import (
    batch_total_costs,
    build_records_vectorized,
    simulate_batch,
    supports_batch,
)
from repro.preprocessing.cost_model import CostModel
from repro.preprocessing.pipeline import standard_pipeline
from repro.preprocessing.records import build_record


def sequential_records(pipeline, dataset, seed, epoch=0, cost_model=None):
    return [
        build_record(
            pipeline,
            dataset.raw_meta(sample_id),
            sample_id,
            seed=seed,
            epoch=epoch,
            cost_model=cost_model,
        )
        for sample_id in range(len(dataset))
    ]


@pytest.mark.parametrize("seed", [0, 42])
@pytest.mark.parametrize("epoch", [0, 3])
def test_openimages_records_bit_identical(seed, epoch):
    dataset = make_openimages(num_samples=400, seed=7)
    pipeline = standard_pipeline()
    seq = sequential_records(pipeline, dataset, seed, epoch)
    vec = build_records_vectorized(
        pipeline,
        [dataset.raw_meta(i) for i in range(len(dataset))],
        list(range(len(dataset))),
        seed=seed,
        epoch=epoch,
    )
    assert seq == vec


def test_imagenet_records_bit_identical(imagenet_small):
    pipeline = standard_pipeline()
    seq = sequential_records(pipeline, imagenet_small, seed=3)
    vec = build_records_vectorized(
        pipeline,
        [imagenet_small.raw_meta(i) for i in range(len(imagenet_small))],
        list(range(len(imagenet_small))),
        seed=3,
    )
    assert seq == vec


def test_identical_under_custom_cost_model(openimages_small):
    pipeline = standard_pipeline()
    model = CostModel(cpu_speed_factor=2.5)
    seq = sequential_records(pipeline, openimages_small, seed=1, cost_model=model)
    vec = build_records_vectorized(
        pipeline,
        [openimages_small.raw_meta(i) for i in range(len(openimages_small))],
        list(range(len(openimages_small))),
        seed=1,
        cost_model=model,
    )
    assert seq == vec


def test_cached_cost_arrays_match_public_api(openimages_small):
    """prefix/suffix/total must equal a fresh fold over op_costs exactly."""
    pipeline = standard_pipeline()
    record = build_record(
        pipeline, openimages_small.raw_meta(0), 0, seed=0, epoch=0
    )
    n_ops = len(record.op_costs)
    for split in range(n_ops + 1):
        assert record.prefix_cost(split) == sum(record.op_costs[:split])
        assert record.suffix_cost(split) == sum(record.op_costs[split:])
    assert record.total_cost == sum(record.op_costs)


def test_simulate_batch_totals_match_sequential_fold(openimages_small):
    pipeline = standard_pipeline()
    metas = [openimages_small.raw_meta(i) for i in range(64)]
    _, costs = simulate_batch(pipeline, metas, list(range(64)), seed=5)
    totals = batch_total_costs(costs)
    for i, total in enumerate(totals):
        record = build_record(
            pipeline, openimages_small.raw_meta(i), i, seed=5, epoch=0
        )
        assert total == record.total_cost


def test_supports_batch_rejects_wide_components():
    pipeline = standard_pipeline()
    assert supports_batch(pipeline, 0, 0)
    assert not supports_batch(pipeline, 2**32, 0)


def test_nonuniform_dims_batch(openimages_small):
    """Lanes with different raw dims must not leak across each other."""
    pipeline = standard_pipeline()
    ids = [0, 17, 101, 33, 2]  # deliberately unsorted
    metas = [openimages_small.raw_meta(i) for i in ids]
    vec = build_records_vectorized(pipeline, metas, ids, seed=9)
    for record, sample_id in zip(vec, ids):
        assert record == build_record(
            pipeline, openimages_small.raw_meta(sample_id), sample_id, seed=9, epoch=0
        )


def test_mixed_kind_batch_rejected():
    from repro.parallel.vectorized import BatchMeta
    from repro.preprocessing.payload import StageMeta

    image = StageMeta.for_image(10, 10)
    tensor = StageMeta.for_tensor(10, 10, 3)
    with pytest.raises(ValueError, match="mixes payload kinds"):
        BatchMeta.from_metas([image, tensor])
