"""Sharded record building: order-independent merge, every backend.

The ISSUE-4 byte-identity gate lives here: sequential, vectorized, and
sharded record lists -- and the OffloadPlans built from them -- must be
*equal* across at least two worker counts and two seeds.  Equality on
SampleRecord compares every float exactly, so this is bit-identity.
"""

import pytest

from repro.cluster.spec import standard_cluster
from repro.core.decision import DecisionConfig, DecisionEngine
from repro.core.policy import PolicyContext
from repro.parallel import build_records
from repro.parallel.sharded import build_records_sharded, shard_bounds
from repro.preprocessing.pipeline import standard_pipeline
from repro.workloads.models import get_model_profile


def test_shard_bounds_cover_everything():
    for total, shards in [(10, 3), (7, 7), (5, 8), (100, 4), (1, 1)]:
        bounds = shard_bounds(total, shards)
        covered = []
        for lo, hi in bounds:
            assert lo <= hi
            covered.extend(range(lo, hi))
        assert covered == list(range(total))


def test_shard_bounds_validation():
    with pytest.raises(ValueError):
        shard_bounds(10, 0)
    with pytest.raises(ValueError):
        shard_bounds(-1, 2)


@pytest.mark.parametrize("workers", [2, 3])
@pytest.mark.parametrize("backend", ["thread", "process"])
def test_sharded_matches_sequential(openimages_small, workers, backend):
    pipeline = standard_pipeline()
    metas = [openimages_small.raw_meta(i) for i in range(200)]
    ids = list(range(200))
    seq = build_records(pipeline, openimages_small, seed=11, sample_ids=ids)
    sharded = build_records_sharded(
        pipeline, metas, ids, seed=11, workers=workers, backend=backend
    )
    assert sharded == seq


def test_sharded_without_vectorization_matches(openimages_small):
    """The per-shard sequential fallback must agree too."""
    pipeline = standard_pipeline()
    metas = [openimages_small.raw_meta(i) for i in range(120)]
    ids = list(range(120))
    seq = build_records(pipeline, openimages_small, seed=2, sample_ids=ids)
    sharded = build_records_sharded(
        pipeline, metas, ids, seed=2, workers=2, vectorize=False
    )
    assert sharded == seq


@pytest.mark.parametrize("seed", [0, 42])
def test_byte_identity_gate(openimages_small, seed):
    """ISSUE-4 acceptance: identical records and plans across worker counts."""
    pipeline = standard_pipeline()
    spec = standard_cluster(storage_cores=48)
    model = get_model_profile("alexnet")
    engine = DecisionEngine(DecisionConfig())

    records_by_mode = {}
    plans_by_mode = {}
    for mode in ("sequential", "vectorized", "sharded:2", "sharded:3"):
        context = PolicyContext(
            dataset=openimages_small,
            pipeline=pipeline,
            spec=spec,
            model=model,
            seed=seed,
            parallel=mode,
        )
        records_by_mode[mode] = context.records()
        plans_by_mode[mode] = engine.plan(
            records_by_mode[mode], spec, context.epoch_gpu_time_s
        )

    baseline_records = records_by_mode["sequential"]
    baseline_plan = plans_by_mode["sequential"]
    for mode in ("vectorized", "sharded:2", "sharded:3"):
        assert records_by_mode[mode] == baseline_records, mode
        assert plans_by_mode[mode] == baseline_plan, mode


def test_mismatched_lengths_rejected(openimages_small):
    pipeline = standard_pipeline()
    metas = [openimages_small.raw_meta(i) for i in range(5)]
    with pytest.raises(ValueError):
        build_records_sharded(pipeline, metas, [0, 1, 2], seed=0)


def test_worker_validation(openimages_small):
    pipeline = standard_pipeline()
    metas = [openimages_small.raw_meta(0)]
    with pytest.raises(ValueError):
        build_records_sharded(pipeline, metas, [0], seed=0, workers=0)
    with pytest.raises(ValueError):
        build_records_sharded(pipeline, metas, [0], seed=0, backend="carrier-pigeon")
