"""Draw-level identity of the lane-parallel PCG64 against numpy itself.

``repro.parallel.pcg`` re-implements SeedSequence spawning and the PCG64
output function so whole batches of per-sample generators can advance in
lockstep.  These tests pin it bit-for-bit to ``op_rng``'s real numpy
generators across many (seed, epoch, sample, op) keys -- any drift here
invalidates every byte-identity claim downstream.
"""

import numpy as np
import pytest

from repro.parallel.pcg import (
    LaneGenerators,
    components_supported,
    lane_subset,
    reference_state,
    seed_state_words,
)
from repro.utils.rng import op_rng

KEYS = [
    (0, 0, 0, 0),
    (0, 0, 1, 0),
    (7, 0, 123, 2),
    (42, 3, 999, 1),
    (1234567, 11, 31337, 4),
    (2**31, 100, 2**20, 3),
]


@pytest.mark.parametrize("seed,epoch,sample_id,op_index", KEYS)
def test_seed_state_matches_seedsequence(seed, epoch, sample_id, op_index):
    expected = np.random.SeedSequence(
        [seed, epoch, sample_id, op_index]
    ).generate_state(4, np.uint64)
    got = seed_state_words(seed, epoch, np.array([sample_id]), op_index)[:, 0]
    assert got.tolist() == expected.tolist()


@pytest.mark.parametrize("seed,epoch,sample_id,op_index", KEYS)
def test_random_stream_matches_numpy(seed, epoch, sample_id, op_index):
    rng = op_rng(seed, epoch, sample_id, op_index)
    lanes = LaneGenerators.for_op(seed, epoch, np.array([sample_id]), op_index)
    idx = np.array([0])
    for _ in range(50):
        assert lanes.random(idx)[0] == rng.random()


@pytest.mark.parametrize("seed,epoch,sample_id,op_index", KEYS)
def test_uniform_stream_matches_numpy(seed, epoch, sample_id, op_index):
    rng = op_rng(seed, epoch, sample_id, op_index)
    lanes = LaneGenerators.for_op(seed, epoch, np.array([sample_id]), op_index)
    idx = np.array([0])
    for low, high in [(-0.3, 0.4), (0.0, 1.0), (2.5, 9.5)] * 5:
        assert lanes.uniform(low, high, idx)[0] == rng.uniform(low, high)


@pytest.mark.parametrize("seed,epoch,sample_id,op_index", KEYS)
def test_integers_stream_matches_numpy(seed, epoch, sample_id, op_index):
    rng = op_rng(seed, epoch, sample_id, op_index)
    lanes = LaneGenerators.for_op(seed, epoch, np.array([sample_id]), op_index)
    idx = np.array([0])
    for high in [2, 7, 100, 2**16 + 1, 13]:
        expected = int(rng.integers(0, high))
        got = int(lanes.integers(np.array([high]), idx)[0])
        assert got == expected


def test_integers_then_random_buffer_interleaving():
    """The 32-bit buffer must persist across mixed draw kinds, as numpy's does."""
    key = (3, 1, 55, 2)
    rng = op_rng(*key)
    lanes = LaneGenerators.for_op(key[0], key[1], np.array([key[2]]), key[3])
    idx = np.array([0])
    expected = [
        int(rng.integers(0, 10)),
        rng.random(),
        int(rng.integers(0, 10)),
        rng.uniform(-1.0, 1.0),
        int(rng.integers(0, 4)),
    ]
    got = [
        int(lanes.integers(np.array([10]), idx)[0]),
        lanes.random(idx)[0],
        int(lanes.integers(np.array([10]), idx)[0]),
        lanes.uniform(-1.0, 1.0, idx)[0],
        int(lanes.integers(np.array([4]), idx)[0]),
    ]
    assert got == expected


def test_integers_range_one_consumes_no_draw():
    """A single-outcome range (high == 1) must not consume a draw."""
    key = (5, 0, 9, 1)
    rng = op_rng(*key)
    lanes = LaneGenerators.for_op(key[0], key[1], np.array([key[2]]), key[3])
    idx = np.array([0])
    assert int(rng.integers(0, 1)) == 0
    assert int(lanes.integers(np.array([1]), idx)[0]) == 0
    # The streams must still be aligned afterwards.
    assert lanes.random(idx)[0] == rng.random()


def test_many_lanes_advance_independently():
    seed, epoch, op_index = 11, 2, 1
    ids = np.arange(64)
    lanes = LaneGenerators.for_op(seed, epoch, ids, op_index)
    singles = [op_rng(seed, epoch, int(s), op_index) for s in ids]
    for _ in range(10):
        batch = lanes.random(np.arange(64))
        expected = [rng.random() for rng in singles]
        assert batch.tolist() == expected


def test_lane_subset_preserves_state():
    seed, epoch, op_index = 1, 0, 2
    ids = np.arange(8)
    lanes = LaneGenerators.for_op(seed, epoch, ids, op_index)
    lanes.random(np.arange(8))  # advance everything one draw
    keep = np.array([1, 4, 6])
    sub = lane_subset(lanes, keep)
    singles = [op_rng(seed, epoch, int(s), op_index) for s in keep]
    for rng in singles:
        rng.random()  # mirror the pre-subset draw
    got = sub.random(np.arange(3))
    assert got.tolist() == [rng.random() for rng in singles]


def test_reference_state_matches_lanes():
    seed, epoch, sample_id, op_index = 21, 4, 77, 3
    state, inc = reference_state(seed, epoch, sample_id, op_index)
    lanes = LaneGenerators.for_op(seed, epoch, np.array([sample_id]), op_index)
    assert (int(lanes.state_hi[0]) << 64) | int(lanes.state_lo[0]) == state
    assert (int(lanes.inc_hi[0]) << 64) | int(lanes.inc_lo[0]) == inc


def test_components_supported_bounds():
    assert components_supported(0, 2**32 - 1, 5)
    assert not components_supported(2**32)
    assert not components_supported(-1)
