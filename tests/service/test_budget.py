"""Admission-control ledger tests: atomic commits, replacement, restore."""

import threading

import pytest

from repro.service.budget import CoreBudgetLedger


class TestCommit:
    def test_admits_within_budget(self):
        ledger = CoreBudgetLedger(16)
        decision = ledger.commit("job-a", 8)
        assert decision.admitted
        assert decision.previous_cores == 0
        assert ledger.committed_cores == 8
        assert ledger.available_cores == 8

    def test_rejects_oversubscription(self):
        ledger = CoreBudgetLedger(16)
        ledger.commit("job-a", 12)
        decision = ledger.commit("job-b", 8)
        assert not decision.admitted
        assert "oversubscribed" in decision.reason
        assert "4 of 16 free" in decision.reason
        # Rejection changes nothing.
        assert ledger.committed() == {"job-a": 12}

    def test_recommit_replaces_needing_only_delta(self):
        ledger = CoreBudgetLedger(16)
        ledger.commit("job-a", 12)
        # 14 > 4 free, but job-a's own 12 are reusable: only the delta counts.
        decision = ledger.commit("job-a", 14)
        assert decision.admitted
        assert decision.previous_cores == 12
        assert ledger.committed() == {"job-a": 14}

    def test_zero_cores_rejected(self):
        with pytest.raises(ValueError, match="cores"):
            CoreBudgetLedger(16).commit("job-a", 0)

    def test_exact_fit_admits(self):
        ledger = CoreBudgetLedger(16)
        assert ledger.commit("job-a", 16).admitted
        assert ledger.available_cores == 0


class TestRelease:
    def test_release_returns_cores(self):
        ledger = CoreBudgetLedger(16)
        ledger.commit("job-a", 8)
        assert ledger.release("job-a") == 8
        assert ledger.holds("job-a") == 0
        assert ledger.available_cores == 16

    def test_release_unknown_job_is_none(self):
        assert CoreBudgetLedger(16).release("ghost") is None


class TestRestore:
    def test_restore_loads_snapshot(self):
        ledger = CoreBudgetLedger(16)
        ledger.restore({"job-a": 8, "job-b": 4})
        assert ledger.committed_cores == 12
        assert ledger.holds("job-b") == 4

    def test_restore_over_budget_raises(self):
        with pytest.raises(ValueError, match="exceed"):
            CoreBudgetLedger(8).restore({"job-a": 6, "job-b": 6})

    def test_restore_nonpositive_raises(self):
        with pytest.raises(ValueError, match=">= 1"):
            CoreBudgetLedger(8).restore({"job-a": 0})


class TestConcurrency:
    def test_contended_commits_never_oversubscribe(self):
        """Many threads race for one budget; the sum must respect it."""
        ledger = CoreBudgetLedger(20)
        admitted = []
        barrier = threading.Barrier(10)

        def worker(index: int) -> None:
            barrier.wait()
            if ledger.commit(f"job-{index}", 6).admitted:
                admitted.append(index)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(10)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert ledger.committed_cores == 6 * len(admitted)
        assert ledger.committed_cores <= 20
        assert len(admitted) == 3  # floor(20 / 6)
