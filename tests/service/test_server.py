"""End-to-end HTTP tests: auth, grants, admission, shedding, deadlines."""

import threading
import time

import pytest

from repro.service.client import (
    ServiceAuthError,
    ServiceClient,
    ServiceDeadlineError,
    ServiceProtocolError,
    ServiceUnavailableError,
)
from repro.service.config import ServiceConfig
from repro.service.queue import PlanTask

from tests.service.conftest import SMALL_SAMPLES


class TestAuth:
    def test_wrong_token_rejected(self, live_service):
        intruder = ServiceClient(live_service.address, token="wrong")
        with pytest.raises(ServiceAuthError):
            intruder.plan("job-a", num_samples=SMALL_SAMPLES)

    def test_unauthenticated_health_is_open(self, live_service):
        anon = ServiceClient(live_service.address, token="wrong")
        assert anon.health()
        assert anon.ready()


class TestPlan:
    def test_grant_carries_a_full_plan(self, client):
        grant = client.plan("job-a", num_samples=SMALL_SAMPLES, storage_cores=4)
        assert grant.seq == 1
        assert not grant.replayed
        assert len(grant.splits) == SMALL_SAMPLES
        assert grant.granted_cores == 4
        assert grant.reason
        assert grant.expected_epoch_s is not None

    def test_identical_request_is_replayed_not_replanned(self, client):
        first = client.plan("job-a", num_samples=SMALL_SAMPLES)
        second = client.plan("job-a", num_samples=SMALL_SAMPLES)
        assert second.replayed
        assert second.seq == first.seq
        assert second.splits == first.splits

    def test_changed_params_yield_a_new_grant(self, client):
        first = client.plan("job-a", num_samples=SMALL_SAMPLES, storage_cores=4)
        second = client.plan("job-a", num_samples=SMALL_SAMPLES, storage_cores=8)
        assert not second.replayed
        assert second.seq == first.seq + 1

    def test_unknown_model_is_a_protocol_error(self, client):
        with pytest.raises(ServiceProtocolError, match="unknown model"):
            client.plan("job-a", num_samples=SMALL_SAMPLES, model="gpt9")

    def test_sample_cap_enforced(self, service_factory):
        service = service_factory(
            ServiceConfig(total_storage_cores=16, max_samples=8)
        )
        client = ServiceClient(service.address)
        with pytest.raises(ServiceProtocolError, match="cap"):
            client.plan("job-a", num_samples=SMALL_SAMPLES)


class TestAdmissionControl:
    def test_oversubscription_is_shed_with_retry_hint(self, live_service):
        client = ServiceClient(
            live_service.address, deadline_s=5.0, max_attempts=2
        )
        client.plan("job-a", num_samples=SMALL_SAMPLES, storage_cores=12)
        with pytest.raises(ServiceUnavailableError) as excinfo:
            client.plan("job-b", num_samples=SMALL_SAMPLES, storage_cores=8)
        assert "oversubscribed" in str(excinfo.value)
        assert excinfo.value.retry_after_s is not None

    def test_release_frees_budget_for_the_next_job(self, client):
        client.plan("job-a", num_samples=SMALL_SAMPLES, storage_cores=12)
        assert client.release("job-a") == 12
        grant = client.plan("job-b", num_samples=SMALL_SAMPLES, storage_cores=12)
        assert not grant.replayed

    def test_release_without_commitment_is_none(self, client):
        assert client.release("ghost") is None

    def test_rejection_commits_nothing(self, live_service, client):
        client.plan("job-a", num_samples=SMALL_SAMPLES, storage_cores=12)
        hopeless = ServiceClient(live_service.address, max_attempts=1)
        with pytest.raises(ServiceUnavailableError):
            hopeless.plan("job-b", num_samples=SMALL_SAMPLES, storage_cores=8)
        assert live_service.ledger.committed() == {"job-a": 12}


class TestBackpressure:
    def test_full_queue_sheds_with_retry_after(self, service_factory):
        service = service_factory(
            ServiceConfig(total_storage_cores=48, workers=1, queue_capacity=1),
            disturbance=lambda index: 0.5,  # pin the only worker
        )
        # Pin the worker, then fill the one queue slot behind it.
        pin = PlanTask(request={"job": "pin"}, enqueued_at=0.0)
        service.queue.submit(pin)
        deadline = time.monotonic() + 5.0
        while service.queue.depth > 0 and time.monotonic() < deadline:
            time.sleep(0.005)  # the worker has taken the pin task
        service.queue.submit(PlanTask(request={"job": "filler"}, enqueued_at=0.0))
        impatient = ServiceClient(service.address, max_attempts=1)
        with pytest.raises(ServiceUnavailableError) as excinfo:
            impatient.plan("job-c", num_samples=SMALL_SAMPLES)
        assert "capacity" in str(excinfo.value)
        assert excinfo.value.retry_after_s is not None
        assert service.queue.shed_count >= 1

    def test_client_deadline_budget_gives_up_in_time(self, service_factory):
        service = service_factory(
            ServiceConfig(total_storage_cores=16),
            disturbance=lambda index: 0.5,  # slower than the deadline below
        )
        client = ServiceClient(
            service.address, deadline_s=0.2, max_attempts=3
        )
        started = time.monotonic()
        with pytest.raises(ServiceDeadlineError):
            client.plan("job-a", num_samples=SMALL_SAMPLES)
        assert time.monotonic() - started < 2.0  # gave up, not retried forever
        assert client.stats.deadline_misses == 1

    def test_handler_abandons_at_its_deadline_with_504(self, service_factory):
        service = service_factory(
            ServiceConfig(total_storage_cores=16),
            disturbance=lambda index: 0.5,
        )
        status, body, _ = service.submit_plan(
            {"job": "job-a", "num_samples": SMALL_SAMPLES}, deadline_s=0.1
        )
        assert status == 504
        assert "deadline" in str(body["error"])

    def test_worker_drops_tasks_that_expired_while_queued(self, service_factory):
        service = service_factory(
            ServiceConfig(total_storage_cores=48, workers=1, queue_capacity=4),
            disturbance=lambda index: 0.3,
        )
        results = []

        def submit() -> None:
            results.append(
                service.submit_plan(
                    {"job": "job-q", "num_samples": SMALL_SAMPLES},
                    deadline_s=0.1,
                )
            )

        threads = [threading.Thread(target=submit) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert [status for status, _, _ in results] == [504, 504]


class TestDrain:
    def test_drain_checkpoints_and_stops_accepting(self, tmp_path, service_factory):
        journal = str(tmp_path / "journal.jsonl")
        service = service_factory(
            ServiceConfig(total_storage_cores=16, journal_path=journal)
        )
        client = ServiceClient(service.address, deadline_s=5.0, max_attempts=1)
        client.plan("job-a", num_samples=SMALL_SAMPLES)
        client.drain()
        deadline = time.monotonic() + 10.0
        while service.drain_seconds is None and time.monotonic() < deadline:
            time.sleep(0.01)
        assert service.drain_seconds is not None
        assert not service.is_ready
        with open(journal) as handle:
            assert '"kind":"checkpoint"' in handle.read()

    def test_draining_service_sheds_at_submission(self):
        from repro.service.server import DecisionService

        service = DecisionService(ServiceConfig(total_storage_cores=16))
        service.drain()  # never started: drains to a stop immediately
        status, body, retry_after = service.submit_plan({"job": "job-a"}, None)
        assert status == 503
        assert "draining" in str(body["error"])
        assert retry_after is not None

    def test_drained_service_is_unreachable(self, service_factory):
        service = service_factory(ServiceConfig(total_storage_cores=16))
        address = service.address
        service.drain()
        client = ServiceClient(address, max_attempts=1, deadline_s=1.0)
        with pytest.raises(ServiceUnavailableError):
            client.plan("job-a", num_samples=SMALL_SAMPLES)
        assert not client.health()


class TestStateLockDiscipline:
    """Regression tests for the _state_lock races sophon-lint GUARD01
    flagged: the grant-map read in _process and the status snapshot both
    happen under the lock now, so concurrent planning can never expose a
    torn view of (grants, next_seq)."""

    def test_status_snapshot_is_never_torn(self, service_factory):
        service = service_factory(
            ServiceConfig(total_storage_cores=48, workers=2, queue_capacity=32)
        )
        jobs = [f"job-{i}" for i in range(10)]

        def submit(job):
            service.submit_plan(
                {"job": job, "num_samples": SMALL_SAMPLES, "storage_cores": 1},
                deadline_s=10.0,
            )

        threads = [
            threading.Thread(target=submit, args=(job,)) for job in jobs
        ]
        for thread in threads:
            thread.start()
        snapshots = []
        while any(t.is_alive() for t in threads):
            snapshots.append(service.status_body())
            time.sleep(0.001)
        for thread in threads:
            thread.join(timeout=10.0)
        snapshots.append(service.status_body())
        for snap in snapshots:
            # Seq allocation and grant insertion are atomic under
            # _state_lock; a torn snapshot would show the seq bumped
            # before its grant landed.
            assert snap["next_seq"] == snap["grants"] + 1
        assert snapshots[-1]["grants"] == len(jobs)

    def test_concurrent_identical_requests_all_succeed(self, service_factory):
        service = service_factory(
            ServiceConfig(total_storage_cores=16, workers=2, queue_capacity=8)
        )
        results = []

        def submit():
            results.append(
                service.submit_plan(
                    {
                        "job": "job-twin",
                        "num_samples": SMALL_SAMPLES,
                        "storage_cores": 4,
                    },
                    deadline_s=10.0,
                )
            )

        threads = [threading.Thread(target=submit) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert [status for status, _, _ in results] == [200] * 4
        # However the race between workers resolved, the grant map keeps
        # exactly one record for the (job, digest) pair.
        assert service.status_body()["grants"] == 1


class TestObservability:
    def test_status_reports_queue_and_budget(self, live_service, client):
        client.plan("job-a", num_samples=SMALL_SAMPLES, storage_cores=4)
        status = client.status()
        assert status["ready"] is True
        assert status["total_cores"] == 16
        assert status["committed_cores"] == 4
        assert status["grants"] == 1
        assert status["queue_capacity"] == live_service.config.queue_capacity

    def test_metrics_endpoint_serves_prometheus_text(self, client):
        client.plan("job-a", num_samples=SMALL_SAMPLES)
        text = client.metrics_text()
        assert "service_requests_total" in text
        assert "service_admissions_total" in text

    def test_unknown_endpoint_is_404(self, client):
        status, _, parsed, _ = client._request("GET", "/v1/nope")
        assert status == 404
        assert "no such endpoint" in str(parsed["error"])
