"""Loadgen SLO gating: the report section, defaults, and the exit code."""

import json

from repro.service import loadgen
from repro.service.config import ServiceConfig
from repro.service.loadgen import (
    LoadgenConfig,
    RequestResult,
    default_objectives,
    evaluate_slo,
    run_loadgen,
)
from repro.telemetry.slo import SCHEMA as SLO_SCHEMA

SMALL_LOAD = LoadgenConfig(
    clients=2, requests_per_client=3, mean_think_s=0.0,
    num_samples_choices=(16,), cores_choices=(2, 4),
)


class TestDefaultObjectives:
    def test_scaled_to_the_deadline(self):
        objectives = {o.name: o for o in default_objectives(4.0)}
        assert objectives["plan_p50"].threshold == 2.0
        assert objectives["plan_p99"].threshold == 8.0
        assert objectives["error_rate"].threshold == 0.0
        assert objectives["shed_rate"].threshold == 0.5

    def test_evaluate_slo_judges_results(self):
        results = [
            RequestResult(client=0, index=i, outcome="granted",
                          latency_s=0.01, retries=0)
            for i in range(4)
        ]
        report = evaluate_slo(results, default_objectives(1.0))
        assert report.passed and report.samples == 4
        failed = results + [
            RequestResult(client=0, index=9, outcome="failed",
                          latency_s=0.01, retries=1)
        ]
        assert not evaluate_slo(failed, default_objectives(1.0)).passed


class TestReportSloSection:
    def test_report_embeds_a_schema_versioned_slo_section(self, service_factory):
        service = service_factory(ServiceConfig(total_storage_cores=16, workers=2))
        report = run_loadgen(service.address, config=SMALL_LOAD)
        slo = report["slo"]
        assert slo["schema"] == SLO_SCHEMA
        assert slo["samples"] == report["requests"] == 6
        assert [o["name"] for o in slo["objectives"]] == [
            "plan_p50", "plan_p99", "error_rate", "shed_rate"
        ]
        assert slo["passed"] is True


class TestMainGate:
    def _run(self, tmp_path, extra):
        out = tmp_path / "bench.json"
        argv = [
            "--clients", "2", "--requests", "3", "--seed", "7",
            "--mean-think-s", "0", "--out", str(out),
        ] + extra
        code = loadgen.main(argv)
        return code, json.loads(out.read_text())

    def test_impossible_slo_fails_the_run(self, tmp_path, capsys):
        code, report = self._run(tmp_path, ["--slo-p50-s", "1e-9"])
        assert code == 1
        assert report["slo"]["passed"] is False
        assert "FAIL: SLO violated" in capsys.readouterr().out

    def test_no_slo_gate_disarms_the_exit_code(self, tmp_path):
        code, report = self._run(
            tmp_path, ["--slo-p50-s", "1e-9", "--no-slo-gate"]
        )
        assert code == 0
        assert report["slo"]["passed"] is False

    def test_default_thresholds_pass_a_healthy_run(self, tmp_path):
        code, report = self._run(tmp_path, [])
        assert code == 0
        assert report["slo"]["passed"] is True
