"""Crash-recovery tests: kill mid-run, restart on the journal, compare."""

import dataclasses
import json

from repro.service.client import ServiceClient
from repro.service.config import ServiceConfig
from repro.service.journal import read_grants

from tests.service.conftest import SMALL_SAMPLES


def canonical(grants) -> list:
    return [
        json.dumps(dataclasses.asdict(g), sort_keys=True, separators=(",", ":"))
        for g in grants
    ]


def run_script(service_factory, journal_path, kill_after=None):
    """Grant three jobs (+ one release); optionally kill after N grants.

    Returns the service that finished the script (restarted if killed).
    """
    config = ServiceConfig(total_storage_cores=24, journal_path=journal_path)
    service = service_factory(config)
    client = ServiceClient(service.address, deadline_s=10.0)
    script = [
        ("plan", "job-a", 4),
        ("plan", "job-b", 8),
        ("release", "job-a", 0),
        ("plan", "job-c", 12),
        ("plan", "job-a", 4),  # re-grant after its release: new seq, same digest
    ]
    grants = 0
    for kind, job, cores in script:
        if kind == "release":
            client.release(job)
            continue
        client.plan(job, num_samples=SMALL_SAMPLES, storage_cores=cores)
        grants += 1
        if kill_after is not None and grants == kill_after:
            service.kill()
            service = service_factory(config)
            client = ServiceClient(service.address, deadline_s=10.0)
    return service


class TestCrashRecovery:
    def test_killed_run_recovers_byte_identically(self, tmp_path, service_factory):
        clean = str(tmp_path / "clean.jsonl")
        crashed = str(tmp_path / "crashed.jsonl")
        run_script(service_factory, clean).drain()
        run_script(service_factory, crashed, kill_after=2).drain()
        assert canonical(read_grants(crashed)) == canonical(read_grants(clean))

    def test_restart_restores_grants_budget_and_seq(self, tmp_path, service_factory):
        journal = str(tmp_path / "journal.jsonl")
        service = service_factory(
            ServiceConfig(total_storage_cores=24, journal_path=journal)
        )
        client = ServiceClient(service.address)
        first = client.plan("job-a", num_samples=SMALL_SAMPLES, storage_cores=8)
        service.kill()

        resumed = service_factory(
            ServiceConfig(total_storage_cores=24, journal_path=journal)
        )
        assert resumed.recovered_grants == 1
        assert resumed.ledger.committed() == {"job-a": 8}
        client = ServiceClient(resumed.address)
        # The client's post-crash re-send is answered from the journal.
        replayed = client.plan("job-a", num_samples=SMALL_SAMPLES, storage_cores=8)
        assert replayed.replayed
        assert replayed.seq == first.seq
        assert replayed.splits == first.splits
        # New work continues the recovered sequence, never reusing seqs.
        fresh = client.plan("job-b", num_samples=SMALL_SAMPLES, storage_cores=4)
        assert fresh.seq > first.seq

    def test_recovery_after_graceful_drain_uses_checkpoint(self, tmp_path, service_factory):
        journal = str(tmp_path / "journal.jsonl")
        service = service_factory(
            ServiceConfig(total_storage_cores=24, journal_path=journal)
        )
        client = ServiceClient(service.address)
        client.plan("job-a", num_samples=SMALL_SAMPLES, storage_cores=8)
        client.release("job-a")
        service.drain()

        resumed = service_factory(
            ServiceConfig(total_storage_cores=24, journal_path=journal)
        )
        assert resumed.ledger.committed() == {}
        assert resumed.recovered_grants == 1

    def test_torn_tail_does_not_block_restart(self, tmp_path, service_factory):
        journal = str(tmp_path / "journal.jsonl")
        service = service_factory(
            ServiceConfig(total_storage_cores=24, journal_path=journal)
        )
        ServiceClient(service.address).plan(
            "job-a", num_samples=SMALL_SAMPLES, storage_cores=8
        )
        service.kill()
        with open(journal, "a") as handle:
            handle.write('{"kind":"grant","seq":99,"torn')  # crash mid-append

        resumed = service_factory(
            ServiceConfig(total_storage_cores=24, journal_path=journal)
        )
        assert resumed.recovered_grants == 1
        grant = ServiceClient(resumed.address).plan(
            "job-b", num_samples=SMALL_SAMPLES, storage_cores=4
        )
        assert grant.seq == 2  # the torn seq-99 line never happened
