"""JobSpec validation and planner determinism + LRU cache tests."""

import pytest

from repro.service.planner import JobSpec, ServicePlanner


def spec(**overrides) -> JobSpec:
    base = dict(
        job="job-a",
        dataset="openimages",
        num_samples=24,
        seed=7,
        model="alexnet",
        gpu="rtx6000",
        storage_cores=8,
    )
    base.update(overrides)
    return JobSpec(**base)


class TestJobSpec:
    def test_from_request_applies_defaults(self):
        built = JobSpec.from_request({"job": "job-a"})
        assert built.dataset == "openimages"
        assert built.num_samples == 256
        assert built.model == "alexnet"

    def test_from_request_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown request fields"):
            JobSpec.from_request({"job": "job-a", "bogus": 1})

    def test_from_request_requires_job(self):
        with pytest.raises(ValueError, match="job"):
            JobSpec.from_request({})

    def test_bad_dataset_rejected(self):
        with pytest.raises(ValueError, match="dataset"):
            spec(dataset="cifar")

    def test_nonpositive_samples_rejected(self):
        with pytest.raises(ValueError, match="num_samples"):
            spec(num_samples=0)

    def test_digest_is_stable_and_parameter_sensitive(self):
        assert spec().params_digest() == spec().params_digest()
        assert spec().params_digest() != spec(num_samples=25).params_digest()
        assert spec().params_digest() != spec(job="job-b").params_digest()

    def test_profile_key_ignores_plan_only_fields(self):
        # Different cores/model, same profiling work: one cache entry.
        assert spec(storage_cores=4).profile_key() == spec(storage_cores=12).profile_key()
        assert spec(num_samples=32).profile_key() != spec().profile_key()


class TestServicePlanner:
    def test_same_spec_plans_identically(self):
        planner = ServicePlanner()
        first = planner.plan(spec())
        second = planner.plan(spec())
        assert first == second
        assert len(first.splits) == 24

    def test_records_cache_hits_across_jobs(self):
        planner = ServicePlanner()
        planner.plan(spec(job="job-a"))
        planner.plan(spec(job="job-b", storage_cores=12))
        assert planner.cache_misses == 1
        assert planner.cache_hits == 1

    def test_cache_eviction_is_lru(self):
        planner = ServicePlanner(cache_size=1)
        planner.plan(spec(num_samples=24))
        planner.plan(spec(num_samples=32))  # evicts the 24-sample records
        planner.plan(spec(num_samples=24))
        assert planner.cache_misses == 3
        assert planner.cache_hits == 0

    def test_cache_disabled_with_size_zero(self):
        planner = ServicePlanner(cache_size=0)
        planner.plan(spec())
        planner.plan(spec())
        assert planner.cache_hits == 0
        assert planner.cache_misses == 2

    def test_unknown_model_is_value_error(self):
        with pytest.raises(ValueError, match="unknown model"):
            ServicePlanner().plan(spec(model="gpt9"))

    def test_fresh_planner_reproduces_plans(self):
        # A restarted server builds a new planner; plans must not change.
        assert ServicePlanner().plan(spec()) == ServicePlanner().plan(spec())
