"""Service observability: trace propagation, flight endpoint, gauges, breakers."""

import http.client
import json

from repro.rpc.breaker import BreakerState, CircuitBreaker
from repro.service.client import ServiceClient
from repro.service.config import DEFAULT_TOKEN, ServiceConfig
from repro.telemetry.clock import ManualClock
from repro.telemetry.spans import Tracer

from tests.service.conftest import SMALL_SAMPLES


def _get(address, path, token=None):
    """Raw GET (ServiceClient has no generic GET helper for debug routes)."""
    conn = http.client.HTTPConnection(*address, timeout=10.0)
    try:
        headers = {}
        if token is not None:
            headers["Authorization"] = f"Bearer {token}"
        conn.request("GET", path, headers=headers)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


class TestTracePropagation:
    def test_client_trace_id_reaches_the_server_flight_recorder(self, live_service):
        traced = ServiceClient(
            live_service.address, deadline_s=10.0, tracer=Tracer()
        )
        traced.plan("job-a", num_samples=SMALL_SAMPLES, storage_cores=4)

        client_ids = {e.trace_id for e in traced.tracer.events}
        assert client_ids == {"job-a-r1"}
        assert {e.name for e in traced.tracer.events} == {"client.request"}

        server_spans = [
            e for e in live_service.flight.snapshot().spans
            if e.trace_id == "job-a-r1"
        ]
        names = {e.name for e in server_spans}
        assert "service.request" in names
        assert "service.admission" in names

    def test_untraced_requests_leave_no_request_spans(self, live_service, client):
        client.plan("job-plain", num_samples=SMALL_SAMPLES, storage_cores=4)
        assert not any(
            e.name == "service.request"
            for e in live_service.flight.snapshot().spans
        )


class TestFlightEndpoint:
    def test_requires_auth(self, live_service):
        status, _ = _get(live_service.address, "/v1/debug/flight")
        assert status == 401

    def test_returns_chrome_trace_json(self, live_service):
        traced = ServiceClient(
            live_service.address, deadline_s=10.0, tracer=Tracer()
        )
        traced.plan("job-a", num_samples=SMALL_SAMPLES, storage_cores=4)
        status, body = _get(
            live_service.address, "/v1/debug/flight", token=DEFAULT_TOKEN
        )
        assert status == 200
        trace = json.loads(body)
        assert "traceEvents" in trace and "otherData" in trace
        assert trace["otherData"]["spans"] > 0
        names = {e.get("name") for e in trace["traceEvents"]}
        assert "service.admission" in names


class TestMetricsGauges:
    def test_queue_and_budget_gauges_present_before_any_plan(self, client):
        text = client.metrics_text()
        for gauge in (
            "service_queue_depth",
            "service_queue_capacity",
            "service_committed_cores",
            "service_budget_headroom_cores",
        ):
            assert f"\n{gauge} " in text, gauge

    def test_headroom_tracks_commitments(self, live_service, client):
        client.plan("job-a", num_samples=SMALL_SAMPLES, storage_cores=4)
        text = client.metrics_text()
        assert "service_committed_cores 4.0" in text
        headroom = live_service.ledger.total_cores - 4
        assert f"service_budget_headroom_cores {float(headroom)}" in text


class TestBreakerStatus:
    def test_status_exposes_breaker_state_and_transitions(self, service_factory):
        clock = ManualClock()
        breaker = CircuitBreaker(
            failure_threshold=2, recovery_time_s=5.0, clock=clock
        )
        breaker.record_failure()
        breaker.record_failure()  # CLOSED -> OPEN
        clock.advance(6.0)
        assert breaker.state is BreakerState.HALF_OPEN  # cooldown elapsed
        assert breaker.allow()
        breaker.record_success()  # HALF_OPEN -> CLOSED

        service = service_factory(
            ServiceConfig(total_storage_cores=16),
            breakers={"storage": breaker},
        )
        status = ServiceClient(service.address, deadline_s=10.0).status()
        entry = status["breakers"]["storage"]
        assert entry["state"] == "closed"
        states = [(t["from"], t["to"]) for t in entry["transitions"]]
        assert states == [
            ("closed", "open"),
            ("open", "half_open"),
            ("half_open", "closed"),
        ]
        assert all("reason" in t and "at_s" in t for t in entry["transitions"])


class TestFlightDump:
    def test_drain_writes_the_dump_to_flight_path(self, tmp_path, service_factory):
        path = str(tmp_path / "flight.json")
        service = service_factory(
            ServiceConfig(total_storage_cores=16, flight_path=path)
        )
        traced = ServiceClient(
            service.address, deadline_s=10.0, tracer=Tracer()
        )
        traced.plan("job-a", num_samples=SMALL_SAMPLES, storage_cores=4)
        service.drain()
        dumped = json.loads(open(path, "rb").read())
        assert dumped["otherData"]["spans"] > 0
        assert any(
            e.get("name") == "service.admission" for e in dumped["traceEvents"]
        )


class TestTracingByteTransparency:
    def test_traced_and_untraced_journals_are_byte_identical(
        self, tmp_path, service_factory
    ):
        def run(name, trace):
            journal = str(tmp_path / f"{name}.jsonl")
            service = service_factory(
                ServiceConfig(
                    total_storage_cores=16, journal_path=journal, trace=trace
                )
            )
            client = ServiceClient(
                service.address,
                deadline_s=10.0,
                tracer=Tracer() if trace else None,
            )
            for job, cores in [("job-a", 4), ("job-b", 8), ("job-a", 4)]:
                client.plan(job, num_samples=SMALL_SAMPLES, storage_cores=cores)
            client.release("job-b")
            service.drain()
            return open(journal, "rb").read()

        assert run("plain", trace=False) == run("traced", trace=True)
