"""Shared fixtures: a small live service and a client wired to it."""

import contextlib

import pytest

from repro.service.client import ServiceClient
from repro.service.config import ServiceConfig
from repro.service.server import DecisionService

#: Small on purpose: profiling 16-sample datasets keeps each grant cheap.
SMALL_SAMPLES = 16


@pytest.fixture
def service_factory():
    """Start DecisionServices that are always torn down, even on failure."""
    started = []

    def factory(config: ServiceConfig = None, **kwargs) -> DecisionService:
        service = DecisionService(
            config if config is not None else ServiceConfig(), **kwargs
        )
        started.append(service)
        return service.start()

    yield factory
    for service in started:
        with contextlib.suppress(Exception):
            if service.drain_seconds is None:
                service.kill()


@pytest.fixture
def live_service(service_factory):
    return service_factory(ServiceConfig(total_storage_cores=16, workers=2))


@pytest.fixture
def client(live_service):
    return ServiceClient(live_service.address, deadline_s=10.0, max_attempts=3)
