"""Bounded work queue tests: shedding, depth accounting, kill drain."""

import pytest

from repro.service.queue import BoundedWorkQueue, PlanTask, QueueFullError


def task() -> PlanTask:
    return PlanTask(request={"job": "job-a"}, enqueued_at=0.0)


class TestSubmit:
    def test_fifo_order(self):
        q = BoundedWorkQueue(4)
        first, second = task(), task()
        q.submit(first)
        q.submit(second)
        assert q.take() is first
        assert q.take() is second

    def test_full_queue_sheds_immediately(self):
        q = BoundedWorkQueue(2)
        q.submit(task())
        q.submit(task())
        with pytest.raises(QueueFullError, match="capacity"):
            q.submit(task())
        assert q.shed_count == 1

    def test_max_depth_tracks_high_water_mark(self):
        q = BoundedWorkQueue(4)
        for _ in range(3):
            q.submit(task())
        q.take()
        q.task_done()
        assert q.max_depth == 3
        assert q.depth == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            BoundedWorkQueue(0)


class TestTake:
    def test_timeout_returns_none(self):
        assert BoundedWorkQueue(1).take(timeout=0.01) is None

    def test_stop_sentinel_returns_none(self):
        q = BoundedWorkQueue(1)
        q.push_stop()
        assert q.take(timeout=0.5) is None

    def test_stop_sentinels_bypass_capacity(self):
        q = BoundedWorkQueue(1)
        q.submit(task())
        q.push_stop(3)  # queue is "full" yet all three sentinels land
        assert isinstance(q.take(timeout=0.5), PlanTask)
        q.task_done()
        for _ in range(3):
            assert q.take(timeout=0.5) is None


class TestDrainPending:
    def test_dropped_tasks_wake_their_waiters(self):
        q = BoundedWorkQueue(4)
        waiting = [task(), task()]
        for t in waiting:
            q.submit(t)
        assert q.drain_pending() == 2
        for t in waiting:
            assert t.done.is_set()
            assert t.status == 503
            assert t.outcome == "killed"
        assert q.depth == 0

    def test_join_returns_after_drain(self):
        q = BoundedWorkQueue(4)
        q.submit(task())
        q.drain_pending()
        q.join()  # must not hang: drain_pending marked the task done
