"""Schedule-to-service mapping, loadgen stats, and the end-to-end gate."""

import pytest

from repro.faults.schedule import FaultSchedule
from repro.service.chaos import ScheduleDisturbance, crash_indices
from repro.service.loadgen import LoadgenConfig, percentile
from repro.harness.service_chaos import (
    default_service_schedule,
    run_service_chaos,
    scripted_ops,
)


class TestScheduleDisturbance:
    def test_empty_schedule_never_stalls(self):
        disturbance = ScheduleDisturbance(FaultSchedule())
        assert disturbance(0) == 0.0
        assert disturbance(100) == 0.0
        assert disturbance.stalled_requests == 0

    def test_brownout_adds_rtt_inside_its_window(self):
        schedule = FaultSchedule().with_brownout(10, 5, extra_rtt_s=0.25)
        disturbance = ScheduleDisturbance(schedule)
        assert disturbance(9) == 0.0
        assert disturbance(10) == 0.25
        assert disturbance(14) == 0.25
        assert disturbance(15) == 0.0
        assert disturbance.total_stall_s == 0.5

    def test_cpu_drift_scales_base_cost(self):
        schedule = FaultSchedule().with_cpu_drift(0, 10, factor=3.0)
        disturbance = ScheduleDisturbance(schedule, base_plan_cost_s=0.01)
        assert disturbance(5) == pytest.approx(0.02)  # (3 - 1) * 0.01

    def test_overlapping_windows_compose(self):
        schedule = (
            FaultSchedule()
            .with_brownout(0, 10, extra_rtt_s=0.1)
            .with_cpu_drift(0, 10, factor=2.0)
        )
        disturbance = ScheduleDisturbance(schedule, base_plan_cost_s=0.05)
        assert disturbance(3) == pytest.approx(0.15)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError, match="request_index"):
            ScheduleDisturbance(FaultSchedule())(-1)


class TestCrashIndices:
    def test_one_kill_per_window_at_ceil_start(self):
        schedule = FaultSchedule().with_crash(3.2, 1.0).with_crash(8.0, 1.0)
        assert crash_indices(schedule, 20) == [4, 8]

    def test_windows_past_horizon_dropped(self):
        schedule = FaultSchedule().with_crash(25.0, 1.0)
        assert crash_indices(schedule, 20) == []

    def test_empty_schedule_has_no_kills(self):
        assert crash_indices(FaultSchedule(), 20) == []


class TestLoadgenHelpers:
    def test_percentile_nearest_rank(self):
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert percentile(values, 0.5) == 3.0
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 5.0
        assert percentile([7.0], 0.99) == 7.0

    def test_percentile_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 0.5)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="pareto_shape"):
            LoadgenConfig(pareto_shape=1.0)
        with pytest.raises(ValueError, match="clients"):
            LoadgenConfig(clients=0)


class TestScriptedOps:
    def test_deterministic_for_a_seed(self):
        assert scripted_ops(30, seed=7) == scripted_ops(30, seed=7)
        assert scripted_ops(30, seed=7) != scripted_ops(30, seed=8)

    def test_mixes_replans_and_releases(self):
        kinds = {op.kind for op in scripted_ops(30, seed=7)}
        assert kinds == {"plan", "replan", "release"}

    def test_replans_repeat_the_previous_request_verbatim(self):
        ops = scripted_ops(30, seed=7)
        last_plan = {}
        for op in ops:
            if op.kind == "plan":
                last_plan[op.job] = op
            elif op.kind == "replan":
                previous = last_plan[op.job]
                assert (op.num_samples, op.cores) == (
                    previous.num_samples, previous.cores,
                )

    def test_default_schedule_kills_inside_the_script(self):
        schedule = default_service_schedule(24, seed=7)
        assert crash_indices(schedule, 24) == [10]


@pytest.mark.slow
class TestServiceChaosGate:
    def test_gate_passes_end_to_end(self):
        report = run_service_chaos(requests=16, seed=7)
        assert report.chaos.kills >= 1
        assert report.chaos.recovered_grants >= 1
        assert report.identical, report.first_divergence
        assert report.chaos.client_transport_errors >= 1  # rode out the kill
        assert "byte-identical" in report.render()
