"""Journal encode/replay tests: CRCs, torn tails, interior corruption."""

import json

import pytest

from repro.service.journal import (
    SCHEMA,
    CheckpointRecord,
    GrantRecord,
    JournalCorruptError,
    PlanJournal,
    ReleaseRecord,
    decode_line,
    encode_line,
    read_grants,
    replay,
)


def grant(seq: int, job: str = "job-a", cores: int = 8) -> GrantRecord:
    return GrantRecord(
        seq=seq,
        job=job,
        params_digest=f"digest-{seq:04d}",
        cores=cores,
        splits=(0, 3, 3, 0),
        reason="offload wins",
    )


class TestLineCodec:
    def test_roundtrip(self):
        record = grant(1).to_dict()
        assert decode_line(encode_line(record)) == record

    def test_canonical_encoding_is_stable(self):
        record = grant(1).to_dict()
        assert encode_line(record) == encode_line(dict(reversed(list(record.items()))))

    def test_flipped_byte_fails_crc(self):
        line = encode_line(grant(1).to_dict())
        damaged = line.replace("job-a", "job-b")
        with pytest.raises(ValueError, match="crc"):
            decode_line(damaged)

    def test_missing_crc_rejected(self):
        with pytest.raises(ValueError, match="no crc"):
            decode_line(json.dumps({"kind": "grant"}))


class TestReplay:
    def test_missing_file_is_empty_state(self, tmp_path):
        state = replay(str(tmp_path / "nope.jsonl"))
        assert state.grants == []
        assert state.committed == {}
        assert state.next_seq == 1
        assert not state.truncated_tail

    def test_grants_and_releases_rebuild_commitments(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with PlanJournal(path) as journal:
            journal.append_grant(grant(1, "job-a", cores=8))
            journal.append_grant(grant(2, "job-b", cores=4))
            journal.append_release(ReleaseRecord(seq=3, job="job-a", cores=8))
        state = replay(path)
        assert [g.seq for g in state.grants] == [1, 2]
        assert state.committed == {"job-b": 4}
        assert state.next_seq == 4

    def test_regrant_replaces_commitment(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with PlanJournal(path) as journal:
            journal.append_grant(grant(1, "job-a", cores=8))
            journal.append_grant(grant(2, "job-a", cores=12))
        state = replay(path)
        assert state.committed == {"job-a": 12}
        assert state.active_grants["job-a"].seq == 2

    def test_checkpoint_overrides_commitments(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with PlanJournal(path) as journal:
            journal.append_grant(grant(1, "job-a"))
            journal.append_checkpoint(2, {"job-z": 6})
        state = replay(path)
        assert state.committed == {"job-z": 6}
        assert state.next_seq == 3

    def test_torn_tail_dropped_and_flagged(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with PlanJournal(path) as journal:
            journal.append_grant(grant(1))
        with open(path, "a") as handle:
            handle.write('{"kind":"grant","seq":2,"jo')  # crash mid-append
        state = replay(path)
        assert state.truncated_tail
        assert [g.seq for g in state.grants] == [1]

    def test_interior_corruption_raises(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with PlanJournal(path) as journal:
            journal.append_grant(grant(1))
            journal.append_grant(grant(2))
        lines = open(path).read().splitlines()
        lines[1] = lines[1].replace("job-a", "job-X")  # not the tail
        with open(path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.raises(JournalCorruptError, match="refusing to skip"):
            replay(path)

    def test_wrong_schema_rejected(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with open(path, "w") as handle:
            handle.write(
                encode_line({"kind": "header", "schema": "bogus/v9", "seq": 0})
                + "\n"
            )
        with pytest.raises(JournalCorruptError, match=SCHEMA):
            replay(path)

    def test_no_wall_timestamps_in_journal(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with PlanJournal(path) as journal:
            journal.append_grant(grant(1))
            journal.append_release(ReleaseRecord(seq=2, job="job-a", cores=8))
            journal.append_checkpoint(3, {})
        for line in open(path).read().splitlines():
            record = decode_line(line)
            assert not any("time" in key for key in record)


class TestPlanJournal:
    def test_reopen_resumes_appending(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with PlanJournal(path) as journal:
            journal.append_grant(grant(1))
        with PlanJournal(path) as journal:
            assert journal.recovered.next_seq == 2
            journal.append_grant(grant(2))
        assert [g.seq for g in read_grants(path)] == [1, 2]

    def test_open_truncates_torn_tail(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with PlanJournal(path) as journal:
            journal.append_grant(grant(1))
        with open(path, "a") as handle:
            handle.write("garbage")
        with PlanJournal(path) as journal:
            assert journal.recovered.truncated_tail
            journal.append_grant(grant(2))
        # The torn line is gone; the journal replays cleanly end to end.
        state = replay(path)
        assert not state.truncated_tail
        assert [g.seq for g in state.grants] == [1, 2]

    def test_append_after_close_raises(self, tmp_path):
        journal = PlanJournal(str(tmp_path / "journal.jsonl"))
        journal.close()
        with pytest.raises(ValueError, match="closed"):
            journal.append_grant(grant(1))

    def test_checkpoint_record_sorts_jobs(self):
        record = CheckpointRecord(seq=5, committed=(("a", 1), ("b", 2)))
        assert record.to_dict()["committed"] == {"a": 1, "b": 2}
