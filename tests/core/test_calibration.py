"""Storage-CPU calibration probe tests."""

import dataclasses

import pytest

from repro.cluster.spec import standard_cluster
from repro.core.calibration import StorageSpeedProbe
from repro.core.decision import DecisionEngine
from repro.core.profiler import StageTwoProfiler


@pytest.fixture(scope="module")
def records(openimages_small, pipeline):
    return StageTwoProfiler().profile(openimages_small, pipeline)


class TestStorageSpeedProbe:
    @pytest.mark.parametrize("true_factor", [0.5, 1.0, 2.0, 4.0])
    def test_recovers_the_true_factor(
        self, openimages_small, pipeline, records, true_factor
    ):
        spec = standard_cluster(storage_cores=4)
        result = StorageSpeedProbe().probe(
            openimages_small, pipeline, spec, records, true_factor=true_factor
        )
        assert result.estimated_factor == pytest.approx(true_factor, rel=1e-6)

    def test_calibrated_spec_carries_the_estimate(
        self, openimages_small, pipeline, records
    ):
        spec = standard_cluster(storage_cores=4)
        result = StorageSpeedProbe().probe(
            openimages_small, pipeline, spec, records, true_factor=3.0
        )
        calibrated = result.calibrated_spec(spec)
        assert calibrated.storage_cpu_factor == pytest.approx(3.0)
        assert calibrated.storage_cores == spec.storage_cores

    def test_calibrated_plan_matches_omniscient_plan(
        self, openimages_small, pipeline, records
    ):
        base = standard_cluster(storage_cores=2)
        true_factor = 4.0
        result = StorageSpeedProbe().probe(
            openimages_small, pipeline, base, records, true_factor=true_factor
        )
        engine = DecisionEngine()
        calibrated_plan = engine.plan(
            records, result.calibrated_spec(base), gpu_time_s=0.1
        )
        omniscient_spec = dataclasses.replace(base, storage_cpu_factor=true_factor)
        omniscient_plan = engine.plan(records, omniscient_spec, gpu_time_s=0.1)
        assert list(calibrated_plan.splits) == list(omniscient_plan.splits)

    def test_uncalibrated_plan_overcommits_a_slow_node(
        self, openimages_small, pipeline, records
    ):
        base = standard_cluster(storage_cores=2)
        naive = DecisionEngine().plan(records, base, gpu_time_s=0.1)
        slow = dataclasses.replace(base, storage_cpu_factor=6.0)
        aware = DecisionEngine().plan(records, slow, gpu_time_s=0.1)
        # Planning as if CPUs were equal offloads more than a 6x-slower
        # node can absorb; the calibrated plan is smaller.
        assert aware.num_offloaded < naive.num_offloaded

    def test_probe_picks_expensive_samples(self, openimages_small, pipeline, records):
        probe = StorageSpeedProbe(probe_samples=5)
        ids = probe._pick_probe_ids(records)
        costs = sorted((r.prefix_cost(2) for r in records), reverse=True)
        picked = {records[i].prefix_cost(2) for i in ids}
        assert picked == set(costs[:5])

    def test_observation_network_subtraction(self, openimages_small, pipeline, records):
        spec = standard_cluster(storage_cores=4)
        result = StorageSpeedProbe(probe_samples=3).probe(
            openimages_small, pipeline, spec, records, true_factor=2.0
        )
        for obs in result.observations:
            assert obs.remote_cpu_s == pytest.approx(
                2.0 * obs.local_prefix_cost_s, rel=1e-9
            )

    def test_validation(self, openimages_small, pipeline, records):
        with pytest.raises(ValueError):
            StorageSpeedProbe(probe_samples=0)
        with pytest.raises(ValueError):
            StorageSpeedProbe(split=0)
        probe = StorageSpeedProbe()
        with pytest.raises(ValueError):
            probe.probe(
                openimages_small, pipeline,
                standard_cluster(storage_cores=0), records,
            )
        with pytest.raises(ValueError):
            probe.probe(
                openimages_small, pipeline,
                standard_cluster(), records, true_factor=0.0,
            )
