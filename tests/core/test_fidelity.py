"""FidelityPlanner tests: the byte-identity gate and the fidelity pass."""

import json
import math

import pytest

from repro.cluster.spec import standard_cluster
from repro.core.decision import DecisionEngine
from repro.core.fidelity import FidelityConfig, FidelityPlanner, plan_with_fidelity
from repro.core.plan import OffloadPlan
from repro.core.serialize import (
    plan_from_json,
    plan_to_json,
    records_from_json,
    records_to_json,
)
from repro.preprocessing.records import ProgressiveSampleRecord, SampleRecord
from repro.telemetry.audit import FIDELITY_DEGRADED, AuditLog

CROP = 224 * 224 * 3

#: PSNR ladder used throughout: scan 2 (33dB) clears a 30dB floor, scan 3
#: (45dB) clears a 40dB one, the full prefix is exact.
LADDER = (25.0, 33.0, 45.0, float("inf"))


def prog_record(sample_id, raw, psnrs=LADDER, prefix_cost=0.01):
    sizes = (raw, raw * 4, CROP, CROP, CROP * 4, CROP * 4)
    costs = (prefix_cost * 0.8, prefix_cost * 0.2, 0.0001, 0.0005, 0.0008)
    scan_sizes = (raw // 8, raw // 4, raw // 2, raw)
    return ProgressiveSampleRecord(
        sample_id, sizes, costs, scan_sizes=scan_sizes, scan_psnr_db=psnrs
    )


def plain_record(sample_id, raw, prefix_cost=0.01):
    sizes = (raw, raw * 4, CROP, CROP, CROP * 4, CROP * 4)
    costs = (prefix_cost * 0.8, prefix_cost * 0.2, 0.0001, 0.0005, 0.0008)
    return SampleRecord(sample_id, sizes, costs)


@pytest.fixture
def tight_spec():
    # A link slow enough that the split pass alone cannot unbind the
    # network for the record shapes below.
    return standard_cluster().with_bandwidth(40.0)


@pytest.fixture
def records():
    # raw < CROP: the split axis has nothing to offer (min stage is 0), so
    # any traffic relief must come from fidelity.
    return [prog_record(i, CROP // 2 + 4096 * i) for i in range(8)]


class TestByteIdentityGate:
    """Disabled (or inapplicable) fidelity must change nothing, bytewise."""

    def test_disabled_returns_the_engine_plan_object(self, records, tight_spec):
        engine = DecisionEngine()
        planner = FidelityPlanner(engine, FidelityConfig(enabled=False))
        base = engine.plan(records, tight_spec, gpu_time_s=0.01)
        plan = planner.plan(records, tight_spec, gpu_time_s=0.01)
        assert plan_to_json(plan) == plan_to_json(base)
        assert "scan_counts" not in json.loads(plan_to_json(plan))

    def test_disabled_audit_is_identical(self, records, tight_spec):
        base_audit, fid_audit = AuditLog(), AuditLog()
        DecisionEngine().plan(records, tight_spec, gpu_time_s=0.01, audit=base_audit)
        FidelityPlanner(config=FidelityConfig(enabled=False)).plan(
            records, tight_spec, gpu_time_s=0.01, audit=fid_audit
        )
        assert fid_audit.to_dicts() == base_audit.to_dicts()
        assert all("chosen_scans" not in d for d in fid_audit.to_dicts())

    def test_plain_records_pass_through_unchanged(self, tight_spec):
        # Enabled planner, but nothing progressive to degrade: the engine's
        # plan comes back as the same object.
        plain = [plain_record(i, CROP // 2) for i in range(4)]
        planner = FidelityPlanner()
        plan = planner.plan(plain, tight_spec, gpu_time_s=0.01)
        assert plan.scan_counts is None
        assert "fidelity" not in plan.reason

    def test_not_network_bound_passes_through(self, records, tight_spec):
        # Huge GPU time: nothing to fix, the base plan object is returned.
        engine = DecisionEngine()
        planner = FidelityPlanner(engine)
        plan = planner.plan(records, tight_spec, gpu_time_s=10_000.0)
        assert plan.scan_counts is None

    def test_records_serialization_is_unchanged_for_plain_records(self):
        plain = [plain_record(0, CROP)]
        entry = json.loads(records_to_json(plain))["records"][0]
        assert "scan_sizes" not in entry
        assert "scan_psnr_db" not in entry


class TestFidelityPass:
    def test_degrades_to_deepest_admissible_prefix(self, records, tight_spec):
        plan = FidelityPlanner(config=FidelityConfig(min_psnr_db=30.0)).plan(
            records, tight_spec, gpu_time_s=0.01
        )
        assert plan.num_degraded > 0
        # 33dB (scan 2) is the deepest rung clearing a 30dB floor.
        degraded = [c for c in plan.scan_counts if c is not None]
        assert set(degraded) == {2}
        assert "fidelity: degraded" in plan.reason

    def test_traffic_shrinks_and_splits_are_untouched(self, records, tight_spec):
        engine = DecisionEngine()
        base = engine.plan(records, tight_spec, gpu_time_s=0.01)
        plan = FidelityPlanner(engine).plan(records, tight_spec, gpu_time_s=0.01)
        assert list(plan.splits) == list(base.splits)
        assert plan.expected_traffic_bytes(records) < base.expected_traffic_bytes(
            records
        )

    def test_higher_floor_ships_more_bytes(self, records, tight_spec):
        def traffic(floor):
            plan = FidelityPlanner(config=FidelityConfig(min_psnr_db=floor)).plan(
                records, tight_spec, gpu_time_s=0.01
            )
            return plan.expected_traffic_bytes(records)

        assert traffic(25.0) <= traffic(30.0) <= traffic(40.0)

    def test_floor_above_every_rung_passes_through(self, records, tight_spec):
        plan = FidelityPlanner(config=FidelityConfig(min_psnr_db=50.0)).plan(
            records, tight_spec, gpu_time_s=0.01
        )
        assert plan.scan_counts is None

    def test_min_scans_floor_is_respected(self, records, tight_spec):
        plan = FidelityPlanner(
            config=FidelityConfig(min_psnr_db=30.0, min_scans=3)
        ).plan(records, tight_spec, gpu_time_s=0.01)
        degraded = [c for c in plan.scan_counts if c is not None]
        assert degraded and all(c >= 3 for c in degraded)

    def test_audit_amended_with_fidelity_outcome(self, records, tight_spec):
        audit = AuditLog()
        plan = FidelityPlanner().plan(
            records, tight_spec, gpu_time_s=0.01, audit=audit
        )
        degraded_ids = [
            i for i, c in enumerate(plan.scan_counts or []) if c is not None
        ]
        assert degraded_ids
        for sample_id in degraded_ids:
            entry = audit.get(sample_id)
            assert entry.outcome == FIDELITY_DEGRADED
            assert entry.chosen_scans == plan.scan_count_for(sample_id)
            assert entry.fidelity_psnr_db == pytest.approx(33.0)
            assert "was " in entry.reason
        assert "fidelity" in audit.explain(degraded_ids[0])

    def test_convenience_wrapper_matches_planner(self, records, tight_spec):
        direct = FidelityPlanner().plan(records, tight_spec, gpu_time_s=0.01)
        wrapped = plan_with_fidelity(records, tight_spec, 0.01)
        assert plan_to_json(wrapped) == plan_to_json(direct)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FidelityConfig(min_scans=0)
        with pytest.raises(ValueError):
            FidelityConfig(psnr_cap_db=0.0)


class TestPlanScanCounts:
    def test_scan_counts_require_split_zero(self):
        with pytest.raises(ValueError):
            OffloadPlan(splits=[2, 0], scan_counts=[1, None])

    def test_scan_counts_length_must_match(self):
        with pytest.raises(ValueError):
            OffloadPlan(splits=[0, 0], scan_counts=[1])

    def test_scan_counts_must_be_positive(self):
        with pytest.raises(ValueError):
            OffloadPlan(splits=[0], scan_counts=[0])

    def test_accessors(self):
        plan = OffloadPlan(splits=[0, 0, 2], scan_counts=[2, None, None])
        assert plan.num_degraded == 1
        assert plan.scan_count_for(0) == 2
        assert plan.scan_count_for(1) is None

    def test_expected_traffic_uses_fidelity_sizes(self, records):
        plan = OffloadPlan(
            splits=[0] * len(records),
            scan_counts=[2] + [None] * (len(records) - 1),
        )
        expected = sum(r.raw_size for r in records) - records[0].fidelity_savings(2)
        assert plan.expected_traffic_bytes(records, overhead_bytes=0) == expected

    def test_expected_traffic_rejects_plain_records_with_counts(self):
        plain = [plain_record(0, CROP)]
        plan = OffloadPlan(splits=[0], scan_counts=[1])
        with pytest.raises(ValueError):
            plan.expected_traffic_bytes(plain, overhead_bytes=0)

    def test_clamped_for_preserves_scan_counts(self, records, tight_spec):
        plan = FidelityPlanner().plan(records, tight_spec, gpu_time_s=0.01)
        assert plan.num_degraded > 0
        clamped = plan.clamped_for(tight_spec)
        assert clamped.scan_counts == plan.scan_counts


class TestSerialization:
    def test_plan_with_scan_counts_round_trips(self, records, tight_spec):
        plan = FidelityPlanner().plan(records, tight_spec, gpu_time_s=0.01)
        assert plan.num_degraded > 0
        restored = plan_from_json(plan_to_json(plan))
        assert tuple(restored.scan_counts) == tuple(plan.scan_counts)
        assert plan_to_json(restored) == plan_to_json(plan)

    def test_progressive_records_round_trip(self, records):
        restored = records_from_json(records_to_json(records))
        assert all(isinstance(r, ProgressiveSampleRecord) for r in restored)
        assert restored == records
        assert math.isinf(restored[0].scan_psnr_db[-1])

    def test_mixed_records_round_trip_preserves_types(self):
        mixed = [plain_record(0, CROP), prog_record(1, CROP)]
        restored = records_from_json(records_to_json(mixed))
        assert type(restored[0]) is SampleRecord
        assert type(restored[1]) is ProgressiveSampleRecord
        assert restored == mixed

    def test_inf_psnr_is_valid_json(self, records):
        # "inf" must serialize as a string sentinel, not a bare Infinity
        # literal (which json.loads in strict mode rejects).
        text = records_to_json(records)
        entry = json.loads(text)["records"][0]
        assert entry["scan_psnr_db"][-1] == "inf"

    def test_audit_fidelity_fields_round_trip(self, records, tight_spec):
        audit = AuditLog()
        FidelityPlanner().plan(records, tight_spec, gpu_time_s=0.01, audit=audit)
        restored = AuditLog.from_dicts(audit.to_dicts())
        assert restored.to_dicts() == audit.to_dicts()
        assert any(r.chosen_scans is not None for r in restored)
