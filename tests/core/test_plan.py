"""OffloadPlan tests."""

import pytest

from repro.cluster.spec import standard_cluster
from repro.core.plan import OffloadPlan
from repro.preprocessing.records import SampleRecord


def record(sample_id, sizes, costs=None):
    if costs is None:
        costs = [0.01] * (len(sizes) - 1)
    return SampleRecord(sample_id, tuple(sizes), tuple(costs))


class TestOffloadPlan:
    def test_counts(self):
        plan = OffloadPlan(splits=[0, 2, 0, 3])
        assert plan.num_offloaded == 2
        assert plan.offload_fraction == 0.5
        assert len(plan) == 4

    def test_split_histogram(self):
        plan = OffloadPlan(splits=[0, 2, 2, 5])
        assert plan.split_histogram() == {0: 1, 2: 2, 5: 1}

    def test_no_offload_constructor(self):
        plan = OffloadPlan.no_offload(3, reason="why")
        assert list(plan.splits) == [0, 0, 0]
        assert plan.reason == "why"

    def test_uniform_constructor(self):
        plan = OffloadPlan.uniform(3, split=2)
        assert list(plan.splits) == [2, 2, 2]

    def test_rejects_negative_splits(self):
        with pytest.raises(ValueError):
            OffloadPlan(splits=[0, -1])

    def test_empty_plan(self):
        plan = OffloadPlan(splits=[])
        assert plan.offload_fraction == 0.0

    def test_clamped_for_no_storage_cores(self):
        plan = OffloadPlan.uniform(3, split=2, reason="orig")
        clamped = plan.clamped_for(standard_cluster(storage_cores=0))
        assert clamped.num_offloaded == 0
        assert "clamped" in clamped.reason

    def test_clamp_is_noop_when_offloading_possible(self):
        plan = OffloadPlan.uniform(3, split=2)
        assert plan.clamped_for(standard_cluster(storage_cores=1)) is plan

    def test_clamp_is_noop_for_empty_plans(self):
        plan = OffloadPlan.no_offload(3)
        assert plan.clamped_for(standard_cluster(storage_cores=0)) is plan

    def test_expected_traffic(self):
        records = [
            record(0, [100, 300, 50, 50, 200, 200]),
            record(1, [80, 300, 50, 50, 200, 200]),
        ]
        plan = OffloadPlan(splits=[2, 0])
        assert plan.expected_traffic_bytes(records) == 50 + 80
        assert plan.expected_traffic_bytes(records, overhead_bytes=10) == 150

    def test_expected_traffic_validates_length(self):
        with pytest.raises(ValueError):
            OffloadPlan(splits=[0]).expected_traffic_bytes([])
