"""Plan/record JSON persistence tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.plan import OffloadPlan
from repro.core.serialize import (
    plan_from_json,
    plan_to_json,
    records_from_json,
    records_to_json,
)
from repro.preprocessing.records import SampleRecord


class TestPlanSerialization:
    def test_round_trip(self):
        plan = OffloadPlan(splits=[0, 2, 0, 5], reason="test plan")
        restored = plan_from_json(plan_to_json(plan))
        assert list(restored.splits) == [0, 2, 0, 5]
        assert restored.reason == "test plan"

    def test_empty_plan(self):
        restored = plan_from_json(plan_to_json(OffloadPlan(splits=[])))
        assert len(restored) == 0

    @given(splits=st.lists(st.integers(0, 5), max_size=50))
    @settings(max_examples=25, deadline=None)
    def test_round_trip_property(self, splits):
        plan = OffloadPlan(splits=splits)
        assert list(plan_from_json(plan_to_json(plan)).splits) == splits

    def test_rejects_wrong_kind(self):
        with pytest.raises(ValueError, match="kind"):
            plan_from_json('{"kind": "something-else", "version": 1}')

    def test_rejects_wrong_version(self):
        with pytest.raises(ValueError, match="version"):
            plan_from_json('{"kind": "offload-plan", "version": 99, "splits": []}')


class TestRecordSerialization:
    def make_records(self):
        return [
            SampleRecord(0, (100, 400, 50, 50, 200, 200), (0.1, 0.2, 0.01, 0.02, 0.03)),
            SampleRecord(1, (80, 300, 50, 50, 200, 200), (0.2, 0.1, 0.01, 0.02, 0.03)),
        ]

    def test_round_trip(self):
        records = self.make_records()
        restored = records_from_json(records_to_json(records))
        assert restored == records

    def test_derived_quantities_survive(self):
        restored = records_from_json(records_to_json(self.make_records()))
        assert restored[0].min_stage == 2
        assert restored[0].offload_efficiency > 0

    def test_empty(self):
        assert records_from_json(records_to_json([])) == []

    def test_rejects_wrong_kind(self):
        with pytest.raises(ValueError):
            records_from_json('{"kind": "offload-plan", "version": 1}')

    def test_plans_from_restored_records_identical(self, openimages_small, pipeline):
        from repro.cluster.spec import standard_cluster
        from repro.core.decision import DecisionEngine
        from repro.core.profiler import StageTwoProfiler

        records = StageTwoProfiler().profile(openimages_small, pipeline)
        restored = records_from_json(records_to_json(records))
        spec = standard_cluster(storage_cores=8)
        original = DecisionEngine().plan(records, spec, gpu_time_s=0.1)
        replayed = DecisionEngine().plan(restored, spec, gpu_time_s=0.1)
        assert list(original.splits) == list(replayed.splits)
