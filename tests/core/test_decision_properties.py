"""Property-based invariants of the decision engine.

Random populations of plausible sample records; the engine must uphold its
contract on every one of them.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.epoch_model import EpochMetrics, EpochModel
from repro.cluster.spec import standard_cluster
from repro.core.decision import DecisionConfig, DecisionEngine
from repro.preprocessing.records import SampleRecord

CROP = 224 * 224 * 3


@st.composite
def sample_records(draw, max_samples=40):
    """A population shaped like the real pipeline's records."""
    count = draw(st.integers(1, max_samples))
    records = []
    for sample_id in range(count):
        raw = draw(st.integers(2_000, 1_200_000))
        decode_cost = draw(st.floats(0.001, 0.05))
        crop_cost = draw(st.floats(0.0005, 0.01))
        records.append(
            SampleRecord(
                sample_id=sample_id,
                stage_sizes=(raw, raw * 4, CROP, CROP, CROP * 4, CROP * 4),
                op_costs=(decode_cost, crop_cost, 0.0001, 0.0005, 0.0008),
            )
        )
    return records


@st.composite
def clusters(draw):
    return standard_cluster(
        storage_cores=draw(st.integers(1, 64)),
        bandwidth_mbps=draw(st.floats(10.0, 10_000.0)),
        compute_cores=draw(st.integers(1, 64)),
    )


def baseline_estimate(records, spec, gpu_time_s):
    return EpochModel(spec).estimate(
        EpochMetrics(
            gpu_time_s=gpu_time_s,
            compute_cpu_s=sum(r.total_cost for r in records),
            storage_cpu_s=0.0,
            traffic_bytes=float(
                sum(r.raw_size for r in records)
                + spec.response_overhead_bytes * len(records)
            ),
        )
    )


class TestEngineInvariants:
    @given(records=sample_records(), spec=clusters(), gpu=st.floats(0.0, 50.0))
    @settings(max_examples=60, deadline=None)
    def test_plan_structurally_valid(self, records, spec, gpu):
        plan = DecisionEngine().plan(records, spec, gpu_time_s=gpu)
        assert len(plan) == len(records)
        for record in records:
            split = plan.split_for(record.sample_id)
            assert 0 <= split <= record.num_ops
            if split > 0:
                # Only ever offloads to the sample's own minimum stage, and
                # only for samples with positive efficiency.
                assert split == record.min_stage
                assert record.offload_efficiency > 0

    @given(records=sample_records(), spec=clusters(), gpu=st.floats(0.0, 50.0))
    @settings(max_examples=60, deadline=None)
    def test_guarded_plan_never_worse_than_baseline(self, records, spec, gpu):
        plan = DecisionEngine(DecisionConfig(never_worsen=True)).plan(
            records, spec, gpu_time_s=gpu
        )
        if plan.expected is None:
            return
        baseline = baseline_estimate(records, spec, gpu)
        assert plan.expected.epoch_time_s <= baseline.epoch_time_s + 1e-6

    @given(records=sample_records(), gpu=st.floats(0.0, 50.0))
    @settings(max_examples=40, deadline=None)
    def test_more_cores_never_shrink_the_plan_value(self, records, gpu):
        engine = DecisionEngine()
        few = engine.plan(records, standard_cluster(storage_cores=1), gpu_time_s=gpu)
        many = engine.plan(records, standard_cluster(storage_cores=48), gpu_time_s=gpu)
        if few.expected is not None and many.expected is not None:
            assert many.expected.epoch_time_s <= few.expected.epoch_time_s + 1e-9

    @given(records=sample_records())
    @settings(max_examples=30, deadline=None)
    def test_deterministic(self, records):
        spec = standard_cluster(storage_cores=4)
        engine = DecisionEngine()
        assert list(engine.plan(records, spec, 1.0).splits) == list(
            engine.plan(records, spec, 1.0).splits
        )

    @given(records=sample_records())
    @settings(max_examples=30, deadline=None)
    def test_traffic_never_increases(self, records):
        spec = standard_cluster(storage_cores=8)
        plan = DecisionEngine().plan(records, spec, gpu_time_s=0.1)
        planned = plan.expected_traffic_bytes(records)
        raw = sum(r.raw_size for r in records)
        assert planned <= raw
