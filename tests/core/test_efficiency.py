"""Efficiency-distribution tests (Figure 1c machinery)."""

import pytest

from repro.core.efficiency import (
    efficiencies,
    efficiency_cdf,
    efficiency_distribution,
)
from repro.core.profiler import StageTwoProfiler
from repro.preprocessing.records import SampleRecord

CROP = 224 * 224 * 3


def record(sample_id, raw):
    sizes = (raw, raw * 4, CROP, CROP, CROP * 4, CROP * 4)
    return SampleRecord(sample_id, sizes, (0.01,) * 5)


class TestEfficiencies:
    def test_array_order_matches_records(self):
        records = [record(0, CROP * 2), record(1, CROP // 2)]
        values = efficiencies(records)
        assert values[0] > 0
        assert values[1] == 0.0

    def test_distribution_zero_fraction(self):
        records = [record(i, CROP // 2) for i in range(3)] + [record(3, CROP * 2)]
        summary = efficiency_distribution(records)
        assert summary.zero_fraction == pytest.approx(0.75)
        assert summary.mean_nonzero > 0

    def test_empty_records(self):
        summary = efficiency_distribution([])
        assert summary.num_samples == 0
        assert summary.zero_fraction == 0.0

    def test_all_zero(self):
        summary = efficiency_distribution([record(0, 100)])
        assert summary.zero_fraction == 1.0
        assert summary.median_nonzero == 0.0

    def test_openimages_zero_fraction_matches_paper(self, openimages_small, pipeline):
        records = StageTwoProfiler().profile(openimages_small, pipeline)
        summary = efficiency_distribution(records)
        # Paper: 24% of OpenImages samples have ratio 0.
        assert summary.zero_fraction == pytest.approx(0.24, abs=0.05)


class TestCdf:
    def test_cdf_monotone(self, openimages_small, pipeline):
        records = StageTwoProfiler().profile(openimages_small, pipeline)
        points = efficiency_cdf(records, points=50)
        values = [v for v, _ in points]
        quantiles = [q for _, q in points]
        assert values == sorted(values)
        assert quantiles[0] == 0.0 and quantiles[-1] == 1.0

    def test_cdf_empty(self):
        assert efficiency_cdf([]) == []

    def test_cdf_validates_points(self):
        with pytest.raises(ValueError):
            efficiency_cdf([record(0, CROP * 2)], points=1)
