"""Decision engine tests: the greedy efficiency-ordered selection."""

import pytest

from repro.cluster.epoch_model import EpochMetrics, EpochModel
from repro.cluster.spec import standard_cluster
from repro.core.decision import DecisionConfig, DecisionEngine
from repro.core.profiler import StageTwoProfiler
from repro.preprocessing.records import SampleRecord

CROP = 224 * 224 * 3


def record(sample_id, raw, prefix_cost=0.01):
    """A record shaped like the real pipeline: min at stage 2 iff raw > CROP."""
    sizes = (raw, raw * 4, CROP, CROP, CROP * 4, CROP * 4)
    costs = (prefix_cost * 0.8, prefix_cost * 0.2, 0.0001, 0.0005, 0.0008)
    return SampleRecord(sample_id, sizes, costs)


@pytest.fixture
def engine():
    return DecisionEngine()


class TestBasicPlans:
    def test_no_storage_cores_plans_nothing(self, engine):
        records = [record(0, 10 * CROP)]
        plan = engine.plan(records, standard_cluster(storage_cores=0), gpu_time_s=0.1)
        assert plan.num_offloaded == 0
        assert "no CPU cores" in plan.reason

    def test_no_beneficial_samples_plans_nothing(self, engine):
        records = [record(i, CROP // 2) for i in range(10)]
        plan = engine.plan(records, standard_cluster(), gpu_time_s=0.1)
        assert plan.num_offloaded == 0
        assert "positive offloading efficiency" in plan.reason

    def test_beneficial_samples_offloaded_at_min_stage(self, engine):
        records = [record(0, 3 * CROP), record(1, CROP // 2)]
        plan = engine.plan(records, standard_cluster(), gpu_time_s=0.001)
        assert plan.split_for(0) == 2
        assert plan.split_for(1) == 0

    def test_expected_estimate_attached(self, engine):
        records = [record(i, 2 * CROP) for i in range(5)]
        plan = engine.plan(records, standard_cluster(), gpu_time_s=0.001)
        assert plan.expected is not None
        assert plan.expected.epoch_time_s > 0


class TestGreedyOrder:
    def test_highest_efficiency_first_under_scarcity(self, engine):
        # One core and a tiny budget: only the best sample should fit
        # before T_CS catches T_Net.
        spec = standard_cluster(storage_cores=1)
        records = [
            record(0, 10 * CROP, prefix_cost=0.050),  # high savings, efficient
            record(1, 2 * CROP, prefix_cost=0.050),  # same cost, less savings
        ]
        # Shrink the network so T_Net is small and one offload flips it.
        spec = spec.with_bandwidth(5000.0)
        plan = engine.plan(records, spec, gpu_time_s=0.0)
        if plan.num_offloaded == 1:
            assert plan.split_for(0) == 2
            assert plan.split_for(1) == 0

    def test_stops_when_network_not_predominant(self, engine):
        # Huge GPU time: network is never the bottleneck -> no offloads.
        records = [record(i, 5 * CROP) for i in range(20)]
        plan = engine.plan(records, standard_cluster(), gpu_time_s=10_000.0)
        assert plan.num_offloaded == 0
        assert "network no longer predominant" in plan.reason
        assert "gpu" in plan.reason

    def test_offloads_everything_beneficial_with_ample_cores(
        self, engine, openimages_small, pipeline
    ):
        records = StageTwoProfiler().profile(openimages_small, pipeline)
        plan = engine.plan(records, standard_cluster(storage_cores=48), gpu_time_s=0.1)
        beneficial = sum(1 for r in records if r.offload_efficiency > 0)
        assert plan.num_offloaded == beneficial

    def test_scarce_cores_shrink_the_plan(self, engine, openimages_small, pipeline):
        records = StageTwoProfiler().profile(openimages_small, pipeline)
        sizes = {}
        for cores in (1, 4, 48):
            plan = engine.plan(
                records, standard_cluster(storage_cores=cores), gpu_time_s=0.1
            )
            sizes[cores] = plan.num_offloaded
        assert sizes[1] < sizes[4] <= sizes[48]

    def test_plan_never_worse_than_baseline(self, engine, openimages_small, pipeline):
        records = StageTwoProfiler().profile(openimages_small, pipeline)
        for cores in (1, 2, 8):
            spec = standard_cluster(storage_cores=cores)
            plan = engine.plan(records, spec, gpu_time_s=0.1)
            baseline_traffic = sum(r.raw_size for r in records) + len(records) * spec.response_overhead_bytes
            baseline = EpochModel(spec).estimate(
                EpochMetrics(
                    gpu_time_s=0.1,
                    compute_cpu_s=sum(r.total_cost for r in records),
                    storage_cpu_s=0.0,
                    traffic_bytes=float(baseline_traffic),
                )
            )
            assert plan.expected.epoch_time_s <= baseline.epoch_time_s + 1e-9


class TestOrderingConfig:
    def records_mixed(self):
        # Sample 0: huge savings, huge cost (efficiency modest).
        # Sample 1: modest savings, tiny cost (efficiency high).
        return [
            record(0, 20 * CROP, prefix_cost=2.0),
            record(1, 2 * CROP, prefix_cost=0.001),
        ]

    def test_efficiency_order_takes_cheap_sample_first(self):
        spec = standard_cluster(storage_cores=1, bandwidth_mbps=100.0)
        plan = DecisionEngine(DecisionConfig(order="efficiency")).plan(
            self.records_mixed(), spec, gpu_time_s=0.0
        )
        # Both may fit; but if only one did, it would be sample 1.  Verify
        # ranking directly through the candidate metric.
        recs = self.records_mixed()
        assert recs[1].offload_efficiency > recs[0].offload_efficiency
        assert plan.split_for(1) > 0

    def test_savings_order_takes_biggest_sample_first(self):
        # The tiny population makes the stop rule fire after one admission,
        # exposing which candidate each ordering ranks first.
        recs = self.records_mixed()
        assert recs[0].best_savings > recs[1].best_savings
        plan = DecisionEngine(DecisionConfig(order="savings", never_worsen=False)).plan(
            recs, standard_cluster(storage_cores=48), gpu_time_s=0.0
        )
        assert plan.split_for(0) > 0  # biggest-savings sample admitted first

    def test_arrival_order_takes_lowest_id_first(self):
        plan = DecisionEngine(DecisionConfig(order="arrival", never_worsen=False)).plan(
            self.records_mixed(), standard_cluster(storage_cores=48), gpu_time_s=0.0
        )
        assert plan.split_for(0) > 0

    def test_unknown_order_rejected(self):
        with pytest.raises(ValueError, match="order"):
            DecisionConfig(order="best-first")

    def test_orders_converge_with_ample_cores(self, openimages_small, pipeline):
        records = StageTwoProfiler().profile(openimages_small, pipeline)
        spec = standard_cluster(storage_cores=48)
        plans = {
            order: DecisionEngine(DecisionConfig(order=order)).plan(
                records, spec, gpu_time_s=0.1
            )
            for order in ("efficiency", "savings", "arrival")
        }
        offloaded = {sorted_tuple for sorted_tuple in
                     {tuple(sorted(i for i, s in enumerate(p.splits) if s > 0))
                      for p in plans.values()}}
        assert len(offloaded) == 1  # identical offload sets


class TestNeverWorsenGuard:
    def overshoot_scenario(self):
        # Network-bound baseline (slow link), but the only beneficial
        # sample's prefix costs 50 CPU-seconds: offloading it onto the
        # single storage core would make T_CS the new, *worse* bottleneck.
        spec = standard_cluster(storage_cores=1, bandwidth_mbps=5.0)
        records = [record(0, 50 * CROP, prefix_cost=50.0)]
        return spec, records

    def test_guard_skips_overshooting_samples(self):
        spec, records = self.overshoot_scenario()
        guarded = DecisionEngine(DecisionConfig(never_worsen=True)).plan(
            records, spec, gpu_time_s=0.0
        )
        assert guarded.num_offloaded == 0
        assert "skipped" in guarded.reason

    def test_unguarded_engine_takes_the_sample(self):
        spec, records = self.overshoot_scenario()
        raw = DecisionEngine(DecisionConfig(never_worsen=False)).plan(
            records, spec, gpu_time_s=0.0
        )
        assert raw.num_offloaded == 1

    def test_guard_preserves_good_samples(self, openimages_small, pipeline):
        records = StageTwoProfiler().profile(openimages_small, pipeline)
        spec = standard_cluster(storage_cores=48)
        guarded = DecisionEngine(DecisionConfig(never_worsen=True)).plan(
            records, spec, gpu_time_s=0.1
        )
        unguarded = DecisionEngine(DecisionConfig(never_worsen=False)).plan(
            records, spec, gpu_time_s=0.1
        )
        # With ample cores nothing overshoots, so the guard changes nothing.
        assert list(guarded.splits) == list(unguarded.splits)
