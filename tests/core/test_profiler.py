"""Two-stage profiler tests."""

import dataclasses

import pytest

from repro.cluster.spec import standard_cluster
from repro.core.profiler import (
    BottleneckKind,
    StageOneProfiler,
    StageTwoProfiler,
    ThroughputProbe,
)
from repro.workloads.models import get_model_profile


class TestThroughputProbe:
    def test_bottleneck_is_minimum(self):
        probe = ThroughputProbe(5.0, 2.0, 9.0, 50)
        assert probe.bottleneck is BottleneckKind.IO
        assert probe.io_bound

    def test_gpu_bound(self):
        probe = ThroughputProbe(1.0, 2.0, 9.0, 50)
        assert probe.bottleneck is BottleneckKind.GPU
        assert not probe.io_bound

    def test_cpu_bound(self):
        probe = ThroughputProbe(5.0, 6.0, 1.0, 50)
        assert probe.bottleneck is BottleneckKind.CPU


class TestStageOne:
    def test_alexnet_at_500mbps_is_io_bound(self, openimages_small, pipeline, alexnet):
        probe = StageOneProfiler().probe(
            openimages_small, pipeline, standard_cluster(), alexnet, batch_size=64
        )
        assert probe.io_bound

    def test_resnet50_at_high_bandwidth_is_gpu_bound(self, openimages_small, pipeline):
        resnet50 = get_model_profile("resnet50", "rtx6000")
        spec = standard_cluster(bandwidth_mbps=100_000.0)
        probe = StageOneProfiler().probe(
            openimages_small, pipeline, spec, resnet50, batch_size=64
        )
        assert probe.bottleneck is BottleneckKind.GPU

    def test_starved_compute_cores_cpu_bound(self, openimages_small, pipeline, alexnet):
        spec = standard_cluster(
            compute_cores=1, bandwidth_mbps=100_000.0
        )
        probe = StageOneProfiler().probe(
            openimages_small, pipeline, spec, alexnet, batch_size=64
        )
        assert probe.bottleneck is BottleneckKind.CPU

    def test_probe_uses_limited_sample_prefix(self, openimages_small, pipeline, alexnet):
        probe = StageOneProfiler(probe_batches=2).probe(
            openimages_small, pipeline, standard_cluster(), alexnet, batch_size=10
        )
        assert probe.probe_batches == 2

    def test_empty_dataset_rejected(self, pipeline, alexnet):
        from repro.data.trace import TraceDataset

        empty = TraceDataset([], [], [])
        with pytest.raises(ValueError):
            StageOneProfiler().probe(empty, pipeline, standard_cluster(), alexnet)

    def test_validates_probe_batches(self):
        with pytest.raises(ValueError):
            StageOneProfiler(probe_batches=0)


class TestStageTwo:
    def test_profiles_every_sample(self, openimages_small, pipeline):
        records = StageTwoProfiler().profile(openimages_small, pipeline)
        assert len(records) == len(openimages_small)
        assert [r.sample_id for r in records] == list(range(len(openimages_small)))

    def test_records_match_raw_sizes(self, openimages_small, pipeline):
        records = StageTwoProfiler().profile(openimages_small, pipeline)
        for record in records[:20]:
            assert record.raw_size == openimages_small.raw_meta(record.sample_id).nbytes

    def test_real_execution_matches_simulation(self, materialized_tiny, pipeline):
        simulated = StageTwoProfiler(use_real_execution=False).profile(
            materialized_tiny, pipeline, seed=3
        )
        executed = StageTwoProfiler(use_real_execution=True).profile(
            materialized_tiny, pipeline, seed=3
        )
        for sim, real in zip(simulated, executed):
            assert sim.stage_sizes == real.stage_sizes
            assert sim.op_costs == pytest.approx(real.op_costs)

    def test_real_execution_sharded_matches_sequential(self, materialized_tiny, pipeline):
        profiler = StageTwoProfiler(use_real_execution=True)
        sequential = profiler.profile(materialized_tiny, pipeline, seed=3)
        sharded = profiler.profile(
            materialized_tiny, pipeline, seed=3, parallel="sharded:3"
        )
        assert [dataclasses.asdict(r) for r in sharded] == [
            dataclasses.asdict(r) for r in sequential
        ]

    def test_real_execution_vectorized_spec_degrades_to_sequential(
        self, materialized_tiny, pipeline
    ):
        profiler = StageTwoProfiler(use_real_execution=True)
        sequential = profiler.profile(materialized_tiny, pipeline, seed=3)
        vectorized = profiler.profile(
            materialized_tiny, pipeline, seed=3, parallel="vectorized"
        )
        assert [dataclasses.asdict(r) for r in vectorized] == [
            dataclasses.asdict(r) for r in sequential
        ]

    def test_real_execution_requires_materialized(self, openimages_small, pipeline):
        with pytest.raises(ValueError):
            StageTwoProfiler(use_real_execution=True).profile(
                openimages_small, pipeline
            )

    def test_epoch_changes_costs_not_threshold_sizes(self, openimages_small, pipeline):
        e0 = StageTwoProfiler().profile(openimages_small, pipeline, epoch=0)
        e1 = StageTwoProfiler().profile(openimages_small, pipeline, epoch=1)
        # Stage sizes are epoch-invariant (crop target fixed)...
        assert all(a.stage_sizes == b.stage_sizes for a, b in zip(e0, e1))
        # ...but crop geometry redraws, so some costs change.
        assert any(a.op_costs != b.op_costs for a, b in zip(e0, e1))
