"""Planning-path logging tests."""

import logging

import pytest

from repro.cluster.spec import standard_cluster
from repro.core.policy import PolicyContext
from repro.core.sophon import Sophon
from repro.workloads.models import get_model_profile


@pytest.fixture
def context(openimages_small, pipeline):
    return PolicyContext(
        dataset=openimages_small,
        pipeline=pipeline,
        spec=standard_cluster(storage_cores=8),
        model=get_model_profile("alexnet"),
        batch_size=64,
        seed=0,
    )


class TestPlanningLogs:
    def test_stage_one_probe_logged(self, context, caplog):
        with caplog.at_level(logging.INFO, logger="repro.core.sophon"):
            Sophon().plan(context)
        assert any("stage-one probe" in r.message for r in caplog.records)
        assert any("io-bound" in r.message for r in caplog.records)

    def test_decision_summary_logged(self, context, caplog):
        with caplog.at_level(logging.INFO, logger="repro.core.decision"):
            plan = Sophon().plan(context)
        decisions = [r for r in caplog.records if "decision:" in r.message]
        assert len(decisions) == 1
        assert f"offloaded {plan.num_offloaded}" in decisions[0].message

    def test_silent_by_default(self, context, capsys):
        Sophon().plan(context)
        assert capsys.readouterr().err == ""
