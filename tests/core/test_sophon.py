"""Sophon policy facade tests."""

import pytest

from repro.cluster.spec import standard_cluster
from repro.core.policy import PolicyContext
from repro.core.sophon import Sophon
from repro.workloads.models import get_model_profile


def context(dataset, pipeline, spec, model_name="alexnet", batch_size=64, gpu="rtx6000"):
    return PolicyContext(
        dataset=dataset,
        pipeline=pipeline,
        spec=spec,
        model=get_model_profile(model_name, gpu),
        batch_size=batch_size,
        seed=0,
    )


class TestSophon:
    def test_io_bound_workload_gets_offloads(self, openimages_small, pipeline):
        ctx = context(openimages_small, pipeline, standard_cluster(storage_cores=48))
        plan = Sophon().plan(ctx)
        assert plan.num_offloaded > 0
        frac = plan.offload_fraction
        assert frac == pytest.approx(0.76, abs=0.06)  # paper's benefit share

    def test_gpu_bound_workload_declines(self, openimages_small, pipeline):
        spec = standard_cluster(bandwidth_mbps=100_000.0)
        ctx = context(openimages_small, pipeline, spec, model_name="resnet50")
        policy = Sophon()
        plan = policy.plan(ctx)
        assert plan.num_offloaded == 0
        assert "gpu-bound" in plan.reason
        assert policy.last_probe is not None
        assert not policy.last_probe.io_bound

    def test_no_storage_cores_declines(self, openimages_small, pipeline):
        ctx = context(openimages_small, pipeline, standard_cluster(storage_cores=0))
        plan = Sophon().plan(ctx)
        assert plan.num_offloaded == 0

    def test_skip_stage_one_forces_planning(self, openimages_small, pipeline):
        spec = standard_cluster(bandwidth_mbps=100_000.0)
        ctx = context(openimages_small, pipeline, spec, model_name="resnet50")
        plan = Sophon(skip_stage_one=True).plan(ctx)
        # Without the stage-one gate, the decision engine still refuses:
        # the network is not the predominant metric.
        assert plan.num_offloaded == 0
        assert "network no longer predominant" in plan.reason

    def test_splits_are_min_stage_splits(self, openimages_small, pipeline):
        ctx = context(openimages_small, pipeline, standard_cluster(storage_cores=48))
        plan = Sophon().plan(ctx)
        records = ctx.records()
        for record in records:
            split = plan.split_for(record.sample_id)
            if split > 0:
                assert split == record.min_stage

    def test_capabilities_row_full(self):
        caps = Sophon.capabilities
        assert caps.operation_selective
        assert caps.data_partial
        assert caps.data_selective
        assert caps.to_near_storage


class TestPolicyContext:
    def test_records_cached(self, openimages_small, pipeline):
        ctx = context(openimages_small, pipeline, standard_cluster())
        assert ctx.records() is ctx.records()

    def test_records_for_other_epoch_not_cached(self, openimages_small, pipeline):
        ctx = context(openimages_small, pipeline, standard_cluster())
        assert ctx.records(epoch=1) is not ctx.records(epoch=1)

    def test_effective_batch_size_defaults_to_model(self, openimages_small, pipeline):
        ctx = PolicyContext(
            dataset=openimages_small,
            pipeline=pipeline,
            spec=standard_cluster(),
            model=get_model_profile("alexnet"),
        )
        assert ctx.effective_batch_size == 256

    def test_epoch_gpu_time(self, openimages_small, pipeline, alexnet):
        ctx = context(openimages_small, pipeline, standard_cluster())
        expected = len(openimages_small) / alexnet.images_per_second
        assert ctx.epoch_gpu_time_s == pytest.approx(expected)
