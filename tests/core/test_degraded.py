"""Degraded-mode fetcher: demotion, outage accounting, bit-identity."""

import numpy as np
import pytest

from repro.core.degraded import DegradedModeFetcher, OutageReport
from repro.data.loader import DataLoader, DirectFetcher
from repro.rpc import InMemoryChannel, StorageClient, StorageServer
from repro.rpc.breaker import BreakerState, CircuitBreaker
from repro.rpc.messages import ChecksumError


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        self.now += 1.0
        return self.now


class FailingFetcher:
    """Delegates to ``inner``; raises ``exc`` while ``down`` is True."""

    def __init__(self, inner, exc=ConnectionError):
        self.inner = inner
        self.exc = exc
        self.down = False
        self.calls = 0

    def fetch(self, sample_id, epoch, split):
        self.calls += 1
        if self.down:
            raise self.exc("storage node unreachable")
        return self.inner.fetch(sample_id, epoch, split)


@pytest.fixture
def rpc_client(materialized_tiny, pipeline):
    server = StorageServer(materialized_tiny, pipeline, seed=0)
    return StorageClient(InMemoryChannel(server.handle))


def make_fetcher(primary, pipeline, dataset, threshold=2, recovery=1e9):
    clock = FakeClock()
    return DegradedModeFetcher(
        primary,
        pipeline,
        fallback=DirectFetcher(dataset),
        breaker=CircuitBreaker(
            failure_threshold=threshold, recovery_time_s=recovery, clock=clock
        ),
        seed=0,
        clock=clock,
    )


class TestHealthyPassThrough:
    def test_no_demotions_when_primary_is_healthy(
        self, rpc_client, pipeline, materialized_tiny
    ):
        fetcher = make_fetcher(rpc_client, pipeline, materialized_tiny)
        payload = fetcher.fetch(0, 0, 2)
        direct = rpc_client.fetch(0, 0, 2)
        assert np.array_equal(payload.data, direct.data)
        assert fetcher.demotion_count == 0
        assert fetcher.outages == []
        assert not fetcher.in_outage


class TestDemotion:
    def test_demoted_samples_are_bit_identical(
        self, rpc_client, pipeline, materialized_tiny
    ):
        splits = [2] * len(materialized_tiny)
        reference = DataLoader(
            materialized_tiny, pipeline, DirectFetcher(materialized_tiny),
            batch_size=5, splits=None, seed=0,
        )
        expected = list(reference.epoch(1))

        primary = FailingFetcher(rpc_client)
        fetcher = make_fetcher(primary, pipeline, materialized_tiny)
        loader = DataLoader(
            materialized_tiny, pipeline, fetcher, batch_size=5, splits=splits, seed=0
        )
        iterator = iter(loader.epoch(1))
        first = next(iterator)  # healthy batch
        primary.down = True  # storage node dies mid-epoch
        rest = list(iterator)

        batches = [first] + rest
        assert sum(len(b) for b in batches) == len(materialized_tiny)
        for got, want in zip(batches, expected):
            assert got.sample_ids == want.sample_ids
            assert np.array_equal(got.tensors, want.tensors)
        assert fetcher.demotion_count == len(materialized_tiny) - len(first)

    def test_breaker_open_stops_hammering_the_primary(
        self, rpc_client, pipeline, materialized_tiny
    ):
        primary = FailingFetcher(rpc_client)
        primary.down = True
        fetcher = make_fetcher(primary, pipeline, materialized_tiny, threshold=2)
        for sid in range(6):
            fetcher.fetch(sid, 0, 2)
        # Two failing calls trip the breaker; the remaining four demote
        # without touching the primary at all.
        assert primary.calls == 2
        assert fetcher.breaker.state is BreakerState.OPEN
        assert fetcher.demotion_count == 6
        reasons = {d.reason for d in fetcher.last_outage.demotions}
        assert reasons == {"ConnectionError", "breaker-open"}

    def test_checksum_failures_also_demote(
        self, rpc_client, pipeline, materialized_tiny
    ):
        primary = FailingFetcher(rpc_client, exc=ChecksumError)
        primary.down = True
        fetcher = make_fetcher(primary, pipeline, materialized_tiny)
        payload = fetcher.fetch(0, 0, 2)
        assert payload is not None
        assert fetcher.demotion_count == 1

    def test_raw_fetch_without_fallback_reraises(self, pipeline, materialized_tiny):
        class AlwaysDown:
            def fetch(self, sample_id, epoch, split):
                raise ConnectionError("down")

        fetcher = DegradedModeFetcher(AlwaysDown(), pipeline, fallback=None, seed=0)
        with pytest.raises(ConnectionError):
            fetcher.fetch(0, 0, 0)  # split 0, nothing else can serve


class TestOutageLifecycle:
    def test_outage_opens_and_recovers(self, rpc_client, pipeline, materialized_tiny):
        primary = FailingFetcher(rpc_client)
        fetcher = make_fetcher(primary, pipeline, materialized_tiny, recovery=3.0)
        fetcher.fetch(0, 0, 2)  # healthy
        primary.down = True
        fetcher.fetch(1, 0, 2)
        fetcher.fetch(2, 0, 2)
        assert fetcher.in_outage
        assert fetcher.last_outage.recovered_at_s is None
        primary.down = False
        # The breaker's cooldown elapses on the fake clock as calls tick it
        # forward; the next fetch is the half-open probe and succeeds.
        for sid in range(3, 8):
            fetcher.fetch(sid, 0, 2)
        assert not fetcher.in_outage
        outage = fetcher.last_outage
        assert outage.recovered_at_s is not None
        assert outage.duration_s > 0
        assert outage.demotion_count >= 2

    def test_two_outages_produce_two_reports(
        self, rpc_client, pipeline, materialized_tiny
    ):
        primary = FailingFetcher(rpc_client)
        fetcher = make_fetcher(primary, pipeline, materialized_tiny, recovery=1.0)
        for phase_down in (True, False, True, False):
            primary.down = phase_down
            for sid in range(5):
                fetcher.fetch(sid, 0, 2)
        assert len(fetcher.outages) == 2
        assert all(o.recovered_at_s is not None for o in fetcher.outages)

    def test_outage_report_duration(self):
        report = OutageReport(started_at_s=2.0)
        assert report.duration_s is None
        report.recovered_at_s = 7.5
        assert report.duration_s == 5.5


class TestFlapping:
    """A storage node that flaps (down, up, down, up, ...) must neither
    corrupt data nor inflate the outage count: every demoted payload stays
    bit-identical to the healthy path, and each contiguous down episode is
    reported exactly once."""

    CYCLES = 4
    SAMPLES_PER_PHASE = 5

    def flap(self, fetcher, primary, epoch=0, split=2):
        """Drive CYCLES down/up cycles; return payloads per down phase."""
        demoted_by_cycle = []
        for _ in range(self.CYCLES):
            primary.down = True
            demoted_by_cycle.append(
                [
                    fetcher.fetch(sid, epoch, split)
                    for sid in range(self.SAMPLES_PER_PHASE)
                ]
            )
            primary.down = False
            # Enough healthy traffic for the breaker's cooldown to elapse
            # on the fake clock and the half-open probe to succeed.
            for sid in range(self.SAMPLES_PER_PHASE):
                fetcher.fetch(sid, epoch, split)
        return demoted_by_cycle

    def test_each_down_episode_is_counted_exactly_once(
        self, rpc_client, pipeline, materialized_tiny
    ):
        from repro.telemetry.registry import MetricsRegistry, use_registry

        primary = FailingFetcher(rpc_client)
        fetcher = make_fetcher(primary, pipeline, materialized_tiny, recovery=1.0)
        registry = MetricsRegistry()
        with use_registry(registry):
            self.flap(fetcher, primary)
        assert len(fetcher.outages) == self.CYCLES
        assert all(o.recovered_at_s is not None for o in fetcher.outages)
        assert all(o.demotion_count > 0 for o in fetcher.outages)
        assert not fetcher.in_outage
        # The metrics side agrees with the report side: one increment per
        # episode, not one per failing fetch within it.
        snapshot = registry.snapshot()
        (outages_total,) = [
            value
            for (name, _labels), value in snapshot.series.items()
            if name == "degraded_outages_total"
        ]
        assert outages_total == self.CYCLES

    def test_flapping_cycles_stay_bit_identical(
        self, rpc_client, pipeline, materialized_tiny
    ):
        primary = FailingFetcher(rpc_client)
        fetcher = make_fetcher(primary, pipeline, materialized_tiny, recovery=1.0)
        healthy = {
            sid: rpc_client.fetch(sid, 0, 2)
            for sid in range(self.SAMPLES_PER_PHASE)
        }
        demoted_by_cycle = self.flap(fetcher, primary)
        for cycle, demoted in enumerate(demoted_by_cycle):
            for sid, payload in enumerate(demoted):
                assert np.array_equal(payload.data, healthy[sid].data), (
                    f"cycle {cycle}, sample {sid}: demoted payload diverged "
                    f"from the healthy offload path"
                )

    def test_outage_durations_do_not_overlap(
        self, rpc_client, pipeline, materialized_tiny
    ):
        primary = FailingFetcher(rpc_client)
        fetcher = make_fetcher(primary, pipeline, materialized_tiny, recovery=1.0)
        self.flap(fetcher, primary)
        for earlier, later in zip(fetcher.outages, fetcher.outages[1:]):
            assert earlier.recovered_at_s is not None
            assert earlier.recovered_at_s <= later.started_at_s

    def test_demotions_attach_to_the_current_episode_only(
        self, rpc_client, pipeline, materialized_tiny
    ):
        primary = FailingFetcher(rpc_client)
        fetcher = make_fetcher(primary, pipeline, materialized_tiny, recovery=1.0)
        self.flap(fetcher, primary)
        assert fetcher.demotion_count == sum(
            o.demotion_count for o in fetcher.outages
        )
        # Every demotion's timestamp falls inside its episode's window.
        for outage in fetcher.outages:
            for demotion in outage.demotions:
                assert demotion.at_s >= outage.started_at_s
                assert demotion.at_s <= outage.recovered_at_s


class TestSophonFacade:
    def test_degraded_fetcher_factory(self, rpc_client, pipeline, materialized_tiny):
        from repro.core.sophon import Sophon

        breaker = CircuitBreaker(failure_threshold=7)
        fetcher = Sophon().degraded_fetcher(
            rpc_client,
            pipeline,
            fallback=DirectFetcher(materialized_tiny),
            breaker=breaker,
            seed=4,
        )
        assert isinstance(fetcher, DegradedModeFetcher)
        assert fetcher.breaker is breaker
        assert fetcher.seed == 4


class FakeScanFetcher:
    """SupportsScanFetch double: serves truncated progressive streams."""

    def __init__(self, dataset, codec):
        self.codec = codec
        self.calls = []
        self.streams = {
            sid: codec.encode(codec.decode(dataset.raw_payload(sid).data))
            for sid in dataset.sample_ids()
        }

    def fetch_scans(self, sample_id, epoch, scan_count):
        from repro.codec import truncate_scans
        from repro.preprocessing.payload import Payload

        self.calls.append((sample_id, epoch, scan_count))
        meta = self.streams[sample_id]
        truncated = truncate_scans(meta, scan_count)
        image = self.codec.decode(meta)
        return Payload.encoded(
            truncated, height=image.shape[0], width=image.shape[1]
        )


class TestFidelityRung:
    @pytest.fixture
    def prog_pipeline(self):
        from repro.codec import ProgressiveJpegCodec
        from repro.preprocessing.pipeline import standard_pipeline

        return standard_pipeline(crop_size=16, codec=ProgressiveJpegCodec())

    @pytest.fixture
    def scan_fallback(self, materialized_tiny):
        from repro.codec import ProgressiveJpegCodec

        return FakeScanFetcher(materialized_tiny, ProgressiveJpegCodec())

    def make_rung_fetcher(self, primary, pipeline, scan_fallback, scan_count=2):
        clock = FakeClock()
        return DegradedModeFetcher(
            primary,
            pipeline,
            breaker=CircuitBreaker(
                failure_threshold=2, recovery_time_s=1e9, clock=clock
            ),
            seed=0,
            clock=clock,
            scan_fallback=scan_fallback,
            degraded_scan_count=scan_count,
        )

    def test_raw_fetch_served_from_scan_prefix(
        self, rpc_client, prog_pipeline, scan_fallback
    ):
        from repro.codec import truncate_scans

        primary = FailingFetcher(rpc_client)
        primary.down = True
        fetcher = self.make_rung_fetcher(primary, prog_pipeline, scan_fallback)
        payload = fetcher.fetch(3, 0, 0)
        assert payload.data == truncate_scans(scan_fallback.streams[3], 2)
        assert scan_fallback.calls == [(3, 0, 2)]

    def test_demotion_records_the_scan_count(
        self, rpc_client, prog_pipeline, scan_fallback
    ):
        primary = FailingFetcher(rpc_client)
        primary.down = True
        fetcher = self.make_rung_fetcher(
            primary, prog_pipeline, scan_fallback, scan_count=3
        )
        payload = fetcher.fetch(1, 0, 2)
        # The offloaded prefix ran locally over the truncated stream.
        assert payload.data.shape == (16, 16, 3)
        assert fetcher.demotion_count == 1
        demotion = fetcher.last_outage.demotions[0]
        assert demotion.scan_count == 3
        assert demotion.planned_split == 2

    def test_without_rung_demotions_have_no_scan_count(
        self, rpc_client, pipeline, materialized_tiny
    ):
        primary = FailingFetcher(rpc_client)
        primary.down = True
        fetcher = make_fetcher(primary, pipeline, materialized_tiny)
        fetcher.fetch(0, 0, 2)
        assert fetcher.last_outage.demotions[0].scan_count is None

    def test_raw_reraise_still_applies_without_rung_or_fallback(
        self, prog_pipeline, materialized_tiny
    ):
        primary = FailingFetcher(None)
        primary.down = True
        fetcher = DegradedModeFetcher(primary, prog_pipeline, seed=0)
        with pytest.raises(ConnectionError):
            fetcher.fetch(0, 0, 0)

    def test_validation(self, rpc_client, prog_pipeline, scan_fallback):
        with pytest.raises(ValueError):
            DegradedModeFetcher(
                rpc_client,
                prog_pipeline,
                scan_fallback=scan_fallback,
                degraded_scan_count=0,
            )
        with pytest.raises(ValueError):
            DegradedModeFetcher(rpc_client, prog_pipeline, degraded_scan_count=2)
