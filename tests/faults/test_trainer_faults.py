"""Fault injection through the event-driven trainer (virtual-time axis)."""

import pytest

from repro.cluster.spec import standard_cluster
from repro.cluster.trainer import TrainerSim
from repro.data.catalog import make_openimages
from repro.faults import FaultSchedule


@pytest.fixture(scope="module")
def dataset():
    return make_openimages(num_samples=60, seed=11)


def make_trainer(dataset, prefetch_batches=2):
    import dataclasses

    spec = dataclasses.replace(
        standard_cluster(), prefetch_batches=prefetch_batches
    )
    from repro.preprocessing.pipeline import standard_pipeline
    from repro.workloads.models import get_model_profile

    return TrainerSim(
        dataset=dataset,
        pipeline=standard_pipeline(),
        model=get_model_profile("alexnet"),
        spec=spec,
        batch_size=8,
        seed=3,
    )


@pytest.fixture(scope="module")
def baseline(dataset):
    trainer = make_trainer(dataset)
    splits = [2] * len(dataset)
    return trainer.run_epoch(splits, epoch=1)


class TestEmptySchedule:
    def test_byte_identical_to_fault_free_run(self, dataset, baseline):
        trainer = make_trainer(dataset)
        stats = trainer.run_epoch([2] * len(dataset), epoch=1, faults=FaultSchedule())
        assert stats.epoch_time_s == baseline.epoch_time_s
        assert stats.traffic_bytes == baseline.traffic_bytes
        assert stats.faults is None


class TestCrash:
    def test_epoch_survives_with_zero_lost_samples(self, dataset, baseline):
        trainer = make_trainer(dataset)
        window = (0.3 * baseline.epoch_time_s, 0.3 * baseline.epoch_time_s)
        faults = FaultSchedule().with_crash(window[0], duration=window[1])
        stats = trainer.run_epoch([2] * len(dataset), epoch=1, faults=faults)
        assert stats.num_samples == baseline.num_samples  # zero lost
        assert stats.faults is not None
        assert stats.faults.demoted_samples > 0
        # Demoted samples ship raw bytes: traffic goes up, never down.
        assert stats.traffic_bytes > baseline.traffic_bytes

    def test_recovery_latency_measured_after_restart(self, dataset, baseline):
        trainer = make_trainer(dataset)
        faults = FaultSchedule().with_crash(
            0.3 * baseline.epoch_time_s, duration=0.2 * baseline.epoch_time_s
        )
        stats = trainer.run_epoch([2] * len(dataset), epoch=1, faults=faults)
        latency = stats.faults.recovery_latency_s
        assert latency is not None and latency > 0

    def test_permanent_crash_demotes_every_remaining_offload(self, dataset, baseline):
        trainer = make_trainer(dataset)
        faults = FaultSchedule().with_crash(0.0)  # down from t=0, never restarts
        stats = trainer.run_epoch([2] * len(dataset), epoch=1, faults=faults)
        assert stats.num_samples == baseline.num_samples
        assert stats.faults.demoted_samples == len(dataset)
        assert stats.faults.recovery_latency_s is None

    def test_timeline_records_fault_events(self, dataset, baseline):
        trainer = make_trainer(dataset)
        faults = FaultSchedule().with_crash(
            0.3 * baseline.epoch_time_s, duration=0.3 * baseline.epoch_time_s
        )
        stats = trainer.run_epoch(
            [2] * len(dataset), epoch=1, faults=faults, record_timeline=True
        )
        assert stats.timeline.fault_count("demotion") == stats.faults.demoted_samples
        assert stats.timeline.fault_count() >= stats.timeline.fault_count("demotion")


class TestBrownout:
    def test_epoch_slows_but_traffic_is_unchanged(self, dataset, baseline):
        trainer = make_trainer(dataset)
        faults = FaultSchedule().with_brownout(
            0.2 * baseline.epoch_time_s,
            duration=0.5 * baseline.epoch_time_s,
            bandwidth_factor=0.1,
        )
        stats = trainer.run_epoch([2] * len(dataset), epoch=1, faults=faults)
        assert stats.epoch_time_s > baseline.epoch_time_s
        assert stats.traffic_bytes == baseline.traffic_bytes
        assert stats.faults.brownout_chunks > 0


class TestCpuDrift:
    def test_slow_storage_cpu_stretches_the_epoch(self, dataset, baseline):
        trainer = make_trainer(dataset)
        faults = FaultSchedule().with_cpu_drift(
            0.1 * baseline.epoch_time_s,
            duration=0.7 * baseline.epoch_time_s,
            factor=6.0,
        )
        stats = trainer.run_epoch([2] * len(dataset), epoch=1, faults=faults)
        assert stats.epoch_time_s > baseline.epoch_time_s
        assert stats.num_samples == baseline.num_samples


class TestCorruption:
    def test_corrupted_payloads_are_resent(self, dataset, baseline):
        trainer = make_trainer(dataset)
        faults = FaultSchedule(seed=7).with_corruption(0.1)
        stats = trainer.run_epoch([2] * len(dataset), epoch=1, faults=faults)
        assert stats.faults.corrupted_payloads > 0
        assert stats.faults.corrupt_retries >= stats.faults.corrupted_payloads
        # Retransmissions are extra traffic on the same sample set.
        assert stats.traffic_bytes > baseline.traffic_bytes
        assert stats.num_samples == baseline.num_samples
