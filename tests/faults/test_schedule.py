"""FaultSchedule: windows, queries, and the seeded corruption coin."""

import math

import pytest

from repro.faults import (
    Brownout,
    CpuDrift,
    CrashWindow,
    FaultReport,
    FaultSchedule,
)


class TestWindows:
    def test_crash_window_covers_half_open_interval(self):
        window = CrashWindow(1.0, 3.0)
        assert not window.covers(0.999)
        assert window.covers(1.0)
        assert window.covers(2.9)
        assert not window.covers(3.0)

    def test_permanent_crash_never_ends(self):
        window = CrashWindow(5.0)
        assert window.end == math.inf
        assert window.covers(1e12)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            CrashWindow(-1.0, 2.0)
        with pytest.raises(ValueError):
            CrashWindow(3.0, 3.0)
        with pytest.raises(ValueError):
            Brownout(0.0, 1.0, bandwidth_factor=0.0)
        with pytest.raises(ValueError):
            Brownout(0.0, 1.0, bandwidth_factor=1.5)
        with pytest.raises(ValueError):
            Brownout(0.0, 1.0, extra_rtt_s=-0.1)
        with pytest.raises(ValueError):
            CpuDrift(0.0, 1.0, factor=0.5)


class TestScheduleQueries:
    def test_empty_schedule(self):
        schedule = FaultSchedule()
        assert schedule.is_empty
        assert not schedule.storage_down(0.0)
        assert schedule.bandwidth_factor(0.0) == 1.0
        assert schedule.extra_rtt_s(0.0) == 0.0
        assert schedule.storage_cpu_factor(0.0) == 1.0
        assert not schedule.corrupts(0)

    def test_builders_are_pure(self):
        base = FaultSchedule(seed=3)
        crashed = base.with_crash(1.0, duration=2.0)
        assert base.is_empty
        assert not crashed.is_empty
        assert crashed.seed == 3

    def test_storage_down_and_restart(self):
        schedule = FaultSchedule().with_crash(2.0, duration=3.0)
        assert not schedule.storage_down(1.0)
        assert schedule.storage_down(2.0)
        assert schedule.restart_time(3.0) == 5.0
        assert schedule.restart_time(6.0) is None
        assert schedule.next_crash_start(0.0) == 2.0
        assert schedule.next_crash_start(2.5) is None

    def test_overlapping_brownouts_take_the_worst(self):
        schedule = (
            FaultSchedule()
            .with_brownout(0.0, 10.0, bandwidth_factor=0.5, extra_rtt_s=0.001)
            .with_brownout(5.0, 10.0, bandwidth_factor=0.2, extra_rtt_s=0.005)
        )
        assert schedule.bandwidth_factor(1.0) == 0.5
        assert schedule.bandwidth_factor(6.0) == 0.2
        assert schedule.extra_rtt_s(6.0) == 0.005
        assert schedule.bandwidth_factor(20.0) == 1.0

    def test_cpu_drift_takes_max_factor(self):
        schedule = (
            FaultSchedule()
            .with_cpu_drift(0.0, 10.0, factor=2.0)
            .with_cpu_drift(3.0, 5.0, factor=4.0)
        )
        assert schedule.storage_cpu_factor(1.0) == 2.0
        assert schedule.storage_cpu_factor(4.0) == 4.0
        assert schedule.storage_cpu_factor(11.0) == 1.0

    def test_corruption_rate_validated(self):
        with pytest.raises(ValueError):
            FaultSchedule(corruption_rate=1.5)
        with pytest.raises(ValueError):
            FaultSchedule().with_corruption(-0.1)


class TestCorruptionCoin:
    def test_deterministic_across_instances(self):
        a = FaultSchedule(seed=9).with_corruption(0.3)
        b = FaultSchedule(seed=9).with_corruption(0.3)
        assert [a.corrupts(i) for i in range(200)] == [
            b.corrupts(i) for i in range(200)
        ]

    def test_seed_changes_the_pattern(self):
        a = FaultSchedule(seed=1).with_corruption(0.5)
        b = FaultSchedule(seed=2).with_corruption(0.5)
        assert [a.corrupts(i) for i in range(200)] != [
            b.corrupts(i) for i in range(200)
        ]

    def test_rate_extremes(self):
        never = FaultSchedule().with_corruption(0.0)
        always = FaultSchedule().with_corruption(1.0)
        assert not any(never.corrupts(i) for i in range(100))
        assert all(always.corrupts(i) for i in range(100))

    def test_rate_is_roughly_respected(self):
        schedule = FaultSchedule(seed=4).with_corruption(0.25)
        hits = sum(schedule.corrupts(i) for i in range(4000))
        assert 0.18 < hits / 4000 < 0.32

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            FaultSchedule().with_corruption(0.5).corrupts(-1)


class TestFaultReport:
    def test_recovery_latency(self):
        report = FaultReport()
        assert report.recovery_latency_s is None
        report.note_failure(10.0)
        report.note_failure(12.0)
        assert report.first_failure_s == 10.0
        assert report.recovery_latency_s is None
        report.note_success(15.0)
        assert report.recovered_at_s == 15.0
        assert report.recovery_latency_s == 5.0
        # Later successes keep the first recovery timestamp.
        report.note_success(20.0)
        assert report.recovered_at_s == 15.0

    def test_success_before_any_failure_records_nothing(self):
        report = FaultReport()
        report.note_success(3.0)
        assert report.first_failure_s is None
        assert report.recovered_at_s is None

    def test_saw_faults(self):
        report = FaultReport()
        assert not report.saw_faults
        report.demoted_samples += 1
        assert report.saw_faults
