"""FaultInjector: schedules applied to the in-memory transport."""

import pytest

from repro.faults import FaultInjector, FaultSchedule
from repro.rpc import RetryingClient, StorageClient, StorageServer
from repro.rpc.messages import ChecksumError
from repro.rpc.retry import FetchFailedError


@pytest.fixture
def server(materialized_tiny, pipeline):
    return StorageServer(materialized_tiny, pipeline, seed=0)


class TestCrashInjection:
    def test_fetches_fail_inside_the_window(self, server):
        # Call-index clock: fetch k happens at t=k.
        schedule = FaultSchedule().with_crash(2.0, duration=3.0)
        injector = FaultInjector(schedule)
        client = StorageClient(injector.channel(server.handle))

        client.fetch(0, 0, 0)  # t=0
        client.fetch(1, 0, 0)  # t=1
        for _ in range(3):  # t=2..4: storage down
            with pytest.raises(ConnectionError):
                client.fetch(2, 0, 0)
        client.fetch(2, 0, 0)  # t=5: restarted
        assert injector.report.offload_failures == 3
        assert injector.report.recovery_latency_s == 3.0

    def test_clean_schedule_is_transparent(self, server, materialized_tiny):
        injector = FaultInjector(FaultSchedule())
        client = StorageClient(injector.channel(server.handle))
        payload = client.fetch(0, 0, 0)
        assert payload.data == materialized_tiny.raw_payload(0).data
        assert not injector.report.saw_faults


class TestBrownoutInjection:
    def test_some_fetches_time_out(self, server):
        schedule = FaultSchedule(seed=2).with_brownout(
            0.0, 100.0, bandwidth_factor=0.2
        )
        injector = FaultInjector(schedule)
        client = StorageClient(injector.channel(server.handle))
        outcomes = []
        for _ in range(30):
            try:
                client.fetch(0, 0, 0)
                outcomes.append(True)
            except TimeoutError:
                outcomes.append(False)
        # At 20% bandwidth roughly 80% of fetches stall out.
        assert 15 <= outcomes.count(False) <= 29
        assert injector.report.brownout_chunks == 30

    def test_retry_layer_rides_out_the_brownout(self, server):
        schedule = FaultSchedule(seed=2).with_brownout(
            0.0, 1e9, bandwidth_factor=0.5
        )
        injector = FaultInjector(schedule)
        client = RetryingClient(
            StorageClient(injector.channel(server.handle)),
            max_attempts=8,
            base_delay=0.0,
        )
        for sid in range(5):
            client.fetch(sid, 0, 0)
        assert client.stats.failures == 0


class TestCorruptionInjection:
    def test_checksum_catches_every_corrupted_payload(self, server):
        schedule = FaultSchedule(seed=0).with_corruption(1.0)
        injector = FaultInjector(schedule)
        client = StorageClient(injector.channel(server.handle))
        with pytest.raises(ChecksumError):
            client.fetch(0, 0, 0)
        assert injector.report.corrupted_payloads == 1
        assert client.checksum_failures == 1

    def test_retry_refetches_past_transient_corruption(self, server):
        schedule = FaultSchedule(seed=0).with_corruption(0.5)
        injector = FaultInjector(schedule)
        client = RetryingClient(
            StorageClient(injector.channel(server.handle)),
            max_attempts=10,
            base_delay=0.0,
        )
        for sid in range(5):
            client.fetch(sid, 0, 0)  # every sample eventually lands
        assert client.stats.failures == 0
        assert client.stats.checksum_failures == injector.report.corrupted_payloads
        assert injector.report.corrupted_payloads > 0

    def test_permanent_corruption_exhausts_retries(self, server):
        schedule = FaultSchedule(seed=0).with_corruption(1.0)
        injector = FaultInjector(schedule)
        client = RetryingClient(
            StorageClient(injector.channel(server.handle)),
            max_attempts=3,
            base_delay=0.0,
        )
        with pytest.raises(FetchFailedError) as err:
            client.fetch(0, 0, 0)
        assert isinstance(err.value.__cause__, ChecksumError)
        assert client.stats.checksum_failures == 3

    def test_corrupted_bytes_never_reach_the_pipeline(self, server, materialized_tiny):
        # Every delivered payload is either checksum-clean or rejected; a
        # corrupted frame can never be silently returned as sample data.
        schedule = FaultSchedule(seed=5).with_corruption(0.4)
        injector = FaultInjector(schedule)
        client = StorageClient(injector.channel(server.handle))
        clean = materialized_tiny.raw_payload(0).data
        for _ in range(20):
            try:
                payload = client.fetch(0, 0, 0)
            except ChecksumError:
                continue
            assert payload.data == clean
