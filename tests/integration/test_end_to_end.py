"""End-to-end integration: RPC path vs simulator vs decision engine.

These tests tie the fidelities together: the materialized RPC path must
agree byte-for-byte with the metadata formulas the simulator and decision
engine run on, and an offloaded run must produce bit-identical tensors to a
local run.
"""

import numpy as np
import pytest

from repro.cluster.spec import ClusterSpec
from repro.cluster.trainer import TrainerSim
from repro.core.policy import PolicyContext
from repro.core.sophon import Sophon
from repro.data.loader import DataLoader
from repro.data.synthetic import ImageContentConfig, SyntheticImageDataset
from repro.rpc import (
    InMemoryChannel,
    RESPONSE_HEADER_SIZE,
    StorageClient,
    StorageServer,
)
from repro.workloads.models import get_model_profile


@pytest.fixture(scope="module")
def dataset():
    # Mix of sizes so some samples benefit from offloading and some don't.
    return SyntheticImageDataset(
        num_samples=16,
        seed=21,
        content=ImageContentConfig(min_side=96, max_side=768, texture_range=(0.3, 1.0)),
        name="e2e",
    )


@pytest.fixture(scope="module")
def io_bound_spec():
    return ClusterSpec(
        compute_cores=8,
        storage_cores=4,
        bandwidth_mbps=50.0,
        response_overhead_bytes=RESPONSE_HEADER_SIZE,
    )


@pytest.fixture(scope="module")
def sophon_plan(dataset, pipeline, io_bound_spec):
    context = PolicyContext(
        dataset=dataset,
        pipeline=pipeline,
        spec=io_bound_spec,
        model=get_model_profile("alexnet"),
        batch_size=4,
        seed=0,
    )
    return Sophon().plan(context), context


class TestPlanQuality:
    def test_plan_offloads_exactly_the_shrinking_samples(self, sophon_plan, dataset):
        plan, context = sophon_plan
        threshold = 224 * 224 * 3
        for sid in dataset.sample_ids():
            raw = dataset.raw_meta(sid).nbytes
            if raw > threshold:
                assert plan.split_for(sid) > 0, f"sample {sid} should offload"
            else:
                assert plan.split_for(sid) == 0, f"sample {sid} should not offload"


class TestRpcVsFormulas:
    def test_real_traffic_equals_plan_expectation(
        self, sophon_plan, dataset, pipeline
    ):
        plan, context = sophon_plan
        server = StorageServer(dataset, pipeline, seed=0)
        client = StorageClient(InMemoryChannel(server.handle))
        loader = DataLoader(
            dataset, pipeline, client, batch_size=4, splits=list(plan.splits), seed=0
        )
        for _ in loader.epoch(epoch=0):
            pass
        expected = plan.expected_traffic_bytes(
            context.records(), overhead_bytes=RESPONSE_HEADER_SIZE
        )
        assert client.traffic_bytes == expected

    def test_simulator_traffic_matches_rpc_traffic(
        self, sophon_plan, dataset, pipeline, io_bound_spec
    ):
        plan, _ = sophon_plan
        server = StorageServer(dataset, pipeline, seed=0)
        client = StorageClient(InMemoryChannel(server.handle))
        loader = DataLoader(
            dataset, pipeline, client, batch_size=4, splits=list(plan.splits), seed=0
        )
        for _ in loader.epoch(epoch=0):
            pass

        trainer = TrainerSim(
            dataset,
            pipeline,
            get_model_profile("alexnet"),
            io_bound_spec,
            batch_size=4,
            seed=0,
        )
        stats = trainer.run_epoch(list(plan.splits), epoch=0)
        assert stats.traffic_bytes == client.traffic_bytes


class TestOffloadedTrainingIdentity:
    def test_offloaded_epoch_bit_identical_to_local(self, sophon_plan, dataset, pipeline):
        plan, _ = sophon_plan
        server = StorageServer(dataset, pipeline, seed=0)

        def run(splits):
            client = StorageClient(InMemoryChannel(server.handle))
            loader = DataLoader(
                dataset, pipeline, client, batch_size=4, splits=splits, seed=0
            )
            return np.concatenate([b.tensors for b in loader.epoch(epoch=2)])

        local = run(None)
        offloaded = run(list(plan.splits))
        assert np.array_equal(local, offloaded)

    def test_identity_holds_across_epochs(self, sophon_plan, dataset, pipeline):
        plan, _ = sophon_plan
        server = StorageServer(dataset, pipeline, seed=0)
        for epoch in (0, 1):
            client = StorageClient(InMemoryChannel(server.handle))
            loader = DataLoader(
                dataset, pipeline, client, batch_size=4,
                splits=list(plan.splits), seed=0,
            )
            local_client = StorageClient(InMemoryChannel(server.handle))
            local_loader = DataLoader(
                dataset, pipeline, local_client, batch_size=4, seed=0
            )
            off = np.concatenate([b.tensors for b in loader.epoch(epoch)])
            loc = np.concatenate([b.tensors for b in local_loader.epoch(epoch)])
            assert np.array_equal(off, loc), f"epoch {epoch}"
