"""Fast versions of the paper's headline claims (full runs in benchmarks/).

Every assertion here is a *shape* claim from the paper: who wins, in which
direction, and roughly by how much.
"""

import pytest

from repro.cluster.spec import standard_cluster
from repro.harness.fig3 import ample_cpu_comparison
from repro.harness.fig4 import limited_cpu_sweep


@pytest.fixture(scope="module")
def oi(openimages_small):
    return ample_cpu_comparison(openimages_small, standard_cluster(storage_cores=48))


@pytest.fixture(scope="module")
def inet(imagenet_small):
    return ample_cpu_comparison(imagenet_small, standard_cluster(storage_cores=48))


class TestSection41AmpleCores:
    def test_alloff_traffic_blowup_openimages(self, oi):
        # Paper: 1.9x.
        assert oi.traffic_ratio("all-off") == pytest.approx(1.9, rel=0.1)

    def test_alloff_traffic_blowup_imagenet(self, inet):
        # Paper: 5.1x.
        assert inet.traffic_ratio("all-off") == pytest.approx(5.1, rel=0.1)

    def test_resizeoff_halves_openimages_traffic(self, oi):
        # Paper: 2x reduction.
        assert 1.0 / oi.traffic_ratio("resize-off") == pytest.approx(2.0, rel=0.15)

    def test_resizeoff_backfires_on_imagenet(self, inet):
        # Paper: 1.3x increase.
        assert inet.traffic_ratio("resize-off") == pytest.approx(1.3, rel=0.1)

    def test_sophon_traffic_reduction_openimages(self, oi):
        # Paper: 2.2x.
        assert 1.0 / oi.traffic_ratio("sophon") == pytest.approx(2.2, rel=0.1)

    def test_sophon_traffic_reduction_imagenet(self, inet):
        # Paper: 1.2x.
        assert 1.0 / inet.traffic_ratio("sophon") == pytest.approx(1.2, rel=0.1)

    def test_sophon_beats_resizeoff_on_both_datasets(self, oi, inet):
        for comparison in (oi, inet):
            table = comparison.by_policy()
            assert table["sophon"].epoch_time_s <= table["resize-off"].epoch_time_s

    def test_fastflow_declines_offloading(self, oi, inet):
        for comparison in (oi, inet):
            assert comparison.by_policy()["fastflow"].plan.num_offloaded == 0

    def test_sophon_training_time_reduction_in_paper_band(self, oi, inet):
        # Paper abstract: 1.2x - 2.2x over existing solutions.
        oi_speedup = 1.0 / oi.time_ratio("sophon")
        inet_speedup = 1.0 / inet.time_ratio("sophon")
        assert 1.8 < oi_speedup < 2.6
        assert 1.1 < inet_speedup < 1.4


class TestSection42LimitedCores:
    @pytest.fixture(scope="class")
    def sweep(self, openimages_small):
        return limited_cpu_sweep(openimages_small, cores=(0, 1, 2, 3, 4, 5))

    def test_alloff_worst_at_every_core_count(self, sweep):
        for cores in sweep.cores[1:]:
            row = sweep.results[cores]
            worst = max(r.epoch_time_s for r in row.values())
            assert row["all-off"].epoch_time_s == pytest.approx(worst)

    def test_alloff_even_worse_with_one_core(self, sweep):
        assert (
            sweep.results[1]["all-off"].epoch_time_s
            > sweep.results[2]["all-off"].epoch_time_s
        )

    def test_resizeoff_lowest_traffic_but_not_best_time(self, sweep):
        row = sweep.results[1]
        lowest_traffic = min(r.traffic_bytes for r in row.values())
        assert row["resize-off"].traffic_bytes == lowest_traffic
        assert row["resize-off"].epoch_time_s > row["sophon"].epoch_time_s

    def test_resizeoff_worse_than_nooff_at_two_or_fewer_cores(self, sweep):
        for cores in (1, 2):
            row = sweep.results[cores]
            assert row["resize-off"].epoch_time_s > row["no-off"].epoch_time_s

    def test_resizeoff_recovers_with_more_cores(self, sweep):
        row = sweep.results[5]
        assert row["resize-off"].epoch_time_s < row["no-off"].epoch_time_s

    def test_sophon_best_everywhere(self, sweep):
        for cores in sweep.cores:
            row = sweep.results[cores]
            best = min(r.epoch_time_s for r in row.values())
            assert row["sophon"].epoch_time_s == pytest.approx(best)

    def test_sophon_diminishing_returns(self, sweep):
        gains = sweep.sophon_marginal_gains()
        # First core buys far more than the fifth (paper: 22s vs 9s shape).
        assert gains[0] > 2 * gains[-1]
        assert all(g >= -1e-9 for g in gains)
