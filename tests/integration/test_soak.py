"""Composition soak: stack every transport feature and train epochs.

CachingFetcher(RetryingClient(StorageClient(flaky CompressedChannel)))
driving the DataLoader with a SOPHON plan for several epochs -- the
tensors must stay bit-identical to a plain local run throughout, and every
layer's accounting must stay coherent.
"""

import numpy as np
import pytest

from repro.cache.core import ByteCache
from repro.cache.fetcher import CachingFetcher
from repro.cluster.spec import ClusterSpec
from repro.compression.wire import CompressedChannel
from repro.core.policy import PolicyContext
from repro.core.sophon import Sophon
from repro.data.loader import DataLoader
from repro.data.synthetic import ImageContentConfig, SyntheticImageDataset
from repro.rpc import StorageServer
from repro.rpc.client import StorageClient
from repro.rpc.retry import RetryingClient
from repro.workloads.models import get_model_profile


class PeriodicFault:
    """Every Nth request fails once (transient network hiccups)."""

    def __init__(self, period: int) -> None:
        self.period = period
        self.count = 0
        self.failed = set()

    def __call__(self, request_bytes: bytes) -> None:
        self.count += 1
        if self.count % self.period == 0 and self.count not in self.failed:
            self.failed.add(self.count)
            raise ConnectionError("periodic transient fault")


@pytest.fixture(scope="module")
def dataset():
    return SyntheticImageDataset(
        num_samples=12,
        seed=77,
        content=ImageContentConfig(min_side=96, max_side=700, texture_range=(0.3, 1.0)),
        name="soak",
    )


@pytest.fixture(scope="module")
def plan(dataset, pipeline):
    spec = ClusterSpec(compute_cores=8, storage_cores=4, bandwidth_mbps=50.0)
    context = PolicyContext(
        dataset=dataset,
        pipeline=pipeline,
        spec=spec,
        model=get_model_profile("alexnet"),
        batch_size=4,
        seed=0,
    )
    return Sophon().plan(context)


class TestSoak:
    def test_full_stack_three_epochs_bit_identical(self, dataset, pipeline, plan):
        server = StorageServer(dataset, pipeline, seed=0)
        channel = CompressedChannel(server.handle, level=1, fault=PeriodicFault(7))
        retrying = RetryingClient(StorageClient(channel), max_attempts=3)
        cache = ByteCache(10**8)
        fetcher = CachingFetcher(retrying, cache)
        loader = DataLoader(
            dataset, pipeline, fetcher, batch_size=4,
            splits=list(plan.splits), seed=0,
        )

        plain_server = StorageServer(dataset, pipeline, seed=0)
        plain_channel = CompressedChannel(plain_server.handle)
        plain_loader = DataLoader(
            dataset, pipeline, StorageClient(plain_channel), batch_size=4, seed=0
        )

        for epoch in range(3):
            stacked = np.concatenate([b.tensors for b in loader.epoch(epoch)])
            plain = np.concatenate([b.tensors for b in plain_loader.epoch(epoch)])
            assert np.array_equal(stacked, plain), f"epoch {epoch}"

        # Retries happened and recovered.
        assert retrying.stats.retries > 0
        assert retrying.stats.failures == 0

        # Raw samples hit the cache after epoch 0; offloaded ones never do.
        raw_samples = sum(1 for s in plan.splits if s == 0)
        assert cache.stats.hits >= raw_samples * 2  # epochs 1 and 2
        assert len(cache) == raw_samples

        # The compressed wire genuinely shrank the uint8 payloads.
        assert channel.achieved_ratio < 1.0

    def test_cache_cuts_epoch1_traffic_for_raw_samples(self, dataset, pipeline, plan):
        server = StorageServer(dataset, pipeline, seed=0)
        channel = CompressedChannel(server.handle)
        client = StorageClient(channel)
        fetcher = CachingFetcher(client, ByteCache(10**8))
        loader = DataLoader(
            dataset, pipeline, fetcher, batch_size=4,
            splits=list(plan.splits), seed=0,
        )
        for _ in loader.epoch(0):
            pass
        first = channel.stats.response_bytes
        for _ in loader.epoch(1):
            pass
        second_epoch_bytes = channel.stats.response_bytes - first
        # Epoch 1 only fetches the offloaded (uncacheable) samples.
        assert second_epoch_bytes < first
        offloaded = sum(1 for s in plan.splits if s > 0)
        assert channel.stats.calls == len(dataset) + offloaded
