"""Figure 3: training time and data traffic per policy, ample storage CPUs.

Paper shapes asserted:
- All-Off inflates traffic 1.9x (OpenImages) / 5.1x (ImageNet);
- FastFlow declines to offload in both setups;
- Resize-Off cuts OpenImages traffic ~2x but *increases* ImageNet traffic
  ~1.3x;
- SOPHON cuts traffic 2.2x / 1.2x and has the best training time on both.
"""

import pytest

from benchmarks.conftest import run_once
from repro.harness.fig3 import ample_cpu_comparison


def check_common_shapes(comparison):
    table = comparison.by_policy()
    assert comparison.traffic_ratio("fastflow") == pytest.approx(1.0)
    assert table["fastflow"].plan.num_offloaded == 0
    best_time = min(r.epoch_time_s for r in table.values())
    assert table["sophon"].epoch_time_s == pytest.approx(best_time)
    lowest_traffic = min(r.traffic_bytes for r in table.values())
    assert table["sophon"].traffic_bytes == lowest_traffic
    worst_time = max(r.epoch_time_s for r in table.values())
    assert table["all-off"].epoch_time_s == pytest.approx(worst_time)


def test_fig3_openimages(benchmark, openimages, ample_cluster):
    comparison = run_once(
        benchmark, lambda: ample_cpu_comparison(openimages, ample_cluster, seed=7)
    )
    print("\n" + comparison.render())

    check_common_shapes(comparison)
    assert comparison.traffic_ratio("all-off") == pytest.approx(1.9, rel=0.08)
    assert 1.0 / comparison.traffic_ratio("resize-off") == pytest.approx(2.0, rel=0.12)
    assert 1.0 / comparison.traffic_ratio("sophon") == pytest.approx(2.2, rel=0.08)
    # SOPHON beats Resize-Off by skipping the 24% of samples that would
    # ship *larger* after preprocessing.
    table = comparison.by_policy()
    assert table["sophon"].traffic_bytes < table["resize-off"].traffic_bytes
    assert table["sophon"].plan.offload_fraction == pytest.approx(0.76, abs=0.03)


def test_fig3_imagenet(benchmark, imagenet, ample_cluster):
    comparison = run_once(
        benchmark, lambda: ample_cpu_comparison(imagenet, ample_cluster, seed=7)
    )
    print("\n" + comparison.render())

    check_common_shapes(comparison)
    assert comparison.traffic_ratio("all-off") == pytest.approx(5.1, rel=0.08)
    # Resize-Off backfires on ImageNet: more traffic than No-Off.
    assert comparison.traffic_ratio("resize-off") == pytest.approx(1.3, rel=0.08)
    assert 1.0 / comparison.traffic_ratio("sophon") == pytest.approx(1.2, rel=0.08)
    table = comparison.by_policy()
    assert table["sophon"].plan.offload_fraction == pytest.approx(0.26, abs=0.03)
    # Unlike Resize-Off, SOPHON still reduces ImageNet training time.
    assert table["sophon"].epoch_time_s < table["no-off"].epoch_time_s
    assert table["resize-off"].epoch_time_s > table["no-off"].epoch_time_s
