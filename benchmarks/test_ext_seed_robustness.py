"""Validation: headline results are stable across random seeds.

Every dataset draw, augmentation, and shuffle keys off one seed; the
paper-shape claims must hold for *any* seed, not a lucky one.  Replicates
the Figure-3 headline ratios over five seeds and bounds their spread.
"""

import pytest

from benchmarks.conftest import run_once
from repro.cluster.spec import standard_cluster
from repro.data.catalog import make_openimages
from repro.harness.fig3 import ample_cpu_comparison
from repro.harness.replicate import replicate
from repro.utils.tables import render_table

SEEDS = (1, 7, 13, 21, 42)
SAMPLES = 800


def test_ext_seed_robustness(benchmark):
    cluster = standard_cluster(storage_cores=48)

    def comparison_for(seed):
        dataset = make_openimages(num_samples=SAMPLES, seed=seed)
        return ample_cpu_comparison(dataset, cluster, seed=seed)

    def regenerate():
        cache = {seed: comparison_for(seed) for seed in SEEDS}
        return {
            "sophon traffic cut": replicate(
                lambda s: 1.0 / cache[s].traffic_ratio("sophon"), SEEDS
            ),
            "sophon speedup": replicate(
                lambda s: 1.0 / cache[s].time_ratio("sophon"), SEEDS
            ),
            "alloff blowup": replicate(
                lambda s: cache[s].traffic_ratio("all-off"), SEEDS
            ),
            "offload fraction": replicate(
                lambda s: cache[s].by_policy()["sophon"].plan.offload_fraction,
                SEEDS,
            ),
        }

    replications = run_once(benchmark, regenerate)

    print(f"\nHeadline metrics over seeds {SEEDS} ({SAMPLES} samples):")
    print(render_table(
        ("Metric", "Mean ± std", "Spread"),
        [
            (name, str(rep), f"{rep.spread:.1%}")
            for name, rep in replications.items()
        ],
    ))

    # Means sit on the paper's numbers...
    assert replications["sophon traffic cut"].mean == pytest.approx(2.2, rel=0.06)
    assert replications["alloff blowup"].mean == pytest.approx(1.9, rel=0.06)
    assert replications["offload fraction"].mean == pytest.approx(0.76, abs=0.02)
    # ...and every seed individually stays within a tight band.
    for name, rep in replications.items():
        assert rep.spread < 0.12, (name, rep.values)