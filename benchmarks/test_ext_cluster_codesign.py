"""Extension synthesis: core scheduling + shared egress, co-simulated.

Three heterogeneous jobs share one egress link *and* one storage-node CPU
pool.  Two ways to split the pool's cores: a naive equal split, or the
greedy marginal-gain scheduler.  Each job then runs its SOPHON plan (at
its allocation) concurrently on the shared link.  The scheduler's
allocation must beat the equal split on aggregate epoch time -- the
section-6 multi-tenant story, measured end to end rather than analytically.
"""

import pytest

from benchmarks.conftest import run_once
from repro.cluster.multijob import SharedJob, SharedLinkSim
from repro.cluster.spec import standard_cluster
from repro.core.decision import DecisionEngine
from repro.core.policy import PolicyContext
from repro.data.catalog import make_imagenet, make_openimages
from repro.preprocessing.pipeline import standard_pipeline
from repro.scheduler import GreedyCoreScheduler
from repro.scheduler.multitenant import TenantJob
from repro.utils.tables import render_table
from repro.workloads.models import get_model_profile

TOTAL_CORES = 6


def test_ext_cluster_codesign(benchmark):
    pipeline = standard_pipeline()
    alexnet = get_model_profile("alexnet")
    datasets = {
        "oi-a": make_openimages(num_samples=700, seed=31),
        "oi-b": make_openimages(num_samples=500, seed=32),
        "inet": make_imagenet(num_samples=900, seed=33),
    }
    base = standard_cluster()

    def plan_for(name, cores):
        spec = base.with_storage_cores(max(cores, 0))
        context = PolicyContext(
            dataset=datasets[name], pipeline=pipeline, spec=spec,
            model=alexnet, batch_size=64, seed=31,
        )
        if cores == 0:
            return [0] * len(datasets[name])
        plan = DecisionEngine().plan(
            context.records(), spec, gpu_time_s=context.epoch_gpu_time_s
        )
        return list(plan.splits)

    def simulate(allocation):
        spec = base.with_storage_cores(sum(allocation.values()))
        jobs = [
            SharedJob(
                name=name, dataset=datasets[name], pipeline=pipeline,
                model=alexnet, splits=plan_for(name, cores), batch_size=64,
            )
            for name, cores in allocation.items()
        ]
        return SharedLinkSim(spec).run_epoch(jobs)

    def regenerate():
        equal = {name: TOTAL_CORES // len(datasets) for name in datasets}
        scheduler = GreedyCoreScheduler(base)
        tenant_jobs = [
            TenantJob(name=name, dataset=dataset, model=alexnet, seed=31)
            for name, dataset in datasets.items()
        ]
        greedy = scheduler.allocate(tenant_jobs, TOTAL_CORES).cores
        return {
            "equal-split": (equal, simulate(equal)),
            "greedy": (greedy, simulate(greedy)),
        }

    outcome = run_once(benchmark, regenerate)

    print(f"\n{TOTAL_CORES} storage cores across 3 jobs on one shared link:")
    print(render_table(
        ("Strategy", "Allocation", "Sum of epochs", "Makespan", "Traffic MB"),
        [
            (
                strategy,
                dict(allocation),
                f"{sum(r.epoch_time_s for r in stats.results.values()):.2f}s",
                f"{stats.makespan_s:.2f}s",
                f"{stats.total_traffic_bytes / 1e6:.1f}",
            )
            for strategy, (allocation, stats) in outcome.items()
        ],
    ))

    equal_alloc, equal_stats = outcome["equal-split"]
    greedy_alloc, greedy_stats = outcome["greedy"]

    # Both strategies respect the budget.
    assert sum(equal_alloc.values()) <= TOTAL_CORES
    assert sum(greedy_alloc.values()) <= TOTAL_CORES

    # The greedy allocation is no worse on aggregate epoch time, measured
    # in the co-simulation (not just the analytic model it planned with).
    equal_sum = sum(r.epoch_time_s for r in equal_stats.results.values())
    greedy_sum = sum(r.epoch_time_s for r in greedy_stats.results.values())
    assert greedy_sum <= equal_sum * 1.02