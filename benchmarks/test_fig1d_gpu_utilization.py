"""Figure 1d: GPU utilization across models under a constrained link.

Paper: with a V100 and constrained bandwidth, ResNet-50 runs near-maximal
GPU utilization, ResNet-18 idles ~65% of the time, and compute-light
models (AlexNet) idle even more -- the workloads that want offloading.
"""

from benchmarks.conftest import run_once
from repro.cluster.spec import standard_cluster
from repro.harness.fig1 import gpu_utilization_by_model
from repro.utils.tables import render_table


def test_fig1d_gpu_utilization(benchmark, openimages):
    # 1 Gbps: the bandwidth at which ResNet-50's compute fully hides the
    # fetch, per the V100 throughput profile.
    spec = standard_cluster(bandwidth_mbps=1000.0)

    def regenerate():
        return gpu_utilization_by_model(
            openimages,
            spec,
            models=("resnet50", "resnet18", "alexnet"),
            gpu="v100",
        )

    utilizations = run_once(benchmark, regenerate)
    table = dict(utilizations)

    print("\nGPU utilization at 1 Gbps (V100 profiles, no offloading):")
    print(render_table(
        ("Model", "GPU util"), [(m, f"{u:.0%}") for m, u in utilizations]
    ))

    # Shape: utilization ordered by compute intensity.
    assert table["resnet50"] > table["resnet18"] > table["alexnet"]
    # ResNet-50 near-maximal; ResNet-18 mostly idle (paper: ~65% idle);
    # AlexNet severely starved.
    assert table["resnet50"] > 0.65
    assert table["resnet18"] < 0.5
    assert table["alexnet"] < 0.25
