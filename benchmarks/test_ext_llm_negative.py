"""Extension: the section-5 negative result, made measurable.

Paper: "SOPHON may not help for Large Language Models".  We run the
decision engine over a calibrated LLM ingestion pipeline (UTF-8 documents
-> int32 token ids -> fixed-length packs): every stage grows every
document, so zero samples are offloadable and SOPHON plans nothing --
by measurement, not by special-casing.
"""

from benchmarks.conftest import run_once
from repro.cluster.spec import standard_cluster
from repro.core.decision import DecisionEngine
from repro.utils.tables import render_table
from repro.workloads.text import (
    TextCorpusSpec,
    llm_ingestion_records,
    offloadable_fraction,
)


def test_ext_llm_ingestion_declines(benchmark):
    spec = TextCorpusSpec(num_docs=20_000)

    def regenerate():
        records = llm_ingestion_records(spec, seed=7)
        plan = DecisionEngine().plan(
            records, standard_cluster(storage_cores=48), gpu_time_s=60.0
        )
        return records, plan

    records, plan = run_once(benchmark, regenerate)

    raw = sum(r.stage_sizes[0] for r in records)
    tokenized = sum(r.stage_sizes[1] for r in records)
    packed = sum(r.stage_sizes[2] for r in records)
    print("\nLLM ingestion pipeline, corpus-level bytes:")
    print(render_table(
        ("Stage", "Bytes", "vs raw"),
        [
            ("raw UTF-8", raw, "1.00x"),
            ("tokenized (int32 ids)", tokenized, f"{tokenized / raw:.2f}x"),
            (f"packed (seq_len={spec.seq_len})", packed, f"{packed / raw:.2f}x"),
        ],
    ))
    print(f"offloadable documents: {offloadable_fraction(records):.0%}")
    print(f"decision engine: {plan.reason}")

    # Every stage grows the corpus; nothing is worth offloading.
    assert tokenized >= raw
    assert packed >= tokenized
    assert offloadable_fraction(records) == 0.0
    assert plan.num_offloaded == 0
