"""Ablation: the efficiency metric itself (paper Finding #4).

Finding #4: a refined strategy must "prioritize images yielding the
highest network traffic savings per unit of CPU time, particularly when
CPU resources at the storage node are limited".  This ablation swaps
SOPHON's candidate ordering -- efficiency (the paper's), absolute savings,
arrival order -- and measures epochs under core scarcity.  With one or two
storage cores the efficiency order wins; with ample cores all orderings
converge (everything beneficial fits).
"""

import pytest

from benchmarks.conftest import run_once
from repro.cluster.spec import standard_cluster
from repro.cluster.trainer import TrainerSim
from repro.core.decision import DecisionConfig
from repro.core.policy import PolicyContext
from repro.core.sophon import Sophon
from repro.utils.tables import render_table
from repro.workloads.models import get_model_profile

ORDERS = ("efficiency", "savings", "arrival")
CORES = (1, 2, 48)


def test_ext_ordering_ablation(benchmark, openimages, pipeline):
    model = get_model_profile("alexnet")

    def regenerate():
        outcome = {}
        for cores in CORES:
            spec = standard_cluster(storage_cores=cores)
            context = PolicyContext(
                dataset=openimages, pipeline=pipeline, spec=spec,
                model=model, batch_size=256, seed=7,
            )
            trainer = TrainerSim(openimages, pipeline, model, spec, seed=7)
            row = {}
            for order in ORDERS:
                policy = Sophon(decision=DecisionConfig(order=order))
                plan = policy.plan(context)
                stats = trainer.run_epoch(list(plan.splits), epoch=1)
                row[order] = (plan, stats)
            outcome[cores] = row
        return outcome

    outcome = run_once(benchmark, regenerate)

    print("\nCandidate-ordering ablation (Finding #4):")
    print(render_table(
        ("Cores", "Order", "Epoch", "Offloaded", "Traffic MB"),
        [
            (
                cores,
                order,
                f"{stats.epoch_time_s:.2f}s",
                plan.num_offloaded,
                f"{stats.traffic_bytes / 1e6:.1f}",
            )
            for cores, row in outcome.items()
            for order, (plan, stats) in row.items()
        ],
    ))

    for cores in (1, 2):
        row = outcome[cores]
        efficiency = row["efficiency"][1].epoch_time_s
        # The paper's metric is the best ordering under scarcity.
        for order in ("savings", "arrival"):
            assert efficiency <= row[order][1].epoch_time_s + 1e-9, (cores, order)
        # And strictly better than ignoring cost-effectiveness entirely.
        assert efficiency < row["arrival"][1].epoch_time_s * 0.99, cores

    # With ample cores every beneficial sample fits: orderings converge.
    rich = outcome[48]
    times = [rich[order][1].epoch_time_s for order in ORDERS]
    assert max(times) - min(times) < 0.02 * max(times)
    counts = {rich[order][0].num_offloaded for order in ORDERS}
    assert len(counts) == 1