"""Extension: full-job amortization of on-the-fly profiling (section 3.1).

The paper's profiling costs one unoffloaded epoch; "a typical training job
spans over 50 epochs", so the plan's savings dwarf the profiling epoch.
This benchmark runs complete jobs (profile + planned epochs) and shows the
end-to-end speedup converging to the steady-state per-epoch speedup as the
job grows.
"""

import pytest

from benchmarks.conftest import run_once
from repro.baselines import NoOff
from repro.cluster.spec import standard_cluster
from repro.core.sophon import Sophon
from repro.harness.training import TrainingRun
from repro.utils.tables import render_table

EPOCH_COUNTS = (2, 5, 10)


def test_ext_full_training_run(benchmark, openimages):
    spec = standard_cluster(storage_cores=48)

    def regenerate():
        outcome = {}
        for epochs in EPOCH_COUNTS:
            sophon = TrainingRun(
                openimages, Sophon(), spec, batch_size=256, seed=7
            ).run(epochs)
            base = TrainingRun(
                openimages, NoOff(), spec, batch_size=256, seed=7
            ).run(epochs)
            outcome[epochs] = (sophon, base)
        return outcome

    outcome = run_once(benchmark, regenerate)

    print("\nEnd-to-end job speedup (profiling epoch included):")
    print(render_table(
        ("Epochs", "No-Off total", "SOPHON total", "Job speedup", "Steady speedup"),
        [
            (
                epochs,
                f"{base.total_time_s:.1f}s",
                f"{sophon.total_time_s:.1f}s",
                f"{sophon.speedup_over(base):.2f}x",
                f"{base.steady_epoch_time_s / sophon.steady_epoch_time_s:.2f}x",
            )
            for epochs, (sophon, base) in outcome.items()
        ],
    ))

    steady = None
    previous = 0.0
    for epochs in EPOCH_COUNTS:
        sophon, base = outcome[epochs]
        # Epoch 0 is a plain No-Off epoch: zero profiling overhead.
        assert sophon.profile_epoch_time_s == pytest.approx(
            base.per_epoch[0].epoch_time_s
        )
        speedup = sophon.speedup_over(base)
        steady = base.steady_epoch_time_s / sophon.steady_epoch_time_s
        # Speedup grows with job length and is bounded by steady state.
        assert speedup > previous
        assert speedup < steady
        previous = speedup

    # Steady-state matches the Figure 3 headline (~2.2x).
    assert steady == pytest.approx(2.2, rel=0.1)
    # At 10 epochs the job is already within ~15% of steady state.
    sophon10, base10 = outcome[10]
    assert sophon10.speedup_over(base10) > steady * 0.85
