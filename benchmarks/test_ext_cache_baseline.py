"""Extension: the caching alternative the paper contrasts SOPHON against.

Paper section 1: prior work "selectively cach[es] data in local storage or
memory ... limited by the capacities of local storage and memory".  This
benchmark runs that alternative: a Quiver-style pinned selective cache at
several capacity fractions, an LRU cache (which thrashes under per-epoch
reshuffles), and SOPHON -- all measured as steady-state traffic per epoch
on OpenImages.
"""

import pytest

from benchmarks.conftest import run_once
from repro.cache import epoch_traffic_with_cache, epoch_traffic_with_pinned_cache
from repro.cluster.spec import standard_cluster
from repro.core.policy import PolicyContext
from repro.core.sophon import Sophon
from repro.utils.tables import render_table
from repro.workloads.models import get_model_profile

FRACTIONS = (0.1, 0.25, 0.5, 0.75)


def test_ext_cache_baseline_vs_sophon(benchmark, openimages, pipeline):
    total = openimages.total_raw_bytes

    def regenerate():
        pinned = {
            frac: epoch_traffic_with_pinned_cache(
                openimages, int(total * frac), epochs=3
            )[-1]
            for frac in FRACTIONS
        }
        lru = epoch_traffic_with_cache(
            openimages, int(total * 0.25), epochs=4, seed=7
        )[-1]
        context = PolicyContext(
            dataset=openimages,
            pipeline=pipeline,
            spec=standard_cluster(storage_cores=48),
            model=get_model_profile("alexnet"),
            batch_size=256,
            seed=7,
        )
        plan = Sophon().plan(context)
        sophon = plan.expected_traffic_bytes(context.records())
        return pinned, lru, sophon

    pinned, lru, sophon = run_once(benchmark, regenerate)

    rows = [("no cache / No-Off", f"{1.0:.2f}")]
    rows += [
        (f"pinned cache {frac:.0%}", f"{traffic / total:.2f}")
        for frac, traffic in pinned.items()
    ]
    rows.append(("LRU cache 25%", f"{lru / total:.2f}"))
    rows.append(("SOPHON (no local storage)", f"{sophon / total:.2f}"))
    print("\nSteady-state traffic per epoch (fraction of dataset bytes):")
    print(render_table(("Configuration", "Traffic"), rows))

    # A pinned cache saves exactly its capacity -- the "limited by
    # capacity" ceiling.
    for frac, traffic in pinned.items():
        assert traffic / total == pytest.approx(1.0 - frac, abs=0.02)

    # LRU under per-epoch reshuffles barely helps at all.
    assert lru / total > 0.9

    # SOPHON's 2.2x cut (~55% fewer bytes) beats any cache smaller than
    # ~55% of the dataset -- without using any local storage.
    assert sophon < pinned[0.5]
    assert sophon > pinned[0.75] * 0.5  # a big enough cache still wins on bytes
