"""Ablation: sequential (offload, then compress) vs joint planning.

The sequential composition lets the offload pass consume the storage-CPU
budget before compression bids for it; the joint planner ranks both action
types in one efficiency queue.  Under CPU scarcity the joint plan trades a
few marginal offloads for higher-efficiency compressions of already-
offloaded payloads; with ample cores the two coincide exactly.
"""

import pytest

from benchmarks.conftest import run_once
from repro.cluster.spec import standard_cluster
from repro.cluster.trainer import TrainerSim
from repro.compression import JointPlanner, SelectiveCompressor
from repro.core.decision import DecisionEngine
from repro.core.profiler import StageTwoProfiler
from repro.utils.tables import render_table
from repro.workloads.models import get_model_profile

CORES = (1, 2, 4, 48)


def test_ext_joint_vs_sequential_planning(benchmark, openimages, pipeline):
    model = get_model_profile("alexnet")
    records = StageTwoProfiler().profile(openimages, pipeline, seed=7)
    gpu_time = len(records) / model.images_per_second

    def regenerate():
        outcome = {}
        for cores in CORES:
            spec = standard_cluster(storage_cores=cores)
            trainer = TrainerSim(
                openimages, pipeline, model, spec, batch_size=256, seed=7
            )
            offload = DecisionEngine().plan(records, spec, gpu_time_s=gpu_time)
            compression = SelectiveCompressor().plan(
                records, offload, pipeline, spec, gpu_time
            )
            sequential = trainer.run_epoch(
                list(offload.splits), epoch=1,
                adjustments=compression.adjustments(),
            )
            joint_plan = JointPlanner().plan(
                records, pipeline, spec, gpu_time_s=gpu_time
            )
            joint = trainer.run_epoch(
                list(joint_plan.offload.splits), epoch=1,
                adjustments=joint_plan.compression.adjustments(),
            )
            outcome[cores] = {
                "sequential": (offload.num_offloaded, compression.num_compressed, sequential),
                "joint": (joint_plan.num_offloaded, joint_plan.num_compressed, joint),
            }
        return outcome

    outcome = run_once(benchmark, regenerate)

    print("\nSequential vs joint offload+compression planning:")
    print(render_table(
        ("Cores", "Planner", "Offloaded", "Compressed", "Epoch", "Traffic MB"),
        [
            (
                cores,
                planner,
                offloaded,
                compressed,
                f"{stats.epoch_time_s:.2f}s",
                f"{stats.traffic_bytes / 1e6:.1f}",
            )
            for cores, row in outcome.items()
            for planner, (offloaded, compressed, stats) in row.items()
        ],
    ))

    for cores, row in outcome.items():
        seq_time = row["sequential"][2].epoch_time_s
        joint_time = row["joint"][2].epoch_time_s
        # Joint planning never loses.
        assert joint_time <= seq_time * 1.03, cores

    # Ample cores: identical admissions, identical results.
    rich = outcome[48]
    assert rich["sequential"][:2] == rich["joint"][:2]
    assert rich["sequential"][2].traffic_bytes == rich["joint"][2].traffic_bytes