"""Extension: other preprocessing pipelines (paper section 6).

The paper plans to "study a wider variety of DL training workloads".  Two
variants exercised here on OpenImages:

1. the deterministic ImageNet *validation* transform
   (Decode -> Resize(256) -> CenterCrop(224) -> ToTensor -> Normalize);
2. a heavier augmented training pipeline with photometric ops
   (ColorJitter, RandomGrayscale) between flip and ToTensor.

SOPHON's machinery is pipeline-agnostic: it finds each pipeline's own
minimum-size stage and offloads there.
"""

import pytest

from benchmarks.conftest import run_once
from repro.cluster.spec import standard_cluster
from repro.core.policy import PolicyContext
from repro.core.sophon import Sophon
from repro.harness.runner import run_experiment
from repro.baselines import NoOff
from repro.preprocessing.extra_ops import (
    augmented_training_pipeline,
    validation_pipeline,
)
from repro.utils.tables import render_table
from repro.workloads.models import get_model_profile


def test_ext_other_pipelines(benchmark, openimages):
    spec = standard_cluster(storage_cores=48)
    model = get_model_profile("alexnet")
    pipelines = {
        "validation": validation_pipeline(),
        "augmented-train": augmented_training_pipeline(),
    }

    def regenerate():
        outcome = {}
        for name, pipe in pipelines.items():
            base = run_experiment(
                openimages, NoOff(), spec, model=model, pipeline=pipe, seed=7
            )
            sophon = run_experiment(
                openimages, Sophon(), spec, model=model, pipeline=pipe, seed=7
            )
            outcome[name] = (base, sophon)
        return outcome

    outcome = run_once(benchmark, regenerate)

    print("\nSOPHON across pipelines (OpenImages, 48 storage cores):")
    print(render_table(
        ("Pipeline", "No-Off epoch", "SOPHON epoch", "Traffic cut", "Offloaded", "Splits"),
        [
            (
                name,
                f"{base.epoch_time_s:.2f}s",
                f"{sophon.epoch_time_s:.2f}s",
                f"{base.traffic_bytes / sophon.traffic_bytes:.2f}x",
                sophon.plan.num_offloaded,
                dict(sophon.plan.split_histogram()),
            )
            for name, (base, sophon) in outcome.items()
        ],
    ))

    for name, (base, sophon) in outcome.items():
        # Same benefit population, same ~2.2x traffic cut, on both pipelines.
        cut = base.traffic_bytes / sophon.traffic_bytes
        assert cut == pytest.approx(2.2, rel=0.1), name
        assert sophon.epoch_time_s < base.epoch_time_s / 1.8, name
        assert sophon.plan.offload_fraction == pytest.approx(0.76, abs=0.03), name

    # Each pipeline's split point is its own minimum-size stage:
    # validation crops at stage 3, the augmented pipeline still at stage 2.
    val_splits = set(outcome["validation"][1].plan.split_histogram())
    aug_splits = set(outcome["augmented-train"][1].plan.split_histogram())
    assert val_splits <= {0, 3}
    assert aug_splits <= {0, 2}
