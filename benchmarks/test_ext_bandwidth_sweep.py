"""Ablation: SOPHON across the bandwidth axis (when is offloading worth it?).

Section 5 scopes SOPHON to remote-I/O-bound training.  Sweeping the
inter-cluster bandwidth makes that scoping measurable: at low bandwidth
SOPHON's traffic cut converts ~1:1 into epoch time; as bandwidth grows the
workload stops being I/O-bound and the stage-one profiler declines to
offload -- SOPHON degrades to No-Off instead of meddling.
"""

import pytest

from benchmarks.conftest import run_once
from repro.baselines import NoOff
from repro.cluster.spec import standard_cluster
from repro.core.sophon import Sophon
from repro.harness.runner import run_experiment
from repro.utils.tables import render_table

BANDWIDTHS_MBPS = (100.0, 500.0, 2_000.0, 50_000.0)


def test_ext_bandwidth_sweep(benchmark, openimages):
    def regenerate():
        outcome = {}
        for mbps in BANDWIDTHS_MBPS:
            cluster = standard_cluster(storage_cores=48, bandwidth_mbps=mbps)
            sophon_policy = Sophon()
            sophon = run_experiment(
                openimages, sophon_policy, cluster, batch_size=256, seed=7
            )
            base = run_experiment(
                openimages, NoOff(), cluster, batch_size=256, seed=7
            )
            outcome[mbps] = (base, sophon, sophon_policy.last_probe)
        return outcome

    outcome = run_once(benchmark, regenerate)

    print("\nSOPHON vs bandwidth (OpenImages, 48 storage cores):")
    print(render_table(
        ("Mbps", "No-Off", "SOPHON", "Speedup", "Offloaded", "Stage-1 bottleneck"),
        [
            (
                f"{mbps:g}",
                f"{base.epoch_time_s:.2f}s",
                f"{sophon.epoch_time_s:.2f}s",
                f"{base.epoch_time_s / sophon.epoch_time_s:.2f}x",
                sophon.plan.num_offloaded,
                probe.bottleneck.value if probe is not None else "-",
            )
            for mbps, (base, sophon, probe) in outcome.items()
        ],
    ))

    # Low bandwidth: deeply I/O-bound, full ~2.2x conversion.
    base, sophon, probe = outcome[100.0]
    assert probe.io_bound
    assert base.epoch_time_s / sophon.epoch_time_s == pytest.approx(2.2, rel=0.1)

    # High bandwidth: not I/O-bound; stage one declines, SOPHON == No-Off.
    base, sophon, probe = outcome[50_000.0]
    assert not probe.io_bound
    assert sophon.plan.num_offloaded == 0
    assert sophon.epoch_time_s == pytest.approx(base.epoch_time_s, rel=0.01)

    # Never worse than No-Off anywhere on the axis.
    for mbps, (base, sophon, _) in outcome.items():
        assert sophon.epoch_time_s <= base.epoch_time_s * 1.01, mbps

    # The offloaded population shrinks monotonically.. to zero.
    counts = [outcome[m][1].plan.num_offloaded for m in BANDWIDTHS_MBPS]
    assert all(a >= b for a, b in zip(counts, counts[1:]))
