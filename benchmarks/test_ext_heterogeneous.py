"""Extension (paper section 6): heterogeneous CPU types across nodes.

The paper assumes identical CPUs on compute and storage nodes and defers
heterogeneity to future work.  Here the storage node's CPUs are swept from
2x faster to 8x slower; SOPHON's plan must shrink gracefully and never end
up slower than No-Off.
"""

import dataclasses

from benchmarks.conftest import run_once
from repro.cluster.spec import standard_cluster
from repro.cluster.trainer import TrainerSim
from repro.core.policy import PolicyContext
from repro.core.sophon import Sophon
from repro.utils.tables import render_table
from repro.workloads.models import get_model_profile

FACTORS = (0.5, 1.0, 2.0, 4.0, 8.0)


def test_ext_heterogeneous_storage_cpus(benchmark, openimages, pipeline):
    model = get_model_profile("alexnet")
    base = standard_cluster(storage_cores=4)

    def regenerate():
        results = {}
        for factor in FACTORS:
            spec = dataclasses.replace(base, storage_cpu_factor=factor)
            context = PolicyContext(
                dataset=openimages, pipeline=pipeline, spec=spec, model=model,
                batch_size=256, seed=7,
            )
            plan = Sophon().plan(context)
            trainer = TrainerSim(openimages, pipeline, model, spec, seed=7)
            stats = trainer.run_epoch(list(plan.splits), epoch=1)
            results[factor] = (plan, stats)
        baseline = TrainerSim(openimages, pipeline, model, base, seed=7).run_epoch(
            None, epoch=1
        )
        return results, baseline

    results, baseline = run_once(benchmark, regenerate)

    print("\nStorage CPU slowness sweep (4 storage cores):")
    print(render_table(
        ("Slowness", "Offloaded", "Epoch", "Traffic MB"),
        [
            (
                f"{factor:g}x",
                plan.num_offloaded,
                f"{stats.epoch_time_s:.2f}s",
                f"{stats.traffic_bytes / 1e6:.1f}",
            )
            for factor, (plan, stats) in results.items()
        ],
    ))
    print(f"No-Off baseline: {baseline.epoch_time_s:.2f}s")

    # Slower storage CPUs -> fewer offloaded samples (each CPU-second buys
    # less traffic), monotonically.
    counts = [results[f][0].num_offloaded for f in FACTORS]
    assert all(a >= b for a, b in zip(counts, counts[1:]))
    assert counts[0] > 0

    # Epoch time degrades monotonically with CPU slowness...
    times = [results[f][1].epoch_time_s for f in FACTORS]
    assert all(a <= b + 1e-6 for a, b in zip(times, times[1:]))

    # ...but SOPHON never does worse than not offloading at all.
    for factor in FACTORS:
        assert results[factor][1].epoch_time_s <= baseline.epoch_time_s * 1.02
