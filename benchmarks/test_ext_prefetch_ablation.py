"""Ablation: the prefetch window (why the epoch model's max() is right).

The analytic epoch model assumes the input pipeline overlaps the GPU:
epoch ~ max(T_G, T_Net, ...).  That overlap is the prefetch window's doing.
This ablation sweeps prefetch depth on a balanced workload (T_G ~ T_Net):
at depth 1 the stages serialize (epoch -> T_G + T_Net); with a few batches
of lookahead the epoch collapses to the max.
"""

import dataclasses

import pytest

from benchmarks.conftest import run_once
from repro.cluster.epoch_model import EpochModel
from repro.cluster.spec import standard_cluster
from repro.cluster.trainer import TrainerSim
from repro.utils.tables import render_table
from repro.workloads.models import get_model_profile

DEPTHS = (1, 2, 4, 8)


def test_ext_prefetch_ablation(benchmark, openimages, pipeline):
    # ResNet-50 at 1 Gbps: compute and network each ~5s -- the regime
    # where overlap matters most.
    model = get_model_profile("resnet50", "v100")
    base = standard_cluster(bandwidth_mbps=1000.0)

    def regenerate():
        outcome = {}
        for depth in DEPTHS:
            spec = dataclasses.replace(base, prefetch_batches=depth)
            trainer = TrainerSim(
                openimages, pipeline, model, spec, batch_size=64, seed=7
            )
            stats = trainer.run_epoch(None, epoch=0)
            bound = EpochModel(spec).estimate(stats.analytic)
            outcome[depth] = (stats, bound)
        return outcome

    outcome = run_once(benchmark, regenerate)

    print("\nPrefetch-depth sweep (ResNet-50, 1 Gbps, no offloading):")
    print(render_table(
        ("Depth", "Epoch", "max(T) bound", "sum(T_G,T_Net)", "GPU util"),
        [
            (
                depth,
                f"{stats.epoch_time_s:.2f}s",
                f"{bound.epoch_time_s:.2f}s",
                f"{bound.t_g + bound.t_net:.2f}s",
                f"{stats.gpu_utilization:.0%}",
            )
            for depth, (stats, bound) in outcome.items()
        ],
    ))

    # Deeper prefetch is monotonically better.
    times = [outcome[d][0].epoch_time_s for d in DEPTHS]
    assert all(a >= b - 1e-9 for a, b in zip(times, times[1:]))

    # Depth 1: nearly serialized -- epoch approaches T_G + T_Net.
    stats1, bound1 = outcome[1]
    assert stats1.epoch_time_s > 0.8 * (bound1.t_g + bound1.t_net)

    # Depth 8: pipelined -- epoch within ~15% of the max() bound.
    stats8, bound8 = outcome[8]
    assert stats8.epoch_time_s <= bound8.epoch_time_s * 1.15
    assert stats8.gpu_utilization > stats1.gpu_utilization * 1.3
