"""Shared benchmark fixtures: paper-scale (scaled-down) datasets.

Benchmarks regenerate the paper's exhibits at 2-3k samples -- large enough
for the population statistics to be tight, small enough to run in seconds.
Every benchmark prints the regenerated table/figure data (run with ``-s``
to see it) and asserts the paper's qualitative shape.
"""

import pytest

from repro.cluster.spec import standard_cluster
from repro.data.catalog import make_imagenet, make_openimages
from repro.preprocessing.pipeline import standard_pipeline


@pytest.fixture(scope="session")
def openimages():
    return make_openimages(num_samples=2000, seed=7)


@pytest.fixture(scope="session")
def imagenet():
    return make_imagenet(num_samples=3000, seed=7)


@pytest.fixture(scope="session")
def pipeline():
    return standard_pipeline()


@pytest.fixture(scope="session")
def ample_cluster():
    return standard_cluster(storage_cores=48)


def run_once(benchmark, fn):
    """Run a regeneration exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
