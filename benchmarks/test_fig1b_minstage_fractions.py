"""Figure 1b: where samples reach their minimum size.

Paper: 76% of OpenImages samples shrink at an intermediate stage (24%
smallest raw); for ImageNet only 26% shrink (74% smallest raw).
"""

import pytest

from benchmarks.conftest import run_once
from repro.harness.fig1 import benefit_fraction, minstage_fractions
from repro.utils.tables import render_table


def test_fig1b_minstage_fractions(benchmark, openimages, imagenet):
    def regenerate():
        return {
            "openimages": minstage_fractions(openimages),
            "imagenet": minstage_fractions(imagenet),
        }

    fractions = run_once(benchmark, regenerate)

    for name, table in fractions.items():
        rows = [(stage, f"{value:.1%}") for stage, value in table.items()]
        print(f"\n[{name}] minimum-size stage fractions:")
        print(render_table(("Stage", "Fraction"), rows))

    # Paper numbers: 76% / 26% benefit.
    assert benefit_fraction(fractions["openimages"]) == pytest.approx(0.76, abs=0.03)
    assert benefit_fraction(fractions["imagenet"]) == pytest.approx(0.26, abs=0.03)

    # Minima occur either raw or right after RandomResizedCrop -- never
    # after the 4x ToTensor inflation.
    for table in fractions.values():
        assert table["ToTensor"] == 0.0
        assert table["Normalize"] == 0.0
        assert table["Decode"] == 0.0
