"""Extension: adaptive re-planning under cluster drift.

The paper plans once after the profiling epoch.  When the storage node's
cores collapse mid-job (another tenant moved in), the stale plan keeps
pushing 48 cores' worth of offloaded work onto 1 core and becomes *slower
than not offloading at all*.  Re-planning from the cached records (one
cheap analytic pass, no re-profiling) restores the optimum.
"""

import pytest

from benchmarks.conftest import run_once
from repro.cluster.spec import standard_cluster
from repro.harness.adaptive import AdaptiveTrainingRun
from repro.utils.tables import render_table

EPOCHS = 6
DRIFT_EPOCH = 3


def test_ext_adaptive_replanning(benchmark, openimages):
    base = standard_cluster(storage_cores=48)
    schedule = {DRIFT_EPOCH: base.with_storage_cores(1)}

    def regenerate():
        adaptive = AdaptiveTrainingRun(
            openimages, base, schedule, batch_size=256, adaptive=True, seed=7
        ).run(EPOCHS)
        static = AdaptiveTrainingRun(
            openimages, base, schedule, batch_size=256, adaptive=False, seed=7
        ).run(EPOCHS)
        return adaptive, static

    adaptive, static = run_once(benchmark, regenerate)

    print(f"\nStorage cores collapse 48 -> 1 at epoch {DRIFT_EPOCH}:")
    print(render_table(
        ("Epoch", "Static epoch", "Adaptive epoch", "Static offloads", "Adaptive offloads"),
        [
            (
                e,
                f"{static.epochs[e].stats.epoch_time_s:.2f}s",
                f"{adaptive.epochs[e].stats.epoch_time_s:.2f}s",
                static.epochs[e].plan.num_offloaded,
                adaptive.epochs[e].plan.num_offloaded,
            )
            for e in range(EPOCHS)
        ],
    ))
    print(f"job totals: static {static.total_time_s:.1f}s, "
          f"adaptive {adaptive.total_time_s:.1f}s")

    # Identical until the drift...
    for epoch in range(DRIFT_EPOCH):
        assert adaptive.epochs[epoch].stats.epoch_time_s == pytest.approx(
            static.epochs[epoch].stats.epoch_time_s
        )
    # ...then the stale plan drowns the single core while the adaptive run
    # recovers by shedding offloads.
    for epoch in range(DRIFT_EPOCH, EPOCHS):
        ratio = (
            static.epochs[epoch].stats.epoch_time_s
            / adaptive.epochs[epoch].stats.epoch_time_s
        )
        assert ratio > 2.0, epoch
    assert adaptive.replan_count == 2  # initial plan + one drift response
    assert adaptive.total_time_s < static.total_time_s / 1.5