"""Extension: sharded storage clusters and placement skew.

The paper's storage side is a distributed cluster; "storage cores" is
really per-node CPU behind the shared egress.  With the offload-heavy
samples spread round-robin, four 1-core shards behave like the aggregate;
with a skewed placement (all heavy samples on one shard, as naive
contiguous ingest can produce when sizes correlate with ingest order), the
hot shard becomes the bottleneck while its siblings idle.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.cluster.sharded import (
    ShardedTrainerSim,
    round_robin_placement,
)
from repro.cluster.spec import standard_cluster
from repro.cluster.trainer import TrainerSim
from repro.core.profiler import StageTwoProfiler
from repro.data.trace import TraceDataset
from repro.utils.tables import render_table
from repro.workloads.models import get_model_profile

SHARDS = 4


def skewed_dataset_and_placement(openimages):
    """Sort samples by size, then place contiguously: shard 0 gets all the
    big (offload-heavy) samples."""
    order = sorted(
        openimages.sample_ids(),
        key=lambda i: openimages.raw_meta(i).nbytes,
        reverse=True,
    )
    sizes = [openimages.raw_meta(i).nbytes for i in order]
    heights = [openimages.raw_meta(i).height for i in order]
    widths = [openimages.raw_meta(i).width for i in order]
    dataset = TraceDataset(sizes, heights, widths, name="oi-sorted")
    per_shard = (len(dataset) + SHARDS - 1) // SHARDS
    placement = [min(i // per_shard, SHARDS - 1) for i in range(len(dataset))]
    return dataset, placement


def test_ext_sharded_storage(benchmark, openimages, pipeline):
    model = get_model_profile("alexnet")
    spec = standard_cluster(storage_cores=1)  # per shard

    def regenerate():
        records = StageTwoProfiler().profile(openimages, pipeline, seed=7)
        splits = [r.min_stage for r in records]

        spread = ShardedTrainerSim(
            openimages, pipeline, model, spec,
            placement=round_robin_placement(len(openimages), SHARDS),
            batch_size=256, seed=7,
        ).run_epoch(splits, epoch=0)

        skewed_ds, skew_placement = skewed_dataset_and_placement(openimages)
        skew_records = StageTwoProfiler().profile(skewed_ds, pipeline, seed=7)
        skew_splits = [r.min_stage for r in skew_records]
        skewed = ShardedTrainerSim(
            skewed_ds, pipeline, model, spec,
            placement=skew_placement, batch_size=256, seed=7,
        ).run_epoch(skew_splits, epoch=0)

        aggregate = TrainerSim(
            openimages, pipeline, model,
            standard_cluster(storage_cores=SHARDS),
            batch_size=256, seed=7,
        ).run_epoch(splits, epoch=0)
        return spread, skewed, aggregate

    spread, skewed, aggregate = run_once(benchmark, regenerate)

    print(f"\n{SHARDS} shards x 1 core vs one {SHARDS}-core node:")
    print(render_table(
        ("Configuration", "Epoch", "Shard utilizations"),
        [
            ("aggregate (1 node x 4 cores)", f"{aggregate.epoch_time_s:.2f}s", "-"),
            (
                "4 shards, round-robin",
                f"{spread.epoch_time_s:.2f}s",
                [f"{u:.0%}" for u in spread.shard_utilization],
            ),
            (
                "4 shards, size-skewed",
                f"{skewed.epoch_time_s:.2f}s",
                [f"{u:.0%}" for u in skewed.shard_utilization],
            ),
        ],
    ))

    # Balanced shards approximate the aggregate pool.
    assert spread.epoch_time_s == pytest.approx(aggregate.epoch_time_s, rel=0.15)

    # Skew makes one shard hot while others idle, and costs real time.
    hot = max(skewed.shard_utilization)
    cold = min(skewed.shard_utilization)
    assert hot > 0.9
    assert cold < 0.2
    assert skewed.epoch_time_s > spread.epoch_time_s * 1.5

    # The spread placement keeps shard load even.
    assert max(spread.shard_utilization) - min(spread.shard_utilization) < 0.25