"""Table 1: capability matrix of offloading approaches vs SOPHON."""

from benchmarks.conftest import run_once
from repro.harness.table1 import (
    capability_matrix,
    published_matrix,
    render_capability_matrix,
    render_published_matrix,
    sophon_is_strictly_most_capable,
)


def test_table1_capability_matrix(benchmark):
    rows = run_once(benchmark, capability_matrix)

    print("\nPublished systems (the paper's Table 1):")
    print(render_published_matrix())
    print("\nImplemented policies in this reproduction:")
    print(render_capability_matrix())

    # Paper's claim: SOPHON is the first framework that is selective on
    # every axis; each comparator misses at least one column.
    assert sophon_is_strictly_most_capable(rows)
    sophon = next(r for r in rows if r[0] == "sophon")
    assert all(cell == "yes" for cell in sophon[1:])

    published = published_matrix()
    full_rows = [r[0] for r in published if all(c == "yes" for c in r[1:])]
    assert full_rows == ["SOPHON"]
    # No published comparator offloads to near-storage.
    for name, *cells in published:
        if name != "SOPHON":
            assert cells[-1] == "-", name
