"""Figure 1c: distribution of offloading efficiency across OpenImages.

Paper: 24% of images sit at ratio 0 (smallest raw); the remaining 76%
spread over a wide range, motivating efficiency-ordered selection.
"""

import pytest

from benchmarks.conftest import run_once
from repro.core.efficiency import (
    efficiency_cdf,
    efficiency_distribution,
)
from repro.core.profiler import StageTwoProfiler


def test_fig1c_efficiency_distribution(benchmark, openimages, pipeline):
    def regenerate():
        records = StageTwoProfiler().profile(openimages, pipeline, seed=7)
        return records, efficiency_distribution(records), efficiency_cdf(records, 21)

    records, summary, cdf = run_once(benchmark, regenerate)

    print(f"\n{summary}")
    print("efficiency CDF (bytes saved per CPU-second):")
    for value, quantile in cdf[::4]:
        print(f"  p{quantile * 100:3.0f}: {value:.3g}")

    # Paper: 24% of samples at ratio 0.
    assert summary.zero_fraction == pytest.approx(0.24, abs=0.03)

    # The nonzero population spreads widely (the figure's long tail):
    # the 90th percentile is several times the median.
    assert summary.p90_nonzero > 1.5 * summary.median_nonzero

    # CDF is a valid monotone distribution over all samples.
    values = [v for v, _ in cdf]
    assert values == sorted(values)
    assert len(records) == len(openimages)
