"""Library micro-benchmarks: real wall-clock throughput of the hot paths.

Unlike the figure regenerators (which run in virtual time), these measure
the actual Python/numpy implementations -- codec encode/decode, bilinear
resize, the full pipeline, and message serialization -- with
pytest-benchmark's normal multi-round timing.  They guard against
performance regressions in the substrate itself.
"""

import numpy as np
import pytest

from repro.codec import CodecConfig, ToyJpegCodec
from repro.data.synthetic import generate_image
from repro.preprocessing.payload import Payload
from repro.preprocessing.pipeline import standard_pipeline
from repro.preprocessing.resize import resize_bilinear
from repro.rpc.messages import FetchRequest, FetchResponse


@pytest.fixture(scope="module")
def image():
    return generate_image(np.random.default_rng(0), 384, 512, texture=0.5)


@pytest.fixture(scope="module")
def codec():
    return ToyJpegCodec(CodecConfig())


def test_micro_codec_encode(benchmark, image, codec):
    encoded = benchmark(codec.encode, image)
    assert len(encoded) > 0


def test_micro_codec_decode(benchmark, image, codec):
    encoded = codec.encode(image)
    decoded = benchmark(codec.decode, encoded)
    assert decoded.shape == image.shape


def test_micro_resize(benchmark, image):
    out = benchmark(resize_bilinear, image, 224, 224)
    assert out.shape == (224, 224, 3)


def test_micro_full_pipeline(benchmark, image, codec):
    pipeline = standard_pipeline(codec=codec)
    payload = Payload.encoded(codec.encode(image), height=384, width=512)

    def run():
        return pipeline.run(payload, seed=0, epoch=0, sample_id=0)

    result = benchmark(run)
    assert result.payload.data.shape == (3, 224, 224)


def test_micro_response_serialization(benchmark, image):
    request = FetchRequest(0, 0, 2)
    payload = Payload.image(np.ascontiguousarray(image[:224, :224]))

    def round_trip():
        wire = FetchResponse.from_payload(request, payload, 224, 224).to_bytes()
        return FetchResponse.from_bytes(wire).to_payload()

    restored = benchmark(round_trip)
    assert restored.data.shape == (224, 224, 3)
