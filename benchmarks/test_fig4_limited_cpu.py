"""Figure 4: policies under storage-node CPU scarcity (OpenImages).

Paper shapes asserted:
- All-Off has the longest training time, worse still at 1 core;
- FastFlow never offloads;
- Resize-Off reaches the lowest traffic but is slower than No-Off at <= 2
  cores (offloaded CPU becomes the new bottleneck);
- SOPHON has the best time at every core count, with diminishing returns
  per added core (paper: 0->1 saves 22 s, 4->5 saves 9 s).
"""

import pytest

from benchmarks.conftest import run_once
from repro.harness.fig4 import limited_cpu_sweep

CORES = (0, 1, 2, 3, 4, 5)


def test_fig4_limited_cpu_sweep(benchmark, openimages):
    sweep = run_once(
        benchmark, lambda: limited_cpu_sweep(openimages, cores=CORES, seed=7)
    )
    print("\n" + sweep.render())
    gains = sweep.sophon_marginal_gains()
    print("SOPHON marginal gains per core:",
          ", ".join(f"{g:.2f}s" for g in gains))

    # 0 cores: nobody can offload; all policies coincide.
    zero = sweep.results[0]
    assert len({round(r.epoch_time_s, 6) for r in zero.values()}) == 1

    for cores in CORES[1:]:
        row = sweep.results[cores]
        # All-Off worst everywhere.
        worst = max(r.epoch_time_s for r in row.values())
        assert row["all-off"].epoch_time_s == pytest.approx(worst)
        # FastFlow = No-Off (it declines).
        assert row["fastflow"].plan.num_offloaded == 0
        # SOPHON best everywhere.
        best = min(r.epoch_time_s for r in row.values())
        assert row["sophon"].epoch_time_s == pytest.approx(best)

    # Under CPU scarcity, Resize-Off owns the traffic floor: it offloads
    # every sample regardless of cost, while SOPHON deliberately leaves
    # traffic on the table to avoid a storage-CPU bottleneck.  (At ample
    # cores SOPHON's per-sample minimum matches or beats it -- Figure 3.)
    for cores in (1, 2, 3):
        row = sweep.results[cores]
        lowest_traffic = min(r.traffic_bytes for r in row.values())
        assert row["resize-off"].traffic_bytes == lowest_traffic
        assert row["sophon"].traffic_bytes > row["resize-off"].traffic_bytes

    # All-Off degrades further when only 1 core serves the offloaded work.
    assert zero != sweep.results[1]
    assert (
        sweep.results[1]["all-off"].epoch_time_s
        > sweep.results[2]["all-off"].epoch_time_s
    )

    # Resize-Off crossover: worse than No-Off at <= 2 cores, better at >= 4.
    for cores in (1, 2):
        row = sweep.results[cores]
        assert row["resize-off"].epoch_time_s > row["no-off"].epoch_time_s
    for cores in (4, 5):
        row = sweep.results[cores]
        assert row["resize-off"].epoch_time_s < row["no-off"].epoch_time_s

    # SOPHON: monotone improvement with diminishing returns.
    times = sweep.epoch_times("sophon")
    assert all(a >= b - 1e-9 for a, b in zip(times, times[1:]))
    assert gains[0] > 2 * gains[3]  # 0->1 core buys much more than 3->4
