"""Extension (paper section 6): selective compression of offloaded payloads.

Regenerates the ablation: SOPHON alone vs SOPHON + selective compression,
across storage-core budgets.  With ample cores compression buys extra
traffic reduction; with scarce cores the planner correctly backs off
because compression competes with offloading for the same CPUs.
"""

import pytest

from benchmarks.conftest import run_once
from repro.cluster.spec import standard_cluster
from repro.cluster.trainer import TrainerSim
from repro.compression import SelectiveCompressor
from repro.core.policy import PolicyContext
from repro.core.sophon import Sophon
from repro.utils.tables import render_table
from repro.workloads.models import get_model_profile


def test_ext_selective_compression(benchmark, openimages, pipeline):
    model = get_model_profile("alexnet")

    def regenerate():
        rows = {}
        for cores in (2, 8, 48):
            spec = standard_cluster(storage_cores=cores)
            context = PolicyContext(
                dataset=openimages, pipeline=pipeline, spec=spec, model=model,
                batch_size=256, seed=7,
            )
            plan = Sophon().plan(context)
            compression = SelectiveCompressor().plan(
                context.records(), plan, pipeline, spec, context.epoch_gpu_time_s
            )
            trainer = TrainerSim(openimages, pipeline, model, spec, seed=7)
            plain = trainer.run_epoch(list(plan.splits), epoch=1)
            zipped = trainer.run_epoch(
                list(plan.splits), epoch=1, adjustments=compression.adjustments()
            )
            rows[cores] = (plain, zipped, compression)
        return rows

    rows = run_once(benchmark, regenerate)

    print("\nSOPHON vs SOPHON+selective-compression:")
    print(render_table(
        ("Cores", "Epoch", "Epoch+zip", "Traffic MB", "Traffic+zip MB", "Compressed"),
        [
            (
                cores,
                f"{plain.epoch_time_s:.2f}s",
                f"{zipped.epoch_time_s:.2f}s",
                f"{plain.traffic_bytes / 1e6:.1f}",
                f"{zipped.traffic_bytes / 1e6:.1f}",
                comp.num_compressed,
            )
            for cores, (plain, zipped, comp) in rows.items()
        ],
    ))

    # Ample cores: compression reduces both traffic and epoch time.
    plain48, zipped48, comp48 = rows[48]
    assert comp48.num_compressed > 0
    assert zipped48.traffic_bytes < plain48.traffic_bytes
    assert zipped48.epoch_time_s < plain48.epoch_time_s

    # Compression never makes things worse at any budget (the planner's
    # network-predominance discipline).
    for cores, (plain, zipped, _) in rows.items():
        assert zipped.epoch_time_s <= plain.epoch_time_s * 1.02
        assert zipped.traffic_bytes <= plain.traffic_bytes

    # Scarce cores compress fewer samples than ample cores.
    assert rows[2][2].num_compressed <= rows[48][2].num_compressed
