"""Ablation: the decision engine's never-worsen guard (DESIGN.md section 4).

The paper's stopping rule is "stop when T_Net ceases to be predominant".
Our engine adds a guard that also *skips* samples whose offload would raise
the epoch estimate.  This ablation runs both variants across storage-core
budgets: with ample cores they agree exactly; under scarcity the guard can
only help.
"""

from benchmarks.conftest import run_once
from repro.cluster.spec import standard_cluster
from repro.cluster.trainer import TrainerSim
from repro.core.decision import DecisionConfig, DecisionEngine
from repro.core.policy import PolicyContext
from repro.core.sophon import Sophon
from repro.utils.tables import render_table
from repro.workloads.models import get_model_profile

CORES = (1, 2, 8, 48)


def test_ext_ablation_never_worsen_guard(benchmark, openimages, pipeline):
    model = get_model_profile("alexnet")

    def regenerate():
        results = {}
        for cores in CORES:
            spec = standard_cluster(storage_cores=cores)
            context = PolicyContext(
                dataset=openimages, pipeline=pipeline, spec=spec, model=model,
                batch_size=256, seed=7,
            )
            trainer = TrainerSim(openimages, pipeline, model, spec, seed=7)
            row = {}
            for label, guarded in (("guarded", True), ("paper-literal", False)):
                policy = Sophon(decision=DecisionConfig(never_worsen=guarded))
                plan = policy.plan(context)
                stats = trainer.run_epoch(list(plan.splits), epoch=1)
                row[label] = (plan, stats)
            results[cores] = row
        return results

    results = run_once(benchmark, regenerate)

    print("\nnever-worsen guard ablation:")
    print(render_table(
        ("Cores", "Variant", "Offloaded", "Epoch"),
        [
            (cores, label, plan.num_offloaded, f"{stats.epoch_time_s:.2f}s")
            for cores, row in results.items()
            for label, (plan, stats) in row.items()
        ],
    ))

    for cores, row in results.items():
        guarded_time = row["guarded"][1].epoch_time_s
        literal_time = row["paper-literal"][1].epoch_time_s
        # The guard never hurts.
        assert guarded_time <= literal_time * 1.02, f"{cores} cores"

    # With ample cores nothing overshoots: the two variants agree exactly.
    rich = results[48]
    assert list(rich["guarded"][0].splits) == list(rich["paper-literal"][0].splits)
