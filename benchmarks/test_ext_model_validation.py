"""Validation: the analytic epoch model vs the event simulation.

SOPHON plans against max(T_G, T_CC, T_CS, T_Net); the evaluation runs a
discrete-event simulation with queueing and pipeline fill.  This benchmark
quantifies the gap across the whole (policy x cores x bandwidth) grid: the
measured epoch must always dominate the analytic lower bound, and stay
within a modest envelope of it -- otherwise planning against the model
would be unsound.
"""

import pytest

from benchmarks.conftest import run_once
from repro.cluster.epoch_model import EpochModel
from repro.cluster.spec import standard_cluster
from repro.harness.sweeps import grid_sweep
from repro.utils.tables import render_table


def test_ext_analytic_model_validation(benchmark, openimages):
    def regenerate():
        return grid_sweep(
            openimages,
            standard_cluster(),
            {"storage_cores": [1, 4, 48], "bandwidth_mbps": [250.0, 500.0]},
            seed=7,
            batch_size=256,
        )

    table = run_once(benchmark, regenerate)

    rows = []
    worst_ratio = 0.0
    for row in table.rows:
        spec = row.result.spec
        bound = EpochModel(spec).estimate(row.result.stats.analytic).epoch_time_s
        measured = row.result.epoch_time_s
        ratio = measured / bound if bound > 0 else float("inf")
        worst_ratio = max(worst_ratio, ratio)
        rows.append(
            (
                row.point["storage_cores"],
                f"{row.point['bandwidth_mbps']:g}",
                row.policy,
                f"{bound:.2f}s",
                f"{measured:.2f}s",
                f"{ratio:.3f}",
            )
        )
        # Soundness: measurement never beats the lower bound.
        assert measured >= bound * (1 - 1e-9), (row.point, row.policy)

    print("\nAnalytic bound vs measured epoch, full grid:")
    print(render_table(
        ("Cores", "Mbps", "Policy", "Bound", "Measured", "Ratio"), rows
    ))
    print(f"worst measured/bound ratio: {worst_ratio:.3f}")

    # Tightness: pipelined execution stays within ~35% of the bound even
    # in the nastiest corner (1 storage core, every policy).
    assert worst_ratio < 1.35