"""Figure 1a: per-sample size through the preprocessing pipeline.

Paper exhibit: Sample A (462 KB raw) shrinks to 151 KB after
RandomResizedCrop and inflates 4x at ToTensor; Sample B is smallest in its
raw form.  We regenerate both traces from the calibrated OpenImages
population and assert the same algebra.
"""

from benchmarks.conftest import run_once
from repro.harness.fig1 import representative_samples, size_trace

CROP_BYTES = 224 * 224 * 3


def test_fig1a_size_traces(benchmark, openimages):
    def regenerate():
        sample_a, sample_b = representative_samples(openimages)
        return (
            size_trace(openimages, sample_a),
            size_trace(openimages, sample_b),
        )

    trace_a, trace_b = run_once(benchmark, regenerate)

    print("\nSample A (shrinks mid-pipeline):")
    print(trace_a.render())
    print("\nSample B (smallest raw):")
    print(trace_b.render())

    # Sample A: raw larger than the crop output; min at RandomResizedCrop;
    # ToTensor inflates exactly 4x (1-byte channels -> 4-byte floats).
    assert trace_a.stage_sizes[0] > CROP_BYTES
    assert trace_a.min_stage == 2
    assert trace_a.stage_sizes[2] == CROP_BYTES
    assert trace_a.stage_sizes[3] == CROP_BYTES  # flip preserves size
    assert trace_a.stage_sizes[4] == 4 * CROP_BYTES
    assert trace_a.stage_sizes[5] == 4 * CROP_BYTES

    # Sample B: raw is the global minimum; decode always inflates.
    assert trace_b.min_stage == 0
    assert trace_b.stage_sizes[1] > trace_b.stage_sizes[0]
