"""Extension: the audio domain (intro's third modality).

An audio front-end (decode -> mel spectrogram -> normalize) has the
opposite size algebra to images: decoding inflates, but feature extraction
*shrinks* every clip (n_mels values per hop of PCM).  SOPHON discovers
from the same per-sample records that the minimum-size stage is the
spectrogram and offloads the whole front-end; interestingly, this is the
domain where FastFlow's all-or-nothing heuristic also works -- the final
stage is small -- so the two agree here while differing on images.
"""

import pytest

from benchmarks.conftest import run_once
from repro.baselines import FastFlow, NoOff
from repro.cluster.spec import standard_cluster
from repro.core.sophon import Sophon
from repro.data.audio import make_audio_trace
from repro.harness.runner import run_experiment
from repro.preprocessing.audio_ops import audio_pipeline
from repro.utils.tables import render_table
from repro.workloads.models import get_model_profile


def test_ext_audio_workload(benchmark):
    dataset = make_audio_trace(2000, seed=7)
    pipeline = audio_pipeline()
    cluster = standard_cluster(storage_cores=48, bandwidth_mbps=500.0)
    model = get_model_profile("alexnet")

    def regenerate():
        return {
            policy.name: run_experiment(
                dataset, policy, cluster, model=model,
                pipeline=pipeline, batch_size=64, seed=7,
            )
            for policy in (NoOff(), FastFlow(), Sophon())
        }

    results = run_once(benchmark, regenerate)

    print("\nAudio front-end offloading (2000 clips, 500 Mbps):")
    print(render_table(
        ("Policy", "Epoch", "Traffic MB", "Offloaded", "Splits"),
        [
            (
                name,
                f"{r.epoch_time_s:.2f}s",
                f"{r.traffic_bytes / 1e6:.1f}",
                r.plan.num_offloaded,
                dict(r.plan.split_histogram()),
            )
            for name, r in results.items()
        ],
    ))

    base = results["no-off"]
    sophon = results["sophon"]
    fastflow = results["fastflow"]

    # SOPHON offloads every clip through the spectrogram (stage 2).
    assert sophon.plan.num_offloaded == len(dataset)
    assert set(sophon.plan.split_histogram()) == {2}

    # Spectrograms are much smaller than raw audio.  The expected cut is
    # analytic: raw ~1.3 B/PCM-sample vs 64 mels x 4 B per 512-sample hop
    # = 0.5 B/PCM-sample, i.e. ~2.6x.
    cut = base.traffic_bytes / sophon.traffic_bytes
    assert cut == pytest.approx(2.6, rel=0.1)
    assert sophon.epoch_time_s < base.epoch_time_s / 2.0

    # FastFlow's all-or-nothing works in this domain (the final stage is
    # small), landing within ~20% of SOPHON -- unlike the image pipelines
    # where it must decline entirely.
    assert fastflow.plan.num_offloaded == len(dataset)
    assert fastflow.epoch_time_s <= sophon.epoch_time_s * 1.25
    # SOPHON still never loses: stage 2 <= full pipeline bytes.
    assert sophon.traffic_bytes <= fastflow.traffic_bytes
