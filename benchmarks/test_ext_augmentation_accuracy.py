"""Extension: why not preprocess just once (paper section 3.3), measured.

"Random augmentations, typically applied during online preprocessing, are
crucial for DL training accuracy and should be performed in each epoch."
The paper asserts this; here it is measured: identical model, data, and
step counts, differing only in whether each epoch re-draws its crops
(online -- what SOPHON preserves) or reuses frozen epoch-0 crops
(preprocess-once).  Averaged over seeds, online generalizes measurably
better on crop-augmented held-out data.
"""

import statistics

from benchmarks.conftest import run_once
from repro.training import AugmentationStudy
from repro.utils.tables import render_table

SEEDS = (0, 1, 2)


def test_ext_online_augmentation_preserves_accuracy(benchmark):
    def regenerate():
        return [AugmentationStudy(seed=seed).run() for seed in SEEDS]

    results = run_once(benchmark, regenerate)

    print("\nOnline (per-epoch) vs frozen (preprocess-once) augmentation:")
    print(render_table(
        ("Seed", "Online acc", "Frozen acc", "Gap"),
        [
            (seed, f"{r.online_accuracy:.2f}", f"{r.frozen_accuracy:.2f}",
             f"{r.gap:+.2f}")
            for seed, r in zip(SEEDS, results)
        ],
    ))

    mean_online = statistics.mean(r.online_accuracy for r in results)
    mean_frozen = statistics.mean(r.frozen_accuracy for r in results)
    print(f"mean: online {mean_online:.2f} vs frozen {mean_frozen:.2f}")

    # Online training is far above chance on every seed...
    assert all(r.online_accuracy > 0.6 for r in results)
    # ...and beats preprocess-once on every seed, by a solid mean margin.
    assert all(r.gap > 0 for r in results)
    assert mean_online - mean_frozen > 0.1
