"""Extension (paper section 6): multi-tenant storage-CPU scheduling.

Three jobs share one storage node; the greedy scheduler distributes cores
by marginal epoch-time gain, re-running SOPHON's planner per candidate
allocation.
"""

from benchmarks.conftest import run_once
from repro.cluster.spec import standard_cluster
from repro.data.catalog import make_imagenet, make_openimages
from repro.scheduler import GreedyCoreScheduler
from repro.scheduler.multitenant import make_job


def test_ext_multitenant_scheduler(benchmark):
    jobs = [
        make_job("oi-alexnet", make_openimages(num_samples=800, seed=1)),
        make_job("in-alexnet", make_imagenet(num_samples=1200, seed=2)),
        make_job(
            "oi-resnet50",
            make_openimages(num_samples=800, seed=3),
            model_name="resnet50",
        ),
    ]
    scheduler = GreedyCoreScheduler(standard_cluster())

    def regenerate():
        return {budget: scheduler.allocate(jobs, budget) for budget in (2, 8, 24)}

    allocations = run_once(benchmark, regenerate)

    for budget, allocation in allocations.items():
        print(f"\n--- budget {budget} cores ---")
        print(allocation.render())

    # More budget never hurts the aggregate objective.
    objectives = [allocations[b].objective for b in (2, 8, 24)]
    assert objectives[0] >= objectives[1] >= objectives[2]

    # Every allocation respects its budget.
    for budget, allocation in allocations.items():
        assert sum(allocation.cores.values()) <= budget

    # The I/O-bound AlexNet jobs outrank the compute-bound ResNet-50 job
    # for the first scarce cores.
    scarce = allocations[2].cores
    assert scarce["oi-alexnet"] + scarce["in-alexnet"] >= scarce["oi-resnet50"]

    # With a generous budget the sum of per-job times approaches each job's
    # independent optimum (diminishing marginal gains flatten out).
    rich = allocations[24]
    for job in jobs:
        solo_best = scheduler.epoch_time_at(job, 24)
        assert rich.epoch_times[job.name] <= solo_best * 1.5
