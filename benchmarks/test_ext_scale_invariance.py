"""Validation: results are scale-invariant (DESIGN.md's scaling claim).

The benchmarks run at thousands of samples instead of the paper's tens of
thousands, on the argument that every reported quantity is a ratio of
per-sample means.  This benchmark tests that argument: the Figure-3 ratios
at 500, 1000, and 4000 samples must agree within sampling noise.
"""

import pytest

from benchmarks.conftest import run_once
from repro.cluster.spec import standard_cluster
from repro.data.catalog import make_openimages
from repro.harness.fig3 import ample_cpu_comparison
from repro.utils.tables import render_table

SCALES = (500, 1000, 4000)


def test_ext_scale_invariance(benchmark):
    cluster = standard_cluster(storage_cores=48)

    def regenerate():
        ratios = {}
        for scale in SCALES:
            dataset = make_openimages(num_samples=scale, seed=7)
            comparison = ample_cpu_comparison(dataset, cluster, seed=7)
            ratios[scale] = {
                "alloff_traffic": comparison.traffic_ratio("all-off"),
                "resizeoff_traffic": comparison.traffic_ratio("resize-off"),
                "sophon_traffic": comparison.traffic_ratio("sophon"),
                "sophon_time": comparison.time_ratio("sophon"),
                "offload_fraction": comparison.by_policy()["sophon"].plan.offload_fraction,
            }
        return ratios

    ratios = run_once(benchmark, regenerate)

    metrics = list(next(iter(ratios.values())))
    print("\nFigure-3 ratios across dataset scales (OpenImages):")
    print(render_table(
        ("Samples",) + tuple(metrics),
        [
            (scale,) + tuple(f"{ratios[scale][m]:.3f}" for m in metrics)
            for scale in SCALES
        ],
    ))

    # Each ratio varies by < 6% across an 8x scale range.
    for metric in metrics:
        values = [ratios[scale][metric] for scale in SCALES]
        spread = (max(values) - min(values)) / max(values)
        assert spread < 0.06, (metric, values)

    # And the headline numbers sit where the paper puts them at any scale.
    for scale in SCALES:
        assert ratios[scale]["alloff_traffic"] == pytest.approx(1.9, rel=0.1)
        assert 1.0 / ratios[scale]["sophon_traffic"] == pytest.approx(2.2, rel=0.1)