"""Extension: many jobs on one egress link (paper section 5 motivation).

The paper motivates SOPHON with cluster-scale arithmetic: hundreds of jobs
share an egress budget smaller than their aggregate demand.  This
benchmark runs 1/2/4 concurrent AlexNet jobs over one fair-shared link,
No-Off vs SOPHON: without offloading the mean epoch time stretches
linearly with the job count (the link is the cluster bottleneck); with
SOPHON every job ships ~2.2x fewer bytes, so the same link sustains ~2.2x
the jobs at equal epoch time.
"""

import pytest

from benchmarks.conftest import run_once
from repro.cluster.multijob import SharedJob, SharedLinkSim
from repro.cluster.spec import standard_cluster
from repro.core.profiler import StageTwoProfiler
from repro.data.catalog import make_openimages
from repro.utils.tables import render_table
from repro.workloads.models import get_model_profile

JOB_COUNTS = (1, 2, 4)


def test_ext_shared_egress_link(benchmark, pipeline):
    dataset = make_openimages(num_samples=600, seed=9)
    spec = standard_cluster(storage_cores=32)
    records = StageTwoProfiler().profile(dataset, pipeline, seed=9)
    sophon_splits = [r.min_stage for r in records]
    model = get_model_profile("alexnet")

    def job(name, splits):
        return SharedJob(
            name=name, dataset=dataset, pipeline=pipeline, model=model,
            splits=splits, batch_size=64,
        )

    def regenerate():
        sim = SharedLinkSim(spec)
        outcome = {}
        for count in JOB_COUNTS:
            plain = sim.run_epoch([job(f"p{i}", None) for i in range(count)])
            offloaded = sim.run_epoch(
                [job(f"s{i}", sophon_splits) for i in range(count)]
            )
            outcome[count] = (plain, offloaded)
        return outcome

    outcome = run_once(benchmark, regenerate)

    print("\nConcurrent jobs on one 500 Mbps egress link:")
    print(render_table(
        ("Jobs", "No-Off mean epoch", "SOPHON mean epoch", "Link util (No-Off)"),
        [
            (
                count,
                f"{plain.mean_epoch_time_s:.2f}s",
                f"{offloaded.mean_epoch_time_s:.2f}s",
                f"{plain.link_utilization:.0%}",
            )
            for count, (plain, offloaded) in outcome.items()
        ],
    ))

    one_plain = outcome[1][0].mean_epoch_time_s

    for count, (plain, offloaded) in outcome.items():
        # Fair sharing: J I/O-bound jobs each get 1/J of the link.
        assert plain.mean_epoch_time_s == pytest.approx(count * one_plain, rel=0.1)
        # SOPHON cuts every job's bytes ~2.2x.
        assert plain.mean_epoch_time_s / offloaded.mean_epoch_time_s == pytest.approx(
            2.2, rel=0.15
        )
        assert plain.link_utilization > 0.9

    # Headline: 2 SOPHON jobs finish about as fast as 1 No-Off job --
    # the same egress budget sustains twice the tenants.
    assert outcome[2][1].mean_epoch_time_s < one_plain
