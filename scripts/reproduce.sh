#!/usr/bin/env bash
# Reproduce everything: tests, benchmarks, figures, report.
# Outputs land in the repo root (test_output.txt, bench_output.txt,
# REPORT.md, figures.txt).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tests =="
python -m pytest tests/ 2>&1 | tee test_output.txt | tail -1

echo "== benchmarks (every table & figure, with assertions) =="
python -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt | tail -1

echo "== figures (text exhibits) =="
python -m repro.cli --samples 2000 --seed 7 all | tee figures.txt | tail -3

echo "== markdown report =="
python -m repro.cli --samples 2000 --seed 7 report --out REPORT.md
echo "done: test_output.txt bench_output.txt figures.txt REPORT.md"
