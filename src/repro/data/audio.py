"""Synthetic audio datasets (materialized and trace fidelities)."""

import math
from typing import Dict, Optional, Tuple

import numpy as np

from repro.codec.audio import ToyFlacCodec
from repro.data.dataset import Dataset
from repro.data.trace import TraceDataset
from repro.preprocessing.payload import Payload, StageMeta
from repro.utils.rng import derive_rng, sample_rng


def generate_clip(
    rng: np.random.Generator,
    num_samples: int,
    tonality: float = 0.7,
    sample_rate: int = 16_000,
) -> np.ndarray:
    """A mono int16 clip: a few sinusoids plus noise.

    tonality in [0, 1]: 1 is pure tones (compresses well), 0 is noise.
    """
    if num_samples < 1:
        raise ValueError(f"num_samples must be >= 1, got {num_samples}")
    if not 0.0 <= tonality <= 1.0:
        raise ValueError(f"tonality must be in [0, 1], got {tonality}")
    t = np.arange(num_samples) / sample_rate
    signal = np.zeros(num_samples)
    for _ in range(4):
        freq = rng.uniform(80.0, 2_000.0)
        phase = rng.uniform(0, 2 * np.pi)
        amp = rng.uniform(0.1, 0.4)
        signal += amp * np.sin(2 * np.pi * freq * t + phase)
    signal = tonality * signal + (1 - tonality) * rng.standard_normal(num_samples)
    peak = np.abs(signal).max() + 1e-9
    return np.round(signal / peak * 0.8 * 32767).astype(np.int16)


class SyntheticAudioDataset(Dataset):
    """Procedural audio clips encoded with the toy FLAC codec.

    Encoded-audio metas follow the convention height=1, width=N (PCM
    sample count), so the audio ops' metadata simulation lines up.
    """

    def __init__(
        self,
        num_samples: int,
        seed: int = 0,
        duration_s: Tuple[float, float] = (2.0, 12.0),
        sample_rate: int = 16_000,
        codec: Optional[ToyFlacCodec] = None,
        name: str = "synthetic-audio",
    ) -> None:
        if num_samples < 0:
            raise ValueError(f"num_samples must be >= 0, got {num_samples}")
        if not 0.05 <= duration_s[0] <= duration_s[1]:
            raise ValueError(f"bad duration range {duration_s}")
        self._num = num_samples
        self._seed = seed
        self._durations = duration_s
        self.sample_rate = sample_rate
        self._codec = codec if codec is not None else ToyFlacCodec()
        self._cache: Dict[int, bytes] = {}
        self._lengths: Dict[int, int] = {}
        self.name = name

    def __len__(self) -> int:
        return self._num

    @property
    def is_materialized(self) -> bool:
        return True

    def _clip_length(self, sample_id: int) -> int:
        if sample_id not in self._lengths:
            rng = sample_rng(self._seed, sample_id, salt=11)
            lo, hi = self._durations
            seconds = math.exp(rng.uniform(math.log(lo), math.log(hi)))
            self._lengths[sample_id] = max(1, int(round(seconds * self.sample_rate)))
        return self._lengths[sample_id]

    def _encode(self, sample_id: int) -> bytes:
        if sample_id not in self._cache:
            rng = sample_rng(self._seed, sample_id, salt=12)
            tonality = float(rng.uniform(0.3, 1.0))
            clip = generate_clip(
                rng, self._clip_length(sample_id), tonality, self.sample_rate
            )
            self._cache[sample_id] = self._codec.encode(clip, self.sample_rate)
        return self._cache[sample_id]

    def raw_meta(self, sample_id: int) -> StageMeta:
        self._check_id(sample_id)
        return StageMeta.for_encoded(
            len(self._encode(sample_id)), 1, self._clip_length(sample_id)
        )

    def raw_payload(self, sample_id: int) -> Payload:
        self._check_id(sample_id)
        return Payload.encoded(
            self._encode(sample_id), height=1, width=self._clip_length(sample_id)
        )


def make_audio_trace(
    num_samples: int,
    seed: int = 0,
    mean_duration_s: float = 8.0,
    sigma: float = 0.5,
    bytes_per_pcm_sample: float = 1.3,
    sample_rate: int = 16_000,
    name: str = "audio-trace",
) -> TraceDataset:
    """Metadata-only audio dataset for large sweeps.

    bytes_per_pcm_sample models the lossless codec's rate (int16 PCM is 2;
    ~1.3 reflects mixed tonal/noisy content).
    """
    rng = derive_rng(seed, 0xA0D10)
    mu = math.log(mean_duration_s) - sigma**2 / 2
    seconds = np.exp(rng.normal(mu, sigma, size=num_samples))
    lengths = np.maximum(1, np.round(seconds * sample_rate)).astype(np.int64)
    raw_bytes = np.maximum(16, np.round(lengths * bytes_per_pcm_sample)).astype(np.int64)
    return TraceDataset(
        raw_bytes, np.ones(num_samples, dtype=np.int64), lengths, name=name
    )
