"""Paper-calibrated dataset generators.

The distribution parameters are not hand-tuned: they are *derived* from the
ratios the paper publishes, so the synthetic datasets reproduce those ratios
by construction and everything downstream (policy decisions, crossovers) is
emergent:

- mean raw size   <- All-Off inflates traffic by R_all = tensor_bytes / mean
  (1.9x OpenImages, 5.1x ImageNet);
- benefit fraction <- share of samples smaller after Decode+Crop (76% / 26%,
  Figure 1b);
- conditional mean below the threshold <- SOPHON's traffic reduction R_sophon
  (2.2x / 1.2x), since SOPHON transmits min(raw, crop_bytes) per sample.

Full-scale sample counts follow from the paper's subset sizes (12 GB / 11 GB);
the default ``scale=0.1`` keeps experiments fast while preserving every
ratio exactly (all quantities are per-sample means).
"""

import dataclasses
from typing import Optional

from repro.data.distributions import BimodalSizeDistribution, dimensions_for_sizes
from repro.data.trace import TraceDataset
from repro.utils.rng import derive_rng


@dataclasses.dataclass(frozen=True)
class DatasetSpec:
    """Everything needed to synthesize a paper-faithful trace dataset."""

    name: str
    total_bytes: float  # the paper's subset footprint
    alloff_traffic_ratio: float  # All-Off traffic / No-Off traffic
    benefit_fraction: float  # P(sample shrinks during preprocessing)
    sophon_traffic_ratio: float  # No-Off traffic / SOPHON traffic
    crop_size: int = 224
    channels: int = 3
    mean_bits_per_pixel: float = 2.0

    @property
    def crop_bytes(self) -> int:
        """Wire size of a cropped uint8 sample (the benefit threshold)."""
        return self.crop_size * self.crop_size * self.channels

    @property
    def tensor_bytes(self) -> int:
        """Wire size of a fully preprocessed float32 sample."""
        return self.crop_bytes * 4

    @property
    def mean_raw_bytes(self) -> float:
        return self.tensor_bytes / self.alloff_traffic_ratio

    @property
    def mean_below_threshold(self) -> float:
        """Conditional mean raw size of non-benefiting samples.

        Solves  mean_raw / R_sophon = p * crop_bytes + (1-p) * mean_below,
        i.e. SOPHON ships benefit samples at crop size and the rest raw.
        """
        p = self.benefit_fraction
        sophon_traffic = self.mean_raw_bytes / self.sophon_traffic_ratio
        return (sophon_traffic - p * self.crop_bytes) / (1.0 - p)

    @property
    def mean_above_threshold(self) -> float:
        """Conditional mean raw size of benefiting samples (from the total)."""
        p = self.benefit_fraction
        return (self.mean_raw_bytes - (1.0 - p) * self.mean_below_threshold) / p

    @property
    def full_scale_samples(self) -> int:
        return int(round(self.total_bytes / self.mean_raw_bytes))

    def size_distribution(self) -> BimodalSizeDistribution:
        return BimodalSizeDistribution(
            threshold_bytes=self.crop_bytes,
            benefit_fraction=self.benefit_fraction,
            mean_above=self.mean_above_threshold,
            mean_below=self.mean_below_threshold,
        )

    def build(
        self,
        num_samples: Optional[int] = None,
        scale: float = 0.1,
        seed: int = 0,
    ) -> TraceDataset:
        """Synthesize the trace dataset.

        ``num_samples`` overrides ``scale``; otherwise the full-scale count
        is multiplied by ``scale``.
        """
        if num_samples is None:
            if scale <= 0:
                raise ValueError(f"scale must be > 0, got {scale}")
            num_samples = max(1, int(round(self.full_scale_samples * scale)))
        if num_samples < 0:
            raise ValueError(f"num_samples must be >= 0, got {num_samples}")
        rng = derive_rng(seed, 0xDA7A)
        sizes = self.size_distribution().sample(rng, num_samples)
        heights, widths = dimensions_for_sizes(
            rng, sizes, mean_bits_per_pixel=self.mean_bits_per_pixel
        )
        return TraceDataset(sizes, heights, widths, name=self.name)


# Ratios as published in sections 2 and 4.1 of the paper.
OPENIMAGES_SPEC = DatasetSpec(
    name="openimages-12g",
    total_bytes=12e9,
    alloff_traffic_ratio=1.9,
    benefit_fraction=0.76,
    sophon_traffic_ratio=2.2,
)

IMAGENET_SPEC = DatasetSpec(
    name="imagenet-11g",
    total_bytes=11e9,
    alloff_traffic_ratio=5.1,
    benefit_fraction=0.26,
    sophon_traffic_ratio=1.2,
)


def make_openimages(
    num_samples: Optional[int] = None, scale: float = 0.1, seed: int = 0
) -> TraceDataset:
    """The 12 GB OpenImages subset stand-in (scaled by default)."""
    return OPENIMAGES_SPEC.build(num_samples=num_samples, scale=scale, seed=seed)


def make_imagenet(
    num_samples: Optional[int] = None, scale: float = 0.1, seed: int = 0
) -> TraceDataset:
    """The 11 GB ImageNet subset stand-in (scaled by default)."""
    return IMAGENET_SPEC.build(num_samples=num_samples, scale=scale, seed=seed)
