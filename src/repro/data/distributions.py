"""Calibrated raw-size distributions.

The paper's results are driven by the dataset-level distribution of raw
(encoded) sample sizes relative to the fixed post-crop size (224*224*3 =
150,528 bytes): the fraction of samples larger than that threshold is the
fraction that benefits from offloading, and the conditional means on each
side of the threshold set every traffic ratio in Figures 3-4.

We therefore model raw sizes as a *bimodal truncated-lognormal mixture*:
with probability ``benefit_fraction`` a sample is drawn from a lognormal
truncated to (threshold, inf), otherwise from one truncated to
(floor, threshold].  The component means are chosen (by the catalog module)
so the mixture reproduces the paper's published ratios exactly, and the
truncation makes the benefit fraction exact rather than approximate.
"""

import dataclasses
import math
from typing import Tuple

import numpy as np
from scipy.optimize import brentq
from scipy.stats import norm


def _gauss_mass(a: float, b: float) -> float:
    """P(a < Z <= b) for standard normal Z, stable deep in either tail.

    Uses the cdf difference in the left tail and the survival-function
    difference in the right tail, avoiding the 1 - (1 - eps) cancellation
    that otherwise turns tail masses into rounding noise.
    """
    if a > b:
        return 0.0
    if a >= 0:
        return float(norm.sf(a) - norm.sf(b))
    return float(norm.cdf(b) - norm.cdf(a))


def truncated_lognormal_mean(
    mu: float, sigma: float, lower: float = 0.0, upper: float = math.inf
) -> float:
    """Mean of a lognormal(mu, sigma) truncated to (lower, upper].

    Standard closed form: E[X | a < X <= b] =
    exp(mu + sigma^2/2) * (Phi(beta - sigma) - Phi(alpha - sigma)) /
    (Phi(beta) - Phi(alpha)), with alpha/beta the standardized log bounds.
    """
    if sigma <= 0:
        raise ValueError(f"sigma must be > 0, got {sigma}")
    alpha = -math.inf if lower <= 0 else (math.log(lower) - mu) / sigma
    beta = math.inf if math.isinf(upper) else (math.log(upper) - mu) / sigma
    mass = _gauss_mass(alpha, beta)
    if mass <= 0:
        raise ValueError("truncation interval has no probability mass")
    numer = _gauss_mass(alpha - sigma, beta - sigma)
    return math.exp(mu + sigma * sigma / 2.0) * numer / mass


def solve_truncated_lognormal_mu(
    target_mean: float,
    sigma: float,
    lower: float = 0.0,
    upper: float = math.inf,
) -> float:
    """Find mu so the truncated lognormal has the requested mean.

    The truncated mean is strictly increasing in mu, so a bracketed root
    search always succeeds once the bracket is wide enough.
    """
    if target_mean <= lower:
        raise ValueError(f"target mean {target_mean} not above lower bound {lower}")
    if not math.isinf(upper) and target_mean >= upper:
        raise ValueError(f"target mean {target_mean} not below upper bound {upper}")

    def gap(mu: float) -> float:
        try:
            return truncated_lognormal_mean(mu, sigma, lower, upper) - target_mean
        except ValueError:
            # Probability mass underflowed: the distribution has collapsed
            # onto one truncation bound.  Report the corresponding limit so
            # the bracket search still sees the right sign.
            if mu < math.log(target_mean):
                return max(lower, 0.0) - target_mean
            return (upper if not math.isinf(upper) else float("inf")) - target_mean

    lo, hi = math.log(target_mean) - 10.0, math.log(target_mean) + 10.0
    # Widen until bracketed; the function is monotone so this terminates.
    for _ in range(60):
        if gap(lo) < 0:
            break
        lo -= 5.0
    for _ in range(60):
        if gap(hi) > 0:
            break
        hi += 5.0
    return brentq(gap, lo, hi, xtol=1e-10)


def _sample_truncated_lognormal(
    rng: np.random.Generator,
    n: int,
    mu: float,
    sigma: float,
    lower: float,
    upper: float,
) -> np.ndarray:
    """Inverse-CDF sampling of a truncated lognormal (exact, no rejection).

    Works in survival-function space so deep-tail truncations keep their
    precision.
    """
    alpha = -math.inf if lower <= 0 else (math.log(lower) - mu) / sigma
    beta = math.inf if math.isinf(upper) else (math.log(upper) - mu) / sigma
    s_hi, s_lo = norm.sf(alpha), norm.sf(beta)  # sf is decreasing
    u = rng.uniform(s_lo, s_hi, size=n)
    return np.exp(mu + sigma * norm.isf(u))


@dataclasses.dataclass(frozen=True)
class BimodalSizeDistribution:
    """Raw-size mixture: benefit (above threshold) + no-benefit (below).

    threshold_bytes: the post-crop wire size (150,528 for 224x224 RGB).
    benefit_fraction: P(raw size > threshold) -- the population that shrinks
        during preprocessing (Figure 1b).
    mean_above / mean_below: conditional means of each component.
    sigma_above / sigma_below: log-space spreads.
    floor_bytes: minimum representable sample size.
    """

    threshold_bytes: int
    benefit_fraction: float
    mean_above: float
    mean_below: float
    sigma_above: float = 0.45
    sigma_below: float = 0.35
    floor_bytes: int = 2048

    def __post_init__(self) -> None:
        if not 0.0 <= self.benefit_fraction <= 1.0:
            raise ValueError(f"benefit_fraction must be in [0, 1], got {self.benefit_fraction}")
        if self.mean_above <= self.threshold_bytes:
            raise ValueError("mean_above must exceed the threshold")
        if not self.floor_bytes < self.mean_below <= self.threshold_bytes:
            raise ValueError("mean_below must lie in (floor, threshold]")

    @property
    def mixture_mean(self) -> float:
        p = self.benefit_fraction
        return p * self.mean_above + (1.0 - p) * self.mean_below

    def component_params(self) -> Tuple[Tuple[float, float], Tuple[float, float]]:
        """((mu_above, sigma_above), (mu_below, sigma_below))."""
        mu_above = solve_truncated_lognormal_mu(
            self.mean_above, self.sigma_above, lower=float(self.threshold_bytes)
        )
        mu_below = solve_truncated_lognormal_mu(
            self.mean_below,
            self.sigma_below,
            lower=float(self.floor_bytes),
            upper=float(self.threshold_bytes),
        )
        return (mu_above, self.sigma_above), (mu_below, self.sigma_below)

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` raw sizes (int64 bytes) from the mixture."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        (mu_a, s_a), (mu_b, s_b) = self.component_params()
        benefits = rng.random(n) < self.benefit_fraction
        n_above = int(benefits.sum())
        sizes = np.empty(n, dtype=np.float64)
        sizes[benefits] = _sample_truncated_lognormal(
            rng, n_above, mu_a, s_a, float(self.threshold_bytes), math.inf
        )
        sizes[~benefits] = _sample_truncated_lognormal(
            rng, n - n_above, mu_b, s_b, float(self.floor_bytes), float(self.threshold_bytes)
        )
        out = np.round(sizes).astype(np.int64)
        # Rounding at the boundary must not flip a sample across the
        # threshold: a "benefit" draw rounded down to exactly the threshold
        # would stop benefiting.
        out[benefits] = np.maximum(out[benefits], self.threshold_bytes + 1)
        out[~benefits] = np.clip(out[~benefits], self.floor_bytes, self.threshold_bytes)
        return out


def dimensions_for_sizes(
    rng: np.random.Generator,
    raw_bytes: np.ndarray,
    mean_bits_per_pixel: float = 2.0,
    sigma_bits_per_pixel: float = 0.25,
    min_side: int = 64,
    max_side: int = 8192,
) -> Tuple[np.ndarray, np.ndarray]:
    """Derive plausible (height, width) for encoded sizes.

    Pixel counts follow from a per-sample bits-per-pixel draw (JPEG photos
    cluster around 1-4 bpp); aspect ratios are drawn log-uniformly in
    [3:4, 16:9].
    """
    n = len(raw_bytes)
    bpp = np.exp(rng.normal(math.log(mean_bits_per_pixel), sigma_bits_per_pixel, size=n))
    bpp = np.clip(bpp, 0.4, 8.0)
    pixels = raw_bytes * 8.0 / bpp
    aspect = np.exp(rng.uniform(math.log(3.0 / 4.0), math.log(16.0 / 9.0), size=n))
    height = np.sqrt(pixels / aspect)
    width = pixels / height
    height = np.clip(np.round(height), min_side, max_side).astype(np.int64)
    width = np.clip(np.round(width), min_side, max_side).astype(np.int64)
    return height, width
