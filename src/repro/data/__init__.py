"""Datasets, samplers, and the data loader.

Two fidelities behind one :class:`Dataset` interface:

- :class:`SyntheticImageDataset` materializes real pixels and encodes them
  with the toy codec; every byte is real.  Used by tests, examples, and the
  end-to-end RPC path.
- :class:`TraceDataset` carries per-sample (raw size, dimensions) records
  drawn from distributions calibrated to the paper's published statistics.
  Used for large sweeps in the discrete-event simulator.

:func:`make_openimages` / :func:`make_imagenet` build trace datasets whose
parameters are *derived from the paper's own ratios* (All-Off traffic blowup,
fraction of samples that shrink, SOPHON's traffic reduction) -- see
:mod:`repro.data.catalog`.
"""

from repro.data.dataset import Dataset, UnmaterializedSampleError
from repro.data.synthetic import ImageContentConfig, SyntheticImageDataset
from repro.data.trace import TraceDataset
from repro.data.distributions import (
    BimodalSizeDistribution,
    solve_truncated_lognormal_mu,
    truncated_lognormal_mean,
)
from repro.data.catalog import (
    DatasetSpec,
    IMAGENET_SPEC,
    OPENIMAGES_SPEC,
    make_imagenet,
    make_openimages,
)
from repro.data.sampler import BatchSampler, RandomSampler, SequentialSampler
from repro.data.loader import Batch, DataLoader

__all__ = [
    "Batch",
    "BatchSampler",
    "BimodalSizeDistribution",
    "DataLoader",
    "Dataset",
    "DatasetSpec",
    "IMAGENET_SPEC",
    "ImageContentConfig",
    "OPENIMAGES_SPEC",
    "RandomSampler",
    "SequentialSampler",
    "SyntheticImageDataset",
    "TraceDataset",
    "UnmaterializedSampleError",
    "make_imagenet",
    "make_openimages",
    "solve_truncated_lognormal_mu",
    "truncated_lognormal_mean",
]
