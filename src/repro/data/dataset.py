"""The dataset interface shared by materialized and trace datasets."""

import abc
from typing import Iterator

from repro.preprocessing.payload import Payload, StageMeta


class UnmaterializedSampleError(NotImplementedError):
    """Raised when pixel data is requested from a metadata-only dataset."""


class Dataset(abc.ABC):
    """A collection of encoded samples addressed by integer id (0..n-1)."""

    #: Human-readable dataset name (appears in reports).
    name: str = "dataset"

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of samples."""

    @abc.abstractmethod
    def raw_meta(self, sample_id: int) -> StageMeta:
        """Metadata of the stored (encoded) sample: size and decoded dims."""

    def raw_payload(self, sample_id: int) -> Payload:
        """The stored bytes of a sample.

        Metadata-only datasets raise :class:`UnmaterializedSampleError`.
        """
        raise UnmaterializedSampleError(
            f"{type(self).__name__} does not materialize pixel data"
        )

    @property
    def is_materialized(self) -> bool:
        """Whether :meth:`raw_payload` is available."""
        return False

    def sample_ids(self) -> range:
        return range(len(self))

    def iter_metas(self) -> Iterator[StageMeta]:
        for sample_id in self.sample_ids():
            yield self.raw_meta(sample_id)

    @property
    def total_raw_bytes(self) -> int:
        """Sum of stored sizes (the dataset's on-storage footprint)."""
        return sum(meta.nbytes for meta in self.iter_metas())

    def _check_id(self, sample_id: int) -> None:
        if not 0 <= sample_id < len(self):
            raise IndexError(f"sample id {sample_id} out of range [0, {len(self)})")
