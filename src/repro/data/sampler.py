"""Samplers: the order in which sample ids are visited each epoch."""

import abc
from typing import Iterator, List

from repro.utils.rng import derive_rng


class Sampler(abc.ABC):
    """Yields sample ids for one epoch."""

    def __init__(self, num_samples: int) -> None:
        if num_samples < 0:
            raise ValueError(f"num_samples must be >= 0, got {num_samples}")
        self.num_samples = num_samples

    @abc.abstractmethod
    def epoch_order(self, epoch: int) -> List[int]:
        """The visiting order for ``epoch``."""

    def __len__(self) -> int:
        return self.num_samples


class SequentialSampler(Sampler):
    """Visit samples in id order (used by profiling epochs)."""

    def epoch_order(self, epoch: int) -> List[int]:
        return list(range(self.num_samples))


class RandomSampler(Sampler):
    """Reshuffle every epoch, deterministically in (seed, epoch)."""

    def __init__(self, num_samples: int, seed: int = 0) -> None:
        super().__init__(num_samples)
        self.seed = seed

    def epoch_order(self, epoch: int) -> List[int]:
        rng = derive_rng(self.seed, 0x5A40, epoch)
        order = rng.permutation(self.num_samples)
        return [int(i) for i in order]


class BatchSampler:
    """Group a sampler's epoch order into fixed-size batches.

    drop_last mirrors the PyTorch flag: a trailing partial batch is dropped
    when True, yielded when False.
    """

    def __init__(self, sampler: Sampler, batch_size: int, drop_last: bool = False) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.sampler = sampler
        self.batch_size = batch_size
        self.drop_last = drop_last

    def epoch_batches(self, epoch: int) -> Iterator[List[int]]:
        order = self.sampler.epoch_order(epoch)
        for start in range(0, len(order), self.batch_size):
            batch = order[start : start + self.batch_size]
            if len(batch) < self.batch_size and self.drop_last:
                return
            yield batch

    def batches_per_epoch(self) -> int:
        n, b = len(self.sampler), self.batch_size
        return n // b if self.drop_last else (n + b - 1) // b
