"""Metadata-only dataset backed by per-sample (size, dims) records."""

from typing import Optional, Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.preprocessing.payload import StageMeta


class TraceDataset(Dataset):
    """A dataset of raw-size/dimension records, no pixels.

    This is the fidelity used for large parameter sweeps: SOPHON's decision
    logic and the event simulator consume only stage sizes and op costs,
    both of which are exact functions of these records (asserted against the
    materialized path by integration tests).
    """

    def __init__(
        self,
        raw_bytes: Sequence[int],
        heights: Sequence[int],
        widths: Sequence[int],
        name: str = "trace",
    ) -> None:
        self._raw_bytes = np.asarray(raw_bytes, dtype=np.int64)
        self._heights = np.asarray(heights, dtype=np.int64)
        self._widths = np.asarray(widths, dtype=np.int64)
        if not (len(self._raw_bytes) == len(self._heights) == len(self._widths)):
            raise ValueError(
                "raw_bytes, heights, widths must have equal length: "
                f"{len(self._raw_bytes)}, {len(self._heights)}, {len(self._widths)}"
            )
        if len(self._raw_bytes) and int(self._raw_bytes.min()) <= 0:
            raise ValueError("raw sizes must be positive")
        if len(self._heights) and (int(self._heights.min()) < 1 or int(self._widths.min()) < 1):
            raise ValueError("dimensions must be positive")
        self.name = name

    def __len__(self) -> int:
        return len(self._raw_bytes)

    def raw_meta(self, sample_id: int) -> StageMeta:
        self._check_id(sample_id)
        return StageMeta.for_encoded(
            int(self._raw_bytes[sample_id]),
            int(self._heights[sample_id]),
            int(self._widths[sample_id]),
        )

    @property
    def total_raw_bytes(self) -> int:
        return int(self._raw_bytes.sum())

    @property
    def raw_sizes(self) -> np.ndarray:
        """All raw sizes as an array (read-only view)."""
        view = self._raw_bytes.view()
        view.setflags(write=False)
        return view

    def benefit_fraction(self, threshold_bytes: int) -> float:
        """Fraction of samples strictly larger than ``threshold_bytes``."""
        if len(self) == 0:
            return 0.0
        return float((self._raw_bytes > threshold_bytes).mean())

    def subset(self, sample_ids: Sequence[int], name: Optional[str] = None) -> "TraceDataset":
        """A new trace dataset restricted to the given ids (re-numbered)."""
        ids = np.asarray(sample_ids, dtype=np.intp)
        return TraceDataset(
            self._raw_bytes[ids],
            self._heights[ids],
            self._widths[ids],
            name=name if name is not None else f"{self.name}-subset",
        )
