"""Save/load trace datasets; build traces from real file-size listings.

Trace datasets synthesized from the calibrated distributions are cheap to
regenerate, but persisting them pins an *exact* population for
cross-machine reproducibility (and lets external tools inspect the traces).
Format: a compressed ``.npz`` with the three per-sample arrays plus a name.

:func:`trace_from_size_listing` goes the other way: anyone with a real
image dataset can feed its byte sizes (``ls -l`` / ``du``-style, one
integer per line) and get a trace dataset whose SOPHON results reflect
*their* data.
"""

import os
from typing import Iterable, Union

import numpy as np

from repro.data.distributions import dimensions_for_sizes
from repro.data.trace import TraceDataset
from repro.utils.rng import derive_rng

_FORMAT_KEY = "trace_dataset_v1"


def save_trace_dataset(dataset: TraceDataset, path: str) -> None:
    """Write a trace dataset to ``path`` (.npz, compressed)."""
    heights = np.array([dataset.raw_meta(i).height for i in dataset.sample_ids()])
    widths = np.array([dataset.raw_meta(i).width for i in dataset.sample_ids()])
    np.savez_compressed(
        path,
        format=np.array(_FORMAT_KEY),
        name=np.array(dataset.name),
        raw_bytes=np.asarray(dataset.raw_sizes),
        heights=heights,
        widths=widths,
    )


def trace_from_size_listing(
    source: Union[str, Iterable[int]],
    name: str = "listing",
    seed: int = 0,
    mean_bits_per_pixel: float = 2.0,
) -> TraceDataset:
    """Build a trace dataset from real encoded-file sizes.

    source: a path to a text file (one byte count per line; blank lines
        and ``#`` comments ignored) or an iterable of integers.
    Decoded dimensions are inferred from each size via the bits-per-pixel
    model (see :func:`repro.data.distributions.dimensions_for_sizes`).
    """
    if isinstance(source, str):
        sizes = []
        with open(source) as handle:
            for line_number, line in enumerate(handle, start=1):
                text = line.split("#", 1)[0].strip()
                if not text:
                    continue
                try:
                    sizes.append(int(text))
                except ValueError:
                    raise ValueError(
                        f"{source}:{line_number}: not an integer: {text!r}"
                    ) from None
    else:
        sizes = [int(s) for s in source]
    if not sizes:
        raise ValueError("size listing is empty")
    if min(sizes) <= 0:
        raise ValueError("file sizes must be positive")

    array = np.asarray(sizes, dtype=np.int64)
    rng = derive_rng(seed, 0x115717)
    heights, widths = dimensions_for_sizes(
        rng, array, mean_bits_per_pixel=mean_bits_per_pixel
    )
    return TraceDataset(array, heights, widths, name=name)


def load_trace_dataset(path: str) -> TraceDataset:
    """Read a trace dataset written by :func:`save_trace_dataset`."""
    if not os.path.exists(path) and os.path.exists(path + ".npz"):
        path = path + ".npz"  # np.savez appends the suffix
    with np.load(path, allow_pickle=False) as archive:
        if "format" not in archive or str(archive["format"]) != _FORMAT_KEY:
            raise ValueError(f"{path} is not a {_FORMAT_KEY} archive")
        return TraceDataset(
            raw_bytes=archive["raw_bytes"],
            heights=archive["heights"],
            widths=archive["widths"],
            name=str(archive["name"]),
        )
