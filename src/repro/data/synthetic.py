"""Materialized synthetic dataset: real pixels, real codec, real bytes.

Images are procedurally generated (smooth gradients + band-limited texture +
noise) with a per-sample "texture" knob that controls how well the sample
compresses, so the dataset exhibits the raw-size diversity that drives
SOPHON's per-sample decisions.  Every sample is deterministic in
(seed, sample_id).
"""

import dataclasses
from typing import Dict, Optional, Tuple

import numpy as np

from repro.codec import CodecConfig, ToyJpegCodec
from repro.data.dataset import Dataset
from repro.preprocessing.payload import Payload, StageMeta
from repro.utils.rng import sample_rng


@dataclasses.dataclass(frozen=True)
class ImageContentConfig:
    """Knobs for procedural image generation.

    min_side/max_side: sampled image dimensions (log-uniform).
    texture_range: per-sample texture intensity; 0 is a pure gradient
        (compresses extremely well), 1 is heavy texture + noise.
    """

    min_side: int = 96
    max_side: int = 640
    texture_range: Tuple[float, float] = (0.0, 1.0)

    def __post_init__(self) -> None:
        if not 8 <= self.min_side <= self.max_side:
            raise ValueError(f"bad side range [{self.min_side}, {self.max_side}]")
        lo, hi = self.texture_range
        if not 0.0 <= lo <= hi <= 1.0:
            raise ValueError(f"texture_range must be within [0, 1], got {self.texture_range}")


def generate_image(rng: np.random.Generator, height: int, width: int, texture: float) -> np.ndarray:
    """Generate an (H, W, 3) uint8 image with tunable compressibility."""
    if height < 1 or width < 1:
        raise ValueError(f"bad image size {height}x{width}")
    if not 0.0 <= texture <= 1.0:
        raise ValueError(f"texture must be in [0, 1], got {texture}")

    ys = np.linspace(0.0, 1.0, height)[:, None]
    xs = np.linspace(0.0, 1.0, width)[None, :]

    channels = []
    for _ in range(3):
        # Smooth base: a random linear gradient plus one low-frequency wave.
        gx, gy = rng.uniform(-1, 1, size=2)
        base = 0.5 + 0.25 * (gx * xs + gy * ys)
        fy, fx = rng.uniform(0.5, 3.0, size=2)
        phase = rng.uniform(0, 2 * np.pi)
        base = base + 0.15 * np.sin(2 * np.pi * (fy * ys + fx * xs) + phase)

        if texture > 0:
            # Band-limited texture: mid-frequency sinusoid mix.
            detail = np.zeros((height, width))
            for _ in range(4):
                fy, fx = rng.uniform(8.0, 40.0, size=2)
                phase = rng.uniform(0, 2 * np.pi)
                detail += np.sin(2 * np.pi * (fy * ys + fx * xs) + phase)
            base = base + texture * 0.08 * detail
            base = base + texture * 0.10 * rng.standard_normal((height, width))

        channels.append(base)

    stacked = np.stack(channels, axis=-1)
    return np.clip(np.round(stacked * 255.0), 0, 255).astype(np.uint8)


class SyntheticImageDataset(Dataset):
    """Procedural images encoded with the toy codec.

    Encoded samples are generated lazily and cached (the cache can be
    bounded with ``cache_limit`` for very large instantiations).
    """

    def __init__(
        self,
        num_samples: int,
        seed: int = 0,
        content: ImageContentConfig = ImageContentConfig(),
        codec: Optional[ToyJpegCodec] = None,
        name: str = "synthetic",
        cache_limit: Optional[int] = None,
    ) -> None:
        if num_samples < 0:
            raise ValueError(f"num_samples must be >= 0, got {num_samples}")
        self._num_samples = num_samples
        self._seed = seed
        self._content = content
        self._codec = codec if codec is not None else ToyJpegCodec(CodecConfig())
        self._cache: Dict[int, bytes] = {}
        self._dims: Dict[int, Tuple[int, int]] = {}
        self._cache_limit = cache_limit
        self.name = name

    def __len__(self) -> int:
        return self._num_samples

    @property
    def is_materialized(self) -> bool:
        return True

    @property
    def codec(self) -> ToyJpegCodec:
        return self._codec

    def _sample_dims(self, sample_id: int) -> Tuple[int, int]:
        if sample_id not in self._dims:
            rng = sample_rng(self._seed, sample_id, salt=1)
            log_lo, log_hi = np.log(self._content.min_side), np.log(self._content.max_side)
            height = int(np.round(np.exp(rng.uniform(log_lo, log_hi))))
            width = int(np.round(np.exp(rng.uniform(log_lo, log_hi))))
            self._dims[sample_id] = (height, width)
        return self._dims[sample_id]

    def _encode(self, sample_id: int) -> bytes:
        if sample_id in self._cache:
            return self._cache[sample_id]
        height, width = self._sample_dims(sample_id)
        rng = sample_rng(self._seed, sample_id, salt=2)
        lo, hi = self._content.texture_range
        texture = float(rng.uniform(lo, hi))
        image = generate_image(rng, height, width, texture)
        encoded = self._codec.encode(image)
        if self._cache_limit is not None and len(self._cache) >= self._cache_limit:
            self._cache.pop(next(iter(self._cache)))
        self._cache[sample_id] = encoded
        return encoded

    def raw_meta(self, sample_id: int) -> StageMeta:
        self._check_id(sample_id)
        height, width = self._sample_dims(sample_id)
        return StageMeta.for_encoded(len(self._encode(sample_id)), height, width)

    def raw_payload(self, sample_id: int) -> Payload:
        self._check_id(sample_id)
        height, width = self._sample_dims(sample_id)
        return Payload.encoded(self._encode(sample_id), height=height, width=width)
