"""PyTorch-style DataLoader over the materialized execution path.

The loader asks a *fetcher* for each sample (locally, or through the RPC
client which may offload a pipeline prefix to the storage server per the
active offload plan), finishes the remaining ops locally, and yields stacked
float32 batches.  It is the end-to-end data path used by tests and examples;
large sweeps use the event simulator instead.
"""

import dataclasses
from typing import Iterator, List, Optional, Protocol, Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.data.sampler import BatchSampler, Sampler, SequentialSampler
from repro.preprocessing.payload import Payload, PayloadKind
from repro.preprocessing.pipeline import Pipeline


class Fetcher(Protocol):
    """Anything that can deliver a sample at a given pipeline split."""

    def fetch(self, sample_id: int, epoch: int, split: int) -> Payload:
        """Return the sample with ops 1..split already applied."""
        ...


class DirectFetcher:
    """Fetch straight from a materialized dataset (no offloading, no wire)."""

    def __init__(self, dataset: Dataset) -> None:
        if not dataset.is_materialized:
            raise ValueError("DirectFetcher needs a materialized dataset")
        self.dataset = dataset

    def fetch(self, sample_id: int, epoch: int, split: int) -> Payload:
        if split != 0:
            raise ValueError("DirectFetcher cannot apply remote preprocessing")
        return self.dataset.raw_payload(sample_id)


@dataclasses.dataclass
class Batch:
    """One training batch: stacked float32 tensors plus provenance."""

    tensors: np.ndarray  # (B, C, H, W) float32
    sample_ids: List[int]

    def __len__(self) -> int:
        return len(self.sample_ids)


class DataLoader:
    """Iterate epochs of preprocessed batches.

    splits: per-sample offload split points (index = sample id); None means
        no offloading anywhere.  The fetcher receives each sample's split and
        the loader runs the remaining ops ``split..n`` locally, so the merged
        execution is bit-identical to a fully local run (per-op derived RNG).
    """

    def __init__(
        self,
        dataset: Dataset,
        pipeline: Pipeline,
        fetcher: Fetcher,
        batch_size: int = 32,
        sampler: Optional[Sampler] = None,
        splits: Optional[Sequence[int]] = None,
        seed: int = 0,
        drop_last: bool = False,
    ) -> None:
        self.dataset = dataset
        self.pipeline = pipeline
        self.fetcher = fetcher
        self.seed = seed
        if sampler is None:
            sampler = SequentialSampler(len(dataset))
        if len(sampler) != len(dataset):
            raise ValueError(
                f"sampler covers {len(sampler)} samples, dataset has {len(dataset)}"
            )
        self.batch_sampler = BatchSampler(sampler, batch_size, drop_last=drop_last)
        if splits is not None and len(splits) != len(dataset):
            raise ValueError(
                f"splits has {len(splits)} entries, dataset has {len(dataset)}"
            )
        self.splits = list(splits) if splits is not None else None

    def split_for(self, sample_id: int) -> int:
        if self.splits is None:
            return 0
        return self.splits[sample_id]

    def load_sample(self, sample_id: int, epoch: int) -> Payload:
        """Fetch one sample and finish its preprocessing locally."""
        split = self.split_for(sample_id)
        payload = self.fetcher.fetch(sample_id, epoch, split)
        run = self.pipeline.run(
            payload, seed=self.seed, epoch=epoch, sample_id=sample_id, start=split
        )
        result = run.payload
        if result.kind is not PayloadKind.TENSOR_F32:
            raise RuntimeError(
                f"pipeline ended in {result.kind.value}, expected a tensor"
            )
        return result

    def epoch(self, epoch: int) -> Iterator[Batch]:
        """Yield this epoch's batches in sampler order."""
        for ids in self.batch_sampler.epoch_batches(epoch):
            tensors = [self.load_sample(sample_id, epoch).data for sample_id in ids]
            yield Batch(tensors=np.stack(tensors), sample_ids=list(ids))

    def batches_per_epoch(self) -> int:
        return self.batch_sampler.batches_per_epoch()
