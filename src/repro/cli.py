"""Command-line entry point: regenerate the paper's tables and figures.

Usage (installed as ``sophon-repro``)::

    sophon-repro table1
    sophon-repro fig1a --dataset openimages
    sophon-repro fig3 --dataset imagenet --samples 1500
    sophon-repro fig4 --cores 0 1 2 3 4 5
    sophon-repro frontier --bandwidth 50 --json frontier.json
    sophon-repro audit 17
    sophon-repro adaptive --epochs 4 --shards 2 --telemetry-dir /tmp/t
    sophon-repro all

``fig1d``, ``fig3`` and ``fig4`` accept ``--telemetry-dir DIR`` to write
the run's metrics as replayable JSONL and Prometheus text; ``audit``
explains one sample's offload decision and its simulated journey;
``replay`` renders a previously exported telemetry JSONL log without
re-running anything.  Profiling-heavy commands accept ``--parallel``
(e.g. ``vectorized`` or ``sharded:4``) to accelerate record building via
:mod:`repro.parallel`; outputs are bit-identical in every mode.
"""

import argparse
import contextlib
import sys
import time
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.cluster.spec import standard_cluster
from repro.core.efficiency import efficiency_distribution
from repro.core.profiler import StageTwoProfiler
from repro.data.catalog import make_imagenet, make_openimages
from repro.harness.fig1 import (
    benefit_fraction,
    gpu_utilization_by_model,
    minstage_fractions,
    representative_samples,
    size_trace,
)
from repro.harness.fig3 import ample_cpu_comparison
from repro.harness.fig4 import limited_cpu_sweep
from repro.harness.table1 import render_capability_matrix
from repro.preprocessing.pipeline import standard_pipeline
from repro.utils.tables import render_table


def _dataset(name: str, samples: Optional[int], seed: int):
    if name == "openimages":
        return make_openimages(num_samples=samples, seed=seed)
    if name == "imagenet":
        return make_imagenet(num_samples=samples, seed=seed)
    raise SystemExit(f"unknown dataset {name!r}; pick openimages or imagenet")


def _parallel(args: argparse.Namespace):
    """The validated --parallel spec, or None for sequential."""
    value = getattr(args, "parallel", None)
    if value is None:
        return None
    from repro.parallel import ParallelConfig

    try:
        return ParallelConfig.parse(value)
    except ValueError as exc:
        raise SystemExit(f"bad --parallel value: {exc}") from exc


@contextlib.contextmanager
def _scoped_registry(args: argparse.Namespace) -> Iterator[Optional[object]]:
    """A fresh default metrics registry while --telemetry-dir is set."""
    if getattr(args, "telemetry_dir", None) is None:
        yield None
        return
    from repro.telemetry.registry import MetricsRegistry, use_registry

    with use_registry(MetricsRegistry()) as registry:
        yield registry


def _emit_telemetry(args: argparse.Namespace, name: str, registry) -> None:
    if registry is None:
        return
    from repro.harness.telemetry import emit_artifacts

    for path in emit_artifacts(args.telemetry_dir, name, registry=registry):
        print(f"telemetry written to {path}")


def cmd_table1(args: argparse.Namespace) -> None:
    from repro.harness.table1 import render_published_matrix

    print("Published systems (the paper's Table 1):")
    print(render_published_matrix())
    print("\nImplemented policies in this reproduction:")
    print(render_capability_matrix())


def cmd_sweep(args: argparse.Namespace) -> None:
    from repro.harness.export import write_csv
    from repro.harness.sweeps import grid_sweep

    dataset = _dataset(args.dataset, args.samples, args.seed)
    axes = {}
    if args.cores:
        axes["storage_cores"] = args.cores
    if args.bandwidths:
        axes["bandwidth_mbps"] = args.bandwidths
    if not axes:
        raise SystemExit("give at least one axis (--cores / --bandwidths)")
    table = grid_sweep(dataset, standard_cluster(), axes, seed=args.seed)
    print(table.render())
    if args.csv:
        write_csv(table.to_csv(), args.csv)
        print(f"csv written to {args.csv}")


def cmd_fig1a(args: argparse.Namespace) -> None:
    dataset = _dataset(args.dataset, args.samples, args.seed)
    sample_a, sample_b = representative_samples(dataset, seed=args.seed)
    print(f"Sample A (shrinks mid-pipeline, id={sample_a}):")
    print(size_trace(dataset, sample_a, seed=args.seed).render())
    print(f"\nSample B (smallest raw, id={sample_b}):")
    print(size_trace(dataset, sample_b, seed=args.seed).render())


def cmd_fig1b(args: argparse.Namespace) -> None:
    for name in ("openimages", "imagenet"):
        dataset = _dataset(name, args.samples, args.seed)
        fractions = minstage_fractions(dataset, seed=args.seed, parallel=_parallel(args))
        rows = [(stage, f"{frac:.1%}") for stage, frac in fractions.items()]
        print(f"[{dataset.name}] minimum-size stage fractions "
              f"(benefit: {benefit_fraction(fractions):.1%})")
        print(render_table(("Stage", "Fraction"), rows))
        print()


def cmd_fig1c(args: argparse.Namespace) -> None:
    dataset = _dataset(args.dataset, args.samples, args.seed)
    records = StageTwoProfiler().profile(
        dataset, standard_pipeline(), seed=args.seed, parallel=_parallel(args)
    )
    print(f"[{dataset.name}] {efficiency_distribution(records)}")


def cmd_fig1d(args: argparse.Namespace) -> None:
    dataset = _dataset(args.dataset, args.samples, args.seed)
    spec = standard_cluster().with_bandwidth(args.bandwidth)
    with _scoped_registry(args) as registry:
        utilizations = gpu_utilization_by_model(dataset, spec, seed=args.seed)
        if registry is not None:
            gauge = registry.gauge(
                "harness_gpu_utilization",
                "GPU busy fraction over the epoch",
                labels=["run"],
            )
            for model, util in utilizations:
                gauge.set(util, run=model)
    rows = [(model, f"{util:.0%}") for model, util in utilizations]
    print(f"[{dataset.name}] GPU utilization at {args.bandwidth:.0f} Mbps, no offload")
    print(render_table(("Model", "GPU util"), rows))
    _emit_telemetry(args, "fig1d", registry)


def cmd_fig3(args: argparse.Namespace) -> None:
    dataset = _dataset(args.dataset, args.samples, args.seed)
    cluster = standard_cluster(storage_cores=args.storage_cores)
    with _scoped_registry(args) as registry:
        comparison = ample_cpu_comparison(
            dataset, cluster, seed=args.seed, parallel=_parallel(args)
        )
        if registry is not None:
            from repro.harness.telemetry import record_epoch_stats

            for result in comparison.results:
                record_epoch_stats(result.stats, result.policy_name, registry)
    print(comparison.render())
    _emit_telemetry(args, "fig3", registry)
    if getattr(args, "csv", None):
        from repro.harness.export import comparison_to_csv, write_csv

        write_csv(comparison_to_csv(comparison), args.csv)
        print(f"csv written to {args.csv}")


def cmd_fig4(args: argparse.Namespace) -> None:
    dataset = _dataset(args.dataset, args.samples, args.seed)
    with _scoped_registry(args) as registry:
        sweep = limited_cpu_sweep(
            dataset, cores=tuple(args.cores), seed=args.seed, parallel=_parallel(args)
        )
        if registry is not None:
            from repro.harness.telemetry import record_epoch_stats

            for cores in sweep.cores:
                for policy, result in sorted(sweep.results[cores].items()):
                    record_epoch_stats(
                        result.stats, f"{policy}@{cores}c", registry
                    )
    print(sweep.render())
    _emit_telemetry(args, "fig4", registry)
    gains = ", ".join(f"{g:.2f}s" for g in sweep.sophon_marginal_gains())
    print(f"\nSOPHON marginal gain per added core: {gains}")
    if getattr(args, "csv", None):
        from repro.harness.export import sweep_to_csv, write_csv

        write_csv(sweep_to_csv(sweep), args.csv)
        print(f"csv written to {args.csv}")


def cmd_frontier(args: argparse.Namespace) -> None:
    from repro.data.synthetic import ImageContentConfig, SyntheticImageDataset
    from repro.harness.frontier import DEFAULT_FLOORS, fidelity_frontier

    # The fidelity sweep needs real pixels (streams are re-encoded
    # progressively and prefix PSNRs measured), so it runs on a
    # materialized synthetic dataset rather than the metadata traces.
    dataset = SyntheticImageDataset(
        num_samples=args.samples,
        seed=args.seed,
        content=ImageContentConfig(min_side=64, max_side=256),
        name=f"synthetic-{args.dataset}",
    )
    floors = (
        DEFAULT_FLOORS
        if not args.floors
        else (None,) + tuple(float(f) for f in args.floors)
    )
    spec = standard_cluster().with_bandwidth(args.bandwidth)
    frontier = fidelity_frontier(
        dataset, spec=spec, floors=floors, seed=args.seed
    )
    print(frontier.render())
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(frontier.to_json())
        print(f"json written to {args.json}")
    else:
        print(frontier.to_json())


def cmd_plan(args: argparse.Namespace) -> None:
    from repro.core.policy import PolicyContext
    from repro.core.serialize import plan_to_json
    from repro.core.sophon import Sophon
    from repro.workloads.models import get_model_profile

    dataset = _dataset(args.dataset, args.samples, args.seed)
    spec = standard_cluster(storage_cores=args.storage_cores)
    context = PolicyContext(
        dataset=dataset,
        pipeline=standard_pipeline(),
        spec=spec,
        model=get_model_profile(args.model),
        seed=args.seed,
        parallel=_parallel(args),
    )
    plan = Sophon().plan(context)
    print(f"[{dataset.name}] {plan.reason}")
    print(f"split histogram: {plan.split_histogram()}")
    if plan.expected is not None:
        print(f"expected epoch: {plan.expected.epoch_time_s:.2f}s "
              f"(bottleneck: {plan.expected.bottleneck.value})")
    if args.save:
        with open(args.save, "w") as handle:
            handle.write(plan_to_json(plan))
        print(f"plan saved to {args.save}")


def cmd_stalls(args: argparse.Namespace) -> None:
    from repro.cluster.trainer import TrainerSim
    from repro.core.policy import PolicyContext
    from repro.core.sophon import Sophon
    from repro.metrics import stall_breakdown
    from repro.workloads.models import get_model_profile

    dataset = _dataset(args.dataset, args.samples, args.seed)
    spec = standard_cluster(storage_cores=args.storage_cores)
    model = get_model_profile(args.model)
    context = PolicyContext(
        dataset=dataset, pipeline=standard_pipeline(), spec=spec,
        model=model, seed=args.seed, parallel=_parallel(args),
    )
    plan = Sophon().plan(context)
    trainer = TrainerSim(dataset, context.pipeline, model, spec, seed=args.seed)
    plain = trainer.run_epoch(None, epoch=1, record_timeline=True)
    offloaded = trainer.run_epoch(list(plan.splits), epoch=1, record_timeline=True)
    print(f"[{dataset.name}] no-off : {stall_breakdown(plain.timeline)}")
    print(f"[{dataset.name}] sophon : {stall_breakdown(offloaded.timeline)}")


def cmd_ext_llm(args: argparse.Namespace) -> None:
    from repro.core.decision import DecisionEngine
    from repro.workloads.text import (
        TextCorpusSpec,
        llm_ingestion_records,
        offloadable_fraction,
    )

    records = llm_ingestion_records(
        TextCorpusSpec(num_docs=args.samples), seed=args.seed
    )
    plan = DecisionEngine().plan(
        records, standard_cluster(storage_cores=48), gpu_time_s=60.0
    )
    raw = sum(r.stage_sizes[0] for r in records)
    packed = sum(r.stage_sizes[-1] for r in records)
    print(f"LLM ingestion: raw {raw / 1e6:.1f} MB -> packed {packed / 1e6:.1f} MB "
          f"({packed / raw:.2f}x growth)")
    print(f"offloadable documents: {offloadable_fraction(records):.0%}")
    print(f"decision: {plan.reason}")


def cmd_audit(args: argparse.Namespace) -> None:
    """Explain one sample end-to-end: decision record + simulated spans."""
    from repro.cluster.sharded import ShardedTrainerSim, round_robin_placement
    from repro.cluster.trainer import TrainerSim
    from repro.core.decision import DecisionConfig, DecisionEngine
    from repro.core.policy import PolicyContext
    from repro.telemetry.audit import AuditLog
    from repro.workloads.models import get_model_profile

    dataset = _dataset(args.dataset, args.samples, args.seed)
    if not 0 <= args.sample_id < len(dataset):
        raise SystemExit(
            f"sample {args.sample_id} out of range; dataset has {len(dataset)} samples"
        )
    spec = standard_cluster(storage_cores=args.storage_cores)
    model = get_model_profile(args.model)
    context = PolicyContext(
        dataset=dataset, pipeline=standard_pipeline(), spec=spec,
        model=model, seed=args.seed, parallel=_parallel(args),
    )
    audit = AuditLog()
    plan = DecisionEngine(DecisionConfig()).plan(
        context.records(), spec, gpu_time_s=context.epoch_gpu_time_s, audit=audit
    )
    print(f"[{dataset.name}] {plan.reason}\n")
    print(audit.explain(args.sample_id))

    trainer: TrainerSim
    if args.shards is not None:
        trainer = ShardedTrainerSim(
            dataset, context.pipeline, model, spec,
            placement=round_robin_placement(len(dataset), args.shards),
            num_shards=args.shards, seed=args.seed,
        )
    else:
        trainer = TrainerSim(
            dataset, context.pipeline, model, spec, seed=args.seed
        )
    stats = trainer.run_epoch(list(plan.splits), epoch=args.epoch, record_spans=True)
    events = stats.spans.for_sample(args.sample_id, args.epoch) if stats.spans else []
    print(f"\nsimulated spans for sample {args.sample_id} "
          f"(epoch {args.epoch}, virtual seconds):")
    for event in events:
        attrs = _format_attrs(event.attrs)
        line = f"  [{event.t_s:12.6f}] {event.phase} {event.name}"
        print(f"{line}  {attrs}" if attrs else line)


#: Sorted attr-key orders seen while rendering spans.  A big replay log
#: holds millions of events but only a handful of distinct attr shapes,
#: so the per-event ``sorted()`` is hoisted into this one-per-shape cache.
_ATTR_KEY_ORDERS: Dict[Tuple[str, ...], List[str]] = {}


def _format_attrs(attrs: Mapping[str, object]) -> str:
    """``k=v`` pairs in sorted key order, one ``sorted()`` per key shape."""
    if not attrs:
        return ""
    keys = tuple(attrs)
    order = _ATTR_KEY_ORDERS.get(keys)
    if order is None:
        order = sorted(keys)
        _ATTR_KEY_ORDERS[keys] = order
    return " ".join(f"{k}={attrs[k]}" for k in order)


def _span_breakdowns(events) -> List[str]:
    """Per-epoch / per-shard / per-tenant summary lines for a span log.

    Epochs come from the ``-e<N>`` suffix every trainer trace id carries
    (samples ``s<id>-e<N>`` and batches ``b<i>-e<N>`` alike); shard and
    tenant groups come from the ``shard`` / ``job`` span attrs; service
    and client request phases group by span name.  Groups nobody recorded
    are omitted, so single-epoch single-node logs render exactly as
    before.
    """
    import re

    epoch_pattern = re.compile(r"-e(\d+)$")
    lines: List[str] = []
    epochs: dict = {}
    for event in events:
        match = epoch_pattern.search(event.trace_id)
        if match:
            per = epochs.setdefault(int(match.group(1)), [0, set()])
            per[0] += 1
            per[1].add(event.trace_id)
    if len(epochs) > 1:
        lines.append("per-epoch:")
        for epoch in sorted(epochs):
            count, traces = epochs[epoch]
            lines.append(
                f"  epoch {epoch}: {count} events across {len(traces)} traces"
            )
    for attr, label in (("shard", "per-shard"), ("job", "per-tenant")):
        groups: dict = {}
        for event in events:
            if attr in event.attrs:
                groups[event.attrs[attr]] = groups.get(event.attrs[attr], 0) + 1
        if groups:
            lines.append(f"{label}:")
            for value in sorted(groups, key=str):
                lines.append(f"  {attr} {value}: {groups[value]} events")
    phases: dict = {}
    for event in events:
        if event.name.startswith(("service.", "client.")):
            phases[event.name] = phases.get(event.name, 0) + 1
    if phases:
        lines.append("service phases:")
        for name in sorted(phases):
            lines.append(f"  {name}: {phases[name]} events")
    return lines


def cmd_replay(args: argparse.Namespace) -> None:
    """Render an exported telemetry JSONL log without re-running the sim."""
    from repro.telemetry.exporters import read_jsonl, render_prometheus

    try:
        replayed = read_jsonl(args.log)
    except OSError as exc:
        raise SystemExit(f"cannot read {args.log}: {exc}") from exc
    except ValueError as exc:
        raise SystemExit(f"cannot replay {args.log}: {exc}") from exc

    snapshot = replayed.registry.snapshot()
    events = replayed.tracer.events
    decisions = len(replayed.audit)
    print(f"[{args.log}] {len(snapshot.series)} metric series, "
          f"{len(events)} span events, {decisions} audit records")

    if snapshot.series:
        print("\nmetrics:")
        print(render_prometheus(snapshot), end="")

    if events:
        traces = {event.trace_id for event in events}
        print(f"\nspans: {len(events)} events across {len(traces)} traces")
        for line in _span_breakdowns(events):
            print(line)
        shown = events if args.spans is None else events[: args.spans]
        for event in shown:
            attrs = _format_attrs(event.attrs)
            line = f"  [{event.t_s:12.6f}] {event.phase:7s} {event.trace_id} {event.name}"
            print(f"{line}  {attrs}" if attrs else line)
        if len(shown) < len(events):
            print(f"  ... {len(events) - len(shown)} more (raise --spans)")

    transitions = [e for e in events if e.name == "breaker.transition"]
    if transitions:
        print(f"\nbreaker transitions: {len(transitions)}")
        for event in transitions:
            print(
                f"  [{event.t_s:12.6f}] {event.attrs.get('from_state', '?')}"
                f" -> {event.attrs.get('to_state', '?')}"
                f" ({event.attrs.get('reason', 'unrecorded')})"
            )

    if decisions:
        counts = replayed.audit.outcome_counts()
        summary = ", ".join(f"{name}={counts[name]}" for name in sorted(counts))
        print(f"\naudit: {summary}")
        if args.sample is not None:
            print()
            try:
                print(replayed.audit.explain(args.sample))
            except KeyError as exc:
                raise SystemExit(str(exc)) from exc
    elif args.sample is not None:
        raise SystemExit(f"{args.log} carries no audit records to explain")


def cmd_slo(args: argparse.Namespace) -> None:
    """Re-check the SLO section of a BENCH_service.json without re-running."""
    import json

    try:
        with open(args.report, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except OSError as exc:
        raise SystemExit(f"cannot read {args.report}: {exc}") from exc
    except ValueError as exc:
        raise SystemExit(f"{args.report} is not JSON: {exc}") from exc
    slo = report.get("slo") if isinstance(report, dict) else None
    if not isinstance(slo, dict):
        raise SystemExit(
            f"{args.report} carries no slo section "
            f"(schema {report.get('schema') if isinstance(report, dict) else None!r}; "
            "re-run the loadgen to produce one)"
        )

    overrides = {}
    for spec in args.max or ():
        name, sep, value = spec.partition("=")
        if not sep:
            raise SystemExit(f"bad --max {spec!r}; want NAME=THRESHOLD")
        try:
            overrides[name] = float(value)
        except ValueError as exc:
            raise SystemExit(f"bad --max threshold {value!r}: {exc}") from exc
    objectives = slo.get("objectives", ())
    unknown = sorted(set(overrides) - {o["name"] for o in objectives})
    if unknown:
        known = ", ".join(sorted(o["name"] for o in objectives))
        raise SystemExit(
            f"--max names no recorded objective: {', '.join(unknown)} "
            f"(report has: {known})"
        )

    print(
        f"[{args.report}] {slo.get('schema')}: {slo.get('samples')} samples, "
        f"window {'all' if slo.get('window_s') is None else slo.get('window_s')}"
    )
    rows = []
    all_passed = True
    for objective in objectives:
        threshold = overrides.get(objective["name"], objective["threshold"])
        observed = objective["observed"]
        passed = True if observed is None else observed <= threshold
        burn = (
            None
            if observed is None or threshold == 0
            else observed / threshold
        )
        all_passed = all_passed and passed
        rows.append(
            (
                objective["name"],
                objective["kind"],
                "n/a" if observed is None else f"{observed:.6g}",
                f"{threshold:g}",
                "-" if burn is None else f"{burn:.2f}",
                "ok" if passed else "VIOLATED",
            )
        )
    print(render_table(
        ("Objective", "Kind", "Observed", "Threshold", "Burn", "Verdict"), rows
    ))
    if not all_passed:
        print("FAIL: SLO violated")
        raise SystemExit(1)
    print("all objectives within budget")


def cmd_adaptive(args: argparse.Namespace) -> None:
    """Multi-epoch adaptive run, optionally sharded, with combined telemetry."""
    from repro.cluster.sharded import round_robin_placement
    from repro.harness.adaptive import AdaptiveTrainingRun

    dataset = _dataset(args.dataset, args.samples, args.seed)
    spec = standard_cluster(storage_cores=args.storage_cores)
    telemetry = args.telemetry_dir is not None
    placement = (
        round_robin_placement(len(dataset), args.shards)
        if args.shards is not None
        else None
    )
    with _scoped_registry(args) as registry:
        run = AdaptiveTrainingRun(
            dataset,
            spec,
            batch_size=args.batch_size,
            seed=args.seed,
            placement=placement,
            num_shards=args.shards,
            job_name=args.job_name,
        )
        result = run.run(
            args.epochs, record_spans=telemetry, record_timeline=telemetry
        )
        if registry is not None:
            from repro.harness.telemetry import record_epoch_stats

            for epoch, stats in result.instrumented_epochs():
                record_epoch_stats(stats, f"epoch{epoch}", registry)

    rows = []
    for entry in result.epochs:
        rows.append(
            (
                entry.epoch,
                f"{entry.stats.epoch_time_s:.2f}s",
                f"{entry.stats.traffic_bytes / 1e6:.1f} MB",
                "yes" if entry.replanned else "-",
            )
        )
    shard_note = f", {args.shards} shards" if args.shards is not None else ""
    print(f"[{dataset.name}] adaptive run: {args.epochs} epochs{shard_note}, "
          f"{result.replan_count} replans, total {result.total_time_s:.2f}s")
    print(render_table(("Epoch", "Time", "Traffic", "Replanned"), rows))

    if telemetry:
        from repro.harness.telemetry import emit_combined_artifacts

        paths = emit_combined_artifacts(
            args.telemetry_dir,
            args.job_name or "adaptive",
            result.instrumented_epochs(),
            registry=registry,
        )
        for path in paths:
            print(f"telemetry written to {path}")


def cmd_report(args: argparse.Namespace) -> None:
    from repro.harness.report import generate_markdown_report

    report = generate_markdown_report(samples=args.samples, seed=args.seed)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report)
        print(f"report written to {args.out}")
    else:
        print(report)


def cmd_serve(args: argparse.Namespace) -> None:
    """Run the always-on decision service until interrupted, then drain."""
    import signal

    from repro.service.config import ServiceConfig
    from repro.service.server import DecisionService

    config = ServiceConfig(
        token=args.token,
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        total_storage_cores=args.cores,
        journal_path=args.journal,
    )
    service = DecisionService(config).start()
    host, port = service.address
    print(f"decision service listening on http://{host}:{port}")
    if args.journal:
        print(f"journal: {args.journal} "
              f"({service.recovered_grants} grants recovered)")
    print("Ctrl-C drains gracefully (finish in-flight work, checkpoint).")
    # SIGTERM (systemd, k8s, `kill`) must drain exactly like Ctrl-C.
    def _drain_signal(_sig: int, _frame: object) -> None:
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _drain_signal)
    try:
        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:
        pass
    drained = service.drain()
    print(f"\ndrained in {drained:.3f}s")


def cmd_loadgen(args: argparse.Namespace) -> None:
    """Heavy-tailed trainer load against a service; writes BENCH_service.json."""
    from repro.service import loadgen

    argv = [
        "--clients", str(args.clients),
        "--requests", str(args.requests),
        "--seed", str(args.seed),
        "--cores", str(args.cores),
        "--mean-think-s", str(args.mean_think_s),
        "--deadline-s", str(args.deadline_s),
        "--token", args.token,
        "--out", args.out,
    ]
    if args.address:
        argv.extend(["--address", args.address])
    raise SystemExit(loadgen.main(argv))


def cmd_all(args: argparse.Namespace) -> None:
    args.dataset = "openimages"
    print("== Table 1 ==")
    cmd_table1(args)
    print("\n== Figure 1a ==")
    cmd_fig1a(args)
    print("\n== Figure 1b ==")
    cmd_fig1b(args)
    print("\n== Figure 1c ==")
    cmd_fig1c(args)
    print("\n== Figure 1d ==")
    cmd_fig1d(args)
    print("\n== Figure 3 (OpenImages) ==")
    args.dataset = "openimages"
    cmd_fig3(args)
    print("\n== Figure 3 (ImageNet) ==")
    args.dataset = "imagenet"
    cmd_fig3(args)
    print("\n== Figure 4 ==")
    args.dataset = "openimages"
    cmd_fig4(args)


def _add_parallel_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--parallel",
        default=None,
        help="profiling execution mode: sequential, vectorized, sharded[:N] "
        "(bit-identical records; see repro.parallel)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sophon-repro",
        description="Regenerate the SOPHON paper's tables and figures.",
    )
    parser.add_argument("--samples", type=int, default=1000,
                        help="samples per synthesized dataset (default 1000)")
    parser.add_argument("--seed", type=int, default=0)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="capability matrix").set_defaults(func=cmd_table1)

    p = sub.add_parser("fig1a", help="per-sample size trace")
    p.add_argument("--dataset", default="openimages")
    p.set_defaults(func=cmd_fig1a)

    p = sub.add_parser("fig1b", help="minimum-size stage fractions")
    _add_parallel_flag(p)
    p.set_defaults(func=cmd_fig1b)

    p = sub.add_parser("fig1c", help="offloading-efficiency distribution")
    p.add_argument("--dataset", default="openimages")
    _add_parallel_flag(p)
    p.set_defaults(func=cmd_fig1c)

    p = sub.add_parser("fig1d", help="GPU utilization by model")
    p.add_argument("--dataset", default="openimages")
    p.add_argument("--bandwidth", type=float, default=1000.0, help="Mbps")
    p.add_argument("--telemetry-dir", help="write telemetry artifacts here")
    p.set_defaults(func=cmd_fig1d)

    p = sub.add_parser("fig3", help="policy comparison, ample storage CPUs")
    p.add_argument("--dataset", default="openimages")
    p.add_argument("--storage-cores", type=int, default=48)
    p.add_argument("--csv", help="also write the data as CSV to this path")
    p.add_argument("--telemetry-dir", help="write telemetry artifacts here")
    _add_parallel_flag(p)
    p.set_defaults(func=cmd_fig3)

    p = sub.add_parser("fig4", help="storage-core sweep")
    p.add_argument("--dataset", default="openimages")
    p.add_argument("--cores", type=int, nargs="+", default=[0, 1, 2, 3, 4, 5])
    p.add_argument("--csv", help="also write the data as CSV to this path")
    p.add_argument("--telemetry-dir", help="write telemetry artifacts here")
    _add_parallel_flag(p)
    p.set_defaults(func=cmd_fig4)

    p = sub.add_parser(
        "audit", help="explain one sample's offload decision end-to-end"
    )
    p.add_argument("sample_id", type=int, help="sample to explain")
    p.add_argument("--dataset", default="openimages")
    p.add_argument("--model", default="alexnet")
    p.add_argument("--storage-cores", type=int, default=48)
    p.add_argument("--epoch", type=int, default=1,
                   help="epoch to simulate for the span log (default 1)")
    p.add_argument("--shards", type=int, default=None,
                   help="simulate on a sharded storage tier with this many "
                   "shards (round-robin placement; spans gain shard labels)")
    _add_parallel_flag(p)
    p.set_defaults(func=cmd_audit)

    p = sub.add_parser(
        "adaptive", help="multi-epoch adaptive run with combined telemetry"
    )
    p.add_argument("--dataset", default="openimages")
    p.add_argument("--epochs", type=int, default=3,
                   help="epochs to simulate (>= 2; epoch 0 profiles)")
    p.add_argument("--storage-cores", type=int, default=48)
    p.add_argument("--batch-size", type=int, default=None)
    p.add_argument("--shards", type=int, default=None,
                   help="shard the storage tier (round-robin placement)")
    p.add_argument("--job-name", default=None,
                   help="tenant label stamped onto every span")
    p.add_argument("--telemetry-dir",
                   help="write the combined multi-epoch telemetry here")
    p.set_defaults(func=cmd_adaptive)

    p = sub.add_parser(
        "frontier", help="traffic-vs-fidelity frontier (progressive records)"
    )
    p.add_argument("--dataset", default="openimages")
    p.add_argument("--bandwidth", type=float, default=50.0,
                   help="link bandwidth in Mbps (tight by default so the "
                   "fidelity pass has traffic to shed)")
    p.add_argument("--floors", type=float, nargs="+", default=None,
                   help="PSNR floors in dB to sweep (a full-fidelity "
                   "baseline point is always included)")
    p.add_argument("--json", help="write the frontier JSON to this path "
                   "(default: print it after the table)")
    p.set_defaults(func=cmd_frontier)

    p = sub.add_parser("plan", help="compute (and optionally save) a SOPHON plan")
    p.add_argument("--dataset", default="openimages")
    p.add_argument("--model", default="alexnet")
    p.add_argument("--storage-cores", type=int, default=48)
    p.add_argument("--save", help="write the plan as JSON to this path")
    _add_parallel_flag(p)
    p.set_defaults(func=cmd_plan)

    p = sub.add_parser("stalls", help="data-stall breakdown, no-off vs sophon")
    p.add_argument("--dataset", default="openimages")
    p.add_argument("--model", default="alexnet")
    p.add_argument("--storage-cores", type=int, default=48)
    _add_parallel_flag(p)
    p.set_defaults(func=cmd_stalls)

    p = sub.add_parser("ext-llm", help="the section-5 LLM negative result")
    p.set_defaults(func=cmd_ext_llm)

    p = sub.add_parser(
        "replay", help="summarize an exported telemetry JSONL log"
    )
    p.add_argument("log", help="path to a telemetry .jsonl export")
    p.add_argument("--sample", type=int, default=None,
                   help="also explain this sample's audited decision")
    p.add_argument("--spans", type=int, default=None,
                   help="cap the span listing at this many events (default: all)")
    p.set_defaults(func=cmd_replay)

    p = sub.add_parser(
        "slo", help="re-check the SLO section of a BENCH_service.json"
    )
    p.add_argument("report", help="path to a BENCH_service.json report")
    p.add_argument("--max", action="append", metavar="NAME=THRESHOLD",
                   help="override one objective's threshold (repeatable), "
                   "e.g. --max plan_p99=0.5")
    p.set_defaults(func=cmd_slo)

    p = sub.add_parser("report", help="full markdown results report")
    p.add_argument("--out", help="write to this path instead of stdout")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("sweep", help="grid sweep over cluster parameters")
    p.add_argument("--dataset", default="openimages")
    p.add_argument("--cores", type=int, nargs="+",
                   help="storage_cores axis values")
    p.add_argument("--bandwidths", type=float, nargs="+",
                   help="bandwidth_mbps axis values")
    p.add_argument("--csv", help="also write the grid as CSV to this path")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "serve",
        help="run the always-on decision service (Ctrl-C drains gracefully)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="0 picks a free port (printed at startup)")
    p.add_argument("--token", default="sophon-dev-token",
                   help="bearer token clients must present")
    p.add_argument("--workers", type=int, default=2,
                   help="planner worker threads")
    p.add_argument("--queue-capacity", type=int, default=16,
                   help="bounded work queue size (beyond it, requests shed)")
    p.add_argument("--cores", type=int, default=48,
                   help="storage-CPU budget admission control protects")
    p.add_argument("--journal", default=None,
                   help="append-only grant journal path (enables crash "
                   "recovery)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "loadgen",
        help="heavy-tailed trainer load -> BENCH_service.json",
    )
    p.add_argument("--clients", type=int, default=4)
    p.add_argument("--requests", type=int, default=25,
                   help="plan requests per client")
    p.add_argument("--cores", type=int, default=48)
    p.add_argument("--mean-think-s", type=float, default=0.002)
    p.add_argument("--deadline-s", type=float, default=5.0)
    p.add_argument("--address", default=None,
                   help="host:port of a running service (default: in-process)")
    p.add_argument("--token", default="sophon-dev-token")
    p.add_argument("--out", default="BENCH_service.json")
    p.set_defaults(func=cmd_loadgen)

    p = sub.add_parser("all", help="everything above")
    p.add_argument("--bandwidth", type=float, default=1000.0)
    p.add_argument("--storage-cores", type=int, default=48)
    p.add_argument("--cores", type=int, nargs="+", default=[0, 1, 2, 3, 4, 5])
    p.set_defaults(func=cmd_all)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    args.func(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
