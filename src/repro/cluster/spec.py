"""Cluster hardware description (the paper's two-node testbed)."""

import dataclasses

from repro.utils.units import mbps_to_bytes_per_s


@dataclasses.dataclass(frozen=True)
class ClusterSpec:
    """Compute node + storage node + the link between them.

    compute_cores: logical cores for local preprocessing (paper: 48).
    storage_cores: cores available for offloaded preprocessing on the
        storage node (paper: varied 0..ample); 0 disables offloading.
    bandwidth_mbps: inter-node network cap (paper: 500 Mbps).
    network_rtt_s: per-request round-trip latency added to each fetch.
    compute_cpu_factor / storage_cpu_factor: relative CPU slowness of each
        node (1.0 = the profiled CPU; >1 slower).  The paper assumes
        identical CPUs; heterogeneous values exercise the section-6
        extension.
    prefetch_batches: how many batches the input pipeline works ahead of
        the GPU.
    request_overhead_bytes / response_overhead_bytes: protocol framing per
        fetch, counted as traffic.
    link_chunk_bytes: transfer interleaving granularity.  Transmissions
        hold the link one chunk at a time, so concurrent flows share the
        bandwidth round-robin (TCP-fair-ish) instead of serializing whole
        payloads FIFO -- this matters when several jobs share one egress
        link.
    """

    compute_cores: int = 48
    storage_cores: int = 48
    bandwidth_mbps: float = 500.0
    network_rtt_s: float = 0.0002
    compute_cpu_factor: float = 1.0
    storage_cpu_factor: float = 1.0
    prefetch_batches: int = 8
    request_overhead_bytes: int = 64
    response_overhead_bytes: int = 32
    link_chunk_bytes: int = 262_144

    def __post_init__(self) -> None:
        if self.compute_cores < 1:
            raise ValueError(f"compute_cores must be >= 1, got {self.compute_cores}")
        if self.storage_cores < 0:
            raise ValueError(f"storage_cores must be >= 0, got {self.storage_cores}")
        if self.bandwidth_mbps <= 0:
            raise ValueError(f"bandwidth_mbps must be > 0, got {self.bandwidth_mbps}")
        if self.network_rtt_s < 0:
            raise ValueError(f"network_rtt_s must be >= 0, got {self.network_rtt_s}")
        if self.compute_cpu_factor <= 0 or self.storage_cpu_factor <= 0:
            raise ValueError("CPU speed factors must be > 0")
        if self.prefetch_batches < 1:
            raise ValueError(f"prefetch_batches must be >= 1, got {self.prefetch_batches}")
        if self.link_chunk_bytes < 4096:
            raise ValueError(
                f"link_chunk_bytes must be >= 4096, got {self.link_chunk_bytes}"
            )

    @property
    def bandwidth_bytes_per_s(self) -> float:
        return mbps_to_bytes_per_s(self.bandwidth_mbps)

    @property
    def can_offload(self) -> bool:
        return self.storage_cores > 0

    def with_storage_cores(self, storage_cores: int) -> "ClusterSpec":
        return dataclasses.replace(self, storage_cores=storage_cores)

    def with_bandwidth(self, bandwidth_mbps: float) -> "ClusterSpec":
        return dataclasses.replace(self, bandwidth_mbps=bandwidth_mbps)

    def degraded(
        self,
        bandwidth_factor: float = 1.0,
        extra_rtt_s: float = 0.0,
        storage_cpu_factor: float = 1.0,
        storage_down: bool = False,
    ) -> "ClusterSpec":
        """The cluster as an observed outage leaves it.

        Adaptive re-planning feeds the degraded spec to the decision
        engine, so the plan produced during (or after) a fault reflects
        what the cluster can actually deliver: ``storage_down`` removes the
        storage cores entirely (forcing a No-Off plan), a brownout scales
        the bandwidth and inflates the RTT, CPU drift slows the storage
        cores.
        """
        if not 0 < bandwidth_factor <= 1:
            raise ValueError(
                f"bandwidth_factor must be in (0, 1], got {bandwidth_factor}"
            )
        if extra_rtt_s < 0:
            raise ValueError(f"extra_rtt_s must be >= 0, got {extra_rtt_s}")
        if storage_cpu_factor < 1:
            raise ValueError(
                f"storage_cpu_factor must be >= 1, got {storage_cpu_factor}"
            )
        return dataclasses.replace(
            self,
            storage_cores=0 if storage_down else self.storage_cores,
            bandwidth_mbps=self.bandwidth_mbps * bandwidth_factor,
            network_rtt_s=self.network_rtt_s + extra_rtt_s,
            storage_cpu_factor=self.storage_cpu_factor * storage_cpu_factor,
        )


def standard_cluster(
    storage_cores: int = 48,
    bandwidth_mbps: float = 500.0,
    compute_cores: int = 48,
) -> ClusterSpec:
    """The paper's evaluation setup (section 4 Experiment Setup)."""
    return ClusterSpec(
        compute_cores=compute_cores,
        storage_cores=storage_cores,
        bandwidth_mbps=bandwidth_mbps,
    )
