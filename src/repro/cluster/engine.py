"""Batched fast-path execution of one training job's epoch.

:func:`launch_training_job_fast` is a drop-in replacement for
:func:`repro.cluster.trainer.launch_training_processes` on the hot path --
fault-free runs with no timeline and no tracer attached.  Instead of one
generator :class:`~repro.cluster.sim.Process` per sample (plus relay
events for every yield), each sample is a slot-based cursor: a single
``__slots__`` object whose bound ``step`` method is registered directly as
the event callback and dispatches on a small state integer.  Batches join
through a plain countdown instead of an :class:`~repro.cluster.sim.AllOf`,
and timeouts go straight onto the heap as pooled callback slots.

**The mirror contract.**  The cursors replay the generator path push for
push: every heap entry lands at the same ``(time, sequence)`` position the
generator code would have produced, and entries whose pops had no side
effects (generator-end events nobody waits on) are dropped outright.
Resource acquire/release calls happen in the same order with the same
arguments, so grant order, ``busy_time`` accumulation order, and traffic
arithmetic are identical float-op for float-op.  That is what lets
``TrainerSim.run_epoch`` switch between the two paths and produce
byte-identical :class:`~repro.cluster.trainer.EpochStats` -- the contract
``repro.cluster.bench`` gates on every run.

Per-yield cost drops from a generator frame resume + relay ``Event``
(callback list and all) to one slot fire + an integer compare, and
per-sample allocation drops from a ``Process`` + ~10 events to one cursor
object -- the difference between 10^4- and 10^6-sample epochs.

The correspondence, step by step (see ``trainer.sample_proc``):

====================  ==================================================
generator path        cursor mirror
====================  ==================================================
``env.process(...)``  start slot pushed at construction
``yield timeout(d)``  ``env._call_at(env.now + d, step)``
``yield grant``       ``grant.callbacks.append(step)``
process end event     batch-countdown slot (``_BatchRun.child_end``)
``AllOf`` fires       all-done slot (``_BatchRun.all_done``)
``batch_ready`` wait  same event; relay slot when already processed
process end (unused)  dropped (the pop had no side effects)
====================  ==================================================
"""

from typing import Any, Dict, List, Optional

from repro.cluster.sim import Environment, Event, Resource
from repro.cluster.spec import ClusterSpec
from repro.workloads.models import ModelProfile

# Imported for type checking only: a runtime import would be circular
# (trainer imports this module's launcher).
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.trainer import JobHandles, SampleWork

__all__ = ["launch_training_job_fast"]


class _FastJob:
    """Shared per-job state every cursor reads (spec scalars pre-bound)."""

    __slots__ = (
        "env", "handles", "work", "batches", "model", "traffic", "batch_ready",
        "rtt_half", "storage_cpu_factor", "compute_cpu_factor",
        "bandwidth", "link_chunk", "overhead", "flow_key",
    )

    def __init__(
        self,
        env: Environment,
        spec: ClusterSpec,
        work: Dict[int, "SampleWork"],
        batches: List[List[int]],
        model: ModelProfile,
        handles: "JobHandles",
    ) -> None:
        self.env = env
        self.handles = handles
        self.work = work
        self.batches = batches
        self.model = model
        self.traffic: Dict[str, Any] = {"bytes": 0, "done": 0}
        self.batch_ready: List[Event] = [env.event() for _ in batches]
        self.rtt_half = spec.network_rtt_s / 2.0
        self.storage_cpu_factor = spec.storage_cpu_factor
        self.compute_cpu_factor = spec.compute_cpu_factor
        self.bandwidth = spec.bandwidth_bytes_per_s
        self.link_chunk = spec.link_chunk_bytes
        self.overhead = spec.response_overhead_bytes
        self.flow_key = handles.flow_key


# _SampleRun states (the yield points of trainer.sample_proc):
_S_START = 0        # process start slot fired
_S_ARRIVED = 1      # half-RTT request latency elapsed
_S_PREFIX_GRANT = 2  # storage core granted
_S_PREFIX_DONE = 3  # offloaded prefix finished
_S_CHUNK_GRANT = 4  # link granted for one chunk
_S_CHUNK_DONE = 5   # chunk crossed the link
_S_RESPONDED = 6    # trailing half-RTT elapsed
_S_SUFFIX_GRANT = 7  # compute core granted
_S_SUFFIX_DONE = 8  # local suffix finished


class _SampleRun:
    """One sample's fetch, mirroring ``sample_proc`` state for state."""

    __slots__ = ("job", "item", "batch", "step", "state", "grant", "pool",
                 "remaining", "payload")

    def __init__(self, job: _FastJob, item: "SampleWork", batch: "_BatchRun") -> None:
        self.job = job
        self.item = item
        self.batch = batch
        self.step = self._step  # one reusable bound method for every wait
        self.state = _S_START
        self.grant: Optional[Event] = None
        self.pool: Optional[Resource] = None
        self.remaining = 0
        self.payload = 0
        env = job.env
        env._call_at(env.now, self.step)

    def _step(self, event: Any) -> None:
        job = self.job
        env = job.env
        state = self.state
        if state == _S_CHUNK_GRANT:  # hottest states first
            self.state = _S_CHUNK_DONE
            chunk = self.remaining
            if chunk > job.link_chunk:
                chunk = job.link_chunk
            env._call_at(env.now + chunk / job.bandwidth, self.step)
        elif state == _S_CHUNK_DONE:
            link = job.handles.link
            link.release(self.grant)
            chunk = self.remaining
            if chunk > job.link_chunk:
                chunk = job.link_chunk
            self.remaining -= chunk
            if self.remaining > 0:
                self.state = _S_CHUNK_GRANT
                self.grant = link.acquire(job.flow_key, front=True)
                self.grant.callbacks.append(self.step)
            else:
                job.traffic["bytes"] += self.payload
                self.state = _S_RESPONDED
                env._call_at(env.now + job.rtt_half, self.step)
        elif state == _S_START:
            self.state = _S_ARRIVED
            env._call_at(env.now + job.rtt_half, self.step)
        elif state == _S_ARRIVED:
            item = self.item
            if item.split > 0:
                pool = job.handles.storage_pool(item.sample_id)
                assert pool is not None  # split > 0 implies an offload-capable spec
                self.pool = pool
                self.state = _S_PREFIX_GRANT
                self.grant = pool.acquire()
                self.grant.callbacks.append(self.step)
            else:
                self._start_transmit()
        elif state == _S_PREFIX_GRANT:
            self.state = _S_PREFIX_DONE
            env._call_at(
                env.now + self.item.prefix_cpu_s * job.storage_cpu_factor, self.step
            )
        elif state == _S_PREFIX_DONE:
            assert self.pool is not None
            self.pool.release(self.grant)
            self._start_transmit()
        elif state == _S_RESPONDED:
            if self.item.suffix_cpu_s > 0:
                self.state = _S_SUFFIX_GRANT
                self.grant = job.handles.compute_cpu.acquire()
                self.grant.callbacks.append(self.step)
            else:
                env._call_at(env.now, self.batch.child_end)
        elif state == _S_SUFFIX_GRANT:
            self.state = _S_SUFFIX_DONE
            env._call_at(
                env.now + self.item.suffix_cpu_s * job.compute_cpu_factor, self.step
            )
        else:  # _S_SUFFIX_DONE
            job.handles.compute_cpu.release(self.grant)
            env._call_at(env.now, self.batch.child_end)

    def _start_transmit(self) -> None:
        job = self.job
        self.payload = self.item.wire_bytes + job.overhead
        self.remaining = self.payload
        self.state = _S_CHUNK_GRANT
        self.grant = job.handles.link.acquire(job.flow_key, front=False)
        self.grant.callbacks.append(self.step)


class _BatchRun:
    """One batch's prefetch-token wait and child join (``batch_proc``)."""

    __slots__ = ("job", "index", "ids", "token", "pending")

    def __init__(self, job: _FastJob, index: int, ids: List[int]) -> None:
        self.job = job
        self.index = index
        self.ids = ids
        self.token: Optional[Event] = None
        self.pending = 0
        env = job.env
        env._call_at(env.now, self.start)

    def start(self, event: Any) -> None:
        # First resume: claim a prefetch-window token, wait for it.
        token = self.job.handles.prefetch.acquire()
        self.token = token
        token.callbacks.append(self.granted)

    def granted(self, event: Any) -> None:
        # Token granted: launch every sample, join them via countdown
        # (one child_end slot per sample plays the child's process-end
        # event; the final one stands in for the AllOf join).
        job = self.job
        env = job.env
        work = job.work
        self.pending = len(self.ids)
        for sample_id in self.ids:
            _SampleRun(job, work[sample_id], self)
        if not self.ids:
            env._call_at(env.now, self.all_done)

    def child_end(self, event: Any) -> None:
        self.pending -= 1
        if self.pending == 0:
            env = self.job.env
            env._call_at(env.now, self.all_done)

    def all_done(self, event: Any) -> None:
        self.job.batch_ready[self.index].trigger(self.token)


# _GpuRun states (the yield points of trainer.gpu_proc):
_G_START = 0       # process start slot fired
_G_READY = 1       # batch_ready[index] delivered
_G_GRANT = 2       # GPU granted
_G_BATCH_DONE = 3  # batch compute time elapsed


class _GpuRun:
    """The in-order GPU consumer (``gpu_proc``)."""

    __slots__ = ("job", "index", "token", "grant", "step", "state")

    def __init__(self, job: _FastJob) -> None:
        self.job = job
        self.index = 0
        self.token: Optional[Event] = None
        self.grant: Optional[Event] = None
        self.state = _G_START
        self.step = self._step
        env = job.env
        env._call_at(env.now, self.step)

    def _wait_ready(self) -> None:
        job = self.job
        ready = job.batch_ready[self.index]
        self.state = _G_READY
        if ready.processed:
            # Deliver through the queue, like Process._wait_on on an
            # already-fired event.
            env = job.env
            env._call_at(env.now, self.step, ready.value)
        else:
            ready.callbacks.append(self.step)

    def _step(self, event: Any) -> None:
        job = self.job
        env = job.env
        state = self.state
        if state == _G_READY:
            self.token = event.value
            self.state = _G_GRANT
            self.grant = job.handles.gpu.acquire()
            self.grant.callbacks.append(self.step)
        elif state == _G_GRANT:
            self.state = _G_BATCH_DONE
            ids = job.batches[self.index]
            env._call_at(env.now + job.model.batch_time_s(len(ids)), self.step)
        elif state == _G_BATCH_DONE:
            job.handles.gpu.release(self.grant)
            job.handles.prefetch.release(self.token)
            self.index += 1
            if self.index < len(job.batches):
                self._wait_ready()
            else:
                self._finish()
        else:  # _G_START
            if job.batches:
                self._wait_ready()
            else:
                self._finish()

    def _finish(self) -> None:
        job = self.job
        job.traffic["done"] = 1
        job.traffic["finished_at"] = job.env.now


def launch_training_job_fast(
    env: Environment,
    spec: ClusterSpec,
    work: Dict[int, "SampleWork"],
    batches: List[List[int]],
    model: ModelProfile,
    handles: "JobHandles",
    epoch: int = 0,
) -> Dict[str, Any]:
    """Register one job's epoch on ``env`` via the batched cursor engine.

    Semantics and return value match
    :func:`~repro.cluster.trainer.launch_training_processes` called
    without faults, timeline, or tracer -- byte-identical stats, traffic,
    and resource accounting.  Callers needing any of those switches must
    use the generator path instead (``TrainerSim.run_epoch`` arbitrates).

    ``epoch`` is accepted for signature parity with the generator
    launcher; the fast path carries no tracer, so nothing consumes it.
    """
    job = _FastJob(env, spec, work, batches, model, handles)
    for index, ids in enumerate(batches):
        _BatchRun(job, index, ids)
    _GpuRun(job)
    return job.traffic
