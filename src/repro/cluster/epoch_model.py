"""The analytic epoch-time model over the paper's four metrics.

Section 3.2 of the paper reasons about an epoch through four quantities:

- T_G: GPU time for one epoch;
- T_CC: compute-node CPU time (total local preprocessing / compute cores);
- T_CS: storage-node CPU time (total offloaded preprocessing / storage
  cores);
- T_Net: wire time (total traffic / bandwidth).

With a pipelined input path these stages overlap, so the epoch lower bound
is the maximum of the four; the decision engine optimizes against this model
while the event simulator provides the measured times (which include
queueing and pipeline fill).
"""

import dataclasses
import enum

from repro.cluster.spec import ClusterSpec


class Bottleneck(enum.Enum):
    """Which of the four metrics dominates an epoch."""

    GPU = "gpu"
    COMPUTE_CPU = "compute_cpu"
    STORAGE_CPU = "storage_cpu"
    NETWORK = "network"


@dataclasses.dataclass(frozen=True)
class EpochMetrics:
    """Aggregate per-epoch work, before dividing by hardware capacity.

    gpu_time_s: serial GPU seconds (sum of batch times).
    compute_cpu_s: total single-core seconds of local preprocessing.
    storage_cpu_s: total single-core seconds of offloaded preprocessing
        (already scaled for the storage node's CPU speed factor).
    traffic_bytes: total bytes crossing the storage->compute link.
    """

    gpu_time_s: float
    compute_cpu_s: float
    storage_cpu_s: float
    traffic_bytes: float

    def __post_init__(self) -> None:
        for field in dataclasses.fields(self):
            if getattr(self, field.name) < 0:
                raise ValueError(f"{field.name} must be >= 0")

    def replace(self, **changes: float) -> "EpochMetrics":
        return dataclasses.replace(self, **changes)


@dataclasses.dataclass(frozen=True)
class EpochEstimate:
    """The four T metrics of section 3.2 plus the derived epoch estimate."""

    t_g: float
    t_cc: float
    t_cs: float
    t_net: float

    @property
    def epoch_time_s(self) -> float:
        return max(self.t_g, self.t_cc, self.t_cs, self.t_net)

    @property
    def bottleneck(self) -> Bottleneck:
        pairs = [
            (self.t_g, Bottleneck.GPU),
            (self.t_cc, Bottleneck.COMPUTE_CPU),
            (self.t_cs, Bottleneck.STORAGE_CPU),
            (self.t_net, Bottleneck.NETWORK),
        ]
        return max(pairs, key=lambda p: p[0])[1]

    @property
    def network_bound(self) -> bool:
        """True when T_Net is the (weakly) predominant metric."""
        return self.t_net >= max(self.t_g, self.t_cc, self.t_cs)

    @property
    def gpu_utilization(self) -> float:
        """T_G / epoch time -- the fraction of the epoch the GPU computes."""
        epoch = self.epoch_time_s
        if epoch <= 0:
            return 0.0
        return self.t_g / epoch


class EpochModel:
    """Turns aggregate work into the four T metrics for a given cluster."""

    def __init__(self, spec: ClusterSpec) -> None:
        self.spec = spec

    def estimate(self, metrics: EpochMetrics) -> EpochEstimate:
        spec = self.spec
        t_cc = metrics.compute_cpu_s * spec.compute_cpu_factor / spec.compute_cores
        if metrics.storage_cpu_s > 0 and spec.storage_cores == 0:
            raise ValueError("storage work scheduled on a cluster with 0 storage cores")
        t_cs = (
            0.0
            if metrics.storage_cpu_s == 0
            else metrics.storage_cpu_s * spec.storage_cpu_factor / spec.storage_cores
        )
        t_net = metrics.traffic_bytes / spec.bandwidth_bytes_per_s
        return EpochEstimate(
            t_g=metrics.gpu_time_s, t_cc=t_cc, t_cs=t_cs, t_net=t_net
        )

    def epoch_time_s(self, metrics: EpochMetrics) -> float:
        return self.estimate(metrics).epoch_time_s
