"""Many training jobs sharing one storage egress link (paper section 5).

"GPU clusters often run hundreds or thousands of DL training jobs
simultaneously, putting substantial strain on the network between GPU
clusters and remote storage. For example, a 400 V100 GPU cluster requires
an aggregate I/O bandwidth of 200 Gbps, while Azure's maximum egress
bandwidth is only 120 Gbps."

This module simulates J concurrent jobs: each job has its own compute
node (CPU pool, GPU, prefetch window) but all jobs contend for one shared
egress link and one shared storage-node CPU pool.  The per-job epoch
completion times quantify how many jobs a given egress budget sustains --
with and without SOPHON shrinking each job's wire bytes.

``run_epoch`` accepts the same telemetry switches as the single-node
trainer: ``record_spans`` collects every tenant's per-sample spans into
one shared :class:`~repro.telemetry.spans.Tracer` (each span carries a
``job`` label naming its tenant, on the same ``trace_id(sample, epoch)``
ids as the single-node path), and ``record_timeline`` attaches one batch
:class:`~repro.metrics.timeline.Timeline` per job.  The simulated
schedule is byte-identical with or without either.
"""

import dataclasses
from typing import Dict, Optional, Sequence, cast

from repro.cluster.engine import launch_training_job_fast
from repro.cluster.sim import Environment
from repro.cluster.spec import ClusterSpec
from repro.cluster.trainer import (
    JobHandles,
    TrainerSim,
    WorkAdjustment,
    _kernel_module,
    launch_training_processes,
)
from repro.data.dataset import Dataset
from repro.data.sampler import BatchSampler, SequentialSampler
from repro.metrics.timeline import Timeline
from repro.preprocessing.pipeline import Pipeline
from repro.telemetry.spans import Tracer
from repro.workloads.models import ModelProfile


@dataclasses.dataclass
class SharedJob:
    """One tenant of the shared link."""

    name: str
    dataset: Dataset
    pipeline: Pipeline
    model: ModelProfile
    splits: Optional[Sequence[int]] = None
    batch_size: Optional[int] = None
    seed: int = 0
    #: Optional per-sample work deltas (selective compression et al.),
    #: applied exactly as TrainerSim.run_epoch(adjustments=...) would.
    adjustments: Optional[Dict[int, WorkAdjustment]] = None


@dataclasses.dataclass
class SharedJobResult:
    """Per-job outcome of a shared-link run."""

    name: str
    epoch_time_s: float
    traffic_bytes: int


@dataclasses.dataclass
class SharedLinkStats:
    """Outcome of running all jobs to completion on the shared link."""

    results: Dict[str, SharedJobResult]
    makespan_s: float
    total_traffic_bytes: int
    link_utilization: float
    storage_cpu_utilization: float
    #: Every tenant's span events on one tracer (``job`` label names the
    #: tenant), populated when run_epoch(record_spans=True).
    spans: Optional[Tracer] = None
    #: Per-job batch timelines, populated when run_epoch(record_timeline=True).
    timelines: Optional[Dict[str, Timeline]] = None

    def epoch_time(self, name: str) -> float:
        return self.results[name].epoch_time_s

    @property
    def mean_epoch_time_s(self) -> float:
        if not self.results:
            return 0.0
        return sum(r.epoch_time_s for r in self.results.values()) / len(self.results)


class SharedLinkSim:
    """Run several jobs' epochs concurrently over one egress link.

    ``spec.bandwidth_mbps`` is the *aggregate* egress budget;
    ``spec.storage_cores`` the shared storage-side preprocessing pool.
    Per-job compute resources come from the same spec (each job gets its
    own compute node, as in a GPU cluster).
    """

    def __init__(self, spec: ClusterSpec) -> None:
        self.spec = spec

    def run_epoch(
        self,
        jobs: Sequence[SharedJob],
        epoch: int = 0,
        record_timeline: bool = False,
        record_spans: bool = False,
        kernel: str = "auto",
    ) -> SharedLinkStats:
        """Run every job's epoch to completion on the shared link.

        record_spans: collect all tenants' per-sample spans on one tracer
            (stats.spans); each span carries a ``job`` label.
        record_timeline: attach one per-batch Timeline per job
            (stats.timelines, keyed by job name).
        kernel: same contract as :meth:`TrainerSim.run_epoch` -- "auto"
            runs every tenant on the batched cursor engine when neither
            telemetry switch is set, "reference" replays the frozen seed
            kernel, and all choices are byte-identical.
        Neither telemetry switch perturbs the simulated schedule.
        """
        kernel_mod = _kernel_module(kernel)
        fast_eligible = not record_timeline and not record_spans
        if kernel == "fast" and not fast_eligible:
            raise ValueError(
                "kernel='fast' covers only runs without timeline or spans; "
                "use kernel='auto' to fall back automatically"
            )
        use_engine = kernel != "reference" and fast_eligible
        names = [job.name for job in jobs]
        if len(set(names)) != len(names):
            raise ValueError(f"job names must be unique, got {names}")
        if not jobs:
            raise ValueError("need at least one job")

        env = cast(Environment, kernel_mod.Environment())
        spec = self.spec
        # Fair-queued: concurrent jobs share bandwidth round-robin at chunk
        # granularity instead of draining whole bursts FIFO.
        link = kernel_mod.FairResource(env, 1, "shared-link")
        storage_cpu = (
            kernel_mod.Resource(env, spec.storage_cores, "shared-storage-cpu")
            if spec.can_offload
            else None
        )
        tracer = Tracer(clock=lambda: env.now) if record_spans else None
        timelines: Optional[Dict[str, Timeline]] = (
            {job.name: Timeline() for job in jobs} if record_timeline else None
        )

        counters: Dict[str, Dict] = {}
        for job in jobs:
            trainer = TrainerSim(
                dataset=job.dataset,
                pipeline=job.pipeline,
                model=job.model,
                spec=spec,
                batch_size=job.batch_size,
                seed=job.seed,
            )
            job_splits = list(job.splits) if job.splits is not None else None
            if kernel == "reference":
                work = trainer._epoch_work(job_splits, epoch, job.adjustments)
            else:
                work = trainer._epoch_work_fast(job_splits, epoch, job.adjustments)
            batches = list(
                BatchSampler(
                    SequentialSampler(len(job.dataset)), trainer.batch_size
                ).epoch_batches(epoch)
            )
            handles = JobHandles(
                compute_cpu=kernel_mod.Resource(
                    env, spec.compute_cores, f"{job.name}-cpu"
                ),
                storage_cpu=storage_cpu,
                link=link,
                gpu=kernel_mod.Resource(env, 1, f"{job.name}-gpu"),
                prefetch=kernel_mod.Resource(
                    env, spec.prefetch_batches, f"{job.name}-prefetch"
                ),
                flow_key=job.name,
                job_label=job.name,
            )
            if use_engine:
                counters[job.name] = launch_training_job_fast(
                    env, spec, work, batches, job.model, handles, epoch=epoch
                )
            else:
                counters[job.name] = launch_training_processes(
                    env,
                    spec,
                    work,
                    batches,
                    job.model,
                    handles,
                    timeline=timelines[job.name] if timelines is not None else None,
                    tracer=tracer,
                    epoch=epoch,
                )

        env.run()
        makespan = env.now

        results = {}
        for job in jobs:
            counter = counters[job.name]
            if not counter["done"]:
                raise RuntimeError(f"job {job.name} did not finish")
            results[job.name] = SharedJobResult(
                name=job.name,
                epoch_time_s=counter["finished_at"],
                traffic_bytes=counter["bytes"],
            )
        return SharedLinkStats(
            results=results,
            makespan_s=makespan,
            total_traffic_bytes=sum(r.traffic_bytes for r in results.values()),
            link_utilization=link.utilization(makespan),
            storage_cpu_utilization=(
                storage_cpu.utilization(makespan) if storage_cpu is not None else 0.0
            ),
            spans=tracer,
            timelines=timelines,
        )
