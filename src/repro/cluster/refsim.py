"""The frozen *seed* DES kernel: the byte-identity reference.

This module is a byte-for-byte snapshot of ``repro.cluster.sim`` as it
stood before the performance overhaul (the generator ``Process`` + relay
``Event`` kernel), kept so the optimized kernel can be gated against it:
``repro.cluster.bench`` and the identity tests run every epoch on both
kernels and require byte-identical ``EpochStats``, traffic, fault reports
and span streams.  Do not optimize or "fix" this file -- its value is
that it never changes.  The behavioral contract both kernels must satisfy
lives in ``tests/cluster/test_sim_semantics.py``, parameterized over the
two modules.
"""

import heapq
import itertools
from collections import OrderedDict
from typing import Any, Callable, Generator, Iterator, List, Optional

# The exception types are shared with the live kernel (not snapshotted):
# process code like ``launch_training_processes`` catches ``Interrupt`` by
# identity, and it must catch it no matter which kernel is driving.
from repro.cluster.sim import Interrupt, SimulationError

__all__ = [
    "AllOf",
    "Environment",
    "Event",
    "FairResource",
    "Interrupt",
    "Process",
    "Resource",
    "SimulationError",
    "Store",
    "Timeout",
    "hold",
]


class Event:
    """Something that will happen at a point in virtual time.

    Lifecycle: *pending* -> ``trigger()`` puts it on the queue ->
    *processed* once the scheduler fires its callbacks.  An event fires at
    most once; its ``value`` is delivered to every waiter.
    """

    __slots__ = ("env", "callbacks", "triggered", "processed", "value")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: List[Callable[["Event"], None]] = []
        self.triggered = False
        self.processed = False
        self.value: Any = None

    def trigger(self, value: Any = None) -> "Event":
        """Schedule this event to fire at the current virtual time."""
        if self.triggered:
            raise SimulationError("event triggered twice")
        self.triggered = True
        self.value = value
        self.env._schedule(self.env.now, self)
        return self

    def wait(self, callback: Callable[["Event"], None]) -> None:
        """Invoke ``callback`` when this event fires (immediately if fired)."""
        if self.processed:
            callback(self)
        else:
            self.callbacks.append(callback)

    def _fire(self) -> None:
        self.processed = True
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)


class Timeout(Event):
    """An event that fires after a fixed virtual delay."""

    __slots__ = ()

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"timeout delay must be >= 0, got {delay}")
        super().__init__(env)
        self.triggered = True
        self.value = value
        env._schedule(env.now + delay, self)


class Process(Event):
    """A running generator; also an event that fires when the generator ends.

    The event's value is the generator's return value.  Processes are
    *interruptible*: :meth:`interrupt` throws an :class:`Interrupt` into the
    generator at its current yield point (fault injection uses this to fail
    an offloaded prefix that is in flight when the storage node crashes).
    """

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, env: "Environment", generator: Generator) -> None:
        super().__init__(env)
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        first = Event(env).trigger()
        first.callbacks.append(self._resume)
        self._waiting_on = first

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        try:
            target = self._generator.send(event.value)
        except StopIteration as stop:
            self.trigger(stop.value)
            return
        self._wait_on(target)

    def _wait_on(self, target: Event) -> None:
        if not isinstance(target, Event):
            raise SimulationError(
                f"process yielded {type(target).__name__}, expected an Event"
            )
        if target.processed:
            # Deliver through the queue rather than synchronously, so long
            # chains of already-fired events cannot recurse the C stack.
            relay = Event(self.env)
            relay.callbacks.append(self._resume)
            relay.trigger(target.value)
            self._waiting_on = relay
        else:
            target.callbacks.append(self._resume)
            self._waiting_on = target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point.

        No-op if the process has already finished.  The event the process
        was waiting on is abandoned (its eventual firing no longer resumes
        this process); delivery happens through the queue at the current
        virtual time.
        """
        if self.triggered:
            return
        target = self._waiting_on
        if target is not None and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
        self._waiting_on = None
        relay = Event(self.env)
        relay.callbacks.append(self._throw_in)
        relay.trigger(cause)

    def _throw_in(self, event: Event) -> None:
        try:
            target = self._generator.throw(Interrupt(event.value))
        except StopIteration as stop:
            self.trigger(stop.value)
            return
        except Interrupt as exc:
            # Not caught by the generator: the process ends, its value is
            # the interrupt itself (waiters can inspect .cause).
            self.trigger(exc)
            return
        self._wait_on(target)


class AllOf(Event):
    """Fires when every child event has fired; value is the list of values."""

    __slots__ = ("_remaining", "_events")

    def __init__(self, env: "Environment", events: List[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._remaining = len(self._events)
        if self._remaining == 0:
            self.trigger([])
            return
        for child in self._events:
            child.wait(self._child_done)

    def _child_done(self, event: Event) -> None:
        self._remaining -= 1
        if self._remaining == 0:
            self.trigger([e.value for e in self._events])


class Environment:
    """The virtual clock and event queue."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List = []
        self._counter = itertools.count()

    def _schedule(self, at: float, event: Event) -> None:
        heapq.heappush(self._heap, (at, next(self._counter), event))

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def event(self) -> Event:
        return Event(self)

    def process(self, generator: Generator) -> Process:
        return Process(self, generator)

    def all_of(self, events: List[Event]) -> AllOf:
        return AllOf(self, events)

    def step(self) -> None:
        at, _, event = heapq.heappop(self._heap)
        if at < self.now:
            raise SimulationError(f"time went backwards: {at} < {self.now}")
        self.now = at
        event._fire()

    def run(self, until: Optional[float] = None) -> None:
        """Process events until the queue drains (or virtual ``until``)."""
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                self.now = until
                return
            self.step()


class Resource:
    """A FIFO resource with integer capacity (CPU pool, GPU, NIC).

    ``acquire`` returns an event that fires when a slot is granted; pass the
    same event to ``release``.  ``busy_time`` integrates slot-seconds of use
    for utilization reporting.
    """

    def __init__(self, env: Environment, capacity: int, name: str = "resource") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiting: List[Event] = []
        self._grant_times = {}
        self.busy_time = 0.0

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def acquire(self, key: Any = None, front: bool = False) -> Event:
        """Request a slot.

        key: accepted (and ignored) so callers can treat FIFO and
            fair-queued resources uniformly.
        front: queue-jump to the head of the line -- used by transfers
            continuing a multi-chunk payload, so a payload in flight
            finishes before the next one starts (otherwise chunking would
            round-robin *all* waiting payloads and destroy delivery order).
        """
        event = Event(self.env)
        if self._in_use < self.capacity:
            self._grant(event)
        elif front:
            self._waiting.insert(0, event)
        else:
            self._waiting.append(event)
        return event

    def _grant(self, event: Event) -> None:
        self._in_use += 1
        self._grant_times[event] = self.env.now
        event.trigger()

    def holds(self, request: Event) -> bool:
        """True if ``request`` has been granted and not yet released."""
        return request in self._grant_times

    def cancel(self, request: Event) -> None:
        """Withdraw an acquire that has not been granted yet.

        Interrupted processes use this to leave the queue cleanly; granted
        requests must be ``release``d instead.
        """
        if request in self._grant_times:
            raise SimulationError("cannot cancel a granted request; release it")
        if request in self._waiting:
            self._waiting.remove(request)

    def release(self, request: Event) -> None:
        if request not in self._grant_times:
            raise SimulationError("released a request that was never granted")
        self.busy_time += self.env.now - self._grant_times.pop(request)
        self._in_use -= 1
        if self._waiting:
            self._grant(self._waiting.pop(0))

    def utilization(self, horizon: float) -> float:
        """Average busy fraction over ``horizon`` seconds of virtual time."""
        if horizon <= 0:
            return 0.0
        return self.busy_time / (self.capacity * horizon)


class FairResource(Resource):
    """A resource that grants waiting requests round-robin across flows.

    Plain :class:`Resource` queues strictly FIFO, so a flow that bursts a
    thousand requests starves later arrivals until its burst drains --
    unrealistic for a network link shared by TCP-like flows.
    ``acquire(key)`` files the request under its flow; when a slot frees,
    the next grant comes from the next non-empty flow in rotation.
    """

    def __init__(self, env: Environment, capacity: int = 1, name: str = "fair") -> None:
        super().__init__(env, capacity, name)
        self._flow_queues: "OrderedDict[Any, List[Event]]" = OrderedDict()

    def acquire(self, key: Any = None, front: bool = False) -> Event:
        event = Event(self.env)
        if self._in_use < self.capacity:
            self._grant(event)
        elif front:
            # Continue the current payload of this flow ahead of the flow's
            # other waiters; the flow rotation itself is unaffected, so
            # other flows still interleave between chunks.
            self._flow_queues.setdefault(key, []).insert(0, event)
        else:
            self._flow_queues.setdefault(key, []).append(event)
        return event

    def cancel(self, request: Event) -> None:
        if request in self._grant_times:
            raise SimulationError("cannot cancel a granted request; release it")
        for key, queue in list(self._flow_queues.items()):
            if request in queue:
                queue.remove(request)
                if not queue:
                    del self._flow_queues[key]
                return

    def release(self, request: Event) -> None:
        if request not in self._grant_times:
            raise SimulationError("released a request that was never granted")
        self.busy_time += self.env.now - self._grant_times.pop(request)
        self._in_use -= 1
        if self._flow_queues:
            # Serve the flow at the front of the rotation, then move it to
            # the back (dropping it if its queue drained).
            key, queue = next(iter(self._flow_queues.items()))
            event = queue.pop(0)
            del self._flow_queues[key]
            if queue:
                self._flow_queues[key] = queue
            self._grant(event)

    @property
    def queue_length(self) -> int:
        return sum(len(q) for q in self._flow_queues.values())


class Store:
    """An unbounded FIFO queue of items with blocking ``get``."""

    def __init__(self, env: Environment, name: str = "store") -> None:
        self.env = env
        self.name = name
        self._items: List[Any] = []
        self._getters: List[Event] = []

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.pop(0).trigger(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        event = Event(self.env)
        if self._items:
            event.trigger(self._items.pop(0))
        else:
            self._getters.append(event)
        return event

    def __len__(self) -> int:
        return len(self._items)


def hold(env: Environment, resource: Resource, duration: float) -> Iterator[Event]:
    """Convenience process fragment: acquire, hold for ``duration``, release."""
    request = resource.acquire()
    yield request
    yield env.timeout(duration)
    resource.release(request)
