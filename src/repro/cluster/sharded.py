"""Sharded storage clusters: many storage nodes behind one egress cap.

The paper's storage side is "remote storage clusters such as distributed
file systems or object stores" -- many nodes, each holding a shard of the
dataset and contributing CPU for near-storage preprocessing, all draining
through the inter-cluster link.  This module extends the trainer to that
shape: samples map to shards, each shard has its own CPU pool, and a
sample's offloaded prefix must run on *its* shard (the data is there).

The interesting failure mode is placement skew: if the offload-heavy
samples cluster on one shard, that node becomes the bottleneck while the
others idle -- aggregate cores stop being the right capacity measure.

:class:`ShardedTrainerSim` shares :class:`~repro.cluster.trainer.TrainerSim`'s
``run_epoch`` signature in full -- ``record_spans``, ``record_timeline``,
``adjustments`` and ``faults`` all work, and any caller written against the
base class can be handed the sharded sim unchanged.  Per-sample spans land
on the same ``trace_id(sample, epoch)`` ids as the single-node path, with a
``shard`` label naming the pool that ran the offloaded prefix.
"""

import dataclasses
from types import ModuleType
from typing import Dict, List, Optional, Sequence, cast

from repro.cluster import sim as _fast_kernel
from repro.cluster.sim import Environment
from repro.cluster.spec import ClusterSpec
from repro.cluster.trainer import (
    EpochStats,
    JobHandles,
    TrainerSim,
    WorkAdjustment,
)
from repro.data.dataset import Dataset
from repro.faults.schedule import FaultSchedule
from repro.preprocessing.pipeline import Pipeline
from repro.workloads.models import ModelProfile


def round_robin_placement(num_samples: int, num_shards: int) -> List[int]:
    """sample_id -> shard, spreading consecutive ids across shards."""
    return [i % num_shards for i in range(num_samples)]


def contiguous_placement(num_samples: int, num_shards: int) -> List[int]:
    """sample_id -> shard in contiguous ranges (how naive ingest lands)."""
    per_shard = max(1, (num_samples + num_shards - 1) // num_shards)
    return [min(i // per_shard, num_shards - 1) for i in range(num_samples)]


def size_balanced_placement(dataset: Dataset, num_shards: int) -> List[int]:
    """Greedy bin-packing by raw size: heaviest samples spread first."""
    order = sorted(
        dataset.sample_ids(), key=lambda i: dataset.raw_meta(i).nbytes, reverse=True
    )
    loads = [0] * num_shards
    placement = [0] * len(dataset)
    for sample_id in order:
        shard = loads.index(min(loads))
        placement[sample_id] = shard
        loads[shard] += dataset.raw_meta(sample_id).nbytes
    return placement


@dataclasses.dataclass
class ShardedStats(EpochStats):
    """Epoch stats plus per-shard CPU utilization.

    A true :class:`~repro.cluster.trainer.EpochStats` -- callers that treat
    trainers uniformly read ``epoch_time_s`` / ``traffic_bytes`` / ``spans``
    directly; ``shard_utilization[s]`` adds shard ``s``'s busy fraction.
    """

    shard_utilization: List[float] = dataclasses.field(default_factory=list)

    @property
    def stats(self) -> "ShardedStats":
        """Pre-unification alias: callers used to read ``result.stats.*``."""
        return self

    @property
    def hottest_shard(self) -> float:
        return max(self.shard_utilization) if self.shard_utilization else 0.0


class ShardedTrainerSim(TrainerSim):
    """TrainerSim over a sharded storage cluster.

    spec.storage_cores is interpreted *per shard*; aggregate storage CPU
    is ``num_shards * storage_cores``.  An offloaded sample's prefix runs
    on the shard holding it.

    num_shards: explicit shard count; defaults to ``max(placement) + 1``.
        Pass it when trailing shards may receive no samples (e.g. a
        contiguous placement of 4 samples over 8 shards), so the idle
        shards still show up in ``shard_utilization`` instead of
        silently vanishing and skewing ``hottest_shard``.
    """

    def __init__(
        self,
        dataset: Dataset,
        pipeline: Pipeline,
        model: ModelProfile,
        spec: ClusterSpec,
        placement: Sequence[int],
        batch_size: Optional[int] = None,
        num_shards: Optional[int] = None,
        seed: int = 0,
        job_label: Optional[str] = None,
    ) -> None:
        super().__init__(
            dataset, pipeline, model, spec,
            batch_size=batch_size, seed=seed, job_label=job_label,
        )
        if len(placement) != len(dataset):
            raise ValueError(
                f"placement covers {len(placement)} samples, dataset has {len(dataset)}"
            )
        if placement and min(placement) < 0:
            raise ValueError("shard ids must be >= 0")
        self.placement = list(placement)
        inferred = (max(self.placement) + 1) if self.placement else 1
        if num_shards is None:
            num_shards = inferred
        elif num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        elif inferred > num_shards:
            raise ValueError(
                f"placement references shard {inferred - 1} but num_shards is "
                f"{num_shards}"
            )
        self.num_shards = num_shards

    def shard_of(self, sample_id: int) -> int:
        """The shard holding ``sample_id`` (also the span ``shard`` label)."""
        return self.placement[sample_id]

    def _build_handles(
        self, env: Environment, kernel: ModuleType = _fast_kernel
    ) -> JobHandles:
        spec = self.spec
        # No storage cores means no shard pools at all: a split > 0 plan is
        # rejected by the work builder exactly as on the single-node sim,
        # instead of silently granting each shard a phantom core.
        pools = (
            [
                kernel.Resource(env, spec.storage_cores, f"shard-{s}-cpu")
                for s in range(self.num_shards)
            ]
            if spec.can_offload
            else None
        )
        return JobHandles(
            compute_cpu=kernel.Resource(env, spec.compute_cores, "compute-cpu"),
            storage_cpu=None,
            link=kernel.Resource(env, 1, "link"),
            gpu=kernel.Resource(env, 1, "gpu"),
            prefetch=kernel.Resource(env, spec.prefetch_batches, "prefetch-window"),
            storage_pools=pools,
            shard_of=self.shard_of,
            job_label=self.job_label,
        )

    def _wrap_stats(
        self, stats: EpochStats, handles: JobHandles, horizon: float
    ) -> "ShardedStats":
        pools = handles.storage_pools
        utilization = (
            [pool.utilization(horizon) for pool in pools]
            if pools is not None
            else [0.0] * self.num_shards
        )
        fields = {
            f.name: getattr(stats, f.name) for f in dataclasses.fields(EpochStats)
        }
        return ShardedStats(shard_utilization=utilization, **fields)

    def run_epoch(
        self,
        splits: Optional[Sequence[int]] = None,
        epoch: int = 0,
        adjustments: Optional[Dict[int, WorkAdjustment]] = None,
        record_timeline: bool = False,
        faults: Optional[FaultSchedule] = None,
        record_spans: bool = False,
        kernel: str = "auto",
    ) -> "ShardedStats":
        """One epoch on the sharded cluster; see :meth:`TrainerSim.run_epoch`.

        The full base-class surface is honoured: telemetry spans (with
        per-shard labels), batch timelines, work adjustments, fault
        schedules and kernel selection, all byte-identical to an
        uninstrumented run.
        """
        return cast(
            ShardedStats,
            super().run_epoch(
                splits=splits,
                epoch=epoch,
                adjustments=adjustments,
                record_timeline=record_timeline,
                faults=faults,
                record_spans=record_spans,
                kernel=kernel,
            ),
        )
