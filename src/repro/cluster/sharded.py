"""Sharded storage clusters: many storage nodes behind one egress cap.

The paper's storage side is "remote storage clusters such as distributed
file systems or object stores" -- many nodes, each holding a shard of the
dataset and contributing CPU for near-storage preprocessing, all draining
through the inter-cluster link.  This module extends the trainer to that
shape: samples map to shards, each shard has its own CPU pool, and a
sample's offloaded prefix must run on *its* shard (the data is there).

The interesting failure mode is placement skew: if the offload-heavy
samples cluster on one shard, that node becomes the bottleneck while the
others idle -- aggregate cores stop being the right capacity measure.
"""

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.cluster.epoch_model import EpochMetrics
from repro.cluster.sim import Environment, Resource
from repro.cluster.spec import ClusterSpec
from repro.cluster.trainer import EpochStats, SampleWork, TrainerSim, WorkAdjustment
from repro.data.dataset import Dataset
from repro.data.sampler import BatchSampler
from repro.preprocessing.pipeline import Pipeline
from repro.workloads.models import ModelProfile


def round_robin_placement(num_samples: int, num_shards: int) -> List[int]:
    """sample_id -> shard, spreading consecutive ids across shards."""
    return [i % num_shards for i in range(num_samples)]


def contiguous_placement(num_samples: int, num_shards: int) -> List[int]:
    """sample_id -> shard in contiguous ranges (how naive ingest lands)."""
    per_shard = max(1, (num_samples + num_shards - 1) // num_shards)
    return [min(i // per_shard, num_shards - 1) for i in range(num_samples)]


def size_balanced_placement(dataset: Dataset, num_shards: int) -> List[int]:
    """Greedy bin-packing by raw size: heaviest samples spread first."""
    order = sorted(
        dataset.sample_ids(), key=lambda i: dataset.raw_meta(i).nbytes, reverse=True
    )
    loads = [0] * num_shards
    placement = [0] * len(dataset)
    for sample_id in order:
        shard = loads.index(min(loads))
        placement[sample_id] = shard
        loads[shard] += dataset.raw_meta(sample_id).nbytes
    return placement


@dataclasses.dataclass
class ShardedStats:
    """Epoch stats plus per-shard CPU utilization."""

    stats: EpochStats
    shard_utilization: List[float]

    @property
    def epoch_time_s(self) -> float:
        return self.stats.epoch_time_s

    @property
    def hottest_shard(self) -> float:
        return max(self.shard_utilization) if self.shard_utilization else 0.0


class ShardedTrainerSim(TrainerSim):
    """TrainerSim over a sharded storage cluster.

    spec.storage_cores is interpreted *per shard*; aggregate storage CPU
    is ``num_shards * storage_cores``.  An offloaded sample's prefix runs
    on the shard holding it.
    """

    def __init__(
        self,
        dataset: Dataset,
        pipeline: Pipeline,
        model: ModelProfile,
        spec: ClusterSpec,
        placement: Sequence[int],
        batch_size: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        super().__init__(dataset, pipeline, model, spec, batch_size=batch_size, seed=seed)
        if len(placement) != len(dataset):
            raise ValueError(
                f"placement covers {len(placement)} samples, dataset has {len(dataset)}"
            )
        if placement and min(placement) < 0:
            raise ValueError("shard ids must be >= 0")
        self.placement = list(placement)
        self.num_shards = (max(placement) + 1) if placement else 1

    def run_epoch(
        self,
        splits: Optional[Sequence[int]] = None,
        epoch: int = 0,
        adjustments: Optional[Dict[int, WorkAdjustment]] = None,
    ) -> ShardedStats:
        if splits is not None and len(splits) != len(self.dataset):
            raise ValueError(
                f"splits has {len(splits)} entries, dataset has {len(self.dataset)}"
            )
        work = self._epoch_work(splits, epoch, adjustments)
        batches = list(
            BatchSampler(self.sampler, self.batch_size).epoch_batches(epoch)
        )

        env = Environment()
        spec = self.spec
        compute_cpu = Resource(env, spec.compute_cores, "compute-cpu")
        shard_cpus = [
            Resource(env, max(spec.storage_cores, 1), f"shard-{s}-cpu")
            for s in range(self.num_shards)
        ]
        link = Resource(env, 1, "link")
        gpu = Resource(env, 1, "gpu")
        prefetch = Resource(env, spec.prefetch_batches, "prefetch-window")

        traffic = {"bytes": 0}
        bandwidth = spec.bandwidth_bytes_per_s
        batch_ready = [env.event() for _ in batches]

        def sample_proc(item: SampleWork):
            yield env.timeout(spec.network_rtt_s / 2.0)
            if item.split > 0:
                pool = shard_cpus[self.placement[item.sample_id]]
                grant = pool.acquire()
                yield grant
                yield env.timeout(item.prefix_cpu_s * spec.storage_cpu_factor)
                pool.release(grant)
            payload = item.wire_bytes + spec.response_overhead_bytes
            remaining = payload
            first = True
            while remaining > 0:
                chunk = min(remaining, spec.link_chunk_bytes)
                grant = link.acquire(front=not first)
                yield grant
                yield env.timeout(chunk / bandwidth)
                link.release(grant)
                remaining -= chunk
                first = False
            traffic["bytes"] += payload
            yield env.timeout(spec.network_rtt_s / 2.0)
            if item.suffix_cpu_s > 0:
                grant = compute_cpu.acquire()
                yield grant
                yield env.timeout(item.suffix_cpu_s * spec.compute_cpu_factor)
                compute_cpu.release(grant)

        def batch_proc(index, ids):
            token = prefetch.acquire()
            yield token
            children = [env.process(sample_proc(work[i])) for i in ids]
            yield env.all_of(children)
            batch_ready[index].trigger(token)

        def gpu_proc():
            for index, ids in enumerate(batches):
                yield batch_ready[index]
                token = batch_ready[index].value
                grant = gpu.acquire()
                yield grant
                yield env.timeout(self.model.batch_time_s(len(ids)))
                gpu.release(grant)
                prefetch.release(token)

        for index, ids in enumerate(batches):
            env.process(batch_proc(index, ids))
        env.process(gpu_proc())
        env.run()

        horizon = env.now
        analytic = EpochMetrics(
            gpu_time_s=sum(self.model.batch_time_s(len(ids)) for ids in batches),
            compute_cpu_s=sum(w.suffix_cpu_s for w in work.values()),
            storage_cpu_s=sum(w.prefix_cpu_s for w in work.values() if w.split > 0),
            traffic_bytes=sum(
                w.wire_bytes + spec.response_overhead_bytes for w in work.values()
            ),
        )
        stats = EpochStats(
            epoch_time_s=horizon,
            traffic_bytes=traffic["bytes"],
            num_samples=len(work),
            num_batches=len(batches),
            offloaded_samples=sum(1 for w in work.values() if w.split > 0),
            gpu_utilization=gpu.utilization(horizon),
            compute_cpu_utilization=compute_cpu.utilization(horizon),
            storage_cpu_utilization=(
                sum(p.busy_time for p in shard_cpus)
                / (sum(p.capacity for p in shard_cpus) * horizon)
                if horizon > 0
                else 0.0
            ),
            link_utilization=link.utilization(horizon),
            analytic=analytic,
        )
        return ShardedStats(
            stats=stats,
            shard_utilization=[p.utilization(horizon) for p in shard_cpus],
        )
