"""Perf-regression harness for the epoch simulator (DES kernel + engine).

Times ``TrainerSim.run_epoch`` under the frozen seed kernel
(``kernel="reference"``: :mod:`repro.cluster.refsim` plus the sequential
work builder) against the overhauled path (``kernel="fast"``: the slotted
:mod:`repro.cluster.sim` kernel, the vectorized work builder, and the
batched cursor engine) at several dataset scales, and writes the results
to ``BENCH_sim.json`` with a schema that stays stable across PRs.

Every scale also runs an identity gate: the fast path's
:class:`~repro.cluster.trainer.EpochStats` must serialize *byte-for-byte
equal* to the reference path's, and a faulted run on the optimized kernel
must match the seed kernel exactly (fault injection never takes the
engine, so this pins the generator path too).  Auxiliary gates cover
spans, timelines, the sharded trainer, the shared-link multi-job sim and
the end-to-end profile->plan->simulate flow.  A speed number from a path
that diverges is meaningless, so ``identical: false`` fails the run.

``--million`` adds the headline entry: a full 10^6-sample
profile->plan->simulate pass on the fast path (the reference kernel is
never timed there -- extrapolate from the measured scales).

Run it via ``make bench`` or directly::

    PYTHONPATH=src python -m repro.cluster.bench --out BENCH_sim.json --million

Wall-clock use is injectable (``timer=time.perf_counter``) and confined
to the measurement loop; everything measured is itself deterministic.
"""

import argparse
import dataclasses
import json
import time
import tracemalloc
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.cluster.multijob import SharedJob, SharedLinkSim
from repro.cluster.sharded import ShardedTrainerSim, round_robin_placement
from repro.cluster.spec import ClusterSpec, standard_cluster
from repro.cluster.trainer import TrainerSim
from repro.core.decision import DecisionConfig, DecisionEngine
from repro.core.policy import PolicyContext
from repro.data.catalog import make_openimages
from repro.faults import FaultSchedule
from repro.parallel import build_records
from repro.preprocessing.pipeline import standard_pipeline
from repro.workloads.models import get_model_profile

Clock = Callable[[], float]

#: Schema tag for ``BENCH_sim.json``.  Bump only when the layout changes
#: incompatibly; tools reading the file key off this string.
SCHEMA = "sophon-bench-sim/v1"

#: Default dataset sizes.  The largest carries the headline speedup
#: claim; the smaller ones show how the gap scales.
DEFAULT_SCALES = (400, 4000, 32000)

#: The two kernel paths every scale is timed under, in report order.
KERNELS = ("reference", "fast")


def stats_fingerprint(stats: Any) -> str:
    """Every float of an EpochStats, serialized exactly.

    ``spans`` is excluded -- Tracer objects carry no deterministic repr
    (memory addresses leak in) -- and compared via :func:`span_fingerprint`
    instead.
    """
    payload = dataclasses.asdict(stats)
    payload.pop("spans", None)
    return json.dumps(payload, sort_keys=True, default=repr)


def span_fingerprint(stats: Any) -> List[str]:
    """Every span event of an instrumented run, in emission order."""
    if stats.spans is None:
        return []
    return [repr(event) for event in stats.spans.events]


def _best_of(fn: Callable[[], object], repeats: int, timer: Clock) -> float:
    """Minimum wall time of ``repeats`` calls -- the least-noisy estimator."""
    best = float("inf")
    for _ in range(repeats):
        started = timer()
        fn()
        elapsed = timer() - started
        if elapsed < best:
            best = elapsed
    return best


def _make_trainer(
    num_samples: int, seed: int, spec: Optional[ClusterSpec] = None
) -> Tuple[TrainerSim, List[int]]:
    """A trainer over the calibrated OpenImages trace plus a mixed plan."""
    dataset = make_openimages(num_samples=num_samples, seed=seed)
    trainer = TrainerSim(
        dataset=dataset,
        pipeline=standard_pipeline(),
        model=get_model_profile("alexnet"),
        spec=spec if spec is not None else standard_cluster(storage_cores=48),
        seed=seed,
    )
    # Every split depth is exercised, so the engine's prefix/suffix,
    # chunking and offload branches all see traffic.
    splits = [i % 6 for i in range(num_samples)]
    return trainer, splits


def bench_scale(
    num_samples: int,
    seed: int = 7,
    repeats: int = 3,
    timer: Clock = time.perf_counter,
) -> Dict[str, object]:
    """Benchmark one dataset scale; returns its JSON-ready result dict."""
    if num_samples < 1:
        raise ValueError(f"num_samples must be >= 1, got {num_samples}")
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    trainer, splits = _make_trainer(num_samples, seed)

    ref = trainer.run_epoch(splits, epoch=1, kernel="reference")
    fast = trainer.run_epoch(splits, epoch=1, kernel="fast")
    identical = stats_fingerprint(ref) == stats_fingerprint(fast)

    # Fault injection bypasses the cursor engine, so this additionally
    # pins the generator-process path on the optimized kernel.
    faults = (
        FaultSchedule()
        .with_crash(0.3 * ref.epoch_time_s, duration=0.15 * ref.epoch_time_s)
        .with_brownout(
            0.6 * ref.epoch_time_s,
            duration=0.1 * ref.epoch_time_s,
            bandwidth_factor=0.4,
        )
        .with_corruption(0.02)
    )
    ref_faulted = trainer.run_epoch(splits, epoch=1, faults=faults, kernel="reference")
    auto_faulted = trainer.run_epoch(splits, epoch=1, faults=faults, kernel="auto")
    identical_faulted = stats_fingerprint(ref_faulted) == stats_fingerprint(
        auto_faulted
    )

    seconds = {
        kernel: _best_of(
            lambda k=kernel: trainer.run_epoch(splits, epoch=1, kernel=k),
            repeats,
            timer,
        )
        for kernel in KERNELS
    }
    fast_s = seconds["fast"]
    return {
        "num_samples": num_samples,
        "seed": seed,
        "repeats": repeats,
        "identical": identical and identical_faulted,
        "identical_fault_free": identical,
        "identical_faulted": identical_faulted,
        "epoch_simulation": {
            "seconds": dict(seconds),
            "speedup_vs_reference": (
                seconds["reference"] / fast_s if fast_s > 0 else None
            ),
            "fast_us_per_sample": fast_s / num_samples * 1e6,
        },
        "epoch_time_s": ref.epoch_time_s,
        "traffic_bytes": ref.traffic_bytes,
    }


def aux_gates(num_samples: int = 240, seed: int = 7) -> Dict[str, bool]:
    """Identity gates for every mode the per-scale loop does not time.

    spans/timeline pin the instrumented generator path on the optimized
    kernel; sharded and multijob pin the engine under per-shard pools and
    fair-queued shared links.
    """
    trainer, splits = _make_trainer(num_samples, seed)

    ref = trainer.run_epoch(splits, epoch=1, record_spans=True, kernel="reference")
    auto = trainer.run_epoch(splits, epoch=1, record_spans=True, kernel="auto")
    spans_ok = stats_fingerprint(ref) == stats_fingerprint(
        auto
    ) and span_fingerprint(ref) == span_fingerprint(auto)

    ref_tl = trainer.run_epoch(splits, epoch=1, record_timeline=True, kernel="reference")
    auto_tl = trainer.run_epoch(splits, epoch=1, record_timeline=True, kernel="auto")
    timeline_ok = stats_fingerprint(ref_tl) == stats_fingerprint(auto_tl)

    sharded = ShardedTrainerSim(
        trainer.dataset,
        trainer.pipeline,
        trainer.model,
        trainer.spec,
        placement=round_robin_placement(num_samples, 4),
        seed=seed,
    )
    sharded_ok = stats_fingerprint(
        sharded.run_epoch(splits, epoch=0, kernel="reference")
    ) == stats_fingerprint(sharded.run_epoch(splits, epoch=0, kernel="fast"))

    jobs = [
        SharedJob(
            name=f"tenant-{i}",
            dataset=make_openimages(num_samples=num_samples // 2, seed=seed + i),
            pipeline=trainer.pipeline,
            model=trainer.model,
            splits=[j % 6 for j in range(num_samples // 2)],
            batch_size=16,
            seed=seed + i,
        )
        for i in range(2)
    ]
    multi = SharedLinkSim(trainer.spec)
    multi_ref = multi.run_epoch(jobs, epoch=0, kernel="reference")
    multi_fast = multi.run_epoch(jobs, epoch=0, kernel="fast")
    multijob_ok = stats_fingerprint(multi_ref) == stats_fingerprint(multi_fast)

    return {
        "spans_identical": spans_ok,
        "timeline_identical": timeline_ok,
        "sharded_identical": sharded_ok,
        "multijob_identical": multijob_ok,
    }


def allocation_stats(num_samples: int = 400, seed: int = 7) -> Dict[str, object]:
    """tracemalloc footprint of one epoch simulation under each kernel.

    ``peak_bytes`` is the high-water mark of traced allocations across
    the run; ``live_blocks`` counts blocks still held when the epoch
    returns (stats payload plus anything the kernel failed to recycle).
    """
    trainer, splits = _make_trainer(num_samples, seed)
    out: Dict[str, object] = {"num_samples": num_samples}
    for kernel in KERNELS:
        trainer.run_epoch(splits, epoch=1, kernel=kernel)  # warm caches
        tracemalloc.start()
        stats = trainer.run_epoch(splits, epoch=1, kernel=kernel)
        snapshot = tracemalloc.take_snapshot()
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        out[kernel] = {
            "peak_bytes": peak,
            "live_blocks": len(snapshot.traces),
        }
        del stats, snapshot
    ref_peak = out["reference"]["peak_bytes"]  # type: ignore[index]
    fast_peak = out["fast"]["peak_bytes"]  # type: ignore[index]
    out["peak_ratio_fast_vs_reference"] = (
        fast_peak / ref_peak if ref_peak > 0 else None
    )
    return out


def bench_profiler_e2e(
    seed: int = 7,
    repeats: int = 3,
    timer: Clock = time.perf_counter,
) -> Dict[str, object]:
    """End-to-end profile -> plan -> simulate over real pixels.

    Exercises the sharded real-execution :class:`StageTwoProfiler` path
    on a materialized dataset, plans from the profiled records, and gates
    the fast epoch simulation of that plan against the reference kernel.
    """
    from repro.core.profiler import StageTwoProfiler
    from repro.data.synthetic import ImageContentConfig, SyntheticImageDataset

    dataset = SyntheticImageDataset(
        num_samples=32,
        seed=seed,
        content=ImageContentConfig(min_side=64, max_side=160),
        name="bench-e2e",
    )
    pipeline = standard_pipeline()
    profiler = StageTwoProfiler(use_real_execution=True)

    sequential = profiler.profile(dataset, pipeline, seed=seed)
    sharded = profiler.profile(dataset, pipeline, seed=seed, parallel="sharded:2")
    records_identical = [dataclasses.asdict(r) for r in sharded] == [
        dataclasses.asdict(r) for r in sequential
    ]
    profile_s = {
        "sequential": _best_of(
            lambda: profiler.profile(dataset, pipeline, seed=seed), repeats, timer
        ),
        "sharded:2": _best_of(
            lambda: profiler.profile(dataset, pipeline, seed=seed, parallel="sharded:2"),
            repeats,
            timer,
        ),
    }

    spec = standard_cluster(storage_cores=48)
    model = get_model_profile("alexnet")
    context = PolicyContext(
        dataset=dataset, pipeline=pipeline, spec=spec, model=model, seed=seed
    )
    plan = DecisionEngine(DecisionConfig()).plan(
        sequential, spec, context.epoch_gpu_time_s
    )
    trainer = TrainerSim(
        dataset=dataset, pipeline=pipeline, model=model, spec=spec, seed=seed
    )
    ref = trainer.run_epoch(plan.splits, epoch=1, kernel="reference")
    fast = trainer.run_epoch(plan.splits, epoch=1, kernel="fast")
    return {
        "num_samples": len(dataset),
        "identical": records_identical
        and stats_fingerprint(ref) == stats_fingerprint(fast),
        "profile_seconds": profile_s,
        "num_offloaded": plan.num_offloaded,
        "epoch_time_s": ref.epoch_time_s,
    }


def bench_million(
    num_samples: int = 1_000_000,
    seed: int = 7,
    timer: Clock = time.perf_counter,
) -> Dict[str, object]:
    """The headline run: profile, plan and simulate 10^6 samples, fast path.

    Single-shot (no best-of) -- at this scale one pass is minutes of work
    and run-to-run noise is a rounding error on the phase totals.  The
    reference kernel is deliberately never run here; its cost is
    extrapolated from the measured scales.
    """
    dataset = make_openimages(num_samples=num_samples, seed=seed)
    pipeline = standard_pipeline()
    spec = standard_cluster(storage_cores=48)
    model = get_model_profile("alexnet")

    started = timer()
    records = build_records_vectorized_entry(pipeline, dataset, seed)
    records_s = timer() - started

    context = PolicyContext(
        dataset=dataset, pipeline=pipeline, spec=spec, model=model, seed=seed
    )
    engine = DecisionEngine(DecisionConfig())
    started = timer()
    plan = engine.plan(records, spec, context.epoch_gpu_time_s)
    plan_s = timer() - started

    trainer = TrainerSim(
        dataset=dataset, pipeline=pipeline, model=model, spec=spec, seed=seed
    )
    started = timer()
    stats = trainer.run_epoch(plan.splits, epoch=1, kernel="fast")
    simulate_s = timer() - started

    return {
        "num_samples": num_samples,
        "completed": True,
        "seconds": {
            "profile_records": records_s,
            "plan": plan_s,
            "simulate_epoch": simulate_s,
            "total": records_s + plan_s + simulate_s,
        },
        "simulate_us_per_sample": simulate_s / num_samples * 1e6,
        "num_offloaded": plan.num_offloaded,
        "epoch_time_s": stats.epoch_time_s,
        "traffic_bytes": stats.traffic_bytes,
    }


def build_records_vectorized_entry(
    pipeline: Any, dataset: Any, seed: int
) -> List[Any]:
    """The vectorized stage-two profiling pass (one seam for tests)."""
    return build_records(pipeline, dataset, seed=seed, parallel="vectorized")


def run_bench(
    scales: Sequence[int] = DEFAULT_SCALES,
    seed: int = 7,
    repeats: int = 3,
    million: Optional[int] = None,
    timer: Clock = time.perf_counter,
) -> Dict[str, object]:
    """Benchmark every scale; returns the full ``BENCH_sim.json`` dict."""
    if not scales:
        raise ValueError("need at least one scale to benchmark")
    ordered = sorted(scales)
    results = [
        bench_scale(n, seed=seed, repeats=repeats, timer=timer) for n in ordered
    ]
    gates = aux_gates(num_samples=min(ordered[0], 240), seed=seed)
    allocation = allocation_stats(num_samples=ordered[0], seed=seed)
    e2e = bench_profiler_e2e(seed=seed, repeats=repeats, timer=timer)

    largest = results[-1]
    report: Dict[str, object] = {
        "schema": SCHEMA,
        "kernels": list(KERNELS),
        "scales": results,
        "gates": gates,
        "allocation": allocation,
        "profiler_e2e": e2e,
        "identical": (
            all(r["identical"] for r in results)
            and all(gates.values())
            and bool(e2e["identical"])
        ),
        "largest_scale": largest["num_samples"],
        "largest_scale_speedup": largest["epoch_simulation"][  # type: ignore[index]
            "speedup_vs_reference"
        ],
    }
    if million is not None:
        report["million"] = bench_million(num_samples=million, seed=seed, timer=timer)
    return report


def render_summary(report: Dict[str, object]) -> str:
    """A terse human-readable digest of one report."""
    lines = [f"epoch-simulation speedups vs reference kernel ({report['schema']}):"]
    for entry in report["scales"]:
        sim = entry["epoch_simulation"]
        flag = "" if entry["identical"] else "  [NOT IDENTICAL]"
        lines.append(
            f"  n={entry['num_samples']}: {sim['speedup_vs_reference']:.1f}x "
            f"({sim['fast_us_per_sample']:.0f} us/sample fast){flag}"
        )
    gates = report["gates"]
    failed = [name for name, ok in gates.items() if not ok]
    lines.append(
        "aux gates: all identical" if not failed else f"aux gates FAILED: {failed}"
    )
    alloc = report["allocation"]
    lines.append(
        f"peak allocation at n={alloc['num_samples']}: "
        f"fast/reference = {alloc['peak_ratio_fast_vs_reference']:.2f}"
    )
    million = report.get("million")
    if million is not None:
        seconds = million["seconds"]
        lines.append(
            f"million-sample epoch: simulated {million['num_samples']} samples in "
            f"{seconds['simulate_epoch']:.1f}s "
            f"({million['simulate_us_per_sample']:.1f} us/sample; "
            f"profile+plan+simulate {seconds['total']:.1f}s)"
        )
    lines.append(
        f"largest scale ({report['largest_scale']} samples): "
        f"{report['largest_scale_speedup']:.1f}x epoch-simulation speedup"
    )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Time epoch simulation under both kernels; write BENCH_sim.json."
    )
    parser.add_argument(
        "--scales", type=int, nargs="+", default=list(DEFAULT_SCALES),
        help=f"dataset sizes to benchmark (default {list(DEFAULT_SCALES)})",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timed runs per measurement; best-of is reported (default 3)",
    )
    parser.add_argument(
        "--million", action="store_true",
        help="also run the full 10^6-sample profile->plan->simulate pass",
    )
    parser.add_argument(
        "--million-samples", type=int, default=1_000_000,
        help="sample count for the --million entry (default 1000000)",
    )
    parser.add_argument(
        "--out", default="BENCH_sim.json",
        help="where to write the JSON report (default BENCH_sim.json)",
    )
    args = parser.parse_args(argv)

    report = run_bench(
        scales=args.scales,
        seed=args.seed,
        repeats=args.repeats,
        million=args.million_samples if args.million else None,
    )
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(render_summary(report))
    print(f"report written to {args.out}")
    if not report["identical"]:
        print("FAIL: the fast path diverged from the reference kernel")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
