"""Event-driven simulation of one training epoch on the two-node cluster.

Per sample: the compute node issues a fetch; the storage node runs the
sample's offloaded pipeline prefix on its CPU pool; the (partially
preprocessed) payload crosses the bandwidth-capped link; the compute node
runs the remaining ops on its own CPU pool; completed batches feed the GPU
in order, with the input pipeline allowed to work ``prefetch_batches`` ahead
(PyTorch DataLoader-style flow control).

Everything the paper measures falls out: epoch time (makespan), data
traffic (bytes that crossed the link), and GPU utilization.

``run_epoch(faults=...)`` additionally injects a deterministic
:class:`~repro.faults.FaultSchedule`: storage-node crash windows interrupt
offloaded prefixes in flight (the sample demotes to a split-0 raw fetch and
finishes locally -- the No-Off fallback, so no sample is ever lost), link
brownouts stretch transfers and RTTs, CPU drift slows the storage cores,
and corrupted payloads are re-transmitted (the extra bytes count as
traffic, exactly as a checksum-triggered re-fetch would on the wire).  An
empty schedule leaves the simulation byte-identical to the fault-free
path.
"""

import dataclasses
import itertools
from types import ModuleType
from typing import Callable, Dict, List, Optional, Sequence, cast

from repro.cluster import refsim as _reference_kernel
from repro.cluster import sim as _fast_kernel
from repro.cluster.engine import launch_training_job_fast
from repro.cluster.epoch_model import EpochMetrics
from repro.cluster.sim import Environment, Interrupt, Resource
from repro.cluster.spec import ClusterSpec
from repro.data.dataset import Dataset
from repro.data.sampler import BatchSampler, Sampler, SequentialSampler
from repro.faults.schedule import FaultReport, FaultSchedule
from repro.metrics.timeline import Timeline
from repro.preprocessing.pipeline import Pipeline
from repro.telemetry.spans import Tracer, trace_id
from repro.workloads.models import ModelProfile

#: Retransmission cap per payload; only reachable when corruption_rate is
#: so close to 1 that the wire is unusable anyway.
_MAX_PAYLOAD_SENDS = 25

#: run_epoch(kernel=...) choices.  "auto" takes the batched fast path
#: wherever it applies and falls back to generator processes on the
#: optimized kernel otherwise; "fast" demands the batched engine (raising
#: when the run needs switches it does not carry); "reference" replays the
#: frozen seed kernel (repro.cluster.refsim) with the sequential work
#: builder -- the byte-identity baseline the bench gates against.
KERNEL_CHOICES = ("auto", "fast", "reference")


def _kernel_module(kernel: str) -> ModuleType:
    if kernel not in KERNEL_CHOICES:
        raise ValueError(f"kernel must be one of {KERNEL_CHOICES}, got {kernel!r}")
    return _reference_kernel if kernel == "reference" else _fast_kernel


@dataclasses.dataclass(frozen=True)
class SampleWork:
    """Precomputed per-sample work for one epoch."""

    sample_id: int
    split: int
    wire_bytes: int
    prefix_cpu_s: float
    suffix_cpu_s: float


@dataclasses.dataclass(frozen=True)
class WorkAdjustment:
    """Extension hook: per-sample deltas applied on top of the plan.

    Used by the selective-compression extension (paper section 6): shrink
    the wire payload and charge the compress/decompress CPU time to the
    respective nodes.
    """

    wire_bytes_delta: int = 0
    extra_storage_cpu_s: float = 0.0
    extra_compute_cpu_s: float = 0.0

    def apply(self, work: SampleWork) -> SampleWork:
        wire = work.wire_bytes + self.wire_bytes_delta
        if wire < 0:
            raise ValueError(
                f"adjustment drives sample {work.sample_id} wire size negative"
            )
        return dataclasses.replace(
            work,
            wire_bytes=wire,
            prefix_cpu_s=work.prefix_cpu_s + self.extra_storage_cpu_s,
            suffix_cpu_s=work.suffix_cpu_s + self.extra_compute_cpu_s,
        )


@dataclasses.dataclass
class EpochStats:
    """What one simulated epoch measured."""

    epoch_time_s: float
    traffic_bytes: int
    num_samples: int
    num_batches: int
    offloaded_samples: int
    gpu_utilization: float
    compute_cpu_utilization: float
    storage_cpu_utilization: float
    link_utilization: float
    analytic: EpochMetrics
    #: Per-batch timeline, populated when run_epoch(record_timeline=True).
    timeline: Optional[Timeline] = None
    #: Fault accounting, populated when run_epoch(faults=...) injected any.
    faults: Optional[FaultReport] = None
    #: Per-sample span tracer (virtual timestamps), populated when
    #: run_epoch(record_spans=True).
    spans: Optional[Tracer] = None

    def __str__(self) -> str:
        return (
            f"EpochStats(time={self.epoch_time_s:.2f}s, "
            f"traffic={self.traffic_bytes / 1e6:.1f}MB, "
            f"gpu={self.gpu_utilization:.0%}, offloaded={self.offloaded_samples})"
        )


@dataclasses.dataclass
class JobHandles:
    """The simulation resources one training job runs against.

    In single-job runs every resource is private; in multi-job runs the
    link (and possibly the storage CPU pool) is shared across jobs -- see
    :mod:`repro.cluster.multijob`.  On sharded storage clusters the single
    ``storage_cpu`` pool is replaced by ``storage_pools`` plus a
    ``shard_of`` placement map: an offloaded prefix runs on the pool of
    the shard holding its sample -- see :mod:`repro.cluster.sharded`.
    """

    compute_cpu: Resource
    storage_cpu: Optional[Resource]
    link: Resource
    gpu: Resource
    prefetch: Resource
    #: Flow identifier for fair-queued shared links (None on private links).
    flow_key: object = None
    #: Per-shard storage CPU pools (sharded clusters); when set, offloaded
    #: prefixes route through ``shard_of`` instead of ``storage_cpu``.
    storage_pools: Optional[Sequence[Resource]] = None
    #: sample id -> shard index; required alongside ``storage_pools`` and
    #: also used to stamp a ``shard`` label onto per-sample spans.
    shard_of: Optional[Callable[[int], int]] = None
    #: Tenant name stamped as a ``job`` label onto every span this job
    #: emits (multi-job runs share one tracer across tenants).
    job_label: Optional[str] = None

    def storage_pool(self, sample_id: int) -> Optional[Resource]:
        """The storage CPU pool an offloaded prefix of ``sample_id`` uses."""
        if self.storage_pools is not None:
            if self.shard_of is None:
                raise ValueError("storage_pools requires a shard_of placement map")
            return self.storage_pools[self.shard_of(sample_id)]
        return self.storage_cpu

    def span_attrs(self, sample_id: Optional[int] = None) -> Dict[str, object]:
        """Shard/tenant labels for spans about ``sample_id`` (or job-wide)."""
        attrs: Dict[str, object] = {}
        if self.job_label is not None:
            attrs["job"] = self.job_label
        if sample_id is not None and self.shard_of is not None:
            attrs["shard"] = self.shard_of(sample_id)
        return attrs


def launch_training_processes(
    env: Environment,
    spec: ClusterSpec,
    work: Dict[int, SampleWork],
    batches: List[List[int]],
    model: ModelProfile,
    handles: JobHandles,
    timeline: Optional["Timeline"] = None,
    faults: Optional[FaultSchedule] = None,
    fault_report: Optional[FaultReport] = None,
    fallback_work: Optional[Callable[[int], SampleWork]] = None,
    tracer: Optional[Tracer] = None,
    epoch: int = 0,
) -> Dict[str, int]:
    """Register one training job's processes on ``env``.

    Returns the job's live traffic counter (key ``"bytes"``); the job is
    finished when the environment drains (or when the returned
    ``handles.gpu`` has processed ``len(batches)`` batches -- multi-job
    callers watch the counter dict's ``"done"`` flag).

    faults: optional fault schedule on virtual time.  When present (and
        non-empty), ``fallback_work`` must map a sample id to its split-0
        work so failed offloads can demote; observations accumulate into
        ``fault_report``.  An empty/None schedule takes the exact
        fault-free code path.
    tracer: optional per-sample span collector; ``epoch`` names the traces
        (trace id = sample id + epoch).  Emission never touches the event
        queue, so a run with a tracer simulates identically to one without.
    """
    traffic = {"bytes": 0, "done": 0}
    bandwidth = spec.bandwidth_bytes_per_s
    batch_ready = [env.event() for _ in batches]
    if faults is not None and faults.is_empty:
        faults = None
    if faults is not None and fallback_work is None:
        raise ValueError("fault injection needs fallback_work for demotions")
    report = fault_report if fault_report is not None else FaultReport()

    def sample_proc(item: SampleWork):
        trace = trace_id(item.sample_id, epoch) if tracer is not None else ""
        if tracer is not None:
            tracer.begin(
                trace, "sample.fetch", split=item.split, wire_bytes=item.wire_bytes,
                **handles.span_attrs(item.sample_id),
            )
        # Request leaves the compute node; half an RTT to arrive.
        yield env.timeout(spec.network_rtt_s / 2.0)
        if item.split > 0:
            if tracer is not None:
                tracer.begin(
                    trace, "storage.prefix", split=item.split,
                    **handles.span_attrs(item.sample_id),
                )
            pool = handles.storage_pool(item.sample_id)
            assert pool is not None  # split > 0 implies an offload-capable spec
            grant = pool.acquire()
            yield grant
            yield env.timeout(item.prefix_cpu_s * spec.storage_cpu_factor)
            pool.release(grant)
            if tracer is not None:
                tracer.end(trace, "storage.prefix", cpu_s=item.prefix_cpu_s)
        # Transmit in chunks: releasing the link between chunks lets
        # concurrent flows interleave (fair sharing) instead of
        # serializing whole payloads behind each other.
        payload_bytes = item.wire_bytes + spec.response_overhead_bytes
        if tracer is not None:
            tracer.begin(trace, "link.transmit", payload_bytes=payload_bytes)
        remaining = payload_bytes
        first_chunk = True
        while remaining > 0:
            chunk = min(remaining, spec.link_chunk_bytes)
            grant = handles.link.acquire(handles.flow_key, front=not first_chunk)
            yield grant
            yield env.timeout(chunk / bandwidth)
            handles.link.release(grant)
            remaining -= chunk
            first_chunk = False
        traffic["bytes"] += payload_bytes
        if tracer is not None:
            tracer.end(trace, "link.transmit")
        yield env.timeout(spec.network_rtt_s / 2.0)
        if item.suffix_cpu_s > 0:
            if tracer is not None:
                tracer.begin(trace, "compute.suffix")
            grant = handles.compute_cpu.acquire()
            yield grant
            yield env.timeout(item.suffix_cpu_s * spec.compute_cpu_factor)
            handles.compute_cpu.release(grant)
            if tracer is not None:
                tracer.end(trace, "compute.suffix", cpu_s=item.suffix_cpu_s)
        if tracer is not None:
            tracer.end(trace, "sample.fetch")

    # -- fault-aware variant ------------------------------------------------
    # Kept separate from sample_proc so the fault-free path stays
    # byte-identical (acceptance criterion: an empty schedule changes
    # nothing, not even float rounding order).

    active_offloads: Dict[object, int] = {}  # prefix Process -> sample id
    message_counter = itertools.count()

    def crash_watch(window):
        yield env.timeout(window.start)
        victims = [p for p in list(active_offloads) if not p.triggered]
        for proc in victims:
            report.crash_interrupts += 1
            if timeline is not None:
                timeline.record_fault(
                    env.now, "crash-interrupt", active_offloads.get(proc, -1)
                )
            if tracer is not None:
                tracer.instant(
                    trace_id(active_offloads.get(proc, -1), epoch),
                    "fault.crash_interrupt",
                )
            proc.interrupt("storage-crash")

    def prefix_proc(item: SampleWork):
        """Run the offloaded prefix; returns True unless interrupted."""
        pool = handles.storage_pool(item.sample_id)
        assert pool is not None  # split > 0 implies an offload-capable spec
        grant = pool.acquire()
        try:
            yield grant
            yield env.timeout(
                item.prefix_cpu_s
                * spec.storage_cpu_factor
                * faults.storage_cpu_factor(env.now)
            )
        except Interrupt:
            if pool.holds(grant):
                pool.release(grant)
            else:
                pool.cancel(grant)
            return False
        pool.release(grant)
        return True

    def transmit(payload_bytes: int):
        """Move one payload across the (possibly browned-out) link."""
        remaining = payload_bytes
        first_chunk = True
        while remaining > 0:
            chunk = min(remaining, spec.link_chunk_bytes)
            grant = handles.link.acquire(handles.flow_key, front=not first_chunk)
            yield grant
            factor = faults.bandwidth_factor(env.now)
            if factor < 1.0:
                report.brownout_chunks += 1
            yield env.timeout(chunk / (bandwidth * factor))
            handles.link.release(grant)
            remaining -= chunk
            first_chunk = False
        traffic["bytes"] += payload_bytes

    def faulty_sample_proc(item: SampleWork):
        trace = trace_id(item.sample_id, epoch) if tracer is not None else ""
        if tracer is not None:
            tracer.begin(
                trace, "sample.fetch", split=item.split, wire_bytes=item.wire_bytes,
                **handles.span_attrs(item.sample_id),
            )
        yield env.timeout((spec.network_rtt_s + faults.extra_rtt_s(env.now)) / 2.0)
        if item.split > 0:
            offloaded = False
            if faults.storage_down(env.now):
                # Fetch refused outright: the node is down right now.
                report.note_failure(env.now)
                if tracer is not None:
                    tracer.instant(trace, "fault.storage_down")
            else:
                report.offload_attempts += 1
                if tracer is not None:
                    tracer.begin(
                        trace, "storage.prefix", split=item.split,
                        **handles.span_attrs(item.sample_id),
                    )
                proc = env.process(prefix_proc(item))
                active_offloads[proc] = item.sample_id
                outcome = yield proc
                active_offloads.pop(proc, None)
                offloaded = outcome is True
                if tracer is not None:
                    tracer.end(
                        trace,
                        "storage.prefix",
                        outcome="ok" if offloaded else "interrupted",
                    )
                if offloaded:
                    recovering = (
                        report.first_failure_s is not None
                        and report.recovered_at_s is None
                    )
                    report.note_success(env.now)
                    if recovering and timeline is not None:
                        timeline.record_fault(env.now, "recovery", item.sample_id)
                else:
                    report.note_failure(env.now)
            if not offloaded:
                # Degrade to No-Off: raw fetch + local preprocessing.  The
                # sample is served either way -- never lost.
                report.demoted_samples += 1
                if timeline is not None:
                    timeline.record_fault(env.now, "demotion", item.sample_id)
                if tracer is not None:
                    tracer.instant(trace, "fault.demote", planned_split=item.split)
                item = fallback_work(item.sample_id)
        payload_bytes = item.wire_bytes + spec.response_overhead_bytes
        if tracer is not None:
            tracer.begin(trace, "link.transmit", payload_bytes=payload_bytes)
        for send in range(_MAX_PAYLOAD_SENDS):
            yield from transmit(payload_bytes)
            if not faults.corrupts(next(message_counter)):
                break
            # Checksum caught a damaged payload: it never reaches the
            # pipeline; the re-transmission's bytes count as traffic.
            report.corrupted_payloads += 1
            if send + 1 < _MAX_PAYLOAD_SENDS:
                report.corrupt_retries += 1
            if timeline is not None:
                timeline.record_fault(env.now, "corruption", item.sample_id)
            if tracer is not None:
                tracer.instant(trace, "fault.corruption", send=send)
        if tracer is not None:
            tracer.end(trace, "link.transmit")
        yield env.timeout((spec.network_rtt_s + faults.extra_rtt_s(env.now)) / 2.0)
        if item.suffix_cpu_s > 0:
            if tracer is not None:
                tracer.begin(trace, "compute.suffix")
            grant = handles.compute_cpu.acquire()
            yield grant
            yield env.timeout(item.suffix_cpu_s * spec.compute_cpu_factor)
            handles.compute_cpu.release(grant)
            if tracer is not None:
                tracer.end(trace, "compute.suffix", cpu_s=item.suffix_cpu_s)
        if tracer is not None:
            tracer.end(trace, "sample.fetch")

    make_sample_proc = sample_proc if faults is None else faulty_sample_proc

    def batch_proc(index: int, ids: List[int]):
        token = handles.prefetch.acquire()
        yield token
        children = [env.process(make_sample_proc(work[i])) for i in ids]
        yield env.all_of(children)
        if timeline is not None:
            timeline.trace(index).ready_at = env.now
        batch_ready[index].trigger(token)

    def gpu_proc():
        for index, ids in enumerate(batches):
            yield batch_ready[index]
            token = batch_ready[index].value
            grant = handles.gpu.acquire()
            yield grant
            if timeline is not None:
                timeline.trace(index).gpu_start = env.now
            if tracer is not None:
                tracer.begin(
                    f"b{index}-e{epoch}", "gpu.batch", batch=index,
                    **handles.span_attrs(),
                )
            yield env.timeout(model.batch_time_s(len(ids)))
            if timeline is not None:
                timeline.trace(index).gpu_end = env.now
            if tracer is not None:
                tracer.end(f"b{index}-e{epoch}", "gpu.batch")
            handles.gpu.release(grant)
            handles.prefetch.release(token)
        traffic["done"] = 1
        traffic["finished_at"] = env.now
        if timeline is not None:
            timeline.epoch_end = env.now

    for index, ids in enumerate(batches):
        env.process(batch_proc(index, ids))
    env.process(gpu_proc())
    if faults is not None:
        for window in faults.crashes:
            env.process(crash_watch(window))
    return traffic


class TrainerSim:
    """Simulate training epochs for a (dataset, pipeline, model) workload."""

    def __init__(
        self,
        dataset: Dataset,
        pipeline: Pipeline,
        model: ModelProfile,
        spec: ClusterSpec,
        batch_size: Optional[int] = None,
        sampler: Optional[Sampler] = None,
        seed: int = 0,
        job_label: Optional[str] = None,
    ) -> None:
        self.dataset = dataset
        self.pipeline = pipeline
        self.model = model
        self.spec = spec
        self.batch_size = batch_size if batch_size is not None else model.batch_size
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        self.sampler = sampler if sampler is not None else SequentialSampler(len(dataset))
        self.seed = seed
        #: Tenant name stamped onto spans as a ``job`` label (None = no label).
        self.job_label = job_label

    # -- work precomputation ------------------------------------------------

    def sample_work(self, sample_id: int, split: int, epoch: int) -> SampleWork:
        """Wire size and CPU cost split for one sample at one split point."""
        meta = self.dataset.raw_meta(sample_id)
        run = self.pipeline.simulate(
            meta, seed=self.seed, epoch=epoch, sample_id=sample_id
        )
        if not 0 <= split <= len(run.stages):
            raise ValueError(f"bad split {split} for {len(run.stages)}-op pipeline")
        sizes = [meta.nbytes] + [s.out_meta.nbytes for s in run.stages]
        costs = [s.cost_s for s in run.stages]
        return SampleWork(
            sample_id=sample_id,
            split=split,
            wire_bytes=sizes[split],
            prefix_cpu_s=sum(costs[:split]),
            suffix_cpu_s=sum(costs[split:]),
        )

    def _epoch_work(
        self,
        splits: Optional[Sequence[int]],
        epoch: int,
        adjustments: Optional[Dict[int, "WorkAdjustment"]] = None,
    ) -> Dict[int, SampleWork]:
        work: Dict[int, SampleWork] = {}
        for sample_id in self.dataset.sample_ids():
            split = 0 if splits is None else splits[sample_id]
            item = self.sample_work(sample_id, split, epoch)
            if adjustments is not None and sample_id in adjustments:
                item = adjustments[sample_id].apply(item)
            if item.split == 0 and item.prefix_cpu_s > 0:
                raise ValueError(
                    f"sample {sample_id} has storage-side work but split 0"
                )
            if item.split > 0 and not self.spec.can_offload:
                raise ValueError(
                    f"sample {sample_id} plans split {item.split} but the "
                    "cluster has no storage cores; clamp the plan first"
                )
            if item.prefix_cpu_s > 0 and not self.spec.can_offload:
                raise ValueError(
                    f"sample {sample_id} has storage-side work but the cluster "
                    "has no storage cores; clamp the plan first"
                )
            work[sample_id] = item
        return work

    def _epoch_work_fast(
        self,
        splits: Optional[Sequence[int]],
        epoch: int,
        adjustments: Optional[Dict[int, "WorkAdjustment"]] = None,
    ) -> Dict[int, SampleWork]:
        """Vectorized twin of :meth:`_epoch_work` -- same outputs, bit for bit.

        The per-sample ``pipeline.simulate`` loop is replaced by one
        :func:`~repro.parallel.vectorized.simulate_batch` call (whose rows
        are bit-identical to the sequential stages) plus column-wise
        left-fold prefix/suffix sums in the exact association order
        ``sum(costs[:split])`` uses.  Validation errors carry the same
        messages, raised at the same sample.
        """
        from repro.parallel.vectorized import simulate_batch

        ids = list(self.dataset.sample_ids())
        if not ids:
            return {}
        raw_metas = [self.dataset.raw_meta(i) for i in ids]
        kind = raw_metas[0].kind
        if any(meta.kind is not kind for meta in raw_metas):
            # The batch simulator wants one payload kind per batch; rare
            # mixed-kind datasets take the sequential reference instead.
            return self._epoch_work(splits, epoch, adjustments)
        sizes, costs = simulate_batch(
            self.pipeline, raw_metas, ids, seed=self.seed, epoch=epoch
        )
        n = len(ids)
        n_ops = int(costs.shape[1])
        split_list = [0] * n if splits is None else [splits[i] for i in ids]

        # Column-wise left folds per split group: each element accumulates
        # ((c0 + c1) + c2) ... in the same order the scalar fold does, so
        # every float matches the sequential path bit for bit.  Empty folds
        # stay int 0, exactly like sum([]).
        prefix: List[float] = [0] * n  # type: ignore[list-item]
        suffix: List[float] = [0] * n  # type: ignore[list-item]
        rows_by_split: Dict[int, List[int]] = {}
        for row, split in enumerate(split_list):
            if 0 <= split <= n_ops:
                rows_by_split.setdefault(split, []).append(row)
        for split, rows in rows_by_split.items():
            sub = costs[rows]
            if split > 0:
                acc = sub[:, 0].copy()
                for col in range(1, split):
                    acc = acc + sub[:, col]
                for row, value in zip(rows, acc.tolist()):
                    prefix[row] = value
            if split < n_ops:
                acc = sub[:, split].copy()
                for col in range(split + 1, n_ops):
                    acc = acc + sub[:, col]
                for row, value in zip(rows, acc.tolist()):
                    suffix[row] = value
        size_rows = sizes.tolist()

        work: Dict[int, SampleWork] = {}
        for row, sample_id in enumerate(ids):
            split = split_list[row]
            if not 0 <= split <= n_ops:
                raise ValueError(f"bad split {split} for {n_ops}-op pipeline")
            item = SampleWork(
                sample_id=sample_id,
                split=split,
                wire_bytes=size_rows[row][split],
                prefix_cpu_s=prefix[row],
                suffix_cpu_s=suffix[row],
            )
            if adjustments is not None and sample_id in adjustments:
                item = adjustments[sample_id].apply(item)
            if item.split == 0 and item.prefix_cpu_s > 0:
                raise ValueError(
                    f"sample {sample_id} has storage-side work but split 0"
                )
            if item.split > 0 and not self.spec.can_offload:
                raise ValueError(
                    f"sample {sample_id} plans split {item.split} but the "
                    "cluster has no storage cores; clamp the plan first"
                )
            if item.prefix_cpu_s > 0 and not self.spec.can_offload:
                raise ValueError(
                    f"sample {sample_id} has storage-side work but the cluster "
                    "has no storage cores; clamp the plan first"
                )
            work[sample_id] = item
        return work

    # -- simulation -----------------------------------------------------------

    def _build_handles(
        self, env: Environment, kernel: ModuleType = _fast_kernel
    ) -> JobHandles:
        """The resource set one epoch runs against (overridden by subclasses:
        sharded clusters swap the single storage pool for per-shard pools).

        ``kernel`` supplies the Resource classes so reference-kernel runs
        build refsim resources against a refsim environment.
        """
        spec = self.spec
        return JobHandles(
            compute_cpu=kernel.Resource(env, spec.compute_cores, "compute-cpu"),
            storage_cpu=(
                kernel.Resource(env, spec.storage_cores, "storage-cpu")
                if spec.can_offload
                else None
            ),
            link=kernel.Resource(env, 1, "link"),
            gpu=kernel.Resource(env, 1, "gpu"),
            prefetch=kernel.Resource(env, spec.prefetch_batches, "prefetch-window"),
            job_label=self.job_label,
        )

    def _storage_utilization(self, handles: JobHandles, horizon: float) -> float:
        """Aggregate storage-CPU busy fraction across however many pools."""
        pools = handles.storage_pools
        if pools is not None:
            capacity = sum(pool.capacity for pool in pools)
            if horizon <= 0 or capacity == 0:
                return 0.0
            return sum(pool.busy_time for pool in pools) / (capacity * horizon)
        if handles.storage_cpu is None:
            return 0.0
        return handles.storage_cpu.utilization(horizon)

    def _wrap_stats(
        self, stats: EpochStats, handles: JobHandles, horizon: float
    ) -> EpochStats:
        """Subclass hook: decorate the epoch stats (e.g. per-shard columns)."""
        return stats

    def run_epoch(
        self,
        splits: Optional[Sequence[int]] = None,
        epoch: int = 0,
        adjustments: Optional[Dict[int, WorkAdjustment]] = None,
        record_timeline: bool = False,
        faults: Optional[FaultSchedule] = None,
        record_spans: bool = False,
        kernel: str = "auto",
    ) -> EpochStats:
        """Simulate one epoch under the given per-sample offload splits.

        splits: index = sample id, value = number of leading ops executed on
            the storage node (0 = fetch raw).  None means no offloading.
        adjustments: optional per-sample work deltas (see WorkAdjustment).
        record_timeline: attach a per-batch Timeline to the stats (for
            stall-breakdown analysis via repro.metrics).
        faults: optional deterministic fault schedule (virtual-time axis);
            the epoch survives every fault class by demoting failed
            offloads to the split-0 No-Off path.  Empty/None schedules are
            byte-identical to the fault-free run.
        record_spans: attach a per-sample span Tracer (stats.spans) whose
            clock is the simulator's virtual time; the simulated schedule
            is identical with or without it.
        kernel: "auto" (default) runs the batched cursor engine on the
            optimized kernel when the run carries no faults/timeline/spans
            and generator processes otherwise; "fast" insists on the
            batched engine (ValueError when ineligible); "reference"
            replays the frozen seed kernel end to end.  All three produce
            byte-identical stats -- the contract ``repro.cluster.bench``
            gates on.
        """
        kernel_mod = _kernel_module(kernel)
        if splits is not None and len(splits) != len(self.dataset):
            raise ValueError(
                f"splits has {len(splits)} entries, dataset has {len(self.dataset)}"
            )
        if faults is not None and faults.is_empty:
            faults = None
        fast_eligible = faults is None and not record_timeline and not record_spans
        if kernel == "fast" and not fast_eligible:
            raise ValueError(
                "kernel='fast' covers only fault-free runs without timeline or "
                "spans; use kernel='auto' to fall back automatically"
            )
        use_engine = kernel != "reference" and fast_eligible

        if kernel == "reference":
            work = self._epoch_work(splits, epoch, adjustments)
        else:
            work = self._epoch_work_fast(splits, epoch, adjustments)
        batches = list(BatchSampler(self.sampler, self.batch_size).epoch_batches(epoch))
        fault_report = FaultReport() if faults is not None else None
        fallback_cache: Dict[int, SampleWork] = {}

        def fallback_work(sample_id: int) -> SampleWork:
            """The split-0 (No-Off) work a demoted sample falls back to."""
            if sample_id not in fallback_cache:
                fallback_cache[sample_id] = self.sample_work(sample_id, 0, epoch)
            return fallback_cache[sample_id]

        # The two kernels are duck-compatible; refsim environments carry
        # refsim resources (built below), so the cast is safe.
        env = cast(Environment, kernel_mod.Environment())
        spec = self.spec
        handles = self._build_handles(env, kernel_mod)
        timeline = Timeline() if record_timeline else None
        tracer = Tracer(clock=lambda: env.now) if record_spans else None
        if use_engine:
            traffic = launch_training_job_fast(
                env, spec, work, batches, self.model, handles, epoch=epoch
            )
        else:
            traffic = launch_training_processes(
                env,
                spec,
                work,
                batches,
                self.model,
                handles,
                timeline=timeline,
                faults=faults,
                fault_report=fault_report,
                fallback_work=fallback_work if faults is not None else None,
                tracer=tracer,
                epoch=epoch,
            )
        env.run()

        horizon = env.now
        analytic = EpochMetrics(
            gpu_time_s=sum(self.model.batch_time_s(len(ids)) for ids in batches),
            # Raw single-core seconds; EpochModel applies the CPU factors.
            compute_cpu_s=sum(w.suffix_cpu_s for w in work.values()),
            storage_cpu_s=sum(w.prefix_cpu_s for w in work.values() if w.split > 0),
            traffic_bytes=sum(
                w.wire_bytes + spec.response_overhead_bytes for w in work.values()
            ),
        )
        stats = EpochStats(
            epoch_time_s=horizon,
            traffic_bytes=traffic["bytes"],
            num_samples=len(work),
            num_batches=len(batches),
            offloaded_samples=sum(1 for w in work.values() if w.split > 0),
            gpu_utilization=handles.gpu.utilization(horizon),
            compute_cpu_utilization=handles.compute_cpu.utilization(horizon),
            storage_cpu_utilization=self._storage_utilization(handles, horizon),
            link_utilization=handles.link.utilization(horizon),
            analytic=analytic,
            timeline=timeline,
            faults=fault_report,
            spans=tracer,
        )
        return self._wrap_stats(stats, handles, horizon)
