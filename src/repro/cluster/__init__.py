"""Two-node cluster substrate: virtual-time simulation of DL training.

Contents:

- :mod:`repro.cluster.sim` -- a small generator-based discrete-event
  simulation kernel (environment, processes, FIFO resources).
- :class:`ClusterSpec` -- the hardware description (cores, bandwidth, CPU
  speed factors) mirroring the paper's two-node testbed.
- :class:`EpochModel` -- the analytic epoch-time model over the paper's four
  metrics (T_G, T_CC, T_CS, T_Net); used by decision logic.
- :class:`TrainerSim` -- the event-driven trainer that actually runs an
  epoch: fetch -> offloaded prefix on storage CPUs -> bandwidth-capped link
  -> local suffix on compute CPUs -> GPU, with bounded prefetching.
"""

from repro.cluster.spec import ClusterSpec, standard_cluster
from repro.cluster.epoch_model import EpochEstimate, EpochMetrics, EpochModel
from repro.cluster.sim import Environment, Interrupt, Resource, Store
from repro.cluster.trainer import EpochStats, TrainerSim, WorkAdjustment

__all__ = [
    "ClusterSpec",
    "Environment",
    "EpochEstimate",
    "EpochMetrics",
    "EpochModel",
    "EpochStats",
    "Interrupt",
    "Resource",
    "Store",
    "TrainerSim",
    "WorkAdjustment",
    "standard_cluster",
]
