"""Multi-tenant storage-CPU scheduling (paper section 6 extension).

GPU clusters run many training jobs against one storage cluster; the
storage node's preprocessing cores are a shared, scarce resource.  The
scheduler allocates integer core counts across jobs to minimize the
cluster-level objective, re-planning each job's SOPHON offload strategy at
its candidate allocation (the marginal value of a core to a job is exactly
the epoch-time reduction its decision engine can realize with it).
"""

from repro.scheduler.multitenant import (
    Allocation,
    GreedyCoreScheduler,
    TenantJob,
)

__all__ = ["Allocation", "GreedyCoreScheduler", "TenantJob"]
