"""Greedy water-filling allocation of storage cores across tenant jobs."""

import dataclasses
from typing import Dict, Optional, Sequence

from repro.cluster.epoch_model import EpochMetrics, EpochModel
from repro.cluster.spec import ClusterSpec
from repro.core.decision import DecisionEngine
from repro.core.policy import PolicyContext
from repro.data.dataset import Dataset
from repro.preprocessing.pipeline import Pipeline, standard_pipeline
from repro.workloads.models import ModelProfile, get_model_profile


@dataclasses.dataclass
class TenantJob:
    """One training job competing for storage-node cores."""

    name: str
    dataset: Dataset
    model: ModelProfile
    pipeline: Optional[Pipeline] = None
    weight: float = 1.0  # relative importance in the objective
    seed: int = 0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"weight must be > 0, got {self.weight}")
        if self.pipeline is None:
            self.pipeline = standard_pipeline()


@dataclasses.dataclass
class Allocation:
    """Result: cores per job plus the per-job epoch estimates."""

    cores: Dict[str, int]
    epoch_times: Dict[str, float]
    total_cores: int

    @property
    def objective(self) -> float:
        """Sum of epoch times (the quantity the scheduler minimizes)."""
        return sum(self.epoch_times.values())

    def render(self) -> str:
        lines = [f"{'Job':<16} {'Cores':>5} {'Epoch':>10}"]
        for name in sorted(self.cores):
            lines.append(
                f"{name:<16} {self.cores[name]:>5} {self.epoch_times[name]:>9.2f}s"
            )
        lines.append(f"{'(total)':<16} {sum(self.cores.values()):>5}")
        return "\n".join(lines)


class GreedyCoreScheduler:
    """Assign cores one at a time to the job with the best marginal gain.

    For each candidate (job, +1 core) the scheduler re-runs the job's
    SOPHON decision engine at that allocation and evaluates the analytic
    epoch estimate; the core goes to the job whose weighted epoch time
    drops the most.  Epoch-time evaluations are cached per (job, cores).
    """

    def __init__(
        self,
        base_spec: ClusterSpec,
        engine: Optional[DecisionEngine] = None,
    ) -> None:
        self.base_spec = base_spec
        self.engine = engine if engine is not None else DecisionEngine()
        self._cache: Dict[tuple, float] = {}

    def epoch_time_at(self, job: TenantJob, cores: int) -> float:
        """Analytic epoch time of ``job`` given ``cores`` storage cores."""
        key = (job.name, cores)
        if key in self._cache:
            return self._cache[key]
        spec = self.base_spec.with_storage_cores(cores)
        context = PolicyContext(
            dataset=job.dataset,
            pipeline=job.pipeline,
            spec=spec,
            model=job.model,
            seed=job.seed,
        )
        if cores == 0:
            records = context.records()
            metrics = EpochMetrics(
                gpu_time_s=context.epoch_gpu_time_s,
                compute_cpu_s=sum(r.total_cost for r in records),
                storage_cpu_s=0.0,
                traffic_bytes=float(
                    sum(r.raw_size for r in records)
                    + spec.response_overhead_bytes * len(records)
                ),
            )
            time_s = EpochModel(spec).epoch_time_s(metrics)
        else:
            plan = self.engine.plan(
                context.records(), spec, gpu_time_s=context.epoch_gpu_time_s
            )
            time_s = plan.expected.epoch_time_s
        self._cache[key] = time_s
        return time_s

    def allocate(self, jobs: Sequence[TenantJob], total_cores: int) -> Allocation:
        """Distribute ``total_cores`` across ``jobs`` greedily."""
        if total_cores < 0:
            raise ValueError(f"total_cores must be >= 0, got {total_cores}")
        names = [job.name for job in jobs]
        if len(set(names)) != len(names):
            raise ValueError(f"job names must be unique, got {names}")

        cores = {job.name: 0 for job in jobs}
        for _ in range(total_cores):
            best_job = None
            best_gain = 0.0
            for job in jobs:
                current = self.epoch_time_at(job, cores[job.name])
                upgraded = self.epoch_time_at(job, cores[job.name] + 1)
                gain = (current - upgraded) * job.weight
                if gain > best_gain:
                    best_gain = gain
                    best_job = job
            if best_job is None:
                break  # no job benefits from another core
            cores[best_job.name] += 1

        epoch_times = {
            job.name: self.epoch_time_at(job, cores[job.name]) for job in jobs
        }
        return Allocation(cores=cores, epoch_times=epoch_times, total_cores=total_cores)


def make_job(
    name: str,
    dataset: Dataset,
    model_name: str = "alexnet",
    gpu: str = "rtx6000",
    weight: float = 1.0,
    seed: int = 0,
) -> TenantJob:
    """Convenience constructor used by examples and tests."""
    return TenantJob(
        name=name,
        dataset=dataset,
        model=get_model_profile(model_name, gpu),
        weight=weight,
        seed=seed,
    )
