"""Finding reporters: human-readable text, JSON, and SARIF 2.1.0."""

import json
from typing import Dict, List, Sequence

from repro.analysis.engine import Finding, Severity

#: SARIF severity levels for our two severities.
_SARIF_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def render_text(findings: Sequence[Finding], files_checked: int = 0) -> str:
    """One line per finding plus a summary, ruff-style."""
    lines = [finding.format() for finding in findings]
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    warnings = len(findings) - errors
    if findings:
        by_rule: Dict[str, int] = {}
        for finding in findings:
            by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
        breakdown = ", ".join(
            f"{rule}: {count}" for rule, count in sorted(by_rule.items())
        )
        lines.append("")
        lines.append(
            f"{errors} error(s), {warnings} warning(s) in "
            f"{files_checked} file(s) [{breakdown}]"
        )
    else:
        lines.append(f"ok: {files_checked} file(s), no findings")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], files_checked: int = 0) -> str:
    """Stable JSON document for CI consumption."""
    payload = {
        "files_checked": files_checked,
        "errors": sum(1 for f in findings if f.severity is Severity.ERROR),
        "warnings": sum(1 for f in findings if f.severity is Severity.WARNING),
        "findings": [
            {
                "rule": f.rule,
                "severity": f.severity.value,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
            }
            for f in findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(findings: Sequence[Finding], files_checked: int = 0) -> str:
    """SARIF 2.1.0 log: the interchange format code hosts understand.

    One run, one ``sophon-lint`` tool entry; every registered rule that
    produced a finding appears in ``tool.driver.rules`` so viewers can
    show the rationale next to the annotation.
    """
    from repro.analysis.engine import all_rules

    registry = all_rules()
    used = sorted({f.rule for f in findings})
    rules = []
    for code in used:
        cls = registry.get(code)
        doc = ""
        rationale = ""
        if cls is not None:
            doc = (cls.__doc__ or "").strip().splitlines()[0] if cls.__doc__ else ""
            rationale = cls.rationale
        rules.append(
            {
                "id": code,
                "name": cls.name if cls is not None else code,
                "shortDescription": {"text": doc or code},
                "fullDescription": {"text": rationale or doc or code},
                "defaultConfiguration": {
                    "level": _SARIF_LEVELS.get(
                        cls.default_severity if cls is not None else Severity.ERROR,
                        "error",
                    )
                },
            }
        )
    rule_index = {code: index for index, code in enumerate(used)}
    results = []
    for finding in findings:
        results.append(
            {
                "ruleId": finding.rule,
                "ruleIndex": rule_index[finding.rule],
                "level": _SARIF_LEVELS.get(finding.severity, "error"),
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": finding.path.replace("\\", "/"),
                                "uriBaseId": "SRCROOT",
                            },
                            "region": {
                                "startLine": finding.line,
                                "startColumn": finding.col + 1,
                            },
                        }
                    }
                ],
            }
        )
    log = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "sophon-lint",
                        "informationUri": "https://example.invalid/sophon-lint",
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "properties": {"filesChecked": files_checked},
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True)


def render_rules() -> str:
    """``--list-rules`` output: every registered rule and its rationale."""
    from repro.analysis.engine import all_rules

    lines: List[str] = []
    for code, cls in all_rules().items():
        lines.append(f"{code} ({cls.name}) [{cls.default_severity.value}]")
        doc = (cls.__doc__ or "").strip().splitlines()[0]
        lines.append(f"    {doc}")
        if cls.rationale:
            lines.append(f"    rationale: {cls.rationale}")
    return "\n".join(lines)
