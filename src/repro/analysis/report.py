"""Finding reporters: human-readable text and machine-readable JSON."""

import json
from typing import Dict, List, Sequence

from repro.analysis.engine import Finding, Severity


def render_text(findings: Sequence[Finding], files_checked: int = 0) -> str:
    """One line per finding plus a summary, ruff-style."""
    lines = [finding.format() for finding in findings]
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    warnings = len(findings) - errors
    if findings:
        by_rule: Dict[str, int] = {}
        for finding in findings:
            by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
        breakdown = ", ".join(
            f"{rule}: {count}" for rule, count in sorted(by_rule.items())
        )
        lines.append("")
        lines.append(
            f"{errors} error(s), {warnings} warning(s) in "
            f"{files_checked} file(s) [{breakdown}]"
        )
    else:
        lines.append(f"ok: {files_checked} file(s), no findings")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], files_checked: int = 0) -> str:
    """Stable JSON document for CI consumption."""
    payload = {
        "files_checked": files_checked,
        "errors": sum(1 for f in findings if f.severity is Severity.ERROR),
        "warnings": sum(1 for f in findings if f.severity is Severity.WARNING),
        "findings": [
            {
                "rule": f.rule,
                "severity": f.severity.value,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
            }
            for f in findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rules() -> str:
    """``--list-rules`` output: every registered rule and its rationale."""
    from repro.analysis.engine import all_rules

    lines: List[str] = []
    for code, cls in all_rules().items():
        lines.append(f"{code} ({cls.name}) [{cls.default_severity.value}]")
        doc = (cls.__doc__ or "").strip().splitlines()[0]
        lines.append(f"    {doc}")
        if cls.rationale:
            lines.append(f"    rationale: {cls.rationale}")
    return "\n".join(lines)
