"""sophon-lint configuration, read from ``[tool.sophon-lint]`` in pyproject.

Recognised keys::

    [tool.sophon-lint]
    select = ["DET01", "EXC01"]   # only these rules (default: all)
    ignore = ["MUT01"]            # drop these rules
    exclude = ["analysis/fixtures"]  # path substrings to skip

    [tool.sophon-lint.severity]
    EXC01 = "warning"             # "error" findings fail the build

    [tool.sophon-lint.rules.DET01]
    modules = ["repro.core", "repro.cluster"]  # rule-specific options

Everything is optional; the defaults encode the reproduction's invariants.
"""

import dataclasses
from pathlib import Path
from typing import Dict, List, Optional, Set

try:
    import tomllib
except ImportError:  # Python < 3.11
    tomllib = None  # type: ignore[assignment]


@dataclasses.dataclass
class LintConfig:
    """Engine-level configuration shared by every rule."""

    #: Only run these rule codes (None = all registered rules).
    select: Optional[Set[str]] = None
    #: Never run these rule codes.
    ignore: Set[str] = dataclasses.field(default_factory=set)
    #: Path substrings excluded from directory walks.
    exclude: List[str] = dataclasses.field(default_factory=list)
    #: Rule code -> "error" | "warning" overrides.
    severities: Dict[str, str] = dataclasses.field(default_factory=dict)
    #: Rule code -> option-name -> value overrides.
    rule_options: Dict[str, Dict[str, object]] = dataclasses.field(
        default_factory=dict
    )

    @classmethod
    def from_pyproject(cls, pyproject: Path) -> "LintConfig":
        """Parse ``[tool.sophon-lint]``; missing file/table means defaults."""
        config = cls()
        if tomllib is None or not pyproject.is_file():
            return config
        with pyproject.open("rb") as handle:
            data = tomllib.load(handle)
        table = data.get("tool", {}).get("sophon-lint", {})
        if not isinstance(table, dict):
            raise ValueError("[tool.sophon-lint] must be a table")
        if "select" in table:
            config.select = {str(code).upper() for code in table["select"]}
        if "ignore" in table:
            config.ignore = {str(code).upper() for code in table["ignore"]}
        if "exclude" in table:
            config.exclude = [str(pattern) for pattern in table["exclude"]]
        for code, severity in table.get("severity", {}).items():
            config.severities[str(code).upper()] = str(severity)
        for code, options in table.get("rules", {}).items():
            if not isinstance(options, dict):
                raise ValueError(
                    f"[tool.sophon-lint.rules.{code}] must be a table"
                )
            config.rule_options[str(code).upper()] = dict(options)
        return config

    @classmethod
    def discover(cls, start: Path) -> "LintConfig":
        """Find the nearest ``pyproject.toml`` at or above *start*."""
        node = start.resolve()
        if node.is_file():
            node = node.parent
        for directory in (node, *node.parents):
            candidate = directory / "pyproject.toml"
            if candidate.is_file():
                return cls.from_pyproject(candidate)
        return cls()
