"""The sophon-lint domain rules.

Each rule protects one reproduction invariant:

========  ==================================================================
DET01     no wall-clock reads in simulation/transport code (injectable
          clocks keep replays and the DES deterministic)
DET02     no unseeded or global-state RNG (per-sample derived generators
          are what make degraded-mode demotion bit-identical)
DET03     no iteration over unordered set expressions in scheduling code
          (plan order must not depend on hash seeds)
RPC01     every wire-frame class pairs its encoder with a decoder and is
          registered in the frame-type registry
EXC01     no broad exception handler that swallows without logging or
          re-raising (silent failures corrupt traffic accounting)
FLT01     no float equality outside the tolerance helpers (simulated
          times/rates accumulate rounding error)
MUT01     no mutable default arguments (shared state across calls breaks
          repeated simulation runs)
API01     public core/rpc/faults/cluster/harness/telemetry functions are
          fully type-annotated (the offload protocol is a contract;
          untyped edges rot silently)
========  ==================================================================
"""

import ast
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.engine import (
    Edit,
    Fix,
    ModuleContext,
    Rule,
    RuleResult,
    Severity,
    dotted_name,
    register_rule,
)
from repro.utils.floats import is_exact_zero

AstFinding = Tuple[ast.AST, str]


def _modules_option(rule: Rule) -> Sequence[str]:
    modules = rule.options.get("modules", ())
    return [str(m) for m in modules]  # type: ignore[union-attr]


def _node_span(node: ast.AST) -> Optional[Tuple[int, int, int, int]]:
    lineno = getattr(node, "lineno", None)
    end_lineno = getattr(node, "end_lineno", None)
    col = getattr(node, "col_offset", None)
    end_col = getattr(node, "end_col_offset", None)
    if None in (lineno, end_lineno, col, end_col):
        return None
    return (int(lineno), int(col), int(end_lineno), int(end_col))


def _wrap_fix(node: ast.AST, prefix: str, suffix: str, description: str) -> Optional[Fix]:
    """A fix that wraps ``node``'s source span in ``prefix``/``suffix``."""
    span = _node_span(node)
    if span is None:
        return None
    lineno, col, end_lineno, end_col = span
    return Fix(
        edits=(
            Edit(lineno, col, lineno, col, prefix),
            Edit(end_lineno, end_col, end_lineno, end_col, suffix),
        ),
        description=description,
    )


def _replace_fix(node: ast.AST, replacement: str, description: str,
                 extra: Sequence[Edit] = ()) -> Optional[Fix]:
    span = _node_span(node)
    if span is None:
        return None
    lineno, col, end_lineno, end_col = span
    return Fix(
        edits=(Edit(lineno, col, end_lineno, end_col, replacement), *extra),
        description=description,
    )


def _import_insertion(ctx: ModuleContext, module: str, name: str) -> Optional[Edit]:
    """An edit adding ``from module import name`` after the imports.

    Returns None when the name is already bound (no edit needed) -- and
    a no-op marker is distinguished from "cannot fix" by the caller
    checking :func:`_import_needed` first.
    """
    line = 1
    for node in ctx.tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            line = int(getattr(node, "end_lineno", node.lineno)) + 1
        elif not (
            isinstance(node, ast.Expr)
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, str)
        ):
            break
        else:
            line = int(getattr(node, "end_lineno", node.lineno)) + 1
    return Edit(line, 0, line, 0, f"from {module} import {name}\n")


def _import_needed(ctx: ModuleContext, module: str, name: str) -> Optional[bool]:
    """True when the import must be added, False when already bound,
    None when the name is bound to something *else* (fix unsafe)."""
    bound = ctx.aliases.get(name)
    if bound is None:
        return True
    return False if bound == f"{module}.{name}" else None


@register_rule
class NoWallClockRule(Rule):
    """DET01: simulation and transport code must use injected clocks.

    ``time.monotonic`` *referenced* as a parameter default (the
    ``clock: Callable[[], float] = time.monotonic`` pattern) is the allowed
    form -- the caller can substitute a simulated clock.  *Calling* a
    wall-clock function inline hard-wires real time into the run.
    """

    code = "DET01"
    name = "no-wall-clock"
    rationale = (
        "Figs. 1/3/4 and the degraded-mode guarantee replay simulated "
        "timelines; a wall-clock read makes the run unreproducible."
    )
    default_options = {
        "modules": [
            "repro.core",
            "repro.cluster",
            "repro.faults",
            "repro.rpc",
            "repro.preprocessing",
            "repro.telemetry",
            "repro.parallel",
        ],
        "banned": [
            "time.time",
            "time.time_ns",
            "time.monotonic",
            "time.monotonic_ns",
            "time.perf_counter",
            "time.perf_counter_ns",
            "time.process_time",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.datetime.today",
            "datetime.date.today",
        ],
    }

    def check(self, ctx: ModuleContext) -> Iterator[AstFinding]:
        if not ctx.in_modules(_modules_option(self)):
            return
        banned = {str(name) for name in self.options["banned"]}  # type: ignore[union-attr]
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved in banned:
                yield (
                    node,
                    f"wall-clock call {resolved}() in deterministic module "
                    f"{ctx.module}; accept an injectable clock instead "
                    "(e.g. `clock: Callable[[], float] = time.monotonic` "
                    "as a parameter default)",
                )


_RANDOM_GLOBAL_FUNCS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "seed", "getrandbits", "betavariate",
    "expovariate", "normalvariate", "vonmisesvariate", "triangular",
    "lognormvariate", "paretovariate", "weibullvariate", "getstate",
    "setstate",
}

_NUMPY_LEGACY_FUNCS = {
    "seed", "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "uniform", "normal",
    "standard_normal", "beta", "binomial", "poisson", "exponential",
    "gamma", "bytes", "get_state", "set_state",
}


@register_rule
class SeededRngRule(Rule):
    """DET02: RNG must be seeded and instance-scoped, never global-state."""

    code = "DET02"
    name = "seeded-rng"
    rationale = (
        "Augmentation draws come from per-(seed, epoch, sample, op) derived "
        "generators (repro.utils.rng); global or unseeded RNG breaks the "
        "bit-identical offload/demotion guarantee."
    )

    def check(self, ctx: ModuleContext) -> Iterator[AstFinding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_name(node.func)
            if chain is None or chain.partition(".")[0] not in ctx.aliases:
                continue
            resolved = ctx.resolve(node.func)
            if resolved is None:
                continue
            unseeded = not node.args and not node.keywords
            if resolved == "random.Random" and unseeded:
                yield node, (
                    "unseeded random.Random(); pass an explicit seed so "
                    "runs replay"
                )
            elif (
                resolved.partition(".")[0] == "random"
                and resolved.rpartition(".")[2] in _RANDOM_GLOBAL_FUNCS
                and resolved.count(".") == 1
            ):
                yield node, (
                    f"{resolved}() uses the process-global RNG; derive a "
                    "generator via repro.utils.rng instead"
                )
            elif resolved in ("numpy.random.default_rng", "numpy.random.RandomState") and unseeded:
                yield node, (
                    f"unseeded {resolved}(); pass an explicit seed so runs "
                    "replay"
                )
            elif (
                resolved.startswith("numpy.random.")
                and resolved.rpartition(".")[2] in _NUMPY_LEGACY_FUNCS
                and resolved.count(".") == 2
            ):
                yield node, (
                    f"{resolved}() mutates numpy's global RNG state; use "
                    "repro.utils.rng derived generators instead"
                )


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "union", "intersection", "difference", "symmetric_difference"
        ):
            return True
    return False


def _is_keys_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "keys"
        and not node.args
        and not node.keywords
    )


@register_rule
class OrderedIterationRule(Rule):
    """DET03: scheduling/planning code must not iterate unordered sets.

    Set iteration order depends on insertion history and hashing; feeding
    it into plan or schedule construction makes two identical runs produce
    differently-ordered plans.  Wrap the expression in ``sorted(...)``.

    Also flagged: zero-argument ``.pop()`` / ``.popitem()`` (which remove
    an arbitrary or insertion-history-dependent element -- scheduling
    state must be drained in an explicit order) and iterating a bare
    ``.keys()`` snapshot (key order is insertion history; sort it, or
    iterate the mapping itself if order genuinely cannot matter).
    """

    code = "DET03"
    name = "ordered-iteration"
    rationale = (
        "Offload plans and fault schedules must be byte-stable across "
        "runs; set iteration order is not."
    )
    default_options = {
        "modules": [
            "repro.core",
            "repro.cluster",
            "repro.scheduler",
            "repro.faults",
            "repro.rpc",
            "repro.parallel",
        ],
    }

    def check(self, ctx: ModuleContext) -> Iterator[RuleResult]:
        if not ctx.in_modules(_modules_option(self)):
            return
        for node in ast.walk(ctx.tree):
            iters: List[ast.AST] = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iters.extend(comp.iter for comp in node.generators)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("list", "tuple")
                and len(node.args) == 1
            ):
                iters.append(node.args[0])
            for candidate in iters:
                if _is_set_expr(candidate):
                    yield (
                        candidate,
                        "iteration over an unordered set expression in "
                        "scheduling code; wrap it in sorted(...) to pin "
                        "the order",
                        _wrap_fix(candidate, "sorted(", ")",
                                  "wrap the set expression in sorted(...)"),
                    )
                elif _is_keys_call(candidate):
                    yield (
                        candidate,
                        "iteration over a bare .keys() snapshot in "
                        "scheduling code; key order is insertion history "
                        "-- wrap it in sorted(...) to pin the order",
                        _wrap_fix(candidate, "sorted(", ")",
                                  "wrap the .keys() call in sorted(...)"),
                    )
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and not node.args
                and not node.keywords
            ):
                if node.func.attr == "popitem":
                    yield (
                        node,
                        ".popitem() removes an insertion-history-dependent "
                        "entry in scheduling code; pop an explicit "
                        "(e.g. sorted-min) key instead",
                    )
                elif node.func.attr == "pop":
                    yield (
                        node,
                        "zero-argument .pop() drains an arbitrary or "
                        "history-dependent element in scheduling code; "
                        "pop an explicit index or key instead",
                    )


@register_rule
class FrameCodecPairRule(Rule):
    """RPC01: every wire-frame class pairs ``to_bytes`` with ``from_bytes``
    and is registered in the module's frame-type registry."""

    code = "RPC01"
    name = "frame-codec-pair"
    rationale = (
        "A frame that can be emitted but not parsed (or vice versa) is a "
        "protocol break the type checker cannot see; the FR01->FR02 "
        "checksum upgrade relies on the registry staying complete."
    )
    default_options = {
        "modules": ["repro.rpc.messages"],
        "registry": "FRAME_TYPES",
    }

    def check(self, ctx: ModuleContext) -> Iterator[AstFinding]:
        if not ctx.in_modules(_modules_option(self)):
            return
        registry_name = str(self.options["registry"])
        registered: Optional[Set[str]] = None
        for node in ctx.tree.body:
            if isinstance(node, ast.Assign):
                targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
                if registry_name in targets and isinstance(node.value, ast.Dict):
                    registered = {
                        value.id
                        for value in node.value.values
                        if isinstance(value, ast.Name)
                    }
        codec_classes: List[ast.ClassDef] = []
        for node in ctx.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {
                item.name
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            has_encoder = "to_bytes" in methods
            has_decoder = "from_bytes" in methods
            if has_encoder and not has_decoder:
                yield node, (
                    f"frame class {node.name} has an encoder (to_bytes) but "
                    "no decoder (from_bytes); peers cannot parse what it "
                    "emits"
                )
            elif has_decoder and not has_encoder:
                yield node, (
                    f"frame class {node.name} has a decoder (from_bytes) but "
                    "no encoder (to_bytes); nothing can emit what it parses"
                )
            elif has_encoder and has_decoder:
                codec_classes.append(node)
        for node in codec_classes:
            if registered is None:
                yield node, (
                    f"frame class {node.name} defined but the module has no "
                    f"{registry_name} registry mapping magics to frame "
                    "classes"
                )
            elif node.name not in registered:
                yield node, (
                    f"frame class {node.name} is not registered in "
                    f"{registry_name}; register its magic(s) so generic "
                    "tooling can decode it"
                )


_LOG_METHODS = {
    "debug", "info", "warning", "warn", "error", "exception", "critical", "log",
}


def _handler_is_broad(handler: ast.ExceptHandler, ctx: ModuleContext) -> bool:
    if handler.type is None:
        return True
    types = (
        handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    for node in types:
        name = dotted_name(node)
        if name in ("Exception", "BaseException", "builtins.Exception",
                    "builtins.BaseException"):
            return True
    return False


def _handler_reports(handler: ast.ExceptHandler, ctx: ModuleContext) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _LOG_METHODS
            ):
                return True
            if ctx.resolve(node.func) == "warnings.warn":
                return True
    return False


@register_rule
class NoSwallowedExceptionsRule(Rule):
    """EXC01: a broad handler must log the failure or re-raise."""

    code = "EXC01"
    name = "no-swallowed-exceptions"
    rationale = (
        "A swallowed transport or preprocessing failure silently skews the "
        "paper's traffic/throughput measurements; failures must be "
        "recorded (outage reports, breaker stats) or propagated."
    )

    def check(self, ctx: ModuleContext) -> Iterator[AstFinding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _handler_is_broad(node, ctx):
                continue
            if _handler_reports(node, ctx):
                continue
            label = "bare except:" if node.type is None else "broad except"
            yield node, (
                f"{label} swallows the exception without logging or "
                "re-raising; catch the specific types you expect, or log "
                "via the module logger"
            )


@register_rule
class NoFloatEqualityRule(Rule):
    """FLT01: float equality must go through the tolerance helpers."""

    code = "FLT01"
    name = "no-float-equality"
    rationale = (
        "Simulated times, rates and efficiencies accumulate rounding "
        "error; `x == 0.3` style comparisons flip on harmless "
        "reorderings.  Use repro.utils.floats (is_exact_zero/close)."
    )
    default_options = {"allow_modules": ["repro.utils.floats"]}

    def check(self, ctx: ModuleContext) -> Iterator[RuleResult]:
        allow = [str(m) for m in self.options["allow_modules"]]  # type: ignore[union-attr]
        if ctx.in_modules(allow):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            if any(
                isinstance(operand, ast.Constant)
                and isinstance(operand.value, float)
                for operand in operands
            ):
                yield node, (
                    "float equality comparison; use "
                    "repro.utils.floats.is_exact_zero / close instead of "
                    "== on floats"
                ), self._fix(ctx, node)

    def _fix(self, ctx: ModuleContext, node: ast.Compare) -> Optional[Fix]:
        """Rewrite the simple forms: ``a == 0.0`` and ``a == 0.3``.

        Chained comparisons and shadowed helper names are left to a
        human; the finding still reports.
        """
        if len(node.ops) != 1:
            return None
        left, right = node.left, node.comparators[0]
        negate = isinstance(node.ops[0], ast.NotEq)

        def is_float(n: ast.AST) -> bool:
            return isinstance(n, ast.Constant) and isinstance(n.value, float)

        literal = right if is_float(right) else left
        other = left if literal is right else right
        assert isinstance(literal, ast.Constant)
        other_src = ast.get_source_segment(ctx.source, other)
        literal_src = ast.get_source_segment(ctx.source, literal)
        if other_src is None or literal_src is None:
            return None
        if is_exact_zero(float(literal.value)):
            helper, call = "is_exact_zero", f"is_exact_zero({other_src})"
        else:
            helper, call = "close", f"close({other_src}, {literal_src})"
        needed = _import_needed(ctx, "repro.utils.floats", helper)
        if needed is None:
            return None
        extra: List[Edit] = []
        if needed:
            insertion = _import_insertion(ctx, "repro.utils.floats", helper)
            if insertion is None:
                return None
            extra.append(insertion)
        replacement = f"not {call}" if negate else call
        return _replace_fix(
            node, replacement,
            f"compare via repro.utils.floats.{helper}", extra,
        )


_MUTABLE_CONSTRUCTORS = {
    "list", "dict", "set", "bytearray", "defaultdict", "OrderedDict",
    "Counter", "deque",
}


@register_rule
class NoMutableDefaultsRule(Rule):
    """MUT01: default argument values must be immutable."""

    code = "MUT01"
    name = "no-mutable-defaults"
    rationale = (
        "A mutable default is shared across calls: one simulation run's "
        "state leaks into the next, which is exactly the cross-run "
        "contamination the harness re-runs exist to rule out."
    )

    def check(self, ctx: ModuleContext) -> Iterator[RuleResult]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            positional = [*node.args.posonlyargs, *node.args.args]
            pairs: List[Tuple[Optional[ast.arg], Optional[ast.expr]]] = []
            defaults = node.args.defaults
            if defaults:
                pairs.extend(zip(positional[-len(defaults):], defaults))
            pairs.extend(zip(node.args.kwonlyargs, node.args.kw_defaults))
            for arg, default in pairs:
                if default is None:
                    continue
                mutable = isinstance(default, (ast.List, ast.Dict, ast.Set))
                if (
                    isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in _MUTABLE_CONSTRUCTORS
                ):
                    mutable = True
                if mutable:
                    yield default, (
                        f"mutable default argument in {node.name}(); "
                        "default to None and create the container inside "
                        "the function"
                    ), self._fix(ctx, node, arg, default)

    def _fix(
        self,
        ctx: ModuleContext,
        fn: ast.AST,
        arg: Optional[ast.arg],
        default: ast.expr,
    ) -> Optional[Fix]:
        """``x: T = []`` -> ``x: T = None`` plus an ``if x is None`` guard."""
        assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
        if arg is None:
            return None
        default_src = ast.get_source_segment(ctx.source, default)
        if default_src is None:
            return None
        body = fn.body
        first = body[0]
        if (
            isinstance(first, ast.Expr)
            and isinstance(first.value, ast.Constant)
            and isinstance(first.value.value, str)
        ):
            if len(body) == 1:
                return None  # docstring-only body: nothing reads the arg
            first = body[1]
        indent = " " * first.col_offset
        guard = (
            f"if {arg.arg} is None:\n"
            f"{indent}    {arg.arg} = {default_src}\n"
            f"{indent}"
        )
        return _replace_fix(
            default,
            "None",
            f"default {arg.arg} to None and build the container per call",
            extra=(Edit(first.lineno, first.col_offset,
                        first.lineno, first.col_offset, guard),),
        )


@register_rule
class PublicApiAnnotatedRule(Rule):
    """API01: public callables in scoped packages are fully annotated.

    Scope covers the offload protocol (core/rpc/faults) plus the
    simulation, harness, and telemetry surfaces other layers script
    against.
    """

    code = "API01"
    name = "public-api-annotated"
    rationale = (
        "The offload protocol and fault-injection surfaces are contracts "
        "other layers build on; unannotated edges drift without any tool "
        "noticing."
    )
    default_severity = Severity.ERROR
    default_options = {
        "modules": [
            "repro.core",
            "repro.rpc",
            "repro.faults",
            "repro.cluster",
            "repro.harness",
            "repro.telemetry",
            "repro.parallel",
        ],
    }
    _CHECKED_DUNDERS = {"__init__", "__call__", "__post_init__"}

    def check(self, ctx: ModuleContext) -> Iterator[AstFinding]:
        if not ctx.in_modules(_modules_option(self)):
            return
        for item in ctx.tree.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(item, is_method=False)
            elif isinstance(item, ast.ClassDef) and not item.name.startswith("_"):
                for member in item.body:
                    if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        yield from self._check_function(member, is_method=True)

    def _check_function(
        self, node: ast.AST, is_method: bool
    ) -> Iterator[AstFinding]:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        name = node.name
        if name.startswith("_") and name not in self._CHECKED_DUNDERS:
            return
        args = node.args
        positional = [*args.posonlyargs, *args.args]
        if is_method and positional and positional[0].arg in ("self", "cls"):
            positional = positional[1:]
        missing = [
            arg.arg
            for arg in (*positional, *args.kwonlyargs)
            if arg.annotation is None
        ]
        for extra in (args.vararg, args.kwarg):
            if extra is not None and extra.annotation is None:
                missing.append(f"*{extra.arg}")
        if missing:
            yield node, (
                f"public function {name}() is missing parameter "
                f"annotations: {', '.join(missing)}"
            )
        if node.returns is None:
            yield node, (
                f"public function {name}() is missing a return annotation"
            )
