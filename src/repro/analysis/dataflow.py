"""A small forward dataflow engine over :mod:`repro.analysis.cfg` graphs.

Classic worklist fixpoint: every block's in-state is the join of its
predecessors' out-states; a block's out-state is its transfer function
folded over the block's elements.  The engine is generic over the state
type -- an analysis supplies ``initial()`` (the entry in-state),
``join()`` (the lattice least-upper-bound) and ``transfer()`` (one
element's effect).  States must be plain values comparable with ``==``
(sets and dicts work); the fixpoint terminates as long as ``join`` is
monotone and the state lattice has finite height, which set-union over
program variables satisfies.

``run_forward`` returns the in-state of every block, which is what rules
need: they replay ``transfer`` over a block's elements to know the state
*at* each element (see :mod:`repro.analysis.taint`).
"""

import ast
from typing import Callable, Dict, Generic, List, TypeVar

from repro.analysis.cfg import CFG

State = TypeVar("State")


class ForwardAnalysis(Generic[State]):
    """One forward analysis: initial state, join, and transfer function."""

    def initial(self) -> State:
        """In-state at the function entry."""
        raise NotImplementedError

    def join(self, left: State, right: State) -> State:
        """Least upper bound of two states (must be monotone)."""
        raise NotImplementedError

    def transfer(self, element: ast.stmt, state: State) -> State:
        """State after ``element`` (a simple statement or compound header).

        Must not mutate ``state``; return a new value when anything
        changes (returning ``state`` unchanged is fine and fast).
        """
        raise NotImplementedError


def block_out_state(
    analysis: ForwardAnalysis[State], elements: List[ast.stmt], state: State
) -> State:
    """Fold the transfer function over one block's elements."""
    for element in elements:
        state = analysis.transfer(element, state)
    return state


def run_forward(
    cfg: CFG, analysis: ForwardAnalysis[State], max_iterations: int = 0
) -> Dict[int, State]:
    """Fixpoint in-states for every block of ``cfg``.

    Every block starts from ``initial()`` -- which doubles as the lattice
    bottom for the set-union analyses this engine serves -- so unreachable
    blocks (parked dead code) are still inspectable.  ``max_iterations``
    bounds pathological graphs (0 picks a generous bound scaled to the
    graph); a non-converging analysis is a bug in its ``join``, and
    raising beats silently reporting half-propagated states.
    """
    if max_iterations <= 0:
        max_iterations = 1000 + 200 * len(cfg.blocks)
    in_states: Dict[int, State] = {
        block_id: analysis.initial() for block_id in cfg.blocks
    }
    out_states: Dict[int, State] = {}
    worklist: List[int] = sorted(cfg.blocks)
    iterations = 0
    while worklist:
        iterations += 1
        if iterations > max_iterations:
            raise RuntimeError(
                f"dataflow did not converge after {max_iterations} iterations"
            )
        block_id = worklist.pop(0)
        block = cfg.blocks[block_id]
        out = block_out_state(analysis, block.elements, in_states[block_id])
        if block_id in out_states and out_states[block_id] == out:
            continue
        out_states[block_id] = out
        for successor in block.successors:
            joined = analysis.join(in_states[successor], out)
            if joined != in_states[successor]:
                in_states[successor] = joined
                if successor not in worklist:
                    worklist.append(successor)
    return in_states


def foreach_element_state(
    cfg: CFG,
    analysis: ForwardAnalysis[State],
    in_states: Dict[int, State],
    visit: Callable[[ast.stmt, State], None],
) -> None:
    """Call ``visit(element, state_before_element)`` for every element."""
    for block_id in sorted(cfg.blocks):
        state = in_states[block_id]
        for element in cfg.blocks[block_id].elements:
            visit(element, state)
            state = analysis.transfer(element, state)


__all__ = [
    "ForwardAnalysis",
    "block_out_state",
    "foreach_element_state",
    "run_forward",
]
