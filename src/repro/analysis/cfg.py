"""Per-function control-flow graphs for the dataflow engine.

A :class:`CFG` is a set of basic blocks connected by successor edges.
Blocks hold *elements*: either whole simple statements
(``Assign``/``Return``/``Expr``/...) or the **header** of a compound
statement (``If``/``While``/``For``/``With``/``Try``) whose body lives in
its own blocks.  Transfer functions therefore must only interpret the
header parts of a compound element -- its test, iterable or context
managers -- never its body, which will be delivered separately.

The graph is deliberately conservative where Python is dynamic:

- every ``try`` body statement may jump to every handler (an exception
  can occur anywhere), so handler entry joins the states of all body
  prefixes;
- loops have a back edge and an exit edge regardless of what the
  condition looks like;
- ``break``/``continue``/``return``/``raise`` terminate their block and
  edge to the loop exit / loop header / function exit respectively.

Conservative means safe for *forward may* analyses (taint): we may
report a flow that cannot happen, never miss one that can.
"""

import ast
import dataclasses
from typing import Dict, List, Optional, Sequence

#: Compound statement types whose element is their header only.
_COMPOUND = (
    ast.If,
    ast.While,
    ast.For,
    ast.AsyncFor,
    ast.With,
    ast.AsyncWith,
    ast.Try,
)


@dataclasses.dataclass
class Block:
    """One basic block: a straight-line run of elements."""

    id: int
    elements: List[ast.stmt] = dataclasses.field(default_factory=list)
    successors: List[int] = dataclasses.field(default_factory=list)

    def add_successor(self, block_id: int) -> None:
        if block_id not in self.successors:
            self.successors.append(block_id)


class CFG:
    """Control-flow graph of one function body."""

    def __init__(self) -> None:
        self.blocks: Dict[int, Block] = {}
        self.entry: int = self._new_block().id
        self.exit: int = self._new_block().id

    def _new_block(self) -> Block:
        block = Block(id=len(self.blocks))
        self.blocks[block.id] = block
        return block

    def predecessors(self, block_id: int) -> List[int]:
        return [
            b.id for b in self.blocks.values() if block_id in b.successors
        ]

    def __repr__(self) -> str:
        edges = ", ".join(
            f"{b.id}->{sorted(b.successors)}"
            for b in self.blocks.values()
            if b.successors
        )
        return f"CFG(entry={self.entry}, exit={self.exit}, {edges})"


class _Builder:
    """Recursive statement-list walker maintaining a current block."""

    def __init__(self) -> None:
        self.cfg = CFG()
        self.current: Optional[Block] = self.cfg.blocks[self.cfg.entry]
        #: (break target block id, continue target block id) per open loop.
        self.loops: List[Dict[str, int]] = []

    # -- plumbing ----------------------------------------------------------

    def _start_block(self) -> Block:
        block = self.cfg._new_block()
        self.current = block
        return block

    def _edge_from_current(self, target: int) -> None:
        if self.current is not None:
            self.current.add_successor(target)

    def _append(self, stmt: ast.stmt) -> None:
        if self.current is None:
            # Unreachable code after return/raise/break: park it in a
            # fresh block with no predecessors so rules still see it.
            self._start_block()
        assert self.current is not None
        self.current.elements.append(stmt)

    # -- statement dispatch ------------------------------------------------

    def build(self, body: Sequence[ast.stmt]) -> CFG:
        self.visit_body(body)
        self._edge_from_current(self.cfg.exit)
        return self.cfg

    def visit_body(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self.visit(stmt)

    def visit(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.If):
            self._visit_if(stmt)
        elif isinstance(stmt, (ast.While,)):
            self._visit_while(stmt)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._visit_for(stmt)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._visit_with(stmt)
        elif isinstance(stmt, ast.Try):
            self._visit_try(stmt)
        elif isinstance(stmt, (ast.Return, ast.Raise)):
            self._append(stmt)
            self._edge_from_current(self.cfg.exit)
            self.current = None
        elif isinstance(stmt, ast.Break):
            self._append(stmt)
            if self.loops:
                self._edge_from_current(self.loops[-1]["break"])
            self.current = None
        elif isinstance(stmt, ast.Continue):
            self._append(stmt)
            if self.loops:
                self._edge_from_current(self.loops[-1]["continue"])
            self.current = None
        else:
            # Simple statement (and nested function/class defs, which are
            # elements here and analyzed as their own functions elsewhere).
            self._append(stmt)

    def _visit_if(self, stmt: ast.If) -> None:
        self._append(stmt)  # header: the test
        branch_point = self.current
        assert branch_point is not None
        after = self.cfg._new_block()

        then_entry = self.cfg._new_block()
        branch_point.add_successor(then_entry.id)
        self.current = then_entry
        self.visit_body(stmt.body)
        self._edge_from_current(after.id)

        if stmt.orelse:
            else_entry = self.cfg._new_block()
            branch_point.add_successor(else_entry.id)
            self.current = else_entry
            self.visit_body(stmt.orelse)
            self._edge_from_current(after.id)
        else:
            branch_point.add_successor(after.id)
        self.current = after

    def _visit_while(self, stmt: ast.While) -> None:
        header = self.cfg._new_block()
        self._edge_from_current(header.id)
        header.elements.append(stmt)  # header: the test
        after = self.cfg._new_block()
        header.add_successor(after.id)

        self.loops.append({"break": after.id, "continue": header.id})
        body_entry = self.cfg._new_block()
        header.add_successor(body_entry.id)
        self.current = body_entry
        self.visit_body(stmt.body)
        self._edge_from_current(header.id)  # back edge
        self.loops.pop()

        if stmt.orelse:
            else_entry = self.cfg._new_block()
            header.add_successor(else_entry.id)
            self.current = else_entry
            self.visit_body(stmt.orelse)
            self._edge_from_current(after.id)
        self.current = after

    def _visit_for(self, stmt: ast.stmt) -> None:
        assert isinstance(stmt, (ast.For, ast.AsyncFor))
        header = self.cfg._new_block()
        self._edge_from_current(header.id)
        header.elements.append(stmt)  # header: target <- iter
        after = self.cfg._new_block()
        header.add_successor(after.id)  # iterator exhausted

        self.loops.append({"break": after.id, "continue": header.id})
        body_entry = self.cfg._new_block()
        header.add_successor(body_entry.id)
        self.current = body_entry
        self.visit_body(stmt.body)
        self._edge_from_current(header.id)  # back edge
        self.loops.pop()

        if stmt.orelse:
            else_entry = self.cfg._new_block()
            header.add_successor(else_entry.id)
            self.current = else_entry
            self.visit_body(stmt.orelse)
            self._edge_from_current(after.id)
        self.current = after

    def _visit_with(self, stmt: ast.stmt) -> None:
        assert isinstance(stmt, (ast.With, ast.AsyncWith))
        self._append(stmt)  # header: the context managers / as-targets
        self.visit_body(stmt.body)

    def _visit_try(self, stmt: ast.Try) -> None:
        self._append(stmt)  # header (carries no state itself)
        before = self.current
        assert before is not None
        after = self.cfg._new_block()

        # Body: every statement gets its own block so each prefix can
        # edge to every handler (exceptions can occur at any point).
        body_blocks: List[Block] = []
        self.current = before
        for body_stmt in stmt.body:
            entry = self.cfg._new_block()
            self._edge_from_current(entry.id)
            self.current = entry
            self.visit(body_stmt)
            body_blocks.append(entry)
        body_end = self.current

        handler_ends: List[Optional[Block]] = []
        for handler in stmt.handlers:
            handler_entry = self.cfg._new_block()
            handler_entry.elements.append(handler)  # header: the except clause
            before.add_successor(handler_entry.id)
            for block in body_blocks:
                block.add_successor(handler_entry.id)
            self.current = handler_entry
            self.visit_body(handler.body)
            handler_ends.append(self.current)

        # else runs only when the body completed without exception.
        self.current = body_end
        if stmt.orelse:
            self.visit_body(stmt.orelse)
        no_exc_end = self.current

        if stmt.finalbody:
            final_entry = self.cfg._new_block()
            if no_exc_end is not None:
                no_exc_end.add_successor(final_entry.id)
            for end in handler_ends:
                if end is not None:
                    end.add_successor(final_entry.id)
            if not stmt.handlers:
                # No handlers: an exception still reaches finally.
                before.add_successor(final_entry.id)
                for block in body_blocks:
                    block.add_successor(final_entry.id)
            self.current = final_entry
            self.visit_body(stmt.finalbody)
            self._edge_from_current(after.id)
        else:
            if no_exc_end is not None:
                no_exc_end.add_successor(after.id)
            for end in handler_ends:
                if end is not None:
                    end.add_successor(after.id)
        self.current = after


def build_cfg(fn: ast.AST) -> CFG:
    """The CFG of one ``FunctionDef``/``AsyncFunctionDef`` body."""
    assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)), fn
    return _Builder().build(fn.body)


__all__ = ["CFG", "Block", "build_cfg"]
