"""Applying autofixes: span edits, overlap handling, fix-until-stable.

Rules attach a :class:`~repro.analysis.engine.Fix` (a tuple of
:class:`~repro.analysis.engine.Edit` spans) to mechanical findings --
wrap-in-``sorted(...)``, mutable-default rewrites, float-equality
helper calls.  This module turns those spans into new file contents:

- spans use AST coordinates (1-based line, 0-based **byte** column, the
  same convention ``ast`` uses), so edits are applied to the UTF-8 bytes
  of the source, not its code points;
- identical edits are deduplicated (two FLT01 findings both inserting
  the same import line collapse to one insertion);
- fixes whose edits overlap an already-accepted edit are skipped whole
  (half a fix is worse than none); the next ``--fix`` pass picks them up
  once the earlier rewrite has settled;
- :func:`fix_text` re-analyzes and re-applies until the source stops
  changing, which is also what makes the idempotency property testable:
  ``fix_text(fix_text(s)) == fix_text(s)``.
"""

import dataclasses
from typing import List, Optional, Sequence, Tuple

from repro.analysis.config import LintConfig
from repro.analysis.engine import Edit, Finding, analyze_source

#: Passes before giving up on a source that keeps producing new fixable
#: findings (a fix that uncovers another fixable finding is fine; a
#: cycle is a rule bug and must not hang the CLI).
MAX_PASSES = 5


def _line_offsets(data: bytes) -> List[int]:
    """Byte offset of the start of every (1-based) line."""
    offsets = [0]
    for index, byte in enumerate(data):
        if byte == 0x0A:
            offsets.append(index + 1)
    return offsets


def _span(edit: Edit, offsets: List[int]) -> Optional[Tuple[int, int]]:
    if not (1 <= edit.start_line <= len(offsets)) or not (
        1 <= edit.end_line <= len(offsets)
    ):
        return None
    start = offsets[edit.start_line - 1] + edit.start_col
    end = offsets[edit.end_line - 1] + edit.end_col
    if end < start:
        return None
    return (start, end)


@dataclasses.dataclass(frozen=True)
class _Resolved:
    start: int
    end: int
    replacement: bytes


def apply_fixes(source: str, findings: Sequence[Finding]) -> Tuple[str, int]:
    """Apply every non-overlapping fix; returns (new source, fixes applied)."""
    data = source.encode("utf-8")
    offsets = _line_offsets(data)
    applied = 0
    accepted: List[_Resolved] = []
    taken: List[Tuple[int, int]] = []
    for finding in findings:
        if finding.fix is None:
            continue
        resolved: List[_Resolved] = []
        ok = True
        for edit in finding.fix.edits:
            span = _span(edit, offsets)
            if span is None:
                ok = False
                break
            resolved.append(
                _Resolved(span[0], span[1], edit.replacement.encode("utf-8"))
            )
        if not ok:
            continue
        duplicates = [r for r in resolved if r in accepted]
        fresh = [r for r in resolved if r not in accepted]
        if len(duplicates) == len(resolved):
            continue  # the whole fix was already applied by a twin finding
        if any(_overlaps(r, taken) for r in fresh):
            continue
        accepted.extend(fresh)
        taken.extend((r.start, r.end) for r in fresh)
        applied += 1
    if not accepted:
        return (source, 0)
    # Bottom-up so earlier offsets stay valid; insertions at the same
    # point keep their acceptance order (stable sort, reversed).
    ordered = sorted(
        range(len(accepted)), key=lambda i: (accepted[i].start, accepted[i].end, i)
    )
    for index in reversed(ordered):
        edit = accepted[index]
        data = data[: edit.start] + edit.replacement + data[edit.end :]
    return (data.decode("utf-8"), applied)


def _overlaps(edit: _Resolved, taken: Sequence[Tuple[int, int]]) -> bool:
    for start, end in taken:
        if edit.start == edit.end or start == end:
            # Pure insertions only collide when inside a replaced span.
            point = edit.start if edit.start == edit.end else start
            low, high = (start, end) if edit.start == edit.end else (edit.start, edit.end)
            if low < point < high:
                return True
            continue
        if edit.start < end and start < edit.end:
            return True
    return False


def fix_text(
    source: str,
    path: str = "<string>",
    module: Optional[str] = None,
    config: Optional[LintConfig] = None,
) -> Tuple[str, int]:
    """Fix one module's source until it stops changing.

    Returns (fixed source, total fixes applied).  Idempotent by
    construction: running it on its own output applies zero fixes.
    """
    config = config if config is not None else LintConfig()
    total = 0
    for _ in range(MAX_PASSES):
        findings = analyze_source(source, path=path, module=module, config=config)
        fixed, applied = apply_fixes(source, findings)
        total += applied
        if applied == 0 or fixed == source:
            break
        source = fixed
    return (source, total)


__all__ = ["MAX_PASSES", "apply_fixes", "fix_text"]
